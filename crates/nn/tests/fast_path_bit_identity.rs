//! Property tests pinning the zero-allocation fast path to the allocating
//! forward passes: for every layer, the `*_into` kernels must produce
//! **bit-identical** outputs (same summation order, same activation
//! arithmetic), so switching a policy onto the scratch workspace can never
//! change a rollout. The transposed-recurrent LSTM step is the one
//! documented exception — it reorders the recurrent sums — and is held to a
//! tight relative tolerance instead.

use corki_nn::{Activation, InferenceScratch, LstmCell, LstmState, Mlp, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn input_vec(len: usize, seed: u64) -> Vec<f64> {
    (0..len).map(|i| ((i as f64) * 0.37 + seed as f64 * 0.11).sin() * 2.0).collect()
}

proptest! {
    #[test]
    fn matvec_into_matches_matvec_bitwise(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::xavier(rows, cols, &mut rng);
        let x = input_vec(cols, seed);
        let alloc = t.matvec(&x);
        let mut fast = vec![f64::NAN; rows];
        t.matvec_into(&x, &mut fast);
        prop_assert_eq!(alloc, fast);
    }

    #[test]
    fn linear_forward_into_matches_forward_bitwise(
        input in 1usize..32,
        output in 1usize..32,
        seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let layer = corki_nn::Linear::new(input, output, &mut rng);
        let x = input_vec(input, seed);
        let alloc = layer.forward(&x);
        let mut fast = vec![f64::NAN; output];
        layer.forward_into(&x, &mut fast);
        prop_assert_eq!(&alloc, &fast);
        // The fused affine+activation equals activation applied afterwards.
        let mut fused = vec![f64::NAN; output];
        layer.forward_activated_into(&x, Activation::Tanh, &mut fused);
        let after: Vec<f64> = alloc.iter().map(|&v| Activation::Tanh.apply(v)).collect();
        prop_assert_eq!(after, fused);
    }

    #[test]
    fn lstm_forward_into_matches_forward_bitwise(
        input in 1usize..24,
        hidden in 1usize..24,
        seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cell = LstmCell::new(input, hidden, &mut rng);
        let x = input_vec(input, seed);
        let mut state = LstmState::zeros(hidden);
        let mut scratch = InferenceScratch::new();
        let mut fast = LstmState::zeros(hidden);
        // Walk a few steps so non-zero states are covered too.
        for _ in 0..3 {
            let alloc = cell.forward(&x, &state);
            cell.forward_into(&x, &state, &mut fast, &mut scratch);
            prop_assert_eq!(&alloc.h, &fast.h);
            prop_assert_eq!(&alloc.c, &fast.c);
            // The premixed step over a precomputed input projection is also
            // bit-identical.
            let mut projection = Vec::new();
            cell.input_projection_into(&x, &mut projection);
            let mut premixed = LstmState::zeros(hidden);
            cell.forward_premixed(&projection, &state, &mut premixed, &mut scratch);
            prop_assert_eq!(&alloc.h, &premixed.h);
            prop_assert_eq!(&alloc.c, &premixed.c);
            // The pooled training step fills its caches in place but is
            // bit-identical to the allocating cached forward.
            let mut cache = corki_nn::LstmCache::default();
            let mut pooled = LstmState::zeros(hidden);
            cell.forward_cached_reuse(&x, &state, &mut pooled, &mut cache, &mut scratch);
            prop_assert_eq!(&alloc.h, &pooled.h);
            prop_assert_eq!(&alloc.c, &pooled.c);
            // The transposed-recurrent step reorders the recurrent sums; it
            // must agree to within rounding.
            let mut w_hh_t = Vec::new();
            cell.recurrent_transposed_into(&mut w_hh_t);
            let mut transposed = LstmState::zeros(hidden);
            cell.forward_premixed_transposed(
                &projection, &w_hh_t, &state, &mut transposed, &mut scratch,
            );
            for (a, b) in alloc.h.iter().zip(&transposed.h) {
                prop_assert!((a - b).abs() <= 1e-12 + 1e-9 * a.abs());
            }
            state = alloc;
        }
    }

    #[test]
    fn mlp_forward_into_matches_forward_bitwise(
        a in 1usize..24,
        b in 1usize..24,
        c in 1usize..24,
        layers in 2usize..4,
        seed in 0u64..500) {
        let sizes = [a, b, c][..layers].to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&sizes, Activation::Tanh, &mut rng);
        let x = input_vec(sizes[0], seed);
        let alloc = mlp.forward(&x);
        let mut scratch = InferenceScratch::new();
        let mut fast = Vec::new();
        mlp.forward_into(&x, &mut scratch, &mut fast);
        prop_assert_eq!(&alloc, &fast);
        // The pooled training forward is bit-identical as well.
        let mut cache = corki_nn::MlpCache::default();
        let reused = mlp.forward_cached_reuse(&x, &mut cache).to_vec();
        prop_assert_eq!(alloc, reused);
    }
}
