//! The reusable inference workspace behind the zero-allocation fast path.
//!
//! Every `*_into` forward pass in this crate writes into caller-provided
//! buffers; [`InferenceScratch`] bundles the intermediate buffers those
//! passes need (MLP ping-pong activations, LSTM pre-activation and
//! recurrent-contribution vectors) so that a steady-state policy inference
//! performs no heap allocations: buffers grow to their high-water mark on
//! the first call and are reused (`clear` + `resize`) afterwards.

/// Scratch buffers shared by the allocation-free forward passes of
/// [`crate::Mlp`] and [`crate::LstmCell`].
///
/// One `InferenceScratch` serves one inference at a time; policies own one
/// (excluded from serde/checkpointing) and thread it through every layer of
/// a control step.
#[derive(Debug, Clone, Default)]
pub struct InferenceScratch {
    /// MLP ping buffer (hidden activations of even layers).
    pub(crate) mlp_a: Vec<f64>,
    /// MLP pong buffer (hidden activations of odd layers).
    pub(crate) mlp_b: Vec<f64>,
    /// LSTM pre-activation vector `W_ih x + W_hh h + b` (length `4H`).
    pub(crate) lstm_pre: Vec<f64>,
    /// LSTM recurrent contribution `W_hh h` (length `4H`).
    pub(crate) lstm_rec: Vec<f64>,
}

impl InferenceScratch {
    /// Creates an empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        InferenceScratch::default()
    }
}

/// Re-sizes a buffer without giving back its capacity: after the first call
/// at a given size this never touches the allocator, and a buffer already at
/// the right length is returned as-is (callers fully overwrite the contents,
/// so no zero-fill is spent on the steady state).
pub(crate) fn reuse(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
    if buf.len() != len {
        buf.clear();
        buf.resize(len, 0.0);
    }
    buf.as_mut_slice()
}
