//! Pointwise activation functions with explicit derivatives.

use serde::{Deserialize, Serialize};

/// The activation functions used by the policy heads (Fig. 3: tanh inside the
/// LSTM and on hidden layers, sigmoid on gates and the gripper output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent.
    #[default]
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Identity (no nonlinearity) — used on regression output layers.
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => tanh(x),
            Activation::Sigmoid => sigmoid(x),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// The derivative of the activation expressed in terms of its *output*
    /// `y = f(x)` (all four functions admit this form, which is what the
    /// backward passes cache).
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to every element of a slice, returning a new
    /// vector.
    pub fn apply_slice(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }
}

/// Branch-free exponential for the activation sweeps: range reduction to
/// `r ∈ [-ln2/2, ln2/2]` plus a degree-11 polynomial, with the input clamped
/// to ±708 so the `2^k` scaling never leaves the finite range.
///
/// Unlike `f64::exp` (an opaque scalar libm call), this compiles to straight
/// arithmetic, so [`sigmoid_slice`]/[`tanh_slice`] sweeps vectorise — the
/// difference between ~10 ns and ~1 ns per activation on the LSTM hot loop.
/// Maximum relative error is below 1e-14 over the clamped range.
#[inline(always)]
fn exp_clamped(x: f64) -> f64 {
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    // 1/k! for k = 0..=11.
    const C: [f64; 12] = [
        1.0,
        1.0,
        0.5,
        1.0 / 6.0,
        1.0 / 24.0,
        1.0 / 120.0,
        1.0 / 720.0,
        1.0 / 5040.0,
        1.0 / 40320.0,
        1.0 / 362_880.0,
        1.0 / 3_628_800.0,
        1.0 / 39_916_800.0,
    ];
    let x = x.clamp(-708.0, 708.0);
    let k = (x * std::f64::consts::LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    let mut p = C[11];
    for c in C[..11].iter().rev() {
        p = p * r + c;
    }
    let scale = f64::from_bits((((k as i64) + 1023) << 52) as u64);
    p * scale
}

/// The logistic sigmoid `1 / (1 + e^(-x))`, numerically stable for large |x|
/// (the exponential saturates instead of overflowing).
#[inline(always)]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + exp_clamped(-x))
}

/// `tanh` via the saturating exponential; bit-identical to the scalar calls
/// used everywhere else in the crate and accurate to ~1e-14 relative (~1e-16
/// absolute near zero) against libm.
#[inline(always)]
pub fn tanh(x: f64) -> f64 {
    let e = exp_clamped(2.0 * x.abs());
    (1.0 - 2.0 / (e + 1.0)).copysign(x)
}

/// In-place elementwise sweep, processed in chunks of four explicit lanes so
/// the branch-free activation arithmetic vectorises.
#[inline(always)]
fn sweep4(xs: &mut [f64], f: impl Fn(f64) -> f64) {
    let mut chunks = xs.chunks_exact_mut(4);
    for chunk in &mut chunks {
        let mut lanes = [chunk[0], chunk[1], chunk[2], chunk[3]];
        for lane in &mut lanes {
            *lane = f(*lane);
        }
        chunk.copy_from_slice(&lanes);
    }
    for x in chunks.into_remainder() {
        *x = f(*x);
    }
}

/// Applies [`sigmoid`] to every element in place (vectorisable sweep).
pub fn sigmoid_slice(xs: &mut [f64]) {
    sweep4(xs, sigmoid);
}

/// Applies [`tanh`] to every element in place (vectorisable sweep).
pub fn tanh_slice(xs: &mut [f64]) {
    sweep4(xs, tanh);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_limits_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Stability: no NaN for extreme inputs.
        assert!(sigmoid(-800.0).is_finite());
        assert!(sigmoid(800.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
            for &x in &[-1.5, -0.3, 0.0, 0.4, 2.0] {
                let y = act.apply(x);
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!((act.derivative_from_output(y) - fd).abs() < 1e-6, "{act:?} at {x}");
            }
        }
        // ReLU away from the kink.
        for &x in &[-1.0, 1.0] {
            let y = Activation::Relu.apply(x);
            let fd =
                (Activation::Relu.apply(x + eps) - Activation::Relu.apply(x - eps)) / (2.0 * eps);
            assert!((Activation::Relu.derivative_from_output(y) - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_slice_maps_elementwise() {
        let out = Activation::Relu.apply_slice(&[-1.0, 0.5, 2.0]);
        assert_eq!(out, vec![0.0, 0.5, 2.0]);
    }

    #[test]
    fn fast_activations_track_libm_closely() {
        let mut x = -40.0f64;
        while x < 40.0 {
            let libm_t = x.tanh();
            let t = tanh(x);
            assert!(
                (t - libm_t).abs() <= 1e-13 + 1e-11 * libm_t.abs(),
                "tanh({x}) = {t} vs libm {libm_t}"
            );
            let libm_s =
                if x >= 0.0 { 1.0 / (1.0 + (-x).exp()) } else { (x.exp()) / (1.0 + x.exp()) };
            let s = sigmoid(x);
            assert!(
                (s - libm_s).abs() <= 1e-13 + 1e-11 * libm_s.abs(),
                "sigmoid({x}) = {s} vs libm {libm_s}"
            );
            x += 0.000_37;
        }
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(1e308), 1.0);
        assert_eq!(tanh(-1e308), -1.0);
        assert!(sigmoid(1e308).is_finite() && sigmoid(-1e308).is_finite());
    }

    #[test]
    fn slice_sweeps_match_scalar_calls_bitwise() {
        let xs: Vec<f64> = (0..257).map(|i| (i as f64 - 128.0) * 0.11).collect();
        let mut sig = xs.clone();
        sigmoid_slice(&mut sig);
        let mut tah = xs.clone();
        tanh_slice(&mut tah);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(sig[i], sigmoid(x));
            assert_eq!(tah[i], tanh(x));
        }
    }
}
