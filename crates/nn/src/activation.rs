//! Pointwise activation functions with explicit derivatives.

use serde::{Deserialize, Serialize};

/// The activation functions used by the policy heads (Fig. 3: tanh inside the
/// LSTM and on hidden layers, sigmoid on gates and the gripper output).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Hyperbolic tangent.
    #[default]
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Identity (no nonlinearity) — used on regression output layers.
    Identity,
}

impl Activation {
    /// Applies the activation to a single value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => sigmoid(x),
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
        }
    }

    /// The derivative of the activation expressed in terms of its *output*
    /// `y = f(x)` (all four functions admit this form, which is what the
    /// backward passes cache).
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation to every element of a slice, returning a new
    /// vector.
    pub fn apply_slice(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }
}

/// The logistic sigmoid `1 / (1 + e^(-x))`, numerically stable for large |x|.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_limits_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Stability: no NaN for extreme inputs.
        assert!(sigmoid(-800.0).is_finite());
        assert!(sigmoid(800.0).is_finite());
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [Activation::Tanh, Activation::Sigmoid, Activation::Identity] {
            for &x in &[-1.5, -0.3, 0.0, 0.4, 2.0] {
                let y = act.apply(x);
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!((act.derivative_from_output(y) - fd).abs() < 1e-6, "{act:?} at {x}");
            }
        }
        // ReLU away from the kink.
        for &x in &[-1.0, 1.0] {
            let y = Activation::Relu.apply(x);
            let fd =
                (Activation::Relu.apply(x + eps) - Activation::Relu.apply(x - eps)) / (2.0 * eps);
            assert!((Activation::Relu.derivative_from_output(y) - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn apply_slice_maps_elementwise() {
        let out = Activation::Relu.apply_slice(&[-1.0, 0.5, 2.0]);
        assert_eq!(out, vec![0.0, 0.5, 2.0]);
    }
}
