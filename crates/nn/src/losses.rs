//! Loss functions with their gradients.
//!
//! The Corki training objective (paper Equations 3 and 5) combines a
//! mean-squared-error term on the pose/trajectory outputs with a binary
//! cross-entropy term on the gripper logit, weighted by `λ`.

/// Mean-squared-error loss `mean((pred - target)²)` and its gradient with
/// respect to `pred`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mse(pred: &[f64], target: &[f64]) -> (f64, Vec<f64>) {
    assert_eq!(pred.len(), target.len(), "mse: length mismatch");
    assert!(!pred.is_empty(), "mse: empty inputs");
    let n = pred.len() as f64;
    let mut loss = 0.0;
    let mut grad = vec![0.0; pred.len()];
    for (i, (p, t)) in pred.iter().zip(target).enumerate() {
        let diff = p - t;
        loss += diff * diff;
        grad[i] = 2.0 * diff / n;
    }
    (loss / n, grad)
}

/// Binary cross-entropy with logits (numerically stable) for scalar
/// predictions, returning the loss and the gradient with respect to the
/// logit.
///
/// `target` must be 0.0 (open) or 1.0 (closed).
pub fn bce_with_logits(logit: f64, target: f64) -> (f64, f64) {
    // loss = max(z, 0) - z*t + ln(1 + exp(-|z|))
    let z = logit;
    let loss = z.max(0.0) - z * target + (1.0 + (-z.abs()).exp()).ln();
    let sigmoid = if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    };
    (loss, sigmoid - target)
}

/// The combined Corki/RoboFlamingo training loss (Equation 3):
/// `MSE(pose) + λ · BCE(gripper)`, returning
/// `(total_loss, pose_gradient, gripper_logit_gradient)`.
///
/// # Panics
///
/// Panics if the pose slices have different lengths.
pub fn pose_and_gripper_loss(
    pose_pred: &[f64],
    pose_target: &[f64],
    gripper_logit: f64,
    gripper_target: f64,
    lambda: f64,
) -> (f64, Vec<f64>, f64) {
    let (pose_loss, pose_grad) = mse(pose_pred, pose_target);
    let (grip_loss, grip_grad) = bce_with_logits(gripper_logit, gripper_target);
    (pose_loss + lambda * grip_loss, pose_grad, lambda * grip_grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_exact_prediction() {
        let (loss, grad) = mse(&[1.0, -2.0, 0.5], &[1.0, -2.0, 0.5]);
        assert_eq!(loss, 0.0);
        assert!(grad.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = [0.3, -0.7, 1.2];
        let target = [0.0, 0.1, 1.0];
        let (_, grad) = mse(&pred, &target);
        let eps = 1e-6;
        for i in 0..3 {
            let mut up = pred;
            up[i] += eps;
            let mut down = pred;
            down[i] -= eps;
            let fd = (mse(&up, &target).0 - mse(&down, &target).0) / (2.0 * eps);
            assert!((grad[i] - fd).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic]
    fn mse_length_mismatch_panics() {
        let _ = mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn bce_is_low_for_confident_correct_predictions() {
        let (loss_correct, _) = bce_with_logits(6.0, 1.0);
        let (loss_wrong, _) = bce_with_logits(6.0, 0.0);
        assert!(loss_correct < 0.01);
        assert!(loss_wrong > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let eps = 1e-6;
        for &(z, t) in &[(0.3, 1.0), (-1.5, 0.0), (2.0, 0.0), (0.0, 1.0)] {
            let (_, grad) = bce_with_logits(z, t);
            let fd = (bce_with_logits(z + eps, t).0 - bce_with_logits(z - eps, t).0) / (2.0 * eps);
            assert!((grad - fd).abs() < 1e-6);
        }
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let (loss, grad) = bce_with_logits(500.0, 0.0);
        assert!(loss.is_finite() && grad.is_finite());
        let (loss, grad) = bce_with_logits(-500.0, 1.0);
        assert!(loss.is_finite() && grad.is_finite());
    }

    #[test]
    fn combined_loss_weights_gripper_with_lambda() {
        let pose_pred = [0.1, 0.2];
        let pose_target = [0.0, 0.0];
        let (total_0, _, ggrad_0) = pose_and_gripper_loss(&pose_pred, &pose_target, 1.0, 0.0, 0.0);
        let (total_1, _, ggrad_1) = pose_and_gripper_loss(&pose_pred, &pose_target, 1.0, 0.0, 2.0);
        assert!(total_1 > total_0);
        assert_eq!(ggrad_0, 0.0);
        assert!(ggrad_1 > 0.0);
    }
}
