//! A minimal, dependency-free neural-network library for the Corki policy.
//!
//! The paper's policy head (Fig. 3/4) is an LSTM over vision-language tokens
//! followed by MLP heads producing either per-frame actions (baseline) or a
//! near-future trajectory (Corki).  This crate provides exactly the layers
//! needed to train and run those heads in pure Rust:
//!
//! * [`Tensor`] — a flat parameter matrix with its gradient buffer,
//! * [`Linear`], [`Mlp`], [`LstmCell`] — layers with explicit
//!   forward-with-cache / backward passes (no autograd, no hidden state),
//! * [`losses`] — MSE (pose supervision) and binary cross-entropy with logits
//!   (gripper supervision), matching Equation 3/5,
//! * [`Adam`] / [`Sgd`] — optimisers over a model's parameter tensors.
//!
//! # Example
//!
//! ```
//! use corki_nn::{Linear, Adam, losses};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Fit y = 2x with a single linear neuron.
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut layer = Linear::new(1, 1, &mut rng);
//! let mut adam = Adam::new(0.05);
//! for _ in 0..500 {
//!     layer.zero_grad();
//!     let x = [0.5];
//!     let (y, cache) = layer.forward_cached(&x);
//!     let (_, grad) = losses::mse(&y, &[1.0]);
//!     layer.backward(&cache, &grad);
//!     adam.step(&mut layer.parameters_mut());
//! }
//! let (y, _) = layer.forward_cached(&[0.5]);
//! assert!((y[0] - 1.0).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod linear;
pub mod losses;
mod lstm;
mod mlp;
mod optim;
mod scratch;
mod tensor;

pub use activation::{sigmoid, sigmoid_slice, tanh, tanh_slice, Activation};
pub use linear::{Linear, LinearCache};
pub use lstm::{LstmCache, LstmCell, LstmState};
pub use mlp::{Mlp, MlpCache};
pub use optim::{Adam, Sgd};
pub use scratch::InferenceScratch;
pub use tensor::{matvec_colmajor, Tensor};
