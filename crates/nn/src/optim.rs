//! Gradient-descent optimisers operating on a model's parameter tensors.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Global gradient-norm clip (disabled when `None`).
    pub clip_norm: Option<f64>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(learning_rate: f64) -> Self {
        Sgd { learning_rate, clip_norm: None }
    }

    /// Enables global gradient-norm clipping.
    pub fn with_clip_norm(mut self, clip_norm: f64) -> Self {
        self.clip_norm = Some(clip_norm);
        self
    }

    /// Applies one update step to the given parameter tensors.
    pub fn step(&self, params: &mut [&mut Tensor]) {
        clip_global_norm(params, self.clip_norm);
        for p in params.iter_mut() {
            p.apply_sgd(self.learning_rate);
        }
    }
}

/// The Adam optimiser (Kingma & Ba), the standard choice for training the
/// LSTM policy head.
///
/// The moment buffers are keyed by parameter position, so the same optimiser
/// instance must always be called with the tensors of the same model in the
/// same order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// Exponential decay of the first moment (default 0.9).
    pub beta1: f64,
    /// Exponential decay of the second moment (default 0.999).
    pub beta2: f64,
    /// Numerical-stability constant (default 1e-8).
    pub epsilon: f64,
    /// Global gradient-norm clip (disabled when `None`).
    pub clip_norm: Option<f64>,
    step_count: u64,
    first_moments: Vec<Vec<f64>>,
    second_moments: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates an Adam optimiser with standard betas.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            clip_norm: Some(5.0),
            step_count: 0,
            first_moments: Vec::new(),
            second_moments: Vec::new(),
        }
    }

    /// Sets (or disables) gradient clipping.
    pub fn with_clip_norm(mut self, clip_norm: Option<f64>) -> Self {
        self.clip_norm = clip_norm;
        self
    }

    /// Number of update steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step_count
    }

    /// Applies one Adam update to the given parameter tensors.
    ///
    /// # Panics
    ///
    /// Panics if the number or sizes of the tensors change between calls.
    pub fn step(&mut self, params: &mut [&mut Tensor]) {
        if self.first_moments.is_empty() {
            self.first_moments = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.second_moments = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(
            self.first_moments.len(),
            params.len(),
            "Adam::step called with a different number of tensors"
        );
        clip_global_norm(params, self.clip_norm);
        self.step_count += 1;
        let t = self.step_count as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (idx, p) in params.iter_mut().enumerate() {
            assert_eq!(
                self.first_moments[idx].len(),
                p.len(),
                "Adam::step called with a tensor of different size"
            );
            let m = &mut self.first_moments[idx];
            let v = &mut self.second_moments[idx];
            let grads: Vec<f64> = p.grad().to_vec();
            let data = p.data_mut();
            for i in 0..data.len() {
                let g = grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bias1;
                let v_hat = v[i] / bias2;
                data[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

/// Scales all gradients so that their combined L2 norm does not exceed
/// `clip_norm` (no-op when `clip_norm` is `None`).
fn clip_global_norm(params: &mut [&mut Tensor], clip_norm: Option<f64>) {
    let Some(max_norm) = clip_norm else { return };
    let total: f64 = params.iter().map(|p| p.grad_norm_squared()).sum::<f64>().sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            p.scale_grad(scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(t: &mut Tensor) {
        // loss = sum(x^2) → grad = 2x
        t.zero_grad();
        let values: Vec<f64> = t.data().to_vec();
        for (i, v) in values.iter().enumerate() {
            t.accumulate_grad(i / t.cols(), i % t.cols(), 2.0 * v);
        }
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut t = Tensor::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let sgd = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_grad(&mut t);
            sgd.step(&mut [&mut t]);
        }
        assert!(t.data().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn adam_minimises_quadratic_faster_than_tiny_sgd() {
        let mut t_adam = Tensor::from_vec(1, 2, vec![3.0, -4.0]);
        let mut adam = Adam::new(0.2);
        for _ in 0..200 {
            quadratic_grad(&mut t_adam);
            adam.step(&mut [&mut t_adam]);
        }
        assert!(t_adam.data().iter().all(|v| v.abs() < 1e-3), "{:?}", t_adam.data());
        assert_eq!(adam.steps_taken(), 200);
    }

    #[test]
    fn gradient_clipping_bounds_update_size() {
        let mut t = Tensor::from_vec(1, 1, vec![0.0]);
        t.accumulate_grad(0, 0, 1000.0);
        let sgd = Sgd::new(1.0).with_clip_norm(1.0);
        sgd.step(&mut [&mut t]);
        assert!(t.data()[0].abs() <= 1.0 + 1e-9);
    }

    #[test]
    #[should_panic]
    fn adam_rejects_changing_parameter_sets() {
        let mut a = Tensor::zeros(2, 2);
        let mut b = Tensor::zeros(3, 3);
        let mut adam = Adam::new(0.01);
        adam.step(&mut [&mut a]);
        adam.step(&mut [&mut a, &mut b]);
    }
}
