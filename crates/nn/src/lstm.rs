//! A single-layer LSTM cell with explicit backpropagation-through-time
//! support — the recurrent core of the RoboFlamingo/Corki policy head
//! (paper Fig. 3: "LSTM ×12 loops").

use crate::activation::{sigmoid, sigmoid_slice, tanh, tanh_slice};
use crate::scratch::{reuse, InferenceScratch};
use crate::tensor::{matvec_colmajor, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The recurrent state `(h, c)` of an LSTM.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LstmState {
    /// Hidden state.
    pub h: Vec<f64>,
    /// Cell state.
    pub c: Vec<f64>,
}

impl LstmState {
    /// A zero state of the given hidden size.
    pub fn zeros(hidden: usize) -> Self {
        LstmState { h: vec![0.0; hidden], c: vec![0.0; hidden] }
    }
}

/// Per-step cache required to backpropagate through one LSTM step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LstmCache {
    input: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    gate_i: Vec<f64>,
    gate_f: Vec<f64>,
    gate_o: Vec<f64>,
    gate_g: Vec<f64>,
    c_new: Vec<f64>,
}

/// A standard LSTM cell: gates `[i, f, g, o]` computed from `W_ih x + W_hh h + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmCell {
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
    input_dim: usize,
    hidden_dim: usize,
}

impl LstmCell {
    /// Creates an LSTM cell with Xavier-initialised weights, zero biases and a
    /// forget-gate bias of +1 (the standard trick for gradient flow).
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut impl Rng) -> Self {
        let w_ih = Tensor::xavier(4 * hidden_dim, input_dim, rng);
        let w_hh = Tensor::xavier(4 * hidden_dim, hidden_dim, rng);
        let mut bias = Tensor::zeros(4 * hidden_dim, 1);
        // Forget gate occupies rows [hidden_dim, 2*hidden_dim).
        for i in hidden_dim..2 * hidden_dim {
            bias.set(i, 0, 1.0);
        }
        LstmCell { w_ih, w_hh, bias, input_dim, hidden_dim }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimensionality.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.w_ih.len() + self.w_hh.len() + self.bias.len()
    }

    /// One forward step without caching (inference).
    ///
    /// # Panics
    ///
    /// Panics if the input or state dimensions do not match the cell.
    pub fn forward(&self, x: &[f64], state: &LstmState) -> LstmState {
        let (next, _) = self.forward_cached(x, state);
        next
    }

    /// Allocation-free forward step: writes the new state into `next`, using
    /// the scratch workspace for the gate pre-activations.
    ///
    /// Bit-identical to [`LstmCell::forward`] (same kernels, same operation
    /// order); `next` may start at any size — it is resized in place.
    ///
    /// # Panics
    ///
    /// Panics if the input or state dimensions do not match the cell.
    pub fn forward_into(
        &self,
        x: &[f64],
        state: &LstmState,
        next: &mut LstmState,
        scratch: &mut InferenceScratch,
    ) {
        assert_eq!(x.len(), self.input_dim, "LstmCell: wrong input length");
        let pre = reuse(&mut scratch.lstm_pre, 4 * self.hidden_dim);
        self.w_ih.matvec_into(x, pre);
        self.finish_step(state, next, scratch);
    }

    /// Projects an input through `W_ih` into a reusable buffer — the
    /// cacheable half of an LSTM step. The Corki policy computes this once
    /// per plan for the mask embedding and replays it via
    /// [`LstmCell::forward_premixed`] for every masked window position,
    /// instead of re-running the same matvec ten times.
    pub fn input_projection_into(&self, x: &[f64], out: &mut Vec<f64>) {
        assert_eq!(x.len(), self.input_dim, "LstmCell: wrong input length");
        if out.len() != 4 * self.hidden_dim {
            out.clear();
            out.resize(4 * self.hidden_dim, 0.0);
        }
        self.w_ih.matvec_into(x, out);
    }

    /// One forward step whose input projection `W_ih x` was precomputed with
    /// [`LstmCell::input_projection_into`]. Bit-identical to
    /// [`LstmCell::forward_into`] on the same input.
    pub fn forward_premixed(
        &self,
        input_projection: &[f64],
        state: &LstmState,
        next: &mut LstmState,
        scratch: &mut InferenceScratch,
    ) {
        assert_eq!(
            input_projection.len(),
            4 * self.hidden_dim,
            "LstmCell: wrong projection length"
        );
        // One fused pass: pre = proj + (rec + bias), the same expression (and
        // rounding) as the copy-then-accumulate in `forward_into`.
        let rec = reuse(&mut scratch.lstm_rec, 4 * self.hidden_dim);
        self.w_hh.matvec_into(&state.h, rec);
        let pre = reuse(&mut scratch.lstm_pre, 4 * self.hidden_dim);
        for (p, ((x, r), b)) in
            pre.iter_mut().zip(input_projection.iter().zip(rec.iter()).zip(self.bias.data()))
        {
            *p = x + (r + b);
        }
        self.finish_gates(state, next, scratch);
    }

    /// Writes the column-major copy of the recurrent weights `W_hh` into
    /// `out` — the cached layout consumed by
    /// [`LstmCell::forward_premixed_transposed`]. Callers refresh it with the
    /// same staleness tracking as the input projections.
    pub fn recurrent_transposed_into(&self, out: &mut Vec<f64>) {
        self.w_hh.transposed_data_into(out);
    }

    /// [`LstmCell::forward_premixed`] with the recurrent matvec run through
    /// the column-major kernel over a caller-cached transposed `W_hh` — the
    /// fastest step on the inference hot loop (~2.5× quicker recurrent
    /// matvec). Matches the other forward paths to within rounding: the
    /// recurrent sums accumulate in plain ascending order instead of the
    /// four-accumulator order of [`Tensor::matvec_into`].
    ///
    /// # Panics
    ///
    /// Panics if `w_hh_t` was not produced by
    /// [`LstmCell::recurrent_transposed_into`] for this cell (length check).
    pub fn forward_premixed_transposed(
        &self,
        input_projection: &[f64],
        w_hh_t: &[f64],
        state: &LstmState,
        next: &mut LstmState,
        scratch: &mut InferenceScratch,
    ) {
        assert_eq!(
            input_projection.len(),
            4 * self.hidden_dim,
            "LstmCell: wrong projection length"
        );
        assert_eq!(state.h.len(), self.hidden_dim, "LstmCell: wrong hidden length");
        let rec = reuse(&mut scratch.lstm_rec, 4 * self.hidden_dim);
        matvec_colmajor(w_hh_t, 4 * self.hidden_dim, self.hidden_dim, &state.h, rec);
        let pre = reuse(&mut scratch.lstm_pre, 4 * self.hidden_dim);
        for (p, ((x, r), b)) in
            pre.iter_mut().zip(input_projection.iter().zip(rec.iter()).zip(self.bias.data()))
        {
            *p = x + (r + b);
        }
        self.finish_gates(state, next, scratch);
    }

    /// The shared tail of a fast-path step: `scratch.lstm_pre` holds
    /// `W_ih x`; adds the recurrent term and bias, then runs the gate tail.
    fn finish_step(&self, state: &LstmState, next: &mut LstmState, scratch: &mut InferenceScratch) {
        assert_eq!(state.h.len(), self.hidden_dim, "LstmCell: wrong hidden length");
        let h = self.hidden_dim;
        let pre = scratch.lstm_pre.as_mut_slice();
        let rec = reuse(&mut scratch.lstm_rec, 4 * h);
        self.w_hh.matvec_into(&state.h, rec);
        for (p, (r, b)) in pre.iter_mut().zip(rec.iter().zip(self.bias.data())) {
            *p += r + b;
        }
        self.finish_gates(state, next, scratch);
    }

    /// Runs the vectorisable gate sweeps in place over the completed
    /// pre-activation quarters in `scratch.lstm_pre` and writes the new
    /// state; `scratch.lstm_rec` doubles as the `tanh(c)` workspace.
    fn finish_gates(
        &self,
        state: &LstmState,
        next: &mut LstmState,
        scratch: &mut InferenceScratch,
    ) {
        assert_eq!(state.h.len(), self.hidden_dim, "LstmCell: wrong hidden length");
        let h = self.hidden_dim;
        let pre = scratch.lstm_pre.as_mut_slice();
        sigmoid_slice(&mut pre[..2 * h]);
        tanh_slice(&mut pre[2 * h..3 * h]);
        sigmoid_slice(&mut pre[3 * h..]);
        if next.c.len() != h {
            next.c.clear();
            next.c.resize(h, 0.0);
        }
        for k in 0..h {
            next.c[k] = pre[h + k] * state.c[k] + pre[k] * pre[2 * h + k];
        }
        let tanh_c = &mut scratch.lstm_rec[..h];
        tanh_c.copy_from_slice(&next.c);
        tanh_slice(tanh_c);
        if next.h.len() != h {
            next.h.clear();
            next.h.resize(h, 0.0);
        }
        for k in 0..h {
            next.h[k] = pre[3 * h + k] * tanh_c[k];
        }
    }

    /// One forward step, returning the new state and the cache needed by
    /// [`LstmCell::backward`].
    pub fn forward_cached(&self, x: &[f64], state: &LstmState) -> (LstmState, LstmCache) {
        assert_eq!(x.len(), self.input_dim, "LstmCell: wrong input length");
        assert_eq!(state.h.len(), self.hidden_dim, "LstmCell: wrong hidden length");
        let h = self.hidden_dim;
        let mut pre = self.w_ih.matvec(x);
        let rec = self.w_hh.matvec(&state.h);
        for (p, (r, b)) in pre.iter_mut().zip(rec.iter().zip(self.bias.data())) {
            *p += r + b;
        }
        // Gate activations as vectorisable slice sweeps over the
        // pre-activation quarters `[i, f, g, o]`.
        let mut gate_i = pre[..h].to_vec();
        sigmoid_slice(&mut gate_i);
        let mut gate_f = pre[h..2 * h].to_vec();
        sigmoid_slice(&mut gate_f);
        let mut gate_g = pre[2 * h..3 * h].to_vec();
        tanh_slice(&mut gate_g);
        let mut gate_o = pre[3 * h..].to_vec();
        sigmoid_slice(&mut gate_o);
        let mut c_new = vec![0.0; h];
        for k in 0..h {
            c_new[k] = gate_f[k] * state.c[k] + gate_i[k] * gate_g[k];
        }
        let mut tanh_c = c_new.clone();
        tanh_slice(&mut tanh_c);
        let mut h_new = vec![0.0; h];
        for k in 0..h {
            h_new[k] = gate_o[k] * tanh_c[k];
        }
        let cache = LstmCache {
            input: x.to_vec(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            gate_i,
            gate_f,
            gate_o,
            gate_g,
            c_new: c_new.clone(),
        };
        (LstmState { h: h_new, c: c_new }, cache)
    }

    /// One forward step that fills a pooled [`LstmCache`] and writes the new
    /// state into `next`, reusing every buffer involved.
    ///
    /// This is the training-loop counterpart of [`LstmCell::forward_into`]:
    /// instead of `to_vec()`-ing the input and cloning the previous state on
    /// every cached forward (as [`LstmCell::forward_cached`] does), the cache
    /// buffers are cleared and refilled in place. Bit-identical to
    /// [`LstmCell::forward_cached`].
    pub fn forward_cached_reuse(
        &self,
        x: &[f64],
        state: &LstmState,
        next: &mut LstmState,
        cache: &mut LstmCache,
        scratch: &mut InferenceScratch,
    ) {
        assert_eq!(x.len(), self.input_dim, "LstmCell: wrong input length");
        assert_eq!(state.h.len(), self.hidden_dim, "LstmCell: wrong hidden length");
        let h = self.hidden_dim;
        let pre = reuse(&mut scratch.lstm_pre, 4 * h);
        self.w_ih.matvec_into(x, pre);
        let rec = reuse(&mut scratch.lstm_rec, 4 * h);
        self.w_hh.matvec_into(&state.h, rec);
        for (p, (r, b)) in pre.iter_mut().zip(rec.iter().zip(self.bias.data())) {
            *p += r + b;
        }
        let store = |buf: &mut Vec<f64>, src: &[f64]| {
            buf.clear();
            buf.extend_from_slice(src);
        };
        store(&mut cache.input, x);
        store(&mut cache.h_prev, &state.h);
        store(&mut cache.c_prev, &state.c);
        reuse(&mut cache.gate_i, h);
        reuse(&mut cache.gate_f, h);
        reuse(&mut cache.gate_g, h);
        reuse(&mut cache.gate_o, h);
        reuse(&mut cache.c_new, h);
        next.h.clear();
        next.h.resize(h, 0.0);
        next.c.clear();
        next.c.resize(h, 0.0);
        for k in 0..h {
            cache.gate_i[k] = sigmoid(pre[k]);
            cache.gate_f[k] = sigmoid(pre[h + k]);
            cache.gate_g[k] = tanh(pre[2 * h + k]);
            cache.gate_o[k] = sigmoid(pre[3 * h + k]);
            let c_new = cache.gate_f[k] * state.c[k] + cache.gate_i[k] * cache.gate_g[k];
            cache.c_new[k] = c_new;
            next.c[k] = c_new;
            next.h[k] = cache.gate_o[k] * tanh(c_new);
        }
    }

    /// Backward step: given the gradients flowing into the new hidden and
    /// cell states, accumulates parameter gradients and returns
    /// `(grad_input, grad_h_prev, grad_c_prev)`.
    pub fn backward(
        &mut self,
        cache: &LstmCache,
        grad_h: &[f64],
        grad_c: &[f64],
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let h = self.hidden_dim;
        assert_eq!(grad_h.len(), h, "LstmCell::backward: wrong grad_h length");
        assert_eq!(grad_c.len(), h, "LstmCell::backward: wrong grad_c length");

        // Gradients flowing into the pre-activation gate vector [i, f, g, o].
        let mut grad_pre = vec![0.0; 4 * h];
        let mut grad_c_prev = vec![0.0; h];
        for k in 0..h {
            let tanh_c = tanh(cache.c_new[k]);
            // dL/dc_new from both the output path and the direct cell path.
            let dc = grad_c[k] + grad_h[k] * cache.gate_o[k] * (1.0 - tanh_c * tanh_c);
            let do_ = grad_h[k] * tanh_c;
            let di = dc * cache.gate_g[k];
            let dg = dc * cache.gate_i[k];
            let df = dc * cache.c_prev[k];
            grad_c_prev[k] = dc * cache.gate_f[k];
            grad_pre[k] = di * cache.gate_i[k] * (1.0 - cache.gate_i[k]);
            grad_pre[h + k] = df * cache.gate_f[k] * (1.0 - cache.gate_f[k]);
            grad_pre[2 * h + k] = dg * (1.0 - cache.gate_g[k] * cache.gate_g[k]);
            grad_pre[3 * h + k] = do_ * cache.gate_o[k] * (1.0 - cache.gate_o[k]);
        }

        self.w_ih.accumulate_outer(&grad_pre, &cache.input);
        self.w_hh.accumulate_outer(&grad_pre, &cache.h_prev);
        for (i, g) in grad_pre.iter().enumerate() {
            self.bias.accumulate_grad(i, 0, *g);
        }
        let grad_input = self.w_ih.matvec_transposed(&grad_pre);
        let grad_h_prev = self.w_hh.matvec_transposed(&grad_pre);
        (grad_input, grad_h_prev, grad_c_prev)
    }

    /// Resets all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.w_ih.zero_grad();
        self.w_hh.zero_grad();
        self.bias.zero_grad();
    }

    /// Mutable references to the parameter tensors (for optimisers).
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn total_loss(cell: &LstmCell, inputs: &[Vec<f64>], target: &[f64]) -> f64 {
        let mut state = LstmState::zeros(cell.hidden_dim());
        for x in inputs {
            state = cell.forward(x, &state);
        }
        state.h.iter().zip(target).map(|(h, t)| 0.5 * (h - t).powi(2)).sum()
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(4, 3, &mut rng);
        let state = cell.forward(&[0.1, -0.2, 0.3, 0.5], &LstmState::zeros(3));
        assert_eq!(state.h.len(), 3);
        assert_eq!(state.c.len(), 3);
        // Hidden state of an LSTM is bounded by (-1, 1).
        assert!(state.h.iter().all(|h| h.abs() < 1.0));
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut rng = StdRng::seed_from_u64(5);
        let cell = LstmCell::new(6, 8, &mut rng);
        // 4H(I + H + 1)
        assert_eq!(cell.num_parameters(), 4 * 8 * (6 + 8 + 1));
    }

    #[test]
    fn bptt_gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut cell = LstmCell::new(3, 2, &mut rng);
        let inputs = vec![vec![0.3, -0.1, 0.4], vec![-0.2, 0.5, 0.1], vec![0.0, 0.2, -0.3]];
        let target = vec![0.4, -0.3];

        // Analytic gradient via BPTT.
        cell.zero_grad();
        let mut state = LstmState::zeros(2);
        let mut caches = Vec::new();
        for x in &inputs {
            let (next, cache) = cell.forward_cached(x, &state);
            caches.push(cache);
            state = next;
        }
        let mut grad_h: Vec<f64> = state.h.iter().zip(&target).map(|(h, t)| h - t).collect();
        let mut grad_c = vec![0.0; 2];
        for cache in caches.iter().rev() {
            let (_, gh, gc) = cell.backward(cache, &grad_h, &grad_c);
            grad_h = gh;
            grad_c = gc;
        }

        // Finite-difference check on one entry of each parameter tensor.
        let eps = 1e-6;
        let analytic_wih = cell.parameters_mut()[0].grad()[1];
        let mut plus = cell.clone();
        {
            let t = &mut plus.parameters_mut()[0];
            let v = t.data()[1];
            t.data_mut()[1] = v + eps;
        }
        let mut minus = cell.clone();
        {
            let t = &mut minus.parameters_mut()[0];
            let v = t.data()[1];
            t.data_mut()[1] = v - eps;
        }
        let fd = (total_loss(&plus, &inputs, &target) - total_loss(&minus, &inputs, &target))
            / (2.0 * eps);
        assert!((analytic_wih - fd).abs() < 1e-5, "analytic {analytic_wih} vs fd {fd}");
    }

    #[test]
    fn can_learn_to_remember_first_input() {
        // Train the LSTM to output (scaled) the first element of a short
        // sequence — checks that gradients flow through time.
        let mut rng = StdRng::seed_from_u64(42);
        let mut cell = LstmCell::new(1, 4, &mut rng);
        let mut head = crate::Linear::new(4, 1, &mut rng);
        let mut adam = crate::Adam::new(0.02);
        let dataset: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let first = (i as f64 / 40.0) - 0.5;
                (vec![first, 0.1, -0.1], first)
            })
            .collect();
        let mut final_loss = f64::MAX;
        // Run to convergence with a hard epoch cap: the exact trajectory
        // depends on the RNG stream behind the initialisation, and this test
        // is about *whether* gradients flow through time, not how fast one
        // seed converges.
        for _ in 0..1200 {
            if final_loss < 4e-3 {
                break;
            }
            let mut epoch_loss = 0.0;
            for (seq, target) in &dataset {
                cell.zero_grad();
                head.zero_grad();
                let mut state = LstmState::zeros(4);
                let mut caches = Vec::new();
                for &x in seq {
                    let (next, cache) = cell.forward_cached(&[x], &state);
                    caches.push(cache);
                    state = next;
                }
                let (y, head_cache) = head.forward_cached(&state.h);
                let (loss, grad_y) = crate::losses::mse(&y, &[*target]);
                epoch_loss += loss;
                let mut grad_h = head.backward(&head_cache, &grad_y);
                let mut grad_c = vec![0.0; 4];
                for cache in caches.iter().rev() {
                    let (_, gh, gc) = cell.backward(cache, &grad_h, &grad_c);
                    grad_h = gh;
                    grad_c = gc;
                }
                let mut params = cell.parameters_mut();
                params.extend(head.parameters_mut());
                adam.step(&mut params);
            }
            final_loss = epoch_loss / dataset.len() as f64;
        }
        assert!(final_loss < 5e-3, "LSTM failed to learn, loss = {final_loss}");
    }
}
