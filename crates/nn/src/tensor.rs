//! Parameter tensors: a flat matrix of weights plus its gradient buffer.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major parameter matrix with an accompanying gradient buffer.
///
/// `Tensor` is deliberately minimal: it exists so that layers can expose their
/// parameters uniformly to the optimisers and to serde for checkpointing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
    #[serde(skip)]
    grad: Vec<f64>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols], grad: vec![0.0; rows * cols] }
    }

    /// Xavier/Glorot-uniform initialisation, the standard choice for the
    /// tanh/sigmoid nonlinearities used by the LSTM policy head.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-limit..limit)).collect();
        Tensor { rows, cols, data, grad: vec![0.0; rows * cols] }
    }

    /// Builds a tensor from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Tensor::from_vec: wrong length");
        let grad = vec![0.0; data.len()];
        Tensor { rows, cols, data, grad }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` for an empty tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Parameter value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Sets the parameter value at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.cols + col] = value;
    }

    /// The flat parameter slice.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the flat parameter slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The flat gradient slice.
    pub fn grad(&self) -> &[f64] {
        &self.grad
    }

    /// Adds `value` to the gradient entry at `(row, col)`.
    pub fn accumulate_grad(&mut self, row: usize, col: usize, value: f64) {
        self.grad[row * self.cols + col] += value;
    }

    /// Resets the gradient buffer to zero (and re-sizes it after
    /// deserialisation, where serde skips it).
    pub fn zero_grad(&mut self) {
        if self.grad.len() != self.data.len() {
            self.grad = vec![0.0; self.data.len()];
        } else {
            self.grad.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Applies `param -= lr * grad` directly (plain SGD update).
    pub fn apply_sgd(&mut self, lr: f64) {
        if self.grad.len() != self.data.len() {
            self.grad = vec![0.0; self.data.len()];
        }
        for (p, g) in self.data.iter_mut().zip(&self.grad) {
            *p -= lr * g;
        }
    }

    /// L2 norm of the gradient, used for gradient clipping.
    pub fn grad_norm_squared(&self) -> f64 {
        self.grad.iter().map(|g| g * g).sum()
    }

    /// Scales the gradient in place (gradient clipping).
    pub fn scale_grad(&mut self, factor: f64) {
        self.grad.iter_mut().for_each(|g| *g *= factor);
    }

    /// Matrix-vector product `W · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into(x, &mut out);
        out
    }

    /// Matrix-vector product `W · x` written into a caller-provided buffer —
    /// the allocation-free fast path used by the inference scratch workspace.
    ///
    /// The inner loop runs four independent accumulators (breaking the f64
    /// addition latency chain that a naive sequential sum is bound by); this
    /// is the one summation order used by *every* matvec in the crate, so
    /// [`Tensor::matvec`] and `matvec_into` are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec_into: dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec_into: wrong output length");
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = dot_unrolled(row, x);
        }
    }

    /// Transposed matrix-vector product `Wᵀ · y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.rows()`.
    pub fn matvec_transposed(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "matvec_transposed: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, yi) in y.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, w) in row.iter().enumerate() {
                out[c] += w * yi;
            }
        }
        out
    }

    /// Accumulates the outer-product gradient `grad += y ⊗ x` (the gradient of
    /// `y = W x` with respect to `W`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn accumulate_outer(&mut self, y_grad: &[f64], x: &[f64]) {
        assert_eq!(y_grad.len(), self.rows, "accumulate_outer: rows mismatch");
        assert_eq!(x.len(), self.cols, "accumulate_outer: cols mismatch");
        if self.grad.len() != self.data.len() {
            self.grad = vec![0.0; self.data.len()];
        }
        for (r, yg) in y_grad.iter().enumerate() {
            let row = &mut self.grad[r * self.cols..(r + 1) * self.cols];
            for (c, xi) in x.iter().enumerate() {
                row[c] += yg * xi;
            }
        }
    }

    /// Writes the column-major (transposed) copy of the parameter matrix into
    /// `out` (`out[col * rows + row] = self[row, col]`), reusing its storage.
    /// Feeds [`matvec_colmajor`], which wants the weights laid out so that
    /// one input element touches a contiguous run of outputs.
    pub fn transposed_data_into(&self, out: &mut Vec<f64>) {
        if out.len() != self.data.len() {
            out.clear();
            out.resize(self.data.len(), 0.0);
        }
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
    }
}

/// Matrix-vector product over a column-major weight copy (produced by
/// [`Tensor::transposed_data_into`]): `out[r] = Σ_k w[r][k] · x[k]`, each
/// output accumulated in ascending `k`.
///
/// Broadcasting one input element across a tile of outputs turns the inner
/// loop into independent vector lanes — no floating-point reassociation is
/// needed for SIMD, and the out-of-order core overlaps the per-output
/// addition chains across tiles. On the LSTM's 192×48 recurrent matvec this
/// runs ~2.5× faster than the row-major kernel. Each output matches the
/// row-major kernels to within rounding (the summation order is the plain
/// sequential one, not the four-accumulator order of
/// [`Tensor::matvec_into`]).
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn matvec_colmajor(w_t: &[f64], rows: usize, cols: usize, x: &[f64], out: &mut [f64]) {
    assert_eq!(w_t.len(), rows * cols, "matvec_colmajor: wrong weight length");
    assert_eq!(x.len(), cols, "matvec_colmajor: dimension mismatch");
    assert_eq!(out.len(), rows, "matvec_colmajor: wrong output length");
    const TILE: usize = 16;
    let mut base = 0;
    while base + TILE <= rows {
        let mut acc = [0.0f64; TILE];
        for (k, &xk) in x.iter().enumerate() {
            let col = &w_t[k * rows + base..k * rows + base + TILE];
            for j in 0..TILE {
                acc[j] += col[j] * xk;
            }
        }
        out[base..base + TILE].copy_from_slice(&acc);
        base += TILE;
    }
    while base < rows {
        let mut acc = 0.0;
        for (k, &xk) in x.iter().enumerate() {
            acc += w_t[k * rows + base] * xk;
        }
        out[base] = acc;
        base += 1;
    }
}

/// Dot product with a four-wide unrolled inner loop (four independent
/// accumulators, combined pairwise, then the tail added sequentially).
fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    for (pa, pb) in (&mut ca).zip(&mut cb) {
        acc[0] += pa[0] * pb[0];
        acc[1] += pa[1] * pb[1];
        acc[2] += pa[2] * pb[2];
        acc[3] += pa[3] * pb[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_initialisation_is_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::xavier(10, 20, &mut rng);
        let limit = (6.0 / 30.0f64).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit));
        assert_eq!(t.len(), 200);
        assert!(!t.is_empty());
    }

    #[test]
    fn matvec_matches_manual() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = t.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
        let back = t.matvec_transposed(&[1.0, 1.0]);
        assert_eq!(back, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matvec_into_is_bit_identical_to_matvec() {
        let mut rng = StdRng::seed_from_u64(17);
        // Odd column count exercises the unrolled loop's tail handling.
        for (rows, cols) in [(3, 5), (7, 8), (1, 1), (4, 13)] {
            let t = Tensor::xavier(rows, cols, &mut rng);
            let x: Vec<f64> = (0..cols).map(|i| (i as f64).sin()).collect();
            let y = t.matvec(&x);
            let mut y_into = vec![f64::NAN; rows];
            t.matvec_into(&x, &mut y_into);
            assert_eq!(y, y_into);
        }
    }

    #[test]
    fn outer_product_accumulation() {
        let mut t = Tensor::zeros(2, 2);
        t.accumulate_outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(t.grad(), &[3.0, 4.0, 6.0, 8.0]);
        t.accumulate_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(t.grad(), &[4.0, 5.0, 6.0, 8.0]);
        t.zero_grad();
        assert!(t.grad().iter().all(|g| *g == 0.0));
    }

    #[test]
    fn sgd_update_moves_against_gradient() {
        let mut t = Tensor::from_vec(1, 1, vec![1.0]);
        t.accumulate_grad(0, 0, 2.0);
        t.apply_sgd(0.1);
        assert!((t.get(0, 0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn gradient_clipping_helpers() {
        let mut t = Tensor::zeros(1, 2);
        t.accumulate_grad(0, 0, 3.0);
        t.accumulate_grad(0, 1, 4.0);
        assert!((t.grad_norm_squared() - 25.0).abs() < 1e-12);
        t.scale_grad(0.5);
        assert_eq!(t.grad(), &[1.5, 2.0]);
    }

    #[test]
    fn serde_roundtrip_restores_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::xavier(3, 4, &mut rng);
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Tensor = serde_json::from_str(&json).unwrap();
        back.zero_grad();
        // JSON text formatting may lose the last ULP of a float; anything
        // tighter than 1e-12 relative is a faithful checkpoint restore.
        for (a, b) in back.data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(back.grad().len(), t.len());
    }

    #[test]
    #[should_panic]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }
}
