//! Multi-layer perceptrons: the output heads of the policy (paper Equation 2,
//! `a_pose, a_gripper = MLP(h_t)`).

use crate::activation::Activation;
use crate::linear::{Linear, LinearCache};
use crate::scratch::InferenceScratch;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network of [`Linear`] layers with a configurable hidden
/// activation; the output layer is always linear (regression heads) so that
/// callers can apply their own output nonlinearity (e.g. sigmoid for the
/// gripper logit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Forward-pass cache of an [`Mlp`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MlpCache {
    layer_caches: Vec<LinearCache>,
    activations: Vec<Vec<f64>>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[64, 128, 7]` builds
    /// `64 → 128 → 7` with one hidden layer.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "an MLP needs at least an input and an output size");
        let layers = sizes.windows(2).map(|w| Linear::new(w[0], w[1], rng)).collect();
        Mlp { layers, activation }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().expect("at least one layer").input_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("at least one layer").output_dim()
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(Linear::num_parameters).sum()
    }

    /// Forward pass (inference).
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let (y, _) = self.forward_cached(x);
        y
    }

    /// Allocation-free forward pass: hidden layers run the fused
    /// affine+activation kernel, ping-ponging between the two scratch
    /// buffers, and the (linear) output layer writes into `out`.
    ///
    /// Bit-identical to [`Mlp::forward`]; `out` is resized in place, so the
    /// call performs zero allocations once the buffers have grown to their
    /// steady-state sizes.
    pub fn forward_into(&self, x: &[f64], scratch: &mut InferenceScratch, out: &mut Vec<f64>) {
        let n = self.layers.len();
        let last = &self.layers[n - 1];
        let ensure = |buf: &mut Vec<f64>, len: usize| {
            if buf.len() != len {
                buf.clear();
                buf.resize(len, 0.0);
            }
        };
        ensure(out, last.output_dim());
        if n == 1 {
            last.forward_into(x, out);
            return;
        }
        let InferenceScratch { mlp_a, mlp_b, .. } = scratch;
        ensure(mlp_a, self.layers[0].output_dim());
        self.layers[0].forward_activated_into(x, self.activation, mlp_a);
        let mut src_is_a = true;
        for layer in &self.layers[1..n - 1] {
            let (src, dst) =
                if src_is_a { (&mut *mlp_a, &mut *mlp_b) } else { (&mut *mlp_b, &mut *mlp_a) };
            ensure(dst, layer.output_dim());
            layer.forward_activated_into(src, self.activation, dst);
            src_is_a = !src_is_a;
        }
        last.forward_into(if src_is_a { mlp_a } else { mlp_b }, out);
    }

    /// Forward pass filling a pooled [`MlpCache`] in place — the training
    /// counterpart of [`Mlp::forward_into`]. Unlike [`Mlp::forward_cached`],
    /// which `to_vec()`s the input of every layer and clones every hidden
    /// activation, all cache buffers are reused across calls. Returns the
    /// network output as a slice into the cache. Bit-identical to
    /// [`Mlp::forward_cached`].
    pub fn forward_cached_reuse<'a>(&self, x: &[f64], cache: &'a mut MlpCache) -> &'a [f64] {
        let n = self.layers.len();
        cache.layer_caches.resize_with(n, LinearCache::default);
        cache.activations.resize_with(n, Vec::new);
        for (i, layer) in self.layers.iter().enumerate() {
            let (prev, cur) = cache.activations.split_at_mut(i);
            let input: &[f64] = if i == 0 { x } else { &prev[i - 1] };
            let y = &mut cur[0];
            y.clear();
            y.resize(layer.output_dim(), 0.0);
            if i + 1 == n {
                layer.forward_into(input, y);
            } else {
                layer.forward_activated_into(input, self.activation, y);
            }
            cache.layer_caches[i].store_input(input);
        }
        &cache.activations[n - 1]
    }

    /// Forward pass returning the cache for [`Mlp::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, MlpCache) {
        let mut layer_caches = Vec::with_capacity(self.layers.len());
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut current = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let (mut y, cache) = layer.forward_cached(&current);
            layer_caches.push(cache);
            let is_last = i + 1 == self.layers.len();
            if !is_last {
                for v in y.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            activations.push(y.clone());
            current = y;
        }
        (current, MlpCache { layer_caches, activations })
    }

    /// Backward pass: accumulates parameter gradients and returns the gradient
    /// with respect to the input.
    pub fn backward(&mut self, cache: &MlpCache, grad_output: &[f64]) -> Vec<f64> {
        let mut grad = grad_output.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let is_last = i + 1 == cache.layer_caches.len();
            if !is_last {
                // Undo the hidden activation.
                let out = &cache.activations[i];
                for (g, y) in grad.iter_mut().zip(out) {
                    *g *= self.activation.derivative_from_output(*y);
                }
            }
            grad = layer.backward(&cache.layer_caches[i], &grad);
        }
        grad
    }

    /// Resets all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Mutable references to every parameter tensor (for optimisers).
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        self.layers.iter_mut().flat_map(Linear::parameters_mut).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses;
    use crate::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_and_parameter_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[8, 16, 3], Activation::Tanh, &mut rng);
        assert_eq!(mlp.input_dim(), 8);
        assert_eq!(mlp.output_dim(), 3);
        assert_eq!(mlp.num_parameters(), (8 * 16 + 16) + (16 * 3 + 3));
    }

    #[test]
    #[should_panic]
    fn too_few_sizes_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Mlp::new(&[4], Activation::Tanh, &mut rng);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut rng);
        let x = [0.2, -0.6, 0.9];
        let target = [0.1, -0.3];
        mlp.zero_grad();
        let (y, cache) = mlp.forward_cached(&x);
        let (_, grad_y) = losses::mse(&y, &target);
        let grad_x = mlp.backward(&cache, &grad_y);

        let eps = 1e-6;
        let loss = |m: &Mlp, xv: &[f64]| {
            let y = m.forward(xv);
            losses::mse(&y, &target).0
        };
        // Input gradient check.
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fd = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * eps);
            assert!((grad_x[i] - fd).abs() < 1e-6, "input grad {i}");
        }
        // Parameter gradient check on the first weight of the first layer.
        let analytic = mlp.layers[0].weight().grad()[0];
        let mut plus = mlp.clone();
        {
            let t = &mut plus.parameters_mut()[0];
            let v = t.data()[0];
            t.data_mut()[0] = v + eps;
        }
        let mut minus = mlp.clone();
        {
            let t = &mut minus.parameters_mut()[0];
            let v = t.data()[0];
            t.data_mut()[0] = v - eps;
        }
        let fd = (loss(&plus, &x) - loss(&minus, &x)) / (2.0 * eps);
        assert!((analytic - fd).abs() < 1e-6);
    }

    #[test]
    fn can_fit_a_nonlinear_function() {
        // y = sin(2x) on [-1, 1].
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[1, 24, 24, 1], Activation::Tanh, &mut rng);
        let mut adam = Adam::new(0.01);
        let data: Vec<(f64, f64)> = (0..64)
            .map(|i| {
                let x = -1.0 + 2.0 * i as f64 / 63.0;
                (x, (2.0 * x).sin())
            })
            .collect();
        let mut last = f64::MAX;
        // Run to convergence with a hard epoch cap: the exact trajectory
        // depends on the RNG stream behind the Xavier init, and this test is
        // about *whether* the MLP can fit, not how fast one seed does.
        for _ in 0..1500 {
            if last < 8e-3 {
                break;
            }
            let mut epoch = 0.0;
            // Mini-batches keep the per-sample Adam updates stable.
            for chunk in data.chunks(8) {
                mlp.zero_grad();
                for &(x, t) in chunk {
                    let (y, cache) = mlp.forward_cached(&[x]);
                    let (l, g) = losses::mse(&y, &[t]);
                    epoch += l;
                    let scaled: Vec<f64> = g.iter().map(|v| v / chunk.len() as f64).collect();
                    mlp.backward(&cache, &scaled);
                }
                adam.step(&mut mlp.parameters_mut());
            }
            last = epoch / data.len() as f64;
        }
        assert!(last < 1e-2, "MLP failed to fit sin(2x): {last}");
    }
}
