//! Fully-connected (affine) layers.

use crate::activation::Activation;
use crate::tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer `y = W x + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Tensor,
    bias: Tensor,
}

/// The forward-pass cache of a [`Linear`] layer (the input), needed by the
/// backward pass.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearCache {
    input: Vec<f64>,
}

impl LinearCache {
    /// Overwrites the cached input, reusing the existing buffer (the pooled
    /// alternative to the `to_vec()` of [`Linear::forward_cached`]).
    pub(crate) fn store_input(&mut self, x: &[f64]) {
        self.input.clear();
        self.input.extend_from_slice(x);
    }
}

impl Linear {
    /// Creates a layer with Xavier-initialised weights and zero bias.
    pub fn new(input_dim: usize, output_dim: usize, rng: &mut impl Rng) -> Self {
        Linear {
            weight: Tensor::xavier(output_dim, input_dim, rng),
            bias: Tensor::zeros(output_dim, 1),
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Total number of trainable parameters.
    pub fn num_parameters(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    /// Forward pass without caching (inference).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimensionality.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.output_dim()];
        self.forward_into(x, &mut y);
        y
    }

    /// Allocation-free forward pass: writes `W x + b` into `out`.
    ///
    /// Bit-identical to [`Linear::forward`] (both run the same kernel).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have the wrong length.
    pub fn forward_into(&self, x: &[f64], out: &mut [f64]) {
        self.weight.matvec_into(x, out);
        for (yi, b) in out.iter_mut().zip(self.bias.data()) {
            *yi += b;
        }
    }

    /// Fused affine + activation: writes `f(W x + b)` into `out` in a single
    /// pass over the output, avoiding the separate activation sweep of the
    /// allocating path.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have the wrong length.
    pub fn forward_activated_into(&self, x: &[f64], activation: Activation, out: &mut [f64]) {
        self.weight.matvec_into(x, out);
        for (yi, b) in out.iter_mut().zip(self.bias.data()) {
            *yi = activation.apply(*yi + b);
        }
    }

    /// Forward pass returning the cache required by [`Linear::backward`].
    pub fn forward_cached(&self, x: &[f64]) -> (Vec<f64>, LinearCache) {
        (self.forward(x), LinearCache { input: x.to_vec() })
    }

    /// Forward pass storing the cache into an existing [`LinearCache`],
    /// reusing both the output and cache buffers (zero allocations once the
    /// buffers have reached their steady-state sizes).
    pub fn forward_cached_reuse(&self, x: &[f64], y: &mut Vec<f64>, cache: &mut LinearCache) {
        y.clear();
        y.resize(self.output_dim(), 0.0);
        self.forward_into(x, y);
        cache.store_input(x);
    }

    /// Backward pass: accumulates parameter gradients and returns the gradient
    /// with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if `grad_output.len()` differs from the output dimensionality.
    pub fn backward(&mut self, cache: &LinearCache, grad_output: &[f64]) -> Vec<f64> {
        assert_eq!(grad_output.len(), self.output_dim(), "Linear::backward: wrong gradient length");
        self.weight.accumulate_outer(grad_output, &cache.input);
        for (i, g) in grad_output.iter().enumerate() {
            self.bias.accumulate_grad(i, 0, *g);
        }
        self.weight.matvec_transposed(grad_output)
    }

    /// Resets the gradients of both parameter tensors.
    pub fn zero_grad(&mut self) {
        self.weight.zero_grad();
        self.bias.zero_grad();
    }

    /// Mutable references to the layer's parameter tensors (for optimisers).
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Immutable access to the weight tensor.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Immutable access to the bias tensor.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::losses;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(2, 2, &mut rng);
        // Overwrite with known weights.
        for p in layer.parameters_mut() {
            for v in p.data_mut() {
                *v = 0.0;
            }
        }
        layer.weight_mut_for_tests(|w| {
            w.set(0, 0, 1.0);
            w.set(0, 1, 2.0);
            w.set(1, 0, -1.0);
            w.set(1, 1, 0.5);
        });
        let y = layer.forward(&[1.0, 2.0]);
        assert_eq!(y, vec![5.0, 0.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = [0.3, -0.8, 0.5];
        let target = [0.2, -0.4];

        layer.zero_grad();
        let (y, cache) = layer.forward_cached(&x);
        let (_, grad) = losses::mse(&y, &target);
        let grad_x = layer.backward(&cache, &grad);

        // Finite-difference check of dLoss/dW[0][1] and dLoss/dx[2].
        let eps = 1e-6;
        let loss_at = |l: &Linear, xv: &[f64]| {
            let (y, _) = l.forward_cached(xv);
            losses::mse(&y, &target).0
        };
        let mut perturbed = layer.clone();
        let orig = perturbed.weight().get(0, 1);
        perturbed.weight_mut_for_tests(|w| w.set(0, 1, orig + eps));
        let up = loss_at(&perturbed, &x);
        perturbed.weight_mut_for_tests(|w| w.set(0, 1, orig - eps));
        let down = loss_at(&perturbed, &x);
        let fd = (up - down) / (2.0 * eps);
        assert!((layer.weight().grad()[1] - fd).abs() < 1e-6);

        let mut x_up = x;
        x_up[2] += eps;
        let mut x_down = x;
        x_down[2] -= eps;
        let fd_x = (loss_at(&layer, &x_up) - loss_at(&layer, &x_down)) / (2.0 * eps);
        assert!((grad_x[2] - fd_x).abs() < 1e-6);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(10, 4, &mut rng);
        assert_eq!(layer.num_parameters(), 44);
        assert_eq!(layer.input_dim(), 10);
        assert_eq!(layer.output_dim(), 4);
    }

    impl Linear {
        /// Test-only helper to edit weights in place.
        fn weight_mut_for_tests(&mut self, f: impl FnOnce(&mut Tensor)) {
            f(&mut self.weight);
        }
    }
}
