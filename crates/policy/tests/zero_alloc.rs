//! Proof that a steady-state control step performs **zero heap
//! allocations**: a counting global allocator wraps the system allocator,
//! the policies are warmed until every scratch buffer has reached its
//! high-water mark, and then a burst of plans must leave the allocation
//! counter untouched.

use corki_math::Vec3;
use corki_policy::{
    BaselineFramePolicy, CorkiTrajectoryPolicy, ManipulationPolicy, Observation, PlanRequest,
};
use corki_trajectory::{EePose, GripperState, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn observation() -> Observation {
    Observation {
        end_effector: EePose::new(Vec3::new(0.35, 0.0, 0.3), Vec3::ZERO, GripperState::Open),
        object_position: Vec3::new(0.45, -0.1, 0.02),
        goal_position: Vec3::new(0.5, 0.1, 0.02),
        ..Observation::default()
    }
}

#[test]
fn steady_state_baseline_plan_performs_zero_allocations() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut policy = BaselineFramePolicy::new(&mut rng);
    let request = PlanRequest::from_observation(observation());
    // Warm-up: fill the token window and grow every scratch buffer.
    for _ in 0..32 {
        let _ = policy.plan(&request);
    }
    let before = allocation_count();
    for _ in 0..64 {
        let _ = policy.plan(&request);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "baseline steady-state control step must not touch the allocator"
    );
}

#[test]
fn steady_state_corki_plan_into_performs_zero_allocations() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut policy = CorkiTrajectoryPolicy::new(9, &mut rng);
    let mut request = PlanRequest::from_observation(observation());
    // The Corki steady state: nine control steps executed per plan, so every
    // plan also inserts eight mask embeddings.
    request.steps_since_last_plan = 9;
    let mut out = Trajectory::hold(&request.observation.end_effector, 1);
    for _ in 0..32 {
        policy.plan_into(&request, &mut out);
    }
    let before = allocation_count();
    for _ in 0..64 {
        policy.plan_into(&request, &mut out);
    }
    let after = allocation_count();
    assert_eq!(after - before, 0, "Corki steady-state control step must not touch the allocator");
}
