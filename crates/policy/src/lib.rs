//! The embodied-AI policy layer of the DaDu-Corki reproduction.
//!
//! The paper builds on RoboFlamingo: a frozen vision-language model (VLM)
//! produces vision-language tokens which an LSTM *policy head* turns into
//! robot actions.  Corki changes only the head: instead of one 7-DoF action
//! per frame it predicts a near-future *trajectory* (paper §3).
//!
//! Because a 3-billion-parameter VLM is outside the scope of a pure-Rust
//! reproduction, this crate provides two interchangeable front-ends behind
//! the same [`ManipulationPolicy`] trait (see DESIGN.md, substitution table):
//!
//! * **Learned policies** ([`BaselineFramePolicy`], [`CorkiTrajectoryPolicy`])
//!   — a surrogate token encoder over the simulator's scene state feeding a
//!   real LSTM + MLP policy head (via `corki-nn`), trained on expert
//!   demonstrations with exactly the losses of Equations 3 and 5 (MSE on
//!   pose/trajectory, BCE on the gripper, mask embeddings for dropped
//!   frames).
//! * **Oracle policies** ([`OracleFramePolicy`], [`OracleTrajectoryPolicy`])
//!   — a mechanistic error model around the expert trajectory whose noise
//!   grows with the prediction horizon, used for the large evaluation sweeps
//!   (Tables 1/2, Figures 11-14) where the trends of interest come from the
//!   *execution model* (how often the robot re-observes, how long it runs
//!   open loop), not from the particular network weights.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod corki;
mod encoder;
mod observation;
mod oracle;
mod scratch;
pub mod training;

pub use baseline::BaselineFramePolicy;
pub use corki::CorkiTrajectoryPolicy;
pub use encoder::{CloseLoopEncoder, TokenEncoder, TOKEN_DIM};
pub use observation::{Observation, TaskDescriptor, OBSERVATION_DIM};
pub use oracle::{NoiseModel, OracleFramePolicy, OracleTrajectoryPolicy};

use corki_trajectory::{DeltaAction, EePose, Trajectory};
use serde::{Deserialize, Serialize};

/// The length of the token window kept by the policy head (RoboFlamingo keeps
/// the last 12 vision-language tokens).
pub const TOKEN_WINDOW: usize = 12;

/// What a policy produces when asked to plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyPlan {
    /// One discrete action for the next frame (baseline execution model).
    SingleStep(DeltaAction),
    /// A continuous trajectory for up to N future steps (Corki).
    Trajectory(Trajectory),
}

impl PolicyPlan {
    /// The number of control steps this plan covers.
    pub fn horizon(&self) -> usize {
        match self {
            PolicyPlan::SingleStep(_) => 1,
            PolicyPlan::Trajectory(t) => t.num_steps(),
        }
    }
}

/// Everything a policy may look at when planning: the current observation and
/// (for oracle policies and teacher-forced training) the expert's future
/// waypoints.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Current scene observation.
    pub observation: Observation,
    /// The expert's future waypoints starting one control step ahead.
    /// Learned policies ignore this; oracle policies corrupt it with their
    /// noise model. Empty when no expert data is available.
    pub expert_future: Vec<EePose>,
    /// Mid-trajectory close-loop feature observations (paper §3.4), if any.
    pub close_loop_observations: Vec<Observation>,
    /// How many control steps were executed since the previous plan. The
    /// Corki policy inserts this many mask embeddings (minus the freshly
    /// captured frame) into its token window, mirroring the masked policy
    /// head of Fig. 4.
    pub steps_since_last_plan: usize,
}

impl PlanRequest {
    /// A request carrying only an observation (one step since the last plan).
    pub fn from_observation(observation: Observation) -> Self {
        PlanRequest {
            observation,
            expert_future: Vec::new(),
            close_loop_observations: Vec::new(),
            steps_since_last_plan: 1,
        }
    }
}

/// Which execution model a policy drives (used by the system-pipeline crate to
/// pick the latency model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Frame-by-frame action prediction (RoboFlamingo baseline).
    FramePrediction,
    /// Near-future trajectory prediction (Corki).
    TrajectoryPrediction,
}

/// A manipulation policy: given observations, produce either the next action
/// or a near-future trajectory.
pub trait ManipulationPolicy {
    /// Produces a plan for the current situation.
    fn plan(&mut self, request: &PlanRequest) -> PolicyPlan;

    /// Clears any internal state (token window, LSTM hidden state) at the
    /// start of a new episode.
    fn reset(&mut self);

    /// Re-binds the policy to a new deterministic noise/sampling stream and
    /// clears its state — the session seeding hook used by fleet and
    /// parallel-evaluation runs to reuse one policy instance across
    /// robots/jobs without correlating their randomness.  Policies without
    /// internal randomness (the learned heads) just reset.
    fn reseed(&mut self, _seed: u64) {
        self.reset();
    }

    /// The execution model this policy belongs to.
    fn kind(&self) -> PolicyKind;

    /// Human-readable policy name (used in result tables).
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;
    use corki_math::Vec3;
    use corki_trajectory::GripperState;

    #[test]
    fn plan_horizon_matches_contents() {
        let single = PolicyPlan::SingleStep(DeltaAction::zero());
        assert_eq!(single.horizon(), 1);
        let start = EePose::new(Vec3::new(0.3, 0.0, 0.3), Vec3::ZERO, GripperState::Open);
        let end = EePose::new(Vec3::new(0.4, 0.0, 0.3), Vec3::ZERO, GripperState::Open);
        let traj =
            Trajectory::point_to_point(&start, &end, 5, corki_trajectory::CONTROL_STEP).unwrap();
        assert_eq!(PolicyPlan::Trajectory(traj).horizon(), 5);
    }

    #[test]
    fn plan_request_from_observation_is_minimal() {
        let obs = Observation::default();
        let req = PlanRequest::from_observation(obs);
        assert!(req.expert_future.is_empty());
        assert!(req.close_loop_observations.is_empty());
    }
}
