//! The scene observation fed to the policy in place of camera frames.
//!
//! The real RoboFlamingo consumes RGB images; our surrogate front-end consumes
//! a compact state-based observation of the same information content (robot
//! end-effector pose, the manipulated object, the goal, and the language
//! instruction identity). See DESIGN.md for the substitution rationale.

use corki_math::Vec3;
use corki_trajectory::{EePose, GripperState};
use serde::{Deserialize, Serialize};

/// Dimensionality of the flattened observation feature vector.
pub const OBSERVATION_DIM: usize = 25;

/// A compact description of the task the language instruction names, used in
/// place of the instruction text.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskDescriptor {
    /// Index of the task template (0..33 for the 34 CALVIN-style tasks).
    pub task_id: usize,
    /// Index of the task category (0..4: move, switch, drawer, rotate, lift).
    pub category_id: usize,
    /// Whether the episode comes from the unseen split (different scene
    /// arrangement from training).
    pub unseen: bool,
}

/// One observation of the scene — the surrogate for a camera frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Observation {
    /// Current end-effector pose and gripper state.
    pub end_effector: EePose,
    /// Position of the object the instruction refers to.
    pub object_position: Vec3,
    /// Orientation (yaw) of the object, radians.
    pub object_yaw: f64,
    /// The goal position the object (or end-effector) should reach.
    pub goal_position: Vec3,
    /// A scalar describing articulated-scene state (drawer extension, switch
    /// angle, slider position), normalised to `[0, 1]`.
    pub articulation_state: f64,
    /// Whether the object is currently grasped.
    pub object_grasped: bool,
    /// Task identity (stands in for the language instruction).
    pub task: TaskDescriptor,
}

impl Observation {
    /// Flattens the observation into the fixed-size feature vector consumed by
    /// the token encoder.
    pub fn to_features(&self) -> [f64; OBSERVATION_DIM] {
        let ee = self.end_effector.to_array6();
        let mut f = [0.0; OBSERVATION_DIM];
        f[..6].copy_from_slice(&ee);
        f[6] = match self.end_effector.gripper {
            GripperState::Open => 0.0,
            GripperState::Closed => 1.0,
        };
        f[7] = self.object_position.x;
        f[8] = self.object_position.y;
        f[9] = self.object_position.z;
        f[10] = self.object_yaw.sin();
        f[11] = self.object_yaw.cos();
        f[12] = self.goal_position.x;
        f[13] = self.goal_position.y;
        f[14] = self.goal_position.z;
        f[15] = self.articulation_state;
        f[16] = if self.object_grasped { 1.0 } else { 0.0 };
        // Relative vectors help small networks generalise.
        f[17] = self.object_position.x - self.end_effector.position.x;
        f[18] = self.object_position.y - self.end_effector.position.y;
        f[19] = self.object_position.z - self.end_effector.position.z;
        // Task-category one-hot (5 categories, indices 20..=24).
        let cat = self.task.category_id.min(4);
        f[20 + cat] = 1.0;
        f
    }

    /// The instruction-embedding scalar used by the token encoder (a stable
    /// hash of the task id mapped to `[-1, 1]`).
    pub fn instruction_embedding(&self) -> f64 {
        let h = (self.task.task_id as u64).wrapping_mul(2654435761) % 1000;
        (h as f64 / 500.0) - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_has_fixed_length_and_layout() {
        let mut obs = Observation {
            end_effector: EePose::new(
                Vec3::new(0.4, -0.1, 0.3),
                Vec3::new(0.0, 0.1, 0.2),
                GripperState::Closed,
            ),
            object_position: Vec3::new(0.5, 0.2, 0.05),
            goal_position: Vec3::new(0.1, 0.3, 0.05),
            object_grasped: true,
            ..Observation::default()
        };
        obs.task.category_id = 2;
        let f = obs.to_features();
        assert_eq!(f.len(), OBSERVATION_DIM);
        assert_eq!(f[0], 0.4);
        assert_eq!(f[6], 1.0); // gripper closed
        assert_eq!(f[16], 1.0); // grasped
        assert!((f[17] - 0.1).abs() < 1e-12); // relative x
        assert_eq!(f[22], 1.0); // category one-hot
    }

    #[test]
    fn category_one_hot_stays_in_bounds() {
        for cat in 0..=6 {
            let mut obs = Observation::default();
            obs.task.category_id = cat;
            let f = obs.to_features();
            let hot: usize = (20..OBSERVATION_DIM).filter(|&i| f[i] == 1.0).count();
            assert_eq!(hot, 1, "category {cat}");
        }
    }

    #[test]
    fn instruction_embedding_is_deterministic_and_bounded() {
        let mut a = Observation::default();
        a.task.task_id = 7;
        let mut b = Observation::default();
        b.task.task_id = 7;
        assert_eq!(a.instruction_embedding(), b.instruction_embedding());
        for id in 0..34 {
            let mut o = Observation::default();
            o.task.task_id = id;
            let e = o.instruction_embedding();
            assert!((-1.0..=1.0).contains(&e));
        }
    }
}
