//! The RoboFlamingo-style baseline: one 7-DoF delta action per frame,
//! produced by an LSTM policy head over the last 12 vision-language tokens
//! (paper §3.1, Fig. 3).

use crate::encoder::{TokenEncoder, TOKEN_DIM};
use crate::{ManipulationPolicy, PlanRequest, PolicyKind, PolicyPlan, TOKEN_WINDOW};
use corki_nn::{Activation, LstmCell, LstmState, Mlp, Tensor};
use corki_trajectory::{DeltaAction, GripperState};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Hidden size of the LSTM policy head.
pub(crate) const HIDDEN_DIM: usize = 48;

/// The frame-by-frame baseline policy (RoboFlamingo execution model).
///
/// At every camera frame the policy encodes the observation into a token,
/// appends it to a window of the last [`TOKEN_WINDOW`] tokens, runs the LSTM
/// over the window and maps the final hidden state through two MLP heads to
/// the pose delta and the gripper logit (Equation 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineFramePolicy {
    pub(crate) encoder: TokenEncoder,
    pub(crate) lstm: LstmCell,
    pub(crate) pose_head: Mlp,
    pub(crate) gripper_head: Mlp,
    /// Scale applied to the raw pose-head output to turn it into metres /
    /// radians per step (keeps network outputs in a well-conditioned range).
    pub(crate) action_scale: f64,
    #[serde(skip)]
    token_window: VecDeque<Vec<f64>>,
}

impl BaselineFramePolicy {
    /// Creates a randomly-initialised baseline policy.
    pub fn new(rng: &mut impl Rng) -> Self {
        BaselineFramePolicy {
            encoder: TokenEncoder::new(rng),
            lstm: LstmCell::new(TOKEN_DIM, HIDDEN_DIM, rng),
            pose_head: Mlp::new(&[HIDDEN_DIM, 64, 6], Activation::Tanh, rng),
            gripper_head: Mlp::new(&[HIDDEN_DIM, 32, 1], Activation::Tanh, rng),
            action_scale: 0.02,
            token_window: VecDeque::new(),
        }
    }

    /// Total number of trainable parameters (policy head only; the encoder is
    /// frozen, mirroring the frozen VLM).
    pub fn num_trainable_parameters(&self) -> usize {
        self.lstm.num_parameters()
            + self.pose_head.num_parameters()
            + self.gripper_head.num_parameters()
    }

    /// Pushes a token, evicting the oldest when the window is full (the
    /// paper's queue of length 12).
    pub(crate) fn push_token(&mut self, token: Vec<f64>) {
        if self.token_window.len() == TOKEN_WINDOW {
            self.token_window.pop_front();
        }
        self.token_window.push_back(token);
    }

    /// Runs the LSTM over the current token window, returning the final
    /// hidden state.
    pub(crate) fn run_window(&self) -> Vec<f64> {
        let mut state = LstmState::zeros(HIDDEN_DIM);
        for token in &self.token_window {
            state = self.lstm.forward(token, &state);
        }
        state.h
    }

    /// Maps a hidden state to the raw 7-dimensional output
    /// `[Δx..Δγ, gripper_logit]`.
    pub(crate) fn decode(&self, hidden: &[f64]) -> ([f64; 6], f64) {
        let pose = self.pose_head.forward(hidden);
        let grip = self.gripper_head.forward(hidden);
        let mut out = [0.0; 6];
        for (o, p) in out.iter_mut().zip(&pose) {
            *o = p * self.action_scale;
        }
        (out, grip[0])
    }

    /// Mutable parameter tensors of the trainable head.
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.lstm.parameters_mut();
        p.extend(self.pose_head.parameters_mut());
        p.extend(self.gripper_head.parameters_mut());
        p
    }

    /// Clears accumulated gradients on all trainable tensors.
    pub fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.pose_head.zero_grad();
        self.gripper_head.zero_grad();
    }

    /// Current number of tokens in the window (for tests).
    pub fn window_len(&self) -> usize {
        self.token_window.len()
    }
}

impl ManipulationPolicy for BaselineFramePolicy {
    fn plan(&mut self, request: &PlanRequest) -> PolicyPlan {
        let token = self.encoder.encode(&request.observation);
        self.push_token(token);
        let hidden = self.run_window();
        let (pose, gripper_logit) = self.decode(&hidden);
        let gripper = if corki_nn::Activation::Sigmoid.apply(gripper_logit) >= 0.5 {
            GripperState::Closed
        } else {
            GripperState::Open
        };
        PolicyPlan::SingleStep(DeltaAction::from_array7([
            pose[0],
            pose[1],
            pose[2],
            pose[3],
            pose[4],
            pose[5],
            gripper.to_target(),
        ]))
    }

    fn reset(&mut self) {
        self.token_window.clear();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::FramePrediction
    }

    fn name(&self) -> String {
        "RoboFlamingo".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_produces_single_step_actions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        let request = PlanRequest::from_observation(Observation::default());
        let plan = policy.plan(&request);
        match plan {
            PolicyPlan::SingleStep(action) => {
                assert!(action.position_norm() < 0.1, "untrained action should be small");
            }
            PolicyPlan::Trajectory(_) => panic!("baseline must predict single steps"),
        }
        assert_eq!(policy.kind(), PolicyKind::FramePrediction);
        assert_eq!(policy.name(), "RoboFlamingo");
    }

    #[test]
    fn token_window_is_bounded_and_reset_clears_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        let request = PlanRequest::from_observation(Observation::default());
        for _ in 0..20 {
            let _ = policy.plan(&request);
        }
        assert_eq!(policy.window_len(), TOKEN_WINDOW);
        policy.reset();
        assert_eq!(policy.window_len(), 0);
    }

    #[test]
    fn outputs_are_bounded_by_action_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        policy.action_scale = 0.02;
        let mut obs = Observation::default();
        obs.object_position.x = 5.0; // extreme input
        let plan = policy.plan(&PlanRequest::from_observation(obs));
        if let PolicyPlan::SingleStep(action) = plan {
            // tanh MLP hidden layers do not bound the linear output layer, but
            // the scale keeps actions in a plausible per-frame range.
            assert!(action.position_norm() < 0.5);
        }
    }

    #[test]
    fn parameter_count_is_positive_and_stable() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy = BaselineFramePolicy::new(&mut rng);
        let n = policy.num_trainable_parameters();
        assert!(n > 10_000, "policy head unexpectedly small: {n}");
    }
}
