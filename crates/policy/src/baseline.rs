//! The RoboFlamingo-style baseline: one 7-DoF delta action per frame,
//! produced by an LSTM policy head over the last 12 vision-language tokens
//! (paper §3.1, Fig. 3).

use crate::encoder::{TokenEncoder, TOKEN_DIM};
use crate::scratch::{recycled_slot, run_window_premixed, PolicyScratch, WindowSlot};
use crate::{ManipulationPolicy, PlanRequest, PolicyKind, PolicyPlan};
use corki_nn::{Activation, LstmCell, Mlp, Tensor};
use corki_trajectory::{DeltaAction, GripperState};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Hidden size of the LSTM policy head.
pub(crate) const HIDDEN_DIM: usize = 48;

/// The frame-by-frame baseline policy (RoboFlamingo execution model).
///
/// At every camera frame the policy encodes the observation into a token,
/// appends it to a window of the last [`crate::TOKEN_WINDOW`] tokens, runs the LSTM
/// over the window and maps the final hidden state through two MLP heads to
/// the pose delta and the gripper logit (Equation 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineFramePolicy {
    pub(crate) encoder: TokenEncoder,
    pub(crate) lstm: LstmCell,
    pub(crate) pose_head: Mlp,
    pub(crate) gripper_head: Mlp,
    /// Scale applied to the raw pose-head output to turn it into metres /
    /// radians per step (keeps network outputs in a well-conditioned range).
    pub(crate) action_scale: f64,
    #[serde(skip)]
    window: VecDeque<WindowSlot>,
    /// Set by [`BaselineFramePolicy::parameters_mut`]: the cached window
    /// projections were computed with weights that may since have changed.
    #[serde(skip)]
    projections_stale: bool,
    #[serde(skip)]
    scratch: PolicyScratch,
}

impl BaselineFramePolicy {
    /// Creates a randomly-initialised baseline policy.
    pub fn new(rng: &mut impl Rng) -> Self {
        BaselineFramePolicy {
            encoder: TokenEncoder::new(rng),
            lstm: LstmCell::new(TOKEN_DIM, HIDDEN_DIM, rng),
            pose_head: Mlp::new(&[HIDDEN_DIM, 64, 6], Activation::Tanh, rng),
            gripper_head: Mlp::new(&[HIDDEN_DIM, 32, 1], Activation::Tanh, rng),
            action_scale: 0.02,
            window: VecDeque::new(),
            projections_stale: false,
            scratch: PolicyScratch::default(),
        }
    }

    /// Refreshes the cached per-slot input projections and the transposed
    /// recurrent weights if training touched the weights since they were
    /// computed.
    fn refresh_projections(&mut self) {
        if self.projections_stale {
            for slot in &mut self.window {
                self.lstm.input_projection_into(&slot.token, &mut slot.projection);
            }
            self.lstm.recurrent_transposed_into(&mut self.scratch.w_hh_t);
            self.projections_stale = false;
        } else if self.scratch.w_hh_t.len() != 4 * HIDDEN_DIM * HIDDEN_DIM {
            self.lstm.recurrent_transposed_into(&mut self.scratch.w_hh_t);
        }
    }

    /// Total number of trainable parameters (policy head only; the encoder is
    /// frozen, mirroring the frozen VLM).
    pub fn num_trainable_parameters(&self) -> usize {
        self.lstm.num_parameters()
            + self.pose_head.num_parameters()
            + self.gripper_head.num_parameters()
    }

    /// Mutable parameter tensors of the trainable head. Marks the cached
    /// window projections stale, since the caller may update the weights.
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        self.projections_stale = true;
        let mut p = self.lstm.parameters_mut();
        p.extend(self.pose_head.parameters_mut());
        p.extend(self.gripper_head.parameters_mut());
        p
    }

    /// Clears accumulated gradients on all trainable tensors.
    pub fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.pose_head.zero_grad();
        self.gripper_head.zero_grad();
    }

    /// Current number of tokens in the window (for tests).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

impl ManipulationPolicy for BaselineFramePolicy {
    fn plan(&mut self, request: &PlanRequest) -> PolicyPlan {
        // Zero-allocation fast path: every intermediate lives in the scratch
        // workspace; the returned action is plain stack data. The freshly
        // encoded token is projected once at push time, older slots keep
        // their cached projections, and the window rollout runs through the
        // transposed recurrent kernel.
        self.encoder.encode_into(
            &request.observation,
            &mut self.scratch.nn,
            &mut self.scratch.token,
        );
        self.lstm.input_projection_into(&self.scratch.token, &mut self.scratch.token_pre);
        let slot = recycled_slot(&mut self.window, false);
        slot.token.extend_from_slice(&self.scratch.token);
        slot.projection.extend_from_slice(&self.scratch.token_pre);
        self.refresh_projections();
        run_window_premixed(&self.lstm, HIDDEN_DIM, &self.window, &mut self.scratch);
        self.pose_head.forward_into(
            &self.scratch.state.h,
            &mut self.scratch.nn,
            &mut self.scratch.raw,
        );
        self.gripper_head.forward_into(
            &self.scratch.state.h,
            &mut self.scratch.nn,
            &mut self.scratch.logits,
        );
        let mut pose = [0.0; 6];
        for (o, p) in pose.iter_mut().zip(&self.scratch.raw) {
            *o = p * self.action_scale;
        }
        let gripper = if Activation::Sigmoid.apply(self.scratch.logits[0]) >= 0.5 {
            GripperState::Closed
        } else {
            GripperState::Open
        };
        PolicyPlan::SingleStep(DeltaAction::from_array7([
            pose[0],
            pose[1],
            pose[2],
            pose[3],
            pose[4],
            pose[5],
            gripper.to_target(),
        ]))
    }

    fn reset(&mut self) {
        self.window.clear();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::FramePrediction
    }

    fn name(&self) -> String {
        "RoboFlamingo".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Observation, TOKEN_WINDOW};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plan_produces_single_step_actions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        let request = PlanRequest::from_observation(Observation::default());
        let plan = policy.plan(&request);
        match plan {
            PolicyPlan::SingleStep(action) => {
                assert!(action.position_norm() < 0.1, "untrained action should be small");
            }
            PolicyPlan::Trajectory(_) => panic!("baseline must predict single steps"),
        }
        assert_eq!(policy.kind(), PolicyKind::FramePrediction);
        assert_eq!(policy.name(), "RoboFlamingo");
    }

    #[test]
    fn token_window_is_bounded_and_reset_clears_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        let request = PlanRequest::from_observation(Observation::default());
        for _ in 0..20 {
            let _ = policy.plan(&request);
        }
        assert_eq!(policy.window_len(), TOKEN_WINDOW);
        policy.reset();
        assert_eq!(policy.window_len(), 0);
    }

    #[test]
    fn outputs_are_bounded_by_action_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        policy.action_scale = 0.02;
        let mut obs = Observation::default();
        obs.object_position.x = 5.0; // extreme input
        let plan = policy.plan(&PlanRequest::from_observation(obs));
        if let PolicyPlan::SingleStep(action) = plan {
            // tanh MLP hidden layers do not bound the linear output layer, but
            // the scale keeps actions in a plausible per-frame range.
            assert!(action.position_norm() < 0.5);
        }
    }

    #[test]
    fn parameter_count_is_positive_and_stable() {
        let mut rng = StdRng::seed_from_u64(3);
        let policy = BaselineFramePolicy::new(&mut rng);
        let n = policy.num_trainable_parameters();
        assert!(n > 10_000, "policy head unexpectedly small: {n}");
    }
}
