//! Training loops for the learned policy heads (paper §3.1/§3.2).
//!
//! Both heads are trained by imitation on expert demonstrations produced by
//! `corki-sim`:
//!
//! * the **baseline** head is supervised per frame with the next-step delta
//!   action (MSE) and gripper command (BCE) — Equation 3;
//! * the **Corki** head is supervised with the next `horizon` trajectory
//!   waypoints (MSE directly on the trajectory, not on the cubic
//!   coefficients) and the gripper schedule — Equation 5.  Frames that would
//!   not be captured at deployment time are replaced with the mask embedding
//!   during training, mirroring Fig. 4.

use crate::baseline::{BaselineFramePolicy, HIDDEN_DIM};
use crate::corki::CorkiTrajectoryPolicy;
use crate::observation::Observation;
use crate::TOKEN_WINDOW;
use corki_nn::{losses, Adam, InferenceScratch, LstmCache, LstmState, MlpCache};
use corki_trajectory::EePose;
use serde::{Deserialize, Serialize};

/// Pooled forward-pass buffers shared by the training loops: LSTM caches (one
/// per window position), MLP head caches, the state double-buffer and the
/// layer scratch. Everything is allocated once and reused by every training
/// step, removing the per-step `to_vec()`/clone churn of the plain
/// `forward_cached` paths.
#[derive(Debug, Default)]
struct TrainingPool {
    scratch: InferenceScratch,
    lstm_caches: Vec<LstmCache>,
    state: LstmState,
    state_next: LstmState,
}

impl TrainingPool {
    /// Resets the state double-buffer and returns the cache pool grown to
    /// `window` entries.
    fn prepare(&mut self, hidden_dim: usize, window: usize) {
        if self.lstm_caches.len() < window {
            self.lstm_caches.resize_with(window, LstmCache::default);
        }
        for state in [&mut self.state, &mut self.state_next] {
            state.h.clear();
            state.h.resize(hidden_dim, 0.0);
            state.c.clear();
            state.c.resize(hidden_dim, 0.0);
        }
    }
}

/// One expert demonstration: aligned sequences of observations and the
/// corresponding end-effector waypoints (both sampled at the camera rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Demonstration {
    /// Scene observation at every time step.
    pub observations: Vec<Observation>,
    /// Ground-truth end-effector pose at every time step.
    pub waypoints: Vec<EePose>,
}

impl Demonstration {
    /// Creates a demonstration, validating that the two sequences align.
    ///
    /// # Panics
    ///
    /// Panics if the sequences have different lengths or fewer than two
    /// samples.
    pub fn new(observations: Vec<Observation>, waypoints: Vec<EePose>) -> Self {
        assert_eq!(observations.len(), waypoints.len(), "demonstration sequences must align");
        assert!(observations.len() >= 2, "a demonstration needs at least two steps");
        Demonstration { observations, waypoints }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Returns `true` for an empty demonstration (never constructed by
    /// [`Demonstration::new`]).
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }
}

/// Hyper-parameters shared by both training loops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingConfig {
    /// Number of passes over the demonstration set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight λ of the gripper BCE term (Equation 3).
    pub lambda_gripper: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig { epochs: 10, learning_rate: 1e-3, lambda_gripper: 0.2 }
    }
}

/// Trains the baseline per-frame policy, returning the mean loss per epoch.
pub fn train_baseline(
    policy: &mut BaselineFramePolicy,
    demonstrations: &[Demonstration],
    config: &TrainingConfig,
) -> Vec<f64> {
    let mut adam = Adam::new(config.learning_rate);
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    // Pre-encode tokens once: the encoder stands in for the frozen VLM.
    let token_sets: Vec<Vec<Vec<f64>>> = demonstrations
        .iter()
        .map(|demo| demo.observations.iter().map(|o| policy.encoder.encode(o)).collect())
        .collect();

    let mut pool = TrainingPool::default();
    let mut pose_cache = MlpCache::default();
    let mut grip_cache = MlpCache::default();

    for _ in 0..config.epochs {
        let mut total = 0.0;
        let mut count = 0usize;
        for (demo, tokens) in demonstrations.iter().zip(&token_sets) {
            for t in 0..demo.len() - 1 {
                policy.zero_grad();
                let start = t.saturating_sub(TOKEN_WINDOW - 1);
                let window = &tokens[start..=t];

                // Forward through the LSTM with pooled caches for BPTT.
                pool.prepare(HIDDEN_DIM, window.len());
                for (token, cache) in window.iter().zip(&mut pool.lstm_caches) {
                    policy.lstm.forward_cached_reuse(
                        token,
                        &pool.state,
                        &mut pool.state_next,
                        cache,
                        &mut pool.scratch,
                    );
                    std::mem::swap(&mut pool.state, &mut pool.state_next);
                }
                let predicted_delta: Vec<f64> = policy
                    .pose_head
                    .forward_cached_reuse(&pool.state.h, &mut pose_cache)
                    .iter()
                    .map(|r| r * policy.action_scale)
                    .collect();
                let grip_logit =
                    policy.gripper_head.forward_cached_reuse(&pool.state.h, &mut grip_cache)[0];

                // Targets (Equation 3).
                let current = demo.waypoints[t].to_array6();
                let next = demo.waypoints[t + 1].to_array6();
                let target_delta: Vec<f64> = next.iter().zip(current).map(|(n, c)| n - c).collect();
                let (pose_loss, pose_grad_scaled) = losses::mse(&predicted_delta, &target_delta);
                let (grip_loss, grip_grad) =
                    losses::bce_with_logits(grip_logit, demo.waypoints[t + 1].gripper.to_target());
                total += pose_loss + config.lambda_gripper * grip_loss;
                count += 1;

                // Backward: heads, then BPTT through the window.
                let pose_grad_raw: Vec<f64> =
                    pose_grad_scaled.iter().map(|g| g * policy.action_scale).collect();
                let grad_hidden_pose = policy.pose_head.backward(&pose_cache, &pose_grad_raw);
                let grad_hidden_grip =
                    policy.gripper_head.backward(&grip_cache, &[config.lambda_gripper * grip_grad]);
                let mut grad_h: Vec<f64> =
                    grad_hidden_pose.iter().zip(&grad_hidden_grip).map(|(a, b)| a + b).collect();
                let mut grad_c = vec![0.0; HIDDEN_DIM];
                for cache in pool.lstm_caches[..window.len()].iter().rev() {
                    let (_, gh, gc) = policy.lstm.backward(cache, &grad_h, &grad_c);
                    grad_h = gh;
                    grad_c = gc;
                }
                adam.step(&mut policy.parameters_mut());
            }
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f64 });
    }
    epoch_losses
}

/// Trains the Corki trajectory policy, returning the mean loss per epoch.
///
/// Frames that would not be captured at deployment (because the robot runs a
/// trajectory of `horizon` steps open loop) are replaced by the mask
/// embedding inside the training window, exactly as in Fig. 4.
pub fn train_corki(
    policy: &mut CorkiTrajectoryPolicy,
    demonstrations: &[Demonstration],
    config: &TrainingConfig,
) -> Vec<f64> {
    let horizon = policy.horizon();
    let mut adam = Adam::new(config.learning_rate);
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let token_sets: Vec<Vec<Vec<f64>>> = demonstrations
        .iter()
        .map(|demo| demo.observations.iter().map(|o| policy.encoder.encode(o)).collect())
        .collect();
    let mask = policy.encoder.mask_token().to_vec();
    let close_loop_feature = policy.close_loop.empty_feature();

    let mut pool = TrainingPool::default();
    let mut way_cache = MlpCache::default();
    let mut grip_cache = MlpCache::default();
    let mut head_input = Vec::with_capacity(HIDDEN_DIM + close_loop_feature.len());

    for _ in 0..config.epochs {
        let mut total = 0.0;
        let mut count = 0usize;
        for (demo, tokens) in demonstrations.iter().zip(&token_sets) {
            if demo.len() <= horizon {
                continue;
            }
            for t in 0..demo.len() - horizon {
                policy.zero_grad();
                let start = t.saturating_sub(TOKEN_WINDOW - 1);
                let window_len = t - start + 1;

                // Only frames captured at inference boundaries are real; the
                // rest are masked (Fig. 4). The window is streamed straight
                // into the pooled LSTM caches — no per-step token-slice Vec.
                pool.prepare(HIDDEN_DIM, window_len);
                for (i, frame) in (start..=t).enumerate() {
                    let token = if (t - frame) % horizon == 0 {
                        tokens[frame].as_slice()
                    } else {
                        mask.as_slice()
                    };
                    policy.lstm.forward_cached_reuse(
                        token,
                        &pool.state,
                        &mut pool.state_next,
                        &mut pool.lstm_caches[i],
                        &mut pool.scratch,
                    );
                    std::mem::swap(&mut pool.state, &mut pool.state_next);
                }
                head_input.clear();
                head_input.extend_from_slice(&pool.state.h);
                head_input.extend_from_slice(&close_loop_feature);

                // Targets: cumulative offsets to the next `horizon` waypoints
                // (Equation 5 supervises the trajectory itself).
                let base = demo.waypoints[t].to_array6();
                let mut target = vec![0.0; 6 * horizon];
                let mut gripper_targets = vec![0.0; horizon];
                for k in 1..=horizon {
                    let wp = demo.waypoints[t + k].to_array6();
                    for d in 0..6 {
                        target[(k - 1) * 6 + d] = wp[d] - base[d];
                    }
                    gripper_targets[k - 1] = demo.waypoints[t + k].gripper.to_target();
                }
                // Predicted cumulative offsets.
                let mut predicted = vec![0.0; 6 * horizon];
                {
                    let way_raw =
                        policy.waypoint_head.forward_cached_reuse(&head_input, &mut way_cache);
                    for k in 0..horizon {
                        for d in 0..6 {
                            let prev = if k == 0 { 0.0 } else { predicted[(k - 1) * 6 + d] };
                            predicted[k * 6 + d] = prev + way_raw[k * 6 + d] * policy.action_scale;
                        }
                    }
                }
                let (pose_loss, grad_cumulative) = losses::mse(&predicted, &target);
                let mut grip_loss_total = 0.0;
                let mut grip_grads = vec![0.0; horizon];
                {
                    let grip_raw =
                        policy.gripper_head.forward_cached_reuse(&head_input, &mut grip_cache);
                    for k in 0..horizon {
                        let (l, g) = losses::bce_with_logits(grip_raw[k], gripper_targets[k]);
                        grip_loss_total += l;
                        grip_grads[k] = config.lambda_gripper * g / horizon as f64;
                    }
                }
                total += pose_loss + config.lambda_gripper * grip_loss_total / horizon as f64;
                count += 1;

                // Backprop through the cumulative sum: raw[k] contributes to
                // every cumulative offset j >= k.
                let mut grad_raw = vec![0.0; 6 * horizon];
                for d in 0..6 {
                    let mut suffix = 0.0;
                    for k in (0..horizon).rev() {
                        suffix += grad_cumulative[k * 6 + d];
                        grad_raw[k * 6 + d] = suffix * policy.action_scale;
                    }
                }
                let grad_input_way = policy.waypoint_head.backward(&way_cache, &grad_raw);
                let grad_input_grip = policy.gripper_head.backward(&grip_cache, &grip_grads);
                let mut grad_h: Vec<f64> = grad_input_way[..HIDDEN_DIM]
                    .iter()
                    .zip(&grad_input_grip[..HIDDEN_DIM])
                    .map(|(a, b)| a + b)
                    .collect();
                let mut grad_c = vec![0.0; HIDDEN_DIM];
                for cache in pool.lstm_caches[..window_len].iter().rev() {
                    let (_, gh, gc) = policy.lstm.backward(cache, &grad_h, &grad_c);
                    grad_h = gh;
                    grad_c = gc;
                }
                adam.step(&mut policy.parameters_mut());
            }
        }
        epoch_losses.push(if count == 0 { 0.0 } else { total / count as f64 });
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ManipulationPolicy, PlanRequest, PolicyPlan};
    use corki_math::Vec3;
    use corki_trajectory::GripperState;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A simple synthetic "reach" dataset: the end-effector moves in a
    /// straight line towards the object and closes the gripper at the end.
    fn reach_demonstrations(count: usize) -> Vec<Demonstration> {
        (0..count)
            .map(|i| {
                let object = Vec3::new(0.45 + 0.02 * i as f64, -0.1 + 0.03 * i as f64, 0.05);
                let start = Vec3::new(0.3, 0.0, 0.3);
                let steps = 16;
                let mut observations = Vec::new();
                let mut waypoints = Vec::new();
                for s in 0..=steps {
                    let alpha = s as f64 / steps as f64;
                    let pos = start.lerp(object, alpha);
                    let gripper =
                        if alpha > 0.9 { GripperState::Closed } else { GripperState::Open };
                    let pose = EePose::new(pos, Vec3::ZERO, gripper);
                    let obs = Observation {
                        end_effector: pose,
                        object_position: object,
                        goal_position: object,
                        ..Observation::default()
                    };
                    observations.push(obs);
                    waypoints.push(pose);
                }
                Demonstration::new(observations, waypoints)
            })
            .collect()
    }

    #[test]
    fn demonstration_validation() {
        let demos = reach_demonstrations(1);
        assert_eq!(demos[0].len(), 17);
        assert!(!demos[0].is_empty());
    }

    #[test]
    #[should_panic]
    fn misaligned_demonstration_panics() {
        let demos = reach_demonstrations(1);
        let _ = Demonstration::new(demos[0].observations.clone(), vec![EePose::default()]);
    }

    #[test]
    fn baseline_training_reduces_loss_and_points_at_target() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        let demos = reach_demonstrations(3);
        let config = TrainingConfig { epochs: 8, learning_rate: 2e-3, lambda_gripper: 0.2 };
        let losses = train_baseline(&mut policy, &demos, &config);
        assert!(losses.len() == 8);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "training did not reduce loss: {losses:?}"
        );

        // After training, the predicted action should move towards the object.
        policy.reset();
        let demo = &demos[0];
        let request = PlanRequest::from_observation(demo.observations[2]);
        let PolicyPlan::SingleStep(action) = policy.plan(&request) else { panic!() };
        let to_target =
            demo.observations[2].object_position - demo.observations[2].end_effector.position;
        let cosine = action.delta_position.dot(to_target)
            / (action.delta_position.norm() * to_target.norm() + 1e-12);
        assert!(cosine > 0.3, "trained action should point towards the object, cos = {cosine}");
    }

    #[test]
    fn corki_training_reduces_loss_and_tracks_the_expert() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = CorkiTrajectoryPolicy::new(5, &mut rng);
        let demos = reach_demonstrations(3);
        let config = TrainingConfig { epochs: 8, learning_rate: 2e-3, lambda_gripper: 0.2 };
        let losses = train_corki(&mut policy, &demos, &config);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.8),
            "training did not reduce loss: {losses:?}"
        );

        policy.reset();
        let demo = &demos[0];
        let t = 2usize;
        let request = PlanRequest::from_observation(demo.observations[t]);
        let PolicyPlan::Trajectory(traj) = policy.plan(&request) else { panic!() };
        // The predicted endpoint should be closer to the expert's endpoint
        // 5 steps ahead than simply staying put would be.
        let expert_end = demo.waypoints[t + 5];
        let stay_error = demo.waypoints[t].position_distance(&expert_end);
        let predicted_end = traj.sample(traj.duration());
        let predict_error = predicted_end.position_distance(&expert_end);
        assert!(
            predict_error < stay_error,
            "trained Corki head should move towards the expert endpoint \
             (predicted {predict_error:.4} vs stationary {stay_error:.4})"
        );
    }
}
