//! The per-policy inference workspace behind the zero-allocation control
//! step.
//!
//! A steady-state policy inference (encode the new frame, slide the token
//! window, run the LSTM, decode the heads, assemble the plan) touches the
//! allocator only through temporaries. [`PolicyScratch`] owns every one of
//! those temporaries so they are allocated once (growing to their high-water
//! mark on the first few calls) and reused forever after; combined with the
//! `*_into` kernels of `corki-nn` and the token-window buffer recycling in
//! [`push_token_from`], a warm control step performs zero heap allocations.

use crate::TOKEN_WINDOW;
use corki_nn::{InferenceScratch, LstmCell, LstmState};
use corki_trajectory::EePose;
use std::collections::VecDeque;

/// Reusable buffers for one policy's inference fast path.
///
/// The scratch is transient execution state, not part of the policy's
/// identity: it is skipped by serde and compares equal to any other scratch.
#[derive(Debug, Clone, Default)]
pub(crate) struct PolicyScratch {
    /// Layer-level workspace threaded through every `*_into` forward pass.
    pub nn: InferenceScratch,
    /// Encoder output for the freshly captured frame.
    pub token: Vec<f64>,
    /// LSTM state (ping of the window rollout double-buffer).
    pub state: LstmState,
    /// LSTM state (pong of the window rollout double-buffer).
    pub state_next: LstmState,
    /// Concatenated head input (hidden state + close-loop feature).
    pub head_input: Vec<f64>,
    /// Raw waypoint/pose head output.
    pub raw: Vec<f64>,
    /// Gripper head output (logits).
    pub logits: Vec<f64>,
    /// Averaged close-loop feature.
    pub close_loop: Vec<f64>,
    /// Per-observation close-loop encoding before averaging.
    pub close_loop_tmp: Vec<f64>,
    /// Cumulative waypoint offsets decoded from the raw head output.
    pub offsets: Vec<[f64; 6]>,
    /// Waypoint poses handed to the trajectory fit.
    pub waypoints: Vec<EePose>,
    /// `W_ih · mask` — the LSTM input projection of the mask embedding,
    /// computed once (and after weight updates) and replayed for every
    /// masked window slot.
    pub mask_pre: Vec<f64>,
    /// Projection buffer for the freshly encoded token before it is stored
    /// in its window slot.
    pub token_pre: Vec<f64>,
    /// Column-major copy of the LSTM recurrent weights for the fast
    /// [`corki_nn::LstmCell::forward_premixed_transposed`] kernel, refreshed
    /// together with the cached projections.
    pub w_hh_t: Vec<f64>,
}

impl PartialEq for PolicyScratch {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// One sliding-window slot: the raw token, its cached LSTM input projection
/// (`W_ih · token`, so a steady-state plan never re-projects old frames) and
/// whether the slot holds the shared mask embedding (whose projection lives
/// once in the scratch instead of per slot).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct WindowSlot {
    /// The raw token (kept so stale projections can be recomputed after
    /// training touches the weights).
    pub token: Vec<f64>,
    /// Cached `W_ih · token` input projection.
    pub projection: Vec<f64>,
    /// Whether this slot holds the shared mask embedding.
    pub is_mask: bool,
}

/// Appends a recycled slot to the window, evicting (and reusing the buffers
/// of) the oldest slot once the window is full — the steady-state path never
/// allocates.
pub(crate) fn recycled_slot(window: &mut VecDeque<WindowSlot>, is_mask: bool) -> &mut WindowSlot {
    let mut slot = if window.len() == TOKEN_WINDOW {
        window.pop_front().expect("full window is non-empty")
    } else {
        WindowSlot::default()
    };
    slot.token.clear();
    slot.projection.clear();
    slot.is_mask = is_mask;
    window.push_back(slot);
    window.back_mut().expect("slot was just pushed")
}

/// Runs the LSTM over a window of cached input projections via the
/// transposed recurrent kernel, double-buffering the state through the
/// scratch; the final hidden state is left in `scratch.state.h`.
pub(crate) fn run_window_premixed(
    lstm: &LstmCell,
    hidden_dim: usize,
    window: &VecDeque<WindowSlot>,
    scratch: &mut PolicyScratch,
) {
    scratch.state.h.clear();
    scratch.state.h.resize(hidden_dim, 0.0);
    scratch.state.c.clear();
    scratch.state.c.resize(hidden_dim, 0.0);
    for slot in window {
        let projection = if slot.is_mask { &scratch.mask_pre } else { &slot.projection };
        lstm.forward_premixed_transposed(
            projection,
            &scratch.w_hh_t,
            &scratch.state,
            &mut scratch.state_next,
            &mut scratch.nn,
        );
        std::mem::swap(&mut scratch.state, &mut scratch.state_next);
    }
}
