//! Oracle policies with a mechanistic prediction-error model.
//!
//! The headline evaluation of the paper (Tables 1/2, Figures 11-14) sweeps
//! eight policy variants over a thousand long-horizon jobs.  Training a
//! separate neural policy per variant at that scale is outside the scope of a
//! CPU-only reproduction, so the sweeps use *oracle* policies: they see the
//! expert's future waypoints and corrupt them with a noise model whose
//! structure captures the two competing effects the paper identifies:
//!
//! * prediction error **grows with the prediction horizon** (further future →
//!   less certain), and
//! * trajectory-level supervision is smoother than frame-level supervision,
//!   so per-step noise is *lower* for the Corki-style policies — but running
//!   open loop for longer means errors go **uncorrected** for more steps.
//!
//! The net effect — accuracy peaking at an intermediate executed length —
//! then emerges from closed-loop rollouts in `corki-sim` rather than being
//! hard-coded.

use crate::{ManipulationPolicy, PlanRequest, PolicyKind, PolicyPlan};
use corki_math::Vec3;
use corki_trajectory::{
    DeltaAction, EePose, GripperState, Trajectory, CONTROL_STEP, MAX_PREDICTION_STEPS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The prediction-error model shared by the oracle policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Base positional noise (standard deviation, metres) of a one-step-ahead
    /// prediction under frame-level supervision.
    pub position_sigma: f64,
    /// Base orientation noise (standard deviation, radians).
    pub orientation_sigma: f64,
    /// Fractional growth of the noise per additional step of look-ahead.
    pub horizon_growth: f64,
    /// Multiplier (< 1) applied to the noise of trajectory-supervised
    /// predictions, reflecting the smoother supervision signal (paper §6.2).
    pub trajectory_smoothing: f64,
    /// Probability that the gripper command of a waypoint is predicted wrong.
    pub gripper_error_probability: f64,
    /// Noise multiplier applied on the unseen split.
    pub unseen_multiplier: f64,
    /// Multiplier (< 1) applied when close-loop features are available for a
    /// prediction (paper §3.4).
    pub close_loop_reduction: f64,
    /// Standard deviation (metres per step) of the random-walk *drift* of a
    /// prediction: the systematic divergence between the imagined and the
    /// actual scene that accumulates the further ahead the policy predicts.
    /// Unlike the per-waypoint noise it is not averaged out by the cubic fit,
    /// so it is what makes long open-loop execution (large Corki-T) risky.
    pub drift_sigma: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            position_sigma: 0.007,
            orientation_sigma: 0.01,
            horizon_growth: 0.25,
            trajectory_smoothing: 0.5,
            gripper_error_probability: 0.004,
            unseen_multiplier: 1.3,
            close_loop_reduction: 0.85,
            drift_sigma: 0.0035,
        }
    }
}

impl NoiseModel {
    /// The positional noise of a prediction `steps_ahead` control steps into
    /// the future under the given supervision style.
    pub fn position_sigma_at(
        &self,
        steps_ahead: usize,
        trajectory_supervised: bool,
        unseen: bool,
    ) -> f64 {
        let mut sigma = self.position_sigma
            * (1.0 + self.horizon_growth * steps_ahead.saturating_sub(1) as f64);
        if trajectory_supervised {
            sigma *= self.trajectory_smoothing;
        }
        if unseen {
            sigma *= self.unseen_multiplier;
        }
        sigma
    }
}

/// Draws a zero-mean Gaussian sample via the Box-Muller transform (keeps the
/// crate independent of `rand_distr`).
fn gaussian(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn noisy_pose(
    rng: &mut StdRng,
    pose: &EePose,
    pos_sigma: f64,
    rot_sigma: f64,
    gripper_flip_prob: f64,
) -> EePose {
    let position = pose.position
        + Vec3::new(gaussian(rng, pos_sigma), gaussian(rng, pos_sigma), gaussian(rng, pos_sigma));
    let euler = pose.euler
        + Vec3::new(gaussian(rng, rot_sigma), gaussian(rng, rot_sigma), gaussian(rng, rot_sigma));
    let gripper = if rng.gen_bool(gripper_flip_prob.clamp(0.0, 1.0)) {
        match pose.gripper {
            GripperState::Open => GripperState::Closed,
            GripperState::Closed => GripperState::Open,
        }
    } else {
        pose.gripper
    };
    EePose { position, euler, gripper }
}

/// An oracle baseline: predicts the expert's next waypoint with one-step
/// frame-supervised noise (the RoboFlamingo execution and supervision model).
#[derive(Debug, Clone)]
pub struct OracleFramePolicy {
    noise: NoiseModel,
    rng: StdRng,
    seed: u64,
}

impl OracleFramePolicy {
    /// Creates an oracle baseline with the given noise model and RNG seed.
    pub fn new(noise: NoiseModel, seed: u64) -> Self {
        OracleFramePolicy { noise, rng: StdRng::seed_from_u64(seed), seed }
    }

    /// The noise model in use.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }
}

impl ManipulationPolicy for OracleFramePolicy {
    fn plan(&mut self, request: &PlanRequest) -> PolicyPlan {
        let current = request.observation.end_effector;
        let unseen = request.observation.task.unseen;
        let mut target = request.expert_future.first().copied().unwrap_or(current);
        let mut drift_step = self.noise.drift_sigma;
        if unseen {
            drift_step *= self.noise.unseen_multiplier;
        }
        target.position += Vec3::new(
            gaussian(&mut self.rng, drift_step),
            gaussian(&mut self.rng, drift_step),
            gaussian(&mut self.rng, drift_step),
        );
        let sigma = self.noise.position_sigma_at(1, false, unseen);
        let rot_sigma =
            self.noise.orientation_sigma * if unseen { self.noise.unseen_multiplier } else { 1.0 };
        let noisy = noisy_pose(
            &mut self.rng,
            &target,
            sigma,
            rot_sigma,
            self.noise.gripper_error_probability,
        );
        PolicyPlan::SingleStep(DeltaAction::new(
            noisy.position - current.position,
            noisy.euler - current.euler,
            noisy.gripper,
        ))
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.reset();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::FramePrediction
    }

    fn name(&self) -> String {
        "RoboFlamingo".to_owned()
    }
}

/// An oracle Corki policy: predicts the expert's next `horizon` waypoints with
/// trajectory-supervised noise that grows with look-ahead, and fits the cubic
/// trajectory the controller will track.
#[derive(Debug, Clone)]
pub struct OracleTrajectoryPolicy {
    horizon: usize,
    noise: NoiseModel,
    rng: StdRng,
    seed: u64,
}

impl OracleTrajectoryPolicy {
    /// Creates an oracle Corki policy predicting `horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or exceeds [`MAX_PREDICTION_STEPS`].
    pub fn new(horizon: usize, noise: NoiseModel, seed: u64) -> Self {
        assert!(
            (1..=MAX_PREDICTION_STEPS).contains(&horizon),
            "horizon must be in 1..={MAX_PREDICTION_STEPS}"
        );
        OracleTrajectoryPolicy { horizon, noise, rng: StdRng::seed_from_u64(seed), seed }
    }

    /// The prediction horizon in control steps.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The noise model in use.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }
}

impl ManipulationPolicy for OracleTrajectoryPolicy {
    fn plan(&mut self, request: &PlanRequest) -> PolicyPlan {
        let current = request.observation.end_effector;
        let unseen = request.observation.task.unseen;
        let close_loop = !request.close_loop_observations.is_empty();

        let mut waypoints = Vec::with_capacity(self.horizon + 1);
        waypoints.push(current);
        let mut last_expert = current;
        // Random-walk drift of the imagined future relative to the real
        // scene; it grows with the prediction horizon and is what early
        // termination / adaptive length protects against.
        let mut drift_step = self.noise.drift_sigma;
        if unseen {
            drift_step *= self.noise.unseen_multiplier;
        }
        if close_loop {
            drift_step *= self.noise.close_loop_reduction;
        }
        let mut drift = Vec3::ZERO;
        for k in 1..=self.horizon {
            let expert = request.expert_future.get(k - 1).copied().unwrap_or(last_expert);
            last_expert = expert;
            drift += Vec3::new(
                gaussian(&mut self.rng, drift_step),
                gaussian(&mut self.rng, drift_step),
                gaussian(&mut self.rng, drift_step),
            );
            let mut sigma = self.noise.position_sigma_at(k, true, unseen);
            let mut rot_sigma = self.noise.orientation_sigma
                * self.noise.trajectory_smoothing
                * (1.0 + self.noise.horizon_growth * (k - 1) as f64);
            if unseen {
                rot_sigma *= self.noise.unseen_multiplier;
            }
            if close_loop {
                sigma *= self.noise.close_loop_reduction;
                rot_sigma *= self.noise.close_loop_reduction;
            }
            let flip = self.noise.gripper_error_probability * (1.0 + 0.1 * (k - 1) as f64);
            let mut drifted = expert;
            drifted.position += drift;
            waypoints.push(noisy_pose(&mut self.rng, &drifted, sigma, rot_sigma, flip));
        }
        let trajectory = Trajectory::fit_waypoints(&waypoints, CONTROL_STEP)
            .expect("horizon >= 1 guarantees at least two waypoints");
        PolicyPlan::Trajectory(trajectory)
    }

    fn reset(&mut self) {
        self.rng = StdRng::seed_from_u64(self.seed);
    }

    fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.reset();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::TrajectoryPrediction
    }

    fn name(&self) -> String {
        format!("Corki-{}", self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observation;

    fn request_with_expert(steps: usize) -> PlanRequest {
        let obs = Observation {
            end_effector: EePose::new(Vec3::new(0.3, 0.0, 0.3), Vec3::ZERO, GripperState::Open),
            ..Observation::default()
        };
        let expert: Vec<EePose> = (1..=steps)
            .map(|k| {
                EePose::new(
                    Vec3::new(0.3 + 0.01 * k as f64, 0.0, 0.3),
                    Vec3::ZERO,
                    GripperState::Open,
                )
            })
            .collect();
        PlanRequest {
            observation: obs,
            expert_future: expert,
            close_loop_observations: Vec::new(),
            steps_since_last_plan: 1,
        }
    }

    #[test]
    fn noise_grows_with_horizon_and_shrinks_with_trajectory_supervision() {
        let model = NoiseModel::default();
        let near = model.position_sigma_at(1, false, false);
        let far = model.position_sigma_at(9, false, false);
        assert!(far > near);
        let frame = model.position_sigma_at(3, false, false);
        let traj = model.position_sigma_at(3, true, false);
        assert!(traj < frame);
        let seen = model.position_sigma_at(3, true, false);
        let unseen = model.position_sigma_at(3, true, true);
        assert!(unseen > seen);
    }

    #[test]
    fn frame_oracle_tracks_the_expert_closely() {
        let mut policy = OracleFramePolicy::new(NoiseModel::default(), 7);
        let request = request_with_expert(5);
        let PolicyPlan::SingleStep(action) = policy.plan(&request) else {
            panic!("expected a single-step plan");
        };
        // The expert moves 1 cm; the prediction should be within a few sigma.
        assert!((action.delta_position.x - 0.01).abs() < 0.05);
        assert_eq!(policy.kind(), PolicyKind::FramePrediction);
    }

    #[test]
    fn trajectory_oracle_produces_full_horizon() {
        let mut policy = OracleTrajectoryPolicy::new(5, NoiseModel::default(), 11);
        let request = request_with_expert(9);
        let PolicyPlan::Trajectory(t) = policy.plan(&request) else {
            panic!("expected a trajectory plan");
        };
        assert_eq!(t.num_steps(), 5);
        assert_eq!(policy.name(), "Corki-5");
        // Endpoint should be near the expert's 5th future waypoint (0.35).
        let end = t.sample(t.duration());
        assert!((end.position.x - 0.35).abs() < 0.05);
    }

    #[test]
    fn reset_restores_determinism() {
        let mut policy = OracleTrajectoryPolicy::new(5, NoiseModel::default(), 3);
        let request = request_with_expert(9);
        let PolicyPlan::Trajectory(a) = policy.plan(&request) else { panic!() };
        policy.reset();
        let PolicyPlan::Trajectory(b) = policy.plan(&request) else { panic!() };
        assert!(a.sample(a.duration()).position_distance(&b.sample(b.duration())) < 1e-12);
    }

    #[test]
    fn reseeding_rebinds_the_noise_stream() {
        // A reseeded policy must reproduce a fresh policy built with the
        // same seed, and differ from its previous stream.
        let request = request_with_expert(9);
        let mut policy = OracleTrajectoryPolicy::new(5, NoiseModel::default(), 3);
        let PolicyPlan::Trajectory(old) = policy.plan(&request) else { panic!() };
        policy.reseed(17);
        let PolicyPlan::Trajectory(reseeded) = policy.plan(&request) else { panic!() };
        let mut fresh = OracleTrajectoryPolicy::new(5, NoiseModel::default(), 17);
        let PolicyPlan::Trajectory(expected) = fresh.plan(&request) else { panic!() };
        let end = |t: &Trajectory| t.sample(t.duration()).position;
        assert!((end(&reseeded) - end(&expected)).norm() < 1e-15);
        assert!((end(&reseeded) - end(&old)).norm() > 1e-9);
        // Frame oracle honours the hook too.
        let mut frame = OracleFramePolicy::new(NoiseModel::default(), 3);
        let PolicyPlan::SingleStep(a0) = frame.plan(&request) else { panic!() };
        frame.reseed(17);
        let PolicyPlan::SingleStep(a1) = frame.plan(&request) else { panic!() };
        let mut fresh_frame = OracleFramePolicy::new(NoiseModel::default(), 17);
        let PolicyPlan::SingleStep(a2) = fresh_frame.plan(&request) else { panic!() };
        assert!((a1.delta_position - a2.delta_position).norm() < 1e-15);
        assert!((a1.delta_position - a0.delta_position).norm() > 1e-12);
    }

    #[test]
    fn close_loop_observations_reduce_noise_on_average() {
        let noise = NoiseModel { close_loop_reduction: 0.3, ..Default::default() };
        let expert = request_with_expert(9);
        let mut with_feedback = expert.clone();
        with_feedback.close_loop_observations.push(Observation::default());

        let error_of = |req: &PlanRequest, seed: u64| -> f64 {
            let mut policy = OracleTrajectoryPolicy::new(9, noise, seed);
            let PolicyPlan::Trajectory(t) = policy.plan(req) else { panic!() };
            (0..9)
                .map(|k| {
                    let expert_wp = req.expert_future[k];
                    t.sample((k + 1) as f64 * CONTROL_STEP).position_distance(&expert_wp)
                })
                .sum::<f64>()
        };
        let mut plain_total = 0.0;
        let mut feedback_total = 0.0;
        for seed in 0..40 {
            plain_total += error_of(&expert, seed);
            feedback_total += error_of(&with_feedback, seed);
        }
        assert!(
            feedback_total < plain_total,
            "close-loop features should reduce average error: {feedback_total} vs {plain_total}"
        );
    }

    #[test]
    fn missing_expert_data_degrades_to_holding_position() {
        let mut policy = OracleFramePolicy::new(
            NoiseModel {
                position_sigma: 0.0,
                orientation_sigma: 0.0,
                gripper_error_probability: 0.0,
                drift_sigma: 0.0,
                ..Default::default()
            },
            0,
        );
        let mut request = request_with_expert(0);
        request.expert_future.clear();
        let PolicyPlan::SingleStep(action) = policy.plan(&request) else { panic!() };
        assert!(action.position_norm() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn oversized_horizon_panics() {
        let _ = OracleTrajectoryPolicy::new(MAX_PREDICTION_STEPS + 1, NoiseModel::default(), 0);
    }
}
