//! The Corki trajectory-prediction policy (paper §3.2-§3.4): the same LSTM
//! backbone as the baseline, but the heads output a near-future trajectory
//! (waypoints for up to N steps plus a gripper schedule), with mask
//! embeddings standing in for the frames that are never captured while the
//! robot executes a trajectory open-loop, and an optional close-loop feature
//! concatenated before the heads.

use crate::encoder::{CloseLoopEncoder, TokenEncoder, TOKEN_DIM};
use crate::{ManipulationPolicy, PlanRequest, PolicyKind, PolicyPlan, TOKEN_WINDOW};
use corki_nn::{Activation, LstmCell, LstmState, Mlp, Tensor};
use corki_trajectory::{EePose, GripperState, Trajectory, CONTROL_STEP, MAX_PREDICTION_STEPS};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::baseline::HIDDEN_DIM;

/// Dimensionality of the close-loop feature vector.
const CLOSE_LOOP_DIM: usize = 8;

/// The Corki policy: predicts waypoint offsets for the next `horizon` control
/// steps and a matching gripper schedule, which are fitted with per-dimension
/// cubics to form the [`Trajectory`] handed to the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorkiTrajectoryPolicy {
    pub(crate) encoder: TokenEncoder,
    pub(crate) close_loop: CloseLoopEncoder,
    pub(crate) lstm: LstmCell,
    pub(crate) waypoint_head: Mlp,
    pub(crate) gripper_head: Mlp,
    pub(crate) horizon: usize,
    /// Scale applied to raw waypoint-head outputs (metres / radians per step).
    pub(crate) action_scale: f64,
    #[serde(skip)]
    token_window: VecDeque<Vec<f64>>,
}

impl CorkiTrajectoryPolicy {
    /// Creates a randomly-initialised Corki policy predicting `horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or exceeds [`MAX_PREDICTION_STEPS`].
    pub fn new(horizon: usize, rng: &mut impl Rng) -> Self {
        assert!(
            (1..=MAX_PREDICTION_STEPS).contains(&horizon),
            "horizon must be in 1..={MAX_PREDICTION_STEPS}"
        );
        CorkiTrajectoryPolicy {
            encoder: TokenEncoder::new(rng),
            close_loop: CloseLoopEncoder::new(CLOSE_LOOP_DIM, rng),
            lstm: LstmCell::new(TOKEN_DIM, HIDDEN_DIM, rng),
            waypoint_head: Mlp::new(
                &[HIDDEN_DIM + CLOSE_LOOP_DIM, 96, 6 * horizon],
                Activation::Tanh,
                rng,
            ),
            gripper_head: Mlp::new(
                &[HIDDEN_DIM + CLOSE_LOOP_DIM, 32, horizon],
                Activation::Tanh,
                rng,
            ),
            horizon,
            action_scale: 0.02,
            token_window: VecDeque::new(),
        }
    }

    /// The prediction horizon in control steps.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total number of trainable parameters (head + close-loop encoder; the
    /// token encoder is frozen like the VLM it stands in for).
    pub fn num_trainable_parameters(&self) -> usize {
        self.lstm.num_parameters()
            + self.waypoint_head.num_parameters()
            + self.gripper_head.num_parameters()
    }

    pub(crate) fn push_token(&mut self, token: Vec<f64>) {
        if self.token_window.len() == TOKEN_WINDOW {
            self.token_window.pop_front();
        }
        self.token_window.push_back(token);
    }

    /// Inserts mask embeddings for the `skipped` frames that were never
    /// captured while the robot executed the previous trajectory (Fig. 4).
    pub(crate) fn push_masked_frames(&mut self, skipped: usize) {
        for _ in 0..skipped {
            let mask = self.encoder.mask_token().to_vec();
            self.push_token(mask);
        }
    }

    pub(crate) fn run_window(&self) -> Vec<f64> {
        let mut state = LstmState::zeros(HIDDEN_DIM);
        for token in &self.token_window {
            state = self.lstm.forward(token, &state);
        }
        state.h
    }

    /// Decodes hidden state + close-loop feature into per-step waypoint
    /// offsets (cumulative, in the 6-D pose space) and gripper logits.
    pub(crate) fn decode(
        &self,
        hidden: &[f64],
        close_loop_feature: &[f64],
    ) -> (Vec<[f64; 6]>, Vec<f64>) {
        let mut input = Vec::with_capacity(hidden.len() + close_loop_feature.len());
        input.extend_from_slice(hidden);
        input.extend_from_slice(close_loop_feature);
        let raw = self.waypoint_head.forward(&input);
        let gripper_logits = self.gripper_head.forward(&input);
        let mut offsets = Vec::with_capacity(self.horizon);
        let mut cumulative = [0.0; 6];
        for step in 0..self.horizon {
            for d in 0..6 {
                cumulative[d] += raw[step * 6 + d] * self.action_scale;
            }
            offsets.push(cumulative);
        }
        (offsets, gripper_logits)
    }

    /// Builds the output [`Trajectory`] from the current pose and the decoded
    /// waypoint offsets.
    pub(crate) fn assemble_trajectory(
        &self,
        current: &EePose,
        offsets: &[[f64; 6]],
        gripper_logits: &[f64],
    ) -> Trajectory {
        let base = current.to_array6();
        let mut waypoints = Vec::with_capacity(offsets.len() + 1);
        waypoints.push(*current);
        for (offset, logit) in offsets.iter().zip(gripper_logits) {
            let mut values = [0.0; 6];
            for d in 0..6 {
                values[d] = base[d] + offset[d];
            }
            let gripper = if Activation::Sigmoid.apply(*logit) >= 0.5 {
                GripperState::Closed
            } else {
                GripperState::Open
            };
            waypoints.push(EePose::from_array6(values, gripper));
        }
        Trajectory::fit_waypoints(&waypoints, CONTROL_STEP)
            .expect("at least two waypoints by construction")
    }

    /// Mutable parameter tensors of the trainable parts.
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        let mut p = self.lstm.parameters_mut();
        p.extend(self.waypoint_head.parameters_mut());
        p.extend(self.gripper_head.parameters_mut());
        p.extend(self.close_loop.parameters_mut());
        p
    }

    /// Clears accumulated gradients on all trainable tensors.
    pub fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.waypoint_head.zero_grad();
        self.gripper_head.zero_grad();
    }

    /// Current number of tokens in the window (for tests).
    pub fn window_len(&self) -> usize {
        self.token_window.len()
    }
}

impl ManipulationPolicy for CorkiTrajectoryPolicy {
    fn plan(&mut self, request: &PlanRequest) -> PolicyPlan {
        // Frames skipped while the previous trajectory executed are replaced
        // by mask embeddings; the freshly captured frame is a real token.
        let skipped = request.steps_since_last_plan.saturating_sub(1);
        self.push_masked_frames(skipped);
        let token = self.encoder.encode(&request.observation);
        self.push_token(token);

        let hidden = self.run_window();
        let close_loop_feature = self.close_loop.encode_all(&request.close_loop_observations);
        let (offsets, gripper_logits) = self.decode(&hidden, &close_loop_feature);
        let trajectory =
            self.assemble_trajectory(&request.observation.end_effector, &offsets, &gripper_logits);
        PolicyPlan::Trajectory(trajectory)
    }

    fn reset(&mut self) {
        self.token_window.clear();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::TrajectoryPrediction
    }

    fn name(&self) -> String {
        format!("Corki-{}", self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observation;
    use corki_math::Vec3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observation_at(x: f64) -> Observation {
        Observation {
            end_effector: EePose::new(Vec3::new(x, 0.0, 0.3), Vec3::ZERO, GripperState::Open),
            ..Observation::default()
        }
    }

    #[test]
    fn plan_produces_trajectory_of_requested_horizon() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = CorkiTrajectoryPolicy::new(5, &mut rng);
        let plan = policy.plan(&PlanRequest::from_observation(observation_at(0.35)));
        match plan {
            PolicyPlan::Trajectory(t) => {
                assert_eq!(t.num_steps(), 5);
                // The trajectory starts near the current end-effector pose
                // (the least-squares cubic fit does not interpolate exactly,
                // and the untrained head adds small offsets).
                let start = t.sample(0.0);
                assert!((start.position.x - 0.35).abs() < 0.03);
            }
            PolicyPlan::SingleStep(_) => panic!("Corki must predict trajectories"),
        }
        assert_eq!(policy.kind(), PolicyKind::TrajectoryPrediction);
        assert_eq!(policy.name(), "Corki-5");
    }

    #[test]
    fn masked_frames_fill_the_window() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = CorkiTrajectoryPolicy::new(5, &mut rng);
        let mut request = PlanRequest::from_observation(observation_at(0.3));
        request.steps_since_last_plan = 5;
        let _ = policy.plan(&request);
        // 4 mask tokens + 1 real token.
        assert_eq!(policy.window_len(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_horizon_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = CorkiTrajectoryPolicy::new(0, &mut rng);
    }

    #[test]
    #[should_panic]
    fn oversized_horizon_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = CorkiTrajectoryPolicy::new(MAX_PREDICTION_STEPS + 1, &mut rng);
    }

    #[test]
    fn close_loop_observations_change_the_prediction() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy = CorkiTrajectoryPolicy::new(5, &mut rng);
        let obs = observation_at(0.3);
        let plain = policy.plan(&PlanRequest::from_observation(obs));
        policy.reset();
        let mut with_feedback = PlanRequest::from_observation(obs);
        let mut feedback_obs = observation_at(0.5);
        feedback_obs.object_position = Vec3::new(0.7, 0.3, 0.1);
        with_feedback.close_loop_observations.push(feedback_obs);
        let adjusted = policy.plan(&with_feedback);
        let (PolicyPlan::Trajectory(a), PolicyPlan::Trajectory(b)) = (plain, adjusted) else {
            panic!("expected trajectories");
        };
        let end_a = a.sample(a.duration());
        let end_b = b.sample(b.duration());
        assert!(end_a.position_distance(&end_b) > 1e-9, "close-loop feature had no effect");
    }

    #[test]
    fn trainable_parameter_count_scales_with_horizon() {
        let mut rng = StdRng::seed_from_u64(4);
        let small = CorkiTrajectoryPolicy::new(1, &mut rng);
        let large = CorkiTrajectoryPolicy::new(9, &mut rng);
        assert!(large.num_trainable_parameters() > small.num_trainable_parameters());
    }
}
