//! The Corki trajectory-prediction policy (paper §3.2-§3.4): the same LSTM
//! backbone as the baseline, but the heads output a near-future trajectory
//! (waypoints for up to N steps plus a gripper schedule), with mask
//! embeddings standing in for the frames that are never captured while the
//! robot executes a trajectory open-loop, and an optional close-loop feature
//! concatenated before the heads.

use crate::encoder::{CloseLoopEncoder, TokenEncoder, TOKEN_DIM};
use crate::scratch::{recycled_slot, run_window_premixed, PolicyScratch, WindowSlot};
use crate::{ManipulationPolicy, PlanRequest, PolicyKind, PolicyPlan};
use corki_nn::{Activation, LstmCell, Mlp, Tensor};
use corki_trajectory::{EePose, GripperState, Trajectory, CONTROL_STEP, MAX_PREDICTION_STEPS};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::baseline::HIDDEN_DIM;

/// Dimensionality of the close-loop feature vector.
const CLOSE_LOOP_DIM: usize = 8;

/// The Corki policy: predicts waypoint offsets for the next `horizon` control
/// steps and a matching gripper schedule, which are fitted with per-dimension
/// cubics to form the [`Trajectory`] handed to the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorkiTrajectoryPolicy {
    pub(crate) encoder: TokenEncoder,
    pub(crate) close_loop: CloseLoopEncoder,
    pub(crate) lstm: LstmCell,
    pub(crate) waypoint_head: Mlp,
    pub(crate) gripper_head: Mlp,
    pub(crate) horizon: usize,
    /// Scale applied to raw waypoint-head outputs (metres / radians per step).
    pub(crate) action_scale: f64,
    #[serde(skip)]
    window: VecDeque<WindowSlot>,
    /// Set by [`CorkiTrajectoryPolicy::parameters_mut`]: the cached window
    /// and mask projections were computed with weights that may since have
    /// changed, and must be refreshed before the next plan.
    #[serde(skip)]
    projections_stale: bool,
    #[serde(skip)]
    scratch: PolicyScratch,
}

impl CorkiTrajectoryPolicy {
    /// Creates a randomly-initialised Corki policy predicting `horizon` steps.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero or exceeds [`MAX_PREDICTION_STEPS`].
    pub fn new(horizon: usize, rng: &mut impl Rng) -> Self {
        assert!(
            (1..=MAX_PREDICTION_STEPS).contains(&horizon),
            "horizon must be in 1..={MAX_PREDICTION_STEPS}"
        );
        CorkiTrajectoryPolicy {
            encoder: TokenEncoder::new(rng),
            close_loop: CloseLoopEncoder::new(CLOSE_LOOP_DIM, rng),
            lstm: LstmCell::new(TOKEN_DIM, HIDDEN_DIM, rng),
            waypoint_head: Mlp::new(
                &[HIDDEN_DIM + CLOSE_LOOP_DIM, 96, 6 * horizon],
                Activation::Tanh,
                rng,
            ),
            gripper_head: Mlp::new(
                &[HIDDEN_DIM + CLOSE_LOOP_DIM, 32, horizon],
                Activation::Tanh,
                rng,
            ),
            horizon,
            action_scale: 0.02,
            window: VecDeque::new(),
            projections_stale: false,
            scratch: PolicyScratch::default(),
        }
    }

    /// The prediction horizon in control steps.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Total number of trainable parameters (head + close-loop encoder; the
    /// token encoder is frozen like the VLM it stands in for).
    pub fn num_trainable_parameters(&self) -> usize {
        self.lstm.num_parameters()
            + self.waypoint_head.num_parameters()
            + self.gripper_head.num_parameters()
    }

    /// Inserts mask embeddings for the `skipped` frames that were never
    /// captured while the robot executed the previous trajectory (Fig. 4).
    /// Masked slots carry no payload; they replay the shared mask projection.
    pub(crate) fn push_masked_frames(&mut self, skipped: usize) {
        for _ in 0..skipped {
            recycled_slot(&mut self.window, true);
        }
    }

    /// Refreshes the cached `W_ih` projections (per-slot for real tokens, the
    /// shared one for the mask embedding) if training touched the weights
    /// since they were computed.
    fn refresh_projections(&mut self) {
        if self.projections_stale {
            for slot in &mut self.window {
                if !slot.is_mask {
                    self.lstm.input_projection_into(&slot.token, &mut slot.projection);
                }
            }
            self.lstm.input_projection_into(self.encoder.mask_token(), &mut self.scratch.mask_pre);
            self.lstm.recurrent_transposed_into(&mut self.scratch.w_hh_t);
            self.projections_stale = false;
        } else {
            if self.scratch.mask_pre.len() != 4 * HIDDEN_DIM {
                self.lstm
                    .input_projection_into(self.encoder.mask_token(), &mut self.scratch.mask_pre);
            }
            if self.scratch.w_hh_t.len() != 4 * HIDDEN_DIM * HIDDEN_DIM {
                self.lstm.recurrent_transposed_into(&mut self.scratch.w_hh_t);
            }
        }
    }

    /// The zero-allocation planning fast path: runs the full inference
    /// (frame encoding, token window, LSTM, heads, trajectory fit) through
    /// the scratch workspace and re-fits the result into `out`, reusing its
    /// storage. [`ManipulationPolicy::plan`] wraps this with a freshly
    /// allocated output trajectory.
    pub fn plan_into(&mut self, request: &PlanRequest, out: &mut Trajectory) {
        // Frames skipped while the previous trajectory executed are replaced
        // by mask embeddings; the freshly captured frame is a real token.
        let skipped = request.steps_since_last_plan.saturating_sub(1);
        self.push_masked_frames(skipped);
        self.encoder.encode_into(
            &request.observation,
            &mut self.scratch.nn,
            &mut self.scratch.token,
        );
        // Project the fresh token once at push time; old real tokens keep
        // their cached projections, masked slots share `scratch.mask_pre` —
        // so the window rollout below never touches `W_ih` again.
        self.lstm.input_projection_into(&self.scratch.token, &mut self.scratch.token_pre);
        let slot = recycled_slot(&mut self.window, false);
        slot.token.extend_from_slice(&self.scratch.token);
        slot.projection.extend_from_slice(&self.scratch.token_pre);
        self.refresh_projections();

        // Run the LSTM over the window, every step from a premixed input
        // projection — in the Corki steady state (horizon N ⇒ N−1 masks per
        // real frame) this removes all per-step input matvecs from the hot
        // loop.
        run_window_premixed(&self.lstm, HIDDEN_DIM, &self.window, &mut self.scratch);

        // Close-loop feature: average of the mid-trajectory encodings, or
        // zeros when no frame was sent back (paper §3.4).
        self.scratch.close_loop.clear();
        self.scratch.close_loop.resize(self.close_loop.feature_dim, 0.0);
        if !request.close_loop_observations.is_empty() {
            for obs in &request.close_loop_observations {
                self.close_loop.encode_into(
                    obs,
                    &mut self.scratch.nn,
                    &mut self.scratch.close_loop_tmp,
                );
                for (a, v) in self.scratch.close_loop.iter_mut().zip(&self.scratch.close_loop_tmp) {
                    *a += v;
                }
            }
            for a in self.scratch.close_loop.iter_mut() {
                *a /= request.close_loop_observations.len() as f64;
            }
        }

        // Decode hidden state + close-loop feature into cumulative waypoint
        // offsets and gripper logits.
        self.scratch.head_input.clear();
        self.scratch.head_input.extend_from_slice(&self.scratch.state.h);
        self.scratch.head_input.extend_from_slice(&self.scratch.close_loop);
        self.waypoint_head.forward_into(
            &self.scratch.head_input,
            &mut self.scratch.nn,
            &mut self.scratch.raw,
        );
        self.gripper_head.forward_into(
            &self.scratch.head_input,
            &mut self.scratch.nn,
            &mut self.scratch.logits,
        );
        self.scratch.offsets.clear();
        let mut cumulative = [0.0; 6];
        for step in 0..self.horizon {
            for (d, c) in cumulative.iter_mut().enumerate() {
                *c += self.scratch.raw[step * 6 + d] * self.action_scale;
            }
            self.scratch.offsets.push(cumulative);
        }

        // Assemble the waypoints and re-fit the output trajectory in place.
        let current = &request.observation.end_effector;
        let base = current.to_array6();
        self.scratch.waypoints.clear();
        self.scratch.waypoints.push(*current);
        for (offset, logit) in self.scratch.offsets.iter().zip(&self.scratch.logits) {
            let mut values = [0.0; 6];
            for d in 0..6 {
                values[d] = base[d] + offset[d];
            }
            let gripper = if Activation::Sigmoid.apply(*logit) >= 0.5 {
                GripperState::Closed
            } else {
                GripperState::Open
            };
            self.scratch.waypoints.push(EePose::from_array6(values, gripper));
        }
        out.refit_waypoints(&self.scratch.waypoints, CONTROL_STEP)
            .expect("at least two waypoints by construction");
    }

    /// Mutable parameter tensors of the trainable parts. Marks the cached
    /// window projections stale, since the caller may update the weights.
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        self.projections_stale = true;
        let mut p = self.lstm.parameters_mut();
        p.extend(self.waypoint_head.parameters_mut());
        p.extend(self.gripper_head.parameters_mut());
        p.extend(self.close_loop.parameters_mut());
        p
    }

    /// Clears accumulated gradients on all trainable tensors.
    pub fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.waypoint_head.zero_grad();
        self.gripper_head.zero_grad();
    }

    /// Current number of tokens in the window (for tests).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

impl ManipulationPolicy for CorkiTrajectoryPolicy {
    fn plan(&mut self, request: &PlanRequest) -> PolicyPlan {
        let mut trajectory = Trajectory::hold(&request.observation.end_effector, 1);
        self.plan_into(request, &mut trajectory);
        PolicyPlan::Trajectory(trajectory)
    }

    fn reset(&mut self) {
        self.window.clear();
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::TrajectoryPrediction
    }

    fn name(&self) -> String {
        format!("Corki-{}", self.horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observation;
    use corki_math::Vec3;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn observation_at(x: f64) -> Observation {
        Observation {
            end_effector: EePose::new(Vec3::new(x, 0.0, 0.3), Vec3::ZERO, GripperState::Open),
            ..Observation::default()
        }
    }

    #[test]
    fn plan_produces_trajectory_of_requested_horizon() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = CorkiTrajectoryPolicy::new(5, &mut rng);
        let plan = policy.plan(&PlanRequest::from_observation(observation_at(0.35)));
        match plan {
            PolicyPlan::Trajectory(t) => {
                assert_eq!(t.num_steps(), 5);
                // The trajectory starts near the current end-effector pose
                // (the least-squares cubic fit does not interpolate exactly,
                // and the untrained head adds small offsets).
                let start = t.sample(0.0);
                assert!((start.position.x - 0.35).abs() < 0.03);
            }
            PolicyPlan::SingleStep(_) => panic!("Corki must predict trajectories"),
        }
        assert_eq!(policy.kind(), PolicyKind::TrajectoryPrediction);
        assert_eq!(policy.name(), "Corki-5");
    }

    #[test]
    fn masked_frames_fill_the_window() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = CorkiTrajectoryPolicy::new(5, &mut rng);
        let mut request = PlanRequest::from_observation(observation_at(0.3));
        request.steps_since_last_plan = 5;
        let _ = policy.plan(&request);
        // 4 mask tokens + 1 real token.
        assert_eq!(policy.window_len(), 5);
    }

    #[test]
    #[should_panic]
    fn zero_horizon_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = CorkiTrajectoryPolicy::new(0, &mut rng);
    }

    #[test]
    #[should_panic]
    fn oversized_horizon_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = CorkiTrajectoryPolicy::new(MAX_PREDICTION_STEPS + 1, &mut rng);
    }

    #[test]
    fn close_loop_observations_change_the_prediction() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy = CorkiTrajectoryPolicy::new(5, &mut rng);
        let obs = observation_at(0.3);
        let plain = policy.plan(&PlanRequest::from_observation(obs));
        policy.reset();
        let mut with_feedback = PlanRequest::from_observation(obs);
        let mut feedback_obs = observation_at(0.5);
        feedback_obs.object_position = Vec3::new(0.7, 0.3, 0.1);
        with_feedback.close_loop_observations.push(feedback_obs);
        let adjusted = policy.plan(&with_feedback);
        let (PolicyPlan::Trajectory(a), PolicyPlan::Trajectory(b)) = (plain, adjusted) else {
            panic!("expected trajectories");
        };
        let end_a = a.sample(a.duration());
        let end_b = b.sample(b.duration());
        assert!(end_a.position_distance(&end_b) > 1e-9, "close-loop feature had no effect");
    }

    #[test]
    fn trainable_parameter_count_scales_with_horizon() {
        let mut rng = StdRng::seed_from_u64(4);
        let small = CorkiTrajectoryPolicy::new(1, &mut rng);
        let large = CorkiTrajectoryPolicy::new(9, &mut rng);
        assert!(large.num_trainable_parameters() > small.num_trainable_parameters());
    }
}
