//! The surrogate vision-language token encoder and the close-loop feature
//! encoder (paper §3.4, ViT features).

use crate::observation::{Observation, OBSERVATION_DIM};
use corki_nn::{Activation, InferenceScratch, Mlp, Tensor};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dimensionality of the vision-language tokens produced by the encoder.
pub const TOKEN_DIM: usize = 32;

/// The surrogate for the frozen VLM: turns a scene observation plus the
/// instruction embedding into a "vision-language token".
///
/// In RoboFlamingo this is an OpenFlamingo VLM; here it is a small two-layer
/// perceptron over the state-based observation.  The encoder also owns the
/// *mask embedding* used by the Corki masked policy head (paper Fig. 4) for
/// time steps whose camera frame is intentionally dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenEncoder {
    backbone: Mlp,
    mask_embedding: Vec<f64>,
}

impl TokenEncoder {
    /// Creates an encoder with random (frozen) weights.
    pub fn new(rng: &mut impl Rng) -> Self {
        // +1 input for the instruction embedding.
        let backbone = Mlp::new(&[OBSERVATION_DIM + 1, 64, TOKEN_DIM], Activation::Tanh, rng);
        let mask_embedding = (0..TOKEN_DIM).map(|_| rng.gen_range(-0.1..0.1)).collect();
        TokenEncoder { backbone, mask_embedding }
    }

    /// Encodes an observation into a vision-language token.
    pub fn encode(&self, observation: &Observation) -> Vec<f64> {
        let mut scratch = InferenceScratch::new();
        let mut out = Vec::new();
        self.encode_into(observation, &mut scratch, &mut out);
        out
    }

    /// Allocation-free encoding: the feature vector is assembled on the stack
    /// and the backbone runs through the scratch workspace into `out`.
    /// Bit-identical to [`TokenEncoder::encode`].
    pub fn encode_into(
        &self,
        observation: &Observation,
        scratch: &mut InferenceScratch,
        out: &mut Vec<f64>,
    ) {
        let mut input = [0.0; OBSERVATION_DIM + 1];
        input[..OBSERVATION_DIM].copy_from_slice(&observation.to_features());
        input[OBSERVATION_DIM] = observation.instruction_embedding();
        self.backbone.forward_into(&input, scratch, out);
    }

    /// The mask embedding substituted for tokens whose frame was not captured
    /// (Fig. 4, dotted tokens).
    pub fn mask_token(&self) -> &[f64] {
        &self.mask_embedding
    }

    /// Number of parameters in the (frozen) encoder.
    pub fn num_parameters(&self) -> usize {
        self.backbone.num_parameters() + self.mask_embedding.len()
    }
}

/// The close-loop feature encoder (paper §3.4): images sent back mid-trajectory
/// are encoded with a small network (standing in for the ViT) and concatenated
/// with the LLM tokens for the next trajectory prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloseLoopEncoder {
    projection: Mlp,
    /// Output dimensionality of the close-loop feature.
    pub feature_dim: usize,
}

impl CloseLoopEncoder {
    /// Creates a close-loop feature encoder with the given output size.
    pub fn new(feature_dim: usize, rng: &mut impl Rng) -> Self {
        CloseLoopEncoder {
            projection: Mlp::new(&[OBSERVATION_DIM, 32, feature_dim], Activation::Tanh, rng),
            feature_dim,
        }
    }

    /// Encodes a mid-trajectory observation; when no observation was sent
    /// back, callers should use [`CloseLoopEncoder::empty_feature`].
    pub fn encode(&self, observation: &Observation) -> Vec<f64> {
        self.projection.forward(&observation.to_features())
    }

    /// Allocation-free variant of [`CloseLoopEncoder::encode`], bit-identical
    /// to it.
    pub fn encode_into(
        &self,
        observation: &Observation,
        scratch: &mut InferenceScratch,
        out: &mut Vec<f64>,
    ) {
        self.projection.forward_into(&observation.to_features(), scratch, out);
    }

    /// Averages the features of several mid-trajectory observations, or
    /// returns the empty feature when none were sent.
    pub fn encode_all(&self, observations: &[Observation]) -> Vec<f64> {
        if observations.is_empty() {
            return self.empty_feature();
        }
        let mut acc = vec![0.0; self.feature_dim];
        for obs in observations {
            for (a, v) in acc.iter_mut().zip(self.encode(obs)) {
                *a += v;
            }
        }
        for a in acc.iter_mut() {
            *a /= observations.len() as f64;
        }
        acc
    }

    /// The all-zeros feature used when no close-loop image was available.
    pub fn empty_feature(&self) -> Vec<f64> {
        vec![0.0; self.feature_dim]
    }

    /// Mutable parameter tensors (the close-loop encoder is trained jointly
    /// with the Corki head).
    pub fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        self.projection.parameters_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tokens_have_fixed_dimension_and_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TokenEncoder::new(&mut rng);
        let obs = Observation::default();
        let t1 = enc.encode(&obs);
        let t2 = enc.encode(&obs);
        assert_eq!(t1.len(), TOKEN_DIM);
        assert_eq!(t1, t2);
        assert_eq!(enc.mask_token().len(), TOKEN_DIM);
        assert!(enc.num_parameters() > 1000);
    }

    #[test]
    fn different_observations_give_different_tokens() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = TokenEncoder::new(&mut rng);
        let a = Observation::default();
        let mut b = Observation::default();
        b.object_position.x = 0.5;
        let ta = enc.encode(&a);
        let tb = enc.encode(&b);
        let diff: f64 = ta.iter().zip(&tb).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6);
    }

    #[test]
    fn close_loop_encoder_handles_empty_and_multiple() {
        let mut rng = StdRng::seed_from_u64(3);
        let enc = CloseLoopEncoder::new(8, &mut rng);
        assert_eq!(enc.encode_all(&[]), vec![0.0; 8]);
        let obs = Observation::default();
        let single = enc.encode_all(std::slice::from_ref(&obs));
        assert_eq!(single, enc.encode(&obs));
        let double = enc.encode_all(&[obs, obs]);
        for (a, b) in double.iter().zip(&single) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
