//! The Corki trajectory representation and algorithm framework (paper §3).
//!
//! Instead of predicting one discrete 7-DoF action per camera frame, the
//! Corki policy predicts a *continuous trajectory* of the near future: one
//! cubic polynomial per controlled dimension (x, y, z, α, β, γ) plus a binary
//! gripper schedule.  This crate provides:
//!
//! * [`EePose`] / [`DeltaAction`] — the 7-dimensional end-effector action
//!   space shared with the baseline RoboFlamingo-style policy,
//! * [`Trajectory`] — six cubic polynomials + gripper schedule (Equation 4),
//!   with sampling, analytic derivatives and least-squares fitting from
//!   waypoints (the supervision path of Equation 5),
//! * [`waypoints`] — waypoint extraction and the adaptive-trajectory-length
//!   selection of Algorithm 1 (curvature and gripper-change tests),
//! * [`metrics`] — mean trajectory error (RMSE) and maximum per-axis
//!   trajectory distance (the Fig. 11 metrics).
//!
//! # Example
//!
//! ```
//! use corki_trajectory::{EePose, GripperState, Trajectory, CONTROL_STEP};
//! use corki_math::Vec3;
//!
//! // Fit a trajectory to 5 waypoints spaced one camera frame apart.
//! let waypoints: Vec<EePose> = (0..5)
//!     .map(|i| EePose::new(
//!         Vec3::new(0.4 + 0.01 * i as f64, 0.0, 0.3),
//!         Vec3::ZERO,
//!         GripperState::Open,
//!     ))
//!     .collect();
//! let trajectory = Trajectory::fit_waypoints(&waypoints, CONTROL_STEP).unwrap();
//! let end = trajectory.sample(trajectory.duration());
//! assert!((end.position.x - 0.44).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod metrics;
mod trajectory;
pub mod waypoints;

pub use self::trajectory::{Trajectory, TrajectoryError, TrajectorySample};
pub use action::{DeltaAction, EePose, GripperState};
pub use waypoints::{AdaptiveLengthConfig, TerminationReason, WaypointDecision};

/// The camera-frame interval of the CALVIN setup (30 Hz), which is also the
/// spacing between trajectory waypoints, in seconds.
pub const CONTROL_STEP: f64 = 1.0 / 30.0;

/// The maximum number of future steps the Corki policy predicts (the paper
/// predicts nine steps and takes between one and nine of them).
pub const MAX_PREDICTION_STEPS: usize = 9;
