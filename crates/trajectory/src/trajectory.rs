//! The cubic trajectory predicted by the Corki policy (paper §3.2).

use crate::action::{EePose, GripperState};
use crate::CONTROL_STEP;
use corki_math::{CubicPoly, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced while constructing a [`Trajectory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrajectoryError {
    /// Fewer than two waypoints were supplied to a fit.
    TooFewWaypoints {
        /// Number of waypoints provided.
        provided: usize,
    },
    /// A non-positive duration or step was supplied.
    InvalidDuration,
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::TooFewWaypoints { provided } => {
                write!(f, "trajectory fit needs at least 2 waypoints, got {provided}")
            }
            TrajectoryError::InvalidDuration => write!(f, "trajectory duration must be positive"),
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A sample of a trajectory at a particular time: pose, velocity and
/// acceleration of the six continuous dimensions plus the gripper command.
///
/// The velocity and acceleration are exactly what the TS-CTC controller needs
/// as `ẋd` and `ẍd` (paper Equation 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectorySample {
    /// Pose (position + Euler orientation + gripper).
    pub pose: EePose,
    /// Linear velocity of the reference (m/s).
    pub linear_velocity: Vec3,
    /// Euler-angle rates of the reference (rad/s).
    pub euler_rates: Vec3,
    /// Linear acceleration of the reference (m/s²).
    pub linear_acceleration: Vec3,
    /// Euler-angle accelerations (rad/s²).
    pub euler_accelerations: Vec3,
}

/// A continuous near-future trajectory: one cubic polynomial per controlled
/// dimension (`x, y, z, α, β, γ`) plus a gripper schedule with one entry per
/// control step (paper Equation 4 and Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    dims: [CubicPoly; 6],
    gripper_schedule: Vec<GripperState>,
    step: f64,
    duration: f64,
}

impl Trajectory {
    /// Builds a trajectory directly from its cubic coefficients, a gripper
    /// schedule and the waypoint spacing (`step`, seconds).
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError::InvalidDuration`] if `step` is not positive
    /// or the gripper schedule is empty.
    pub fn from_parts(
        dims: [CubicPoly; 6],
        gripper_schedule: Vec<GripperState>,
        step: f64,
    ) -> Result<Self, TrajectoryError> {
        if step <= 0.0 || gripper_schedule.is_empty() {
            return Err(TrajectoryError::InvalidDuration);
        }
        let duration = step * gripper_schedule.len() as f64;
        Ok(Trajectory { dims, gripper_schedule, step, duration })
    }

    /// Fits a trajectory to a sequence of waypoints spaced `step` seconds
    /// apart, starting at `waypoints[0]` (time 0).
    ///
    /// This is the supervision path of the Corki loss (Equation 5): the
    /// ground-truth trajectory is known at the camera rate and each dimension
    /// is fitted with a least-squares cubic.
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError::TooFewWaypoints`] with fewer than two
    /// waypoints, or [`TrajectoryError::InvalidDuration`] for a non-positive
    /// step.
    pub fn fit_waypoints(waypoints: &[EePose], step: f64) -> Result<Self, TrajectoryError> {
        let mut trajectory = Trajectory {
            dims: [CubicPoly::zero(); 6],
            gripper_schedule: Vec::with_capacity(waypoints.len().saturating_sub(1)),
            step: CONTROL_STEP,
            duration: CONTROL_STEP,
        };
        trajectory.refit_waypoints(waypoints, step)?;
        Ok(trajectory)
    }

    /// Re-fits this trajectory to a new waypoint sequence in place, reusing
    /// the gripper-schedule storage — the allocation-free fast path behind
    /// [`Trajectory::fit_waypoints`] used by the Corki inference scratch
    /// workspace. On error the trajectory is left unchanged.
    ///
    /// Bit-identical to [`Trajectory::fit_waypoints`] (the per-dimension
    /// cubics are streamed through the same normal-equation accumulation).
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError::TooFewWaypoints`] with fewer than two
    /// waypoints, or [`TrajectoryError::InvalidDuration`] for a non-positive
    /// step.
    pub fn refit_waypoints(
        &mut self,
        waypoints: &[EePose],
        step: f64,
    ) -> Result<(), TrajectoryError> {
        if waypoints.len() < 2 {
            return Err(TrajectoryError::TooFewWaypoints { provided: waypoints.len() });
        }
        if step <= 0.0 {
            return Err(TrajectoryError::InvalidDuration);
        }
        for (dim, poly) in self.dims.iter_mut().enumerate() {
            *poly = CubicPoly::fit_least_squares_iter(
                waypoints.iter().enumerate().map(|(i, w)| (i as f64 * step, w.to_array6()[dim])),
            );
        }
        // The gripper schedule covers the steps *after* the starting pose.
        self.gripper_schedule.clear();
        self.gripper_schedule.extend(waypoints[1..].iter().map(|w| w.gripper));
        self.step = step;
        self.duration = step * (waypoints.len() - 1) as f64;
        Ok(())
    }

    /// Builds a smooth point-to-point trajectory from boundary conditions
    /// (start/end pose with zero end velocities), `steps` control steps long.
    ///
    /// # Errors
    ///
    /// Returns [`TrajectoryError::InvalidDuration`] if `steps` is zero or
    /// `step` is not positive.
    pub fn point_to_point(
        start: &EePose,
        end: &EePose,
        steps: usize,
        step: f64,
    ) -> Result<Self, TrajectoryError> {
        if steps == 0 || step <= 0.0 {
            return Err(TrajectoryError::InvalidDuration);
        }
        let duration = steps as f64 * step;
        let s = start.to_array6();
        let e = end.to_array6();
        let mut dims = [CubicPoly::zero(); 6];
        for i in 0..6 {
            dims[i] = CubicPoly::from_boundary_conditions(s[i], 0.0, e[i], 0.0, duration);
        }
        let gripper_schedule = vec![end.gripper; steps];
        Ok(Trajectory { dims, gripper_schedule, step, duration })
    }

    /// The per-dimension cubic polynomials, ordered `[x, y, z, α, β, γ]`.
    pub fn coefficients(&self) -> &[CubicPoly; 6] {
        &self.dims
    }

    /// The waypoint spacing (seconds).
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Total trajectory duration (seconds).
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Number of control steps covered by the trajectory.
    pub fn num_steps(&self) -> usize {
        self.gripper_schedule.len()
    }

    /// The gripper schedule, one command per control step.
    pub fn gripper_schedule(&self) -> &[GripperState] {
        &self.gripper_schedule
    }

    /// The gripper command in force at time `t` (clamped to the schedule).
    pub fn gripper_at(&self, t: f64) -> GripperState {
        if self.gripper_schedule.is_empty() {
            return GripperState::Open;
        }
        let idx = (t / self.step).floor() as isize;
        let idx = idx.clamp(0, self.gripper_schedule.len() as isize - 1) as usize;
        self.gripper_schedule[idx]
    }

    /// Samples the trajectory pose at time `t` (clamped to `[0, duration]`).
    pub fn sample(&self, t: f64) -> EePose {
        let t = t.clamp(0.0, self.duration);
        let mut values = [0.0; 6];
        for (v, poly) in values.iter_mut().zip(&self.dims) {
            *v = poly.eval(t);
        }
        EePose::from_array6(values, self.gripper_at(t))
    }

    /// Samples pose, velocity and acceleration at time `t` — the full
    /// reference needed by one TS-CTC control cycle.
    pub fn sample_full(&self, t: f64) -> TrajectorySample {
        let t = t.clamp(0.0, self.duration);
        let mut pos = [0.0; 6];
        let mut vel = [0.0; 6];
        let mut acc = [0.0; 6];
        for i in 0..6 {
            pos[i] = self.dims[i].eval(t);
            vel[i] = self.dims[i].eval_derivative(t);
            acc[i] = self.dims[i].eval_second_derivative(t);
        }
        TrajectorySample {
            pose: EePose::from_array6(pos, self.gripper_at(t)),
            linear_velocity: Vec3::new(vel[0], vel[1], vel[2]),
            euler_rates: Vec3::new(vel[3], vel[4], vel[5]),
            linear_acceleration: Vec3::new(acc[0], acc[1], acc[2]),
            euler_accelerations: Vec3::new(acc[3], acc[4], acc[5]),
        }
    }

    /// The waypoints of the trajectory: one pose per control step, starting
    /// one step after `t = 0` and ending at the endpoint (paper Fig. 5:
    /// points `B..F`).
    pub fn waypoints(&self) -> Vec<EePose> {
        (1..=self.num_steps()).map(|i| self.sample(i as f64 * self.step)).collect()
    }

    /// Truncates the trajectory to the first `steps` control steps (early
    /// termination, paper §3.3). The polynomials are unchanged; only the
    /// executed horizon shrinks.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero or exceeds the current number of steps.
    pub fn truncated(&self, steps: usize) -> Trajectory {
        assert!(
            steps >= 1 && steps <= self.num_steps(),
            "truncated: steps must be in 1..={}",
            self.num_steps()
        );
        Trajectory {
            dims: self.dims,
            gripper_schedule: self.gripper_schedule[..steps].to_vec(),
            step: self.step,
            duration: self.step * steps as f64,
        }
    }

    /// Convenience constructor: a trajectory that holds a single pose for
    /// `steps` control steps (used when the policy is warming up).
    pub fn hold(pose: &EePose, steps: usize) -> Trajectory {
        let values = pose.to_array6();
        let mut dims = [CubicPoly::zero(); 6];
        for (d, v) in dims.iter_mut().zip(values) {
            *d = CubicPoly::constant(v);
        }
        Trajectory {
            dims,
            gripper_schedule: vec![pose.gripper; steps.max(1)],
            step: CONTROL_STEP,
            duration: CONTROL_STEP * steps.max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line_waypoints(n: usize) -> Vec<EePose> {
        (0..n)
            .map(|i| {
                EePose::new(
                    Vec3::new(0.3 + 0.01 * i as f64, -0.02 * i as f64, 0.25),
                    Vec3::new(0.0, 0.0, 0.02 * i as f64),
                    if i >= 3 { GripperState::Closed } else { GripperState::Open },
                )
            })
            .collect()
    }

    #[test]
    fn fit_interpolates_linear_waypoints_exactly() {
        let wps = line_waypoints(6);
        let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
        for (i, wp) in wps.iter().enumerate() {
            let s = traj.sample(i as f64 * CONTROL_STEP);
            assert!(s.position_distance(wp) < 1e-6, "waypoint {i} mismatch");
        }
        assert_eq!(traj.num_steps(), 5);
        assert!((traj.duration() - 5.0 * CONTROL_STEP).abs() < 1e-12);
    }

    #[test]
    fn refit_matches_fresh_fit_and_reuses_storage() {
        let first = line_waypoints(9);
        let second: Vec<EePose> = line_waypoints(6)
            .into_iter()
            .map(|mut w| {
                w.position.z += 0.05;
                w
            })
            .collect();
        let mut reused = Trajectory::fit_waypoints(&first, CONTROL_STEP).unwrap();
        let capacity_probe = reused.gripper_schedule.capacity();
        reused.refit_waypoints(&second, CONTROL_STEP).unwrap();
        let fresh = Trajectory::fit_waypoints(&second, CONTROL_STEP).unwrap();
        assert_eq!(reused, fresh);
        // Refitting to a shorter waypoint list must not shrink the buffer.
        assert_eq!(reused.gripper_schedule.capacity(), capacity_probe);
        // A failed refit leaves the trajectory untouched.
        let before = reused.clone();
        assert!(reused.refit_waypoints(&second[..1], CONTROL_STEP).is_err());
        assert!(reused.refit_waypoints(&second, -1.0).is_err());
        assert_eq!(reused, before);
    }

    #[test]
    fn fit_rejects_degenerate_inputs() {
        let wps = line_waypoints(1);
        assert_eq!(
            Trajectory::fit_waypoints(&wps, CONTROL_STEP),
            Err(TrajectoryError::TooFewWaypoints { provided: 1 })
        );
        let wps = line_waypoints(3);
        assert_eq!(Trajectory::fit_waypoints(&wps, 0.0), Err(TrajectoryError::InvalidDuration));
    }

    #[test]
    fn gripper_schedule_follows_waypoints() {
        let wps = line_waypoints(6);
        let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
        assert_eq!(traj.gripper_schedule().len(), 5);
        // Steps 3, 4, 5 are closed in the source waypoints.
        assert_eq!(traj.gripper_at(0.5 * CONTROL_STEP), GripperState::Open);
        assert_eq!(traj.gripper_at(4.5 * CONTROL_STEP), GripperState::Closed);
        // Clamping beyond the end keeps the last command.
        assert_eq!(traj.gripper_at(100.0), GripperState::Closed);
    }

    #[test]
    fn sample_full_derivatives_match_finite_differences() {
        let wps = line_waypoints(8);
        let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
        let t = 0.1;
        let eps = 1e-6;
        let s = traj.sample_full(t);
        let before = traj.sample(t - eps);
        let after = traj.sample(t + eps);
        let fd_vel = (after.position - before.position) / (2.0 * eps);
        assert!((s.linear_velocity - fd_vel).norm() < 1e-4);
    }

    #[test]
    fn point_to_point_hits_both_ends_with_zero_velocity() {
        let start = EePose::new(Vec3::new(0.3, 0.0, 0.3), Vec3::ZERO, GripperState::Open);
        let end =
            EePose::new(Vec3::new(0.45, -0.1, 0.2), Vec3::new(0.0, 0.0, 0.3), GripperState::Closed);
        let traj = Trajectory::point_to_point(&start, &end, 5, CONTROL_STEP).unwrap();
        assert!(traj.sample(0.0).position_distance(&start) < 1e-9);
        assert!(traj.sample(traj.duration()).position_distance(&end) < 1e-9);
        let s0 = traj.sample_full(0.0);
        let s1 = traj.sample_full(traj.duration());
        assert!(s0.linear_velocity.norm() < 1e-9);
        assert!(s1.linear_velocity.norm() < 1e-9);
        assert_eq!(traj.sample(traj.duration()).gripper, GripperState::Closed);
    }

    #[test]
    fn truncation_shortens_horizon_only() {
        let wps = line_waypoints(9);
        let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
        let short = traj.truncated(3);
        assert_eq!(short.num_steps(), 3);
        assert!((short.duration() - 3.0 * CONTROL_STEP).abs() < 1e-12);
        // Samples inside the shortened horizon agree with the original.
        let t = 2.5 * CONTROL_STEP;
        assert!(short.sample(t).position_distance(&traj.sample(t)) < 1e-12);
    }

    #[test]
    #[should_panic]
    fn truncation_to_zero_panics() {
        let wps = line_waypoints(5);
        let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
        let _ = traj.truncated(0);
    }

    #[test]
    fn hold_trajectory_is_constant() {
        let pose =
            EePose::new(Vec3::new(0.4, 0.1, 0.3), Vec3::new(0.1, 0.0, 0.0), GripperState::Open);
        let traj = Trajectory::hold(&pose, 4);
        for i in 0..=4 {
            let t = i as f64 * CONTROL_STEP;
            assert!(traj.sample(t).position_distance(&pose) < 1e-12);
        }
        assert_eq!(traj.num_steps(), 4);
    }

    #[test]
    fn waypoints_match_sampling() {
        let wps = line_waypoints(6);
        let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
        let extracted = traj.waypoints();
        assert_eq!(extracted.len(), 5);
        for (i, w) in extracted.iter().enumerate() {
            let t = (i + 1) as f64 * CONTROL_STEP;
            assert!(w.position_distance(&traj.sample(t)) < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn fit_waypoints_is_bit_identical_to_sample_buffer_fit(
            amplitude in -0.05..0.05f64,
            n in 2usize..11) {
            // The streamed normal-equation fit must reproduce the
            // pre-optimisation path (collect per-dimension sample buffers,
            // then the slice-based least-squares fit) bit for bit.
            let wps: Vec<EePose> = (0..n)
                .map(|i| {
                    let t = i as f64;
                    EePose::new(
                        Vec3::new(0.3 + 0.01 * t, amplitude * (t * 0.9).sin(), 0.25 + amplitude * t),
                        Vec3::new(0.0, amplitude, 0.01 * t),
                        if i % 3 == 0 { GripperState::Closed } else { GripperState::Open },
                    )
                })
                .collect();
            let fast = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
            let mut reference_dims = [CubicPoly::zero(); 6];
            for (dim, poly) in reference_dims.iter_mut().enumerate() {
                let samples: Vec<(f64, f64)> = wps
                    .iter()
                    .enumerate()
                    .map(|(i, w)| (i as f64 * CONTROL_STEP, w.to_array6()[dim]))
                    .collect();
                *poly = CubicPoly::fit_least_squares(&samples);
            }
            prop_assert_eq!(fast.coefficients(), &reference_dims);
            let schedule: Vec<GripperState> = wps[1..].iter().map(|w| w.gripper).collect();
            prop_assert_eq!(fast.gripper_schedule(), &schedule[..]);
        }

        #[test]
        fn fitted_trajectory_error_is_bounded_for_smooth_motions(
            amplitude in 0.0..0.05f64,
            steps in 3usize..9) {
            // Waypoints along a gentle sine arc — the cubic fit should stay
            // within a small bound of every waypoint.
            let wps: Vec<EePose> = (0..=steps)
                .map(|i| {
                    let t = i as f64 / steps as f64;
                    EePose::new(
                        Vec3::new(0.3 + 0.1 * t, amplitude * (std::f64::consts::PI * t).sin(), 0.3),
                        Vec3::ZERO,
                        GripperState::Open,
                    )
                })
                .collect();
            let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
            for (i, wp) in wps.iter().enumerate() {
                let s = traj.sample(i as f64 * CONTROL_STEP);
                prop_assert!(s.position_distance(wp) < 0.02);
            }
        }

        #[test]
        fn sampling_is_clamped_to_duration(t in -1.0..2.0f64) {
            let wps = line_waypoints(5);
            let traj = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
            let s = traj.sample(t);
            let clamped = traj.sample(t.clamp(0.0, traj.duration()));
            prop_assert!(s.position_distance(&clamped) < 1e-12);
        }
    }
}
