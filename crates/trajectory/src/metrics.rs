//! Trajectory comparison metrics (paper §5.1 "Trajectory Comparison" and
//! Fig. 11/12):
//!
//! * **Mean trajectory error** — the root-mean-square Euclidean distance
//!   between the predicted trajectory and the ground truth, sampled at the
//!   control step.
//! * **Maximum trajectory distance** — the largest per-axis deviation, which
//!   the paper reports separately for the X, Y and Z dimensions.

use crate::action::EePose;
use crate::trajectory::Trajectory;
use corki_math::Vec3;
use serde::{Deserialize, Serialize};

/// Summary statistics comparing a predicted trajectory against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrajectoryErrorStats {
    /// Root-mean-square Euclidean position error (metres).
    pub rmse: f64,
    /// Maximum absolute deviation along each axis (metres).
    pub max_distance: Vec3,
    /// Mean absolute gripper-command disagreement (fraction of steps).
    pub gripper_mismatch: f64,
    /// Number of samples compared.
    pub samples: usize,
}

impl TrajectoryErrorStats {
    /// Merges two statistics computed over disjoint sample sets.
    pub fn merge(&self, other: &TrajectoryErrorStats) -> TrajectoryErrorStats {
        let total = self.samples + other.samples;
        if total == 0 {
            return TrajectoryErrorStats::default();
        }
        let w1 = self.samples as f64;
        let w2 = other.samples as f64;
        TrajectoryErrorStats {
            rmse: (((self.rmse.powi(2) * w1) + (other.rmse.powi(2) * w2)) / (w1 + w2)).sqrt(),
            max_distance: Vec3::new(
                self.max_distance.x.max(other.max_distance.x),
                self.max_distance.y.max(other.max_distance.y),
                self.max_distance.z.max(other.max_distance.z),
            ),
            gripper_mismatch: (self.gripper_mismatch * w1 + other.gripper_mismatch * w2)
                / (w1 + w2),
            samples: total,
        }
    }
}

/// Compares two pose sequences sample-by-sample (they must have equal length).
///
/// # Panics
///
/// Panics if the sequences have different lengths or are empty.
pub fn compare_pose_sequences(
    predicted: &[EePose],
    ground_truth: &[EePose],
) -> TrajectoryErrorStats {
    assert_eq!(predicted.len(), ground_truth.len(), "compare_pose_sequences: length mismatch");
    assert!(!predicted.is_empty(), "compare_pose_sequences: empty input");
    let mut sum_sq = 0.0;
    let mut max_distance = Vec3::ZERO;
    let mut gripper_mismatches = 0usize;
    for (p, g) in predicted.iter().zip(ground_truth) {
        let diff = p.position - g.position;
        sum_sq += diff.norm_squared();
        max_distance = Vec3::new(
            max_distance.x.max(diff.x.abs()),
            max_distance.y.max(diff.y.abs()),
            max_distance.z.max(diff.z.abs()),
        );
        if p.gripper != g.gripper {
            gripper_mismatches += 1;
        }
    }
    let n = predicted.len() as f64;
    TrajectoryErrorStats {
        rmse: (sum_sq / n).sqrt(),
        max_distance,
        gripper_mismatch: gripper_mismatches as f64 / n,
        samples: predicted.len(),
    }
}

/// Compares a predicted [`Trajectory`] against a ground-truth waypoint
/// sequence sampled at the same control step (waypoint `i` corresponds to
/// time `i · step`, with index 0 the starting pose).
///
/// # Panics
///
/// Panics if `ground_truth` is empty.
pub fn compare_trajectory_to_waypoints(
    predicted: &Trajectory,
    ground_truth: &[EePose],
    step: f64,
) -> TrajectoryErrorStats {
    assert!(!ground_truth.is_empty(), "compare_trajectory_to_waypoints: empty ground truth");
    let sampled: Vec<EePose> =
        (0..ground_truth.len()).map(|i| predicted.sample(i as f64 * step)).collect();
    compare_pose_sequences(&sampled, ground_truth)
}

/// Per-axis traces of a rollout, used to regenerate the Fig. 12 style
/// trajectory plots (X/Y/Z value against time step).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AxisTraces {
    /// X position at each time step.
    pub x: Vec<f64>,
    /// Y position at each time step.
    pub y: Vec<f64>,
    /// Z position at each time step.
    pub z: Vec<f64>,
}

impl AxisTraces {
    /// Builds per-axis traces from a pose sequence.
    pub fn from_poses(poses: &[EePose]) -> Self {
        AxisTraces {
            x: poses.iter().map(|p| p.position.x).collect(),
            y: poses.iter().map(|p| p.position.y).collect(),
            z: poses.iter().map(|p| p.position.z).collect(),
        }
    }

    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::GripperState;
    use crate::CONTROL_STEP;

    fn poses_along_x(n: usize, offset: f64) -> Vec<EePose> {
        (0..n)
            .map(|i| {
                EePose::new(
                    Vec3::new(0.3 + 0.01 * i as f64 + offset, 0.0, 0.25),
                    Vec3::ZERO,
                    GripperState::Open,
                )
            })
            .collect()
    }

    #[test]
    fn identical_sequences_have_zero_error() {
        let poses = poses_along_x(10, 0.0);
        let stats = compare_pose_sequences(&poses, &poses);
        assert_eq!(stats.rmse, 0.0);
        assert_eq!(stats.max_distance, Vec3::ZERO);
        assert_eq!(stats.gripper_mismatch, 0.0);
        assert_eq!(stats.samples, 10);
    }

    #[test]
    fn constant_offset_gives_that_rmse() {
        let a = poses_along_x(10, 0.0);
        let b = poses_along_x(10, 0.02);
        let stats = compare_pose_sequences(&a, &b);
        assert!((stats.rmse - 0.02).abs() < 1e-12);
        assert!((stats.max_distance.x - 0.02).abs() < 1e-12);
        assert_eq!(stats.max_distance.y, 0.0);
    }

    #[test]
    fn gripper_mismatch_fraction() {
        let a = poses_along_x(4, 0.0);
        let mut b = poses_along_x(4, 0.0);
        b[0].gripper = GripperState::Closed;
        b[3].gripper = GripperState::Closed;
        let stats = compare_pose_sequences(&a, &b);
        assert!((stats.gripper_mismatch - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let a = poses_along_x(3, 0.0);
        let b = poses_along_x(4, 0.0);
        let _ = compare_pose_sequences(&a, &b);
    }

    #[test]
    fn trajectory_vs_waypoints_close_for_fitted_trajectory() {
        let poses = poses_along_x(6, 0.0);
        let traj = Trajectory::fit_waypoints(&poses, CONTROL_STEP).unwrap();
        let stats = compare_trajectory_to_waypoints(&traj, &poses, CONTROL_STEP);
        assert!(stats.rmse < 1e-6, "rmse = {}", stats.rmse);
    }

    #[test]
    fn merge_combines_sample_counts_and_maxima() {
        let a = TrajectoryErrorStats {
            rmse: 0.01,
            max_distance: Vec3::new(0.02, 0.0, 0.01),
            gripper_mismatch: 0.0,
            samples: 10,
        };
        let b = TrajectoryErrorStats {
            rmse: 0.03,
            max_distance: Vec3::new(0.01, 0.05, 0.0),
            gripper_mismatch: 0.2,
            samples: 30,
        };
        let merged = a.merge(&b);
        assert_eq!(merged.samples, 40);
        assert_eq!(merged.max_distance, Vec3::new(0.02, 0.05, 0.01));
        assert!(merged.rmse > 0.01 && merged.rmse < 0.03);
        assert!((merged.gripper_mismatch - 0.15).abs() < 1e-12);
        // Merging with an empty stat is a no-op on the non-empty side.
        let empty = TrajectoryErrorStats::default();
        let same = a.merge(&empty);
        assert!((same.rmse - a.rmse).abs() < 1e-12);
    }

    #[test]
    fn axis_traces_extract_columns() {
        let poses = poses_along_x(5, 0.0);
        let traces = AxisTraces::from_poses(&poses);
        assert_eq!(traces.len(), 5);
        assert!(!traces.is_empty());
        assert!((traces.x[4] - 0.34).abs() < 1e-12);
        assert_eq!(traces.z[0], 0.25);
    }
}
