//! The 7-dimensional end-effector action space shared by the baseline
//! (per-frame delta actions) and Corki (trajectory endpoints).

use corki_math::{Mat3, Vec3, SE3};
use serde::{Deserialize, Serialize};

/// The binary gripper command (paper Equation 1: `g` is open or closed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum GripperState {
    /// Fingers open.
    #[default]
    Open,
    /// Fingers closed (grasping).
    Closed,
}

impl GripperState {
    /// Converts from the scalar convention used by the policy head
    /// (sigmoid output ≥ 0.5 means closed).
    pub fn from_logit(value: f64) -> Self {
        if value >= 0.5 {
            GripperState::Closed
        } else {
            GripperState::Open
        }
    }

    /// The scalar training target for this state (1.0 = closed, 0.0 = open).
    pub fn to_target(self) -> f64 {
        match self {
            GripperState::Closed => 1.0,
            GripperState::Open => 0.0,
        }
    }

    /// Returns `true` when the two states differ (a gripper *change*, which
    /// Algorithm 1 treats as a significant movement).
    pub fn differs(self, other: GripperState) -> bool {
        self != other
    }
}

/// A full end-effector pose sample in the 7-dimensional action space:
/// Cartesian position, XYZ Euler orientation and the gripper state.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EePose {
    /// Cartesian position (metres, robot base frame).
    pub position: Vec3,
    /// Orientation as XYZ (roll, pitch, yaw) Euler angles (radians).
    pub euler: Vec3,
    /// Gripper state.
    pub gripper: GripperState,
}

impl EePose {
    /// Creates a pose sample.
    pub fn new(position: Vec3, euler: Vec3, gripper: GripperState) -> Self {
        EePose { position, euler, gripper }
    }

    /// Converts to an [`SE3`] rigid transform (dropping the gripper bit).
    pub fn to_se3(&self) -> SE3 {
        SE3::new(Mat3::from_euler_xyz(self.euler.x, self.euler.y, self.euler.z), self.position)
    }

    /// Builds a pose sample from an [`SE3`] transform and gripper state.
    pub fn from_se3(pose: &SE3, gripper: GripperState) -> Self {
        let (roll, pitch, yaw) = pose.euler_xyz();
        EePose { position: pose.translation, euler: Vec3::new(roll, pitch, yaw), gripper }
    }

    /// The six continuous components as an array
    /// `[x, y, z, roll, pitch, yaw]`.
    pub fn to_array6(&self) -> [f64; 6] {
        [
            self.position.x,
            self.position.y,
            self.position.z,
            self.euler.x,
            self.euler.y,
            self.euler.z,
        ]
    }

    /// Builds a pose from the six continuous components and a gripper state.
    pub fn from_array6(values: [f64; 6], gripper: GripperState) -> Self {
        EePose {
            position: Vec3::new(values[0], values[1], values[2]),
            euler: Vec3::new(values[3], values[4], values[5]),
            gripper,
        }
    }

    /// Applies a per-frame delta action (the RoboFlamingo execution model,
    /// paper Equation 1) to this pose, producing the next pose.
    pub fn apply_delta(&self, delta: &DeltaAction) -> EePose {
        EePose {
            position: self.position + delta.delta_position,
            euler: self.euler + delta.delta_euler,
            gripper: delta.gripper,
        }
    }

    /// The delta action that takes `self` to `next` in one step.
    pub fn delta_to(&self, next: &EePose) -> DeltaAction {
        DeltaAction {
            delta_position: next.position - self.position,
            delta_euler: next.euler - self.euler,
            gripper: next.gripper,
        }
    }

    /// Euclidean distance between the positions of two pose samples.
    pub fn position_distance(&self, other: &EePose) -> f64 {
        self.position.distance(other.position)
    }
}

/// A single-step action in the baseline execution model
/// `(Δx, Δy, Δz, Δα, Δβ, Δγ, g)` — paper Equation 1.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DeltaAction {
    /// Position change (metres).
    pub delta_position: Vec3,
    /// Orientation change as XYZ Euler deltas (radians).
    pub delta_euler: Vec3,
    /// Gripper command for the next step.
    pub gripper: GripperState,
}

impl DeltaAction {
    /// The identity action (no movement, gripper open).
    pub fn zero() -> Self {
        DeltaAction::default()
    }

    /// Creates a delta action.
    pub fn new(delta_position: Vec3, delta_euler: Vec3, gripper: GripperState) -> Self {
        DeltaAction { delta_position, delta_euler, gripper }
    }

    /// The seven continuous training targets
    /// `[Δx, Δy, Δz, Δα, Δβ, Δγ, g]`.
    pub fn to_array7(&self) -> [f64; 7] {
        [
            self.delta_position.x,
            self.delta_position.y,
            self.delta_position.z,
            self.delta_euler.x,
            self.delta_euler.y,
            self.delta_euler.z,
            self.gripper.to_target(),
        ]
    }

    /// Builds a delta action from the seven raw policy outputs.
    pub fn from_array7(values: [f64; 7]) -> Self {
        DeltaAction {
            delta_position: Vec3::new(values[0], values[1], values[2]),
            delta_euler: Vec3::new(values[3], values[4], values[5]),
            gripper: GripperState::from_logit(values[6]),
        }
    }

    /// Magnitude of the positional part.
    pub fn position_norm(&self) -> f64 {
        self.delta_position.norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gripper_logit_roundtrip() {
        assert_eq!(GripperState::from_logit(0.9), GripperState::Closed);
        assert_eq!(GripperState::from_logit(0.1), GripperState::Open);
        assert_eq!(GripperState::Closed.to_target(), 1.0);
        assert_eq!(GripperState::Open.to_target(), 0.0);
        assert!(GripperState::Open.differs(GripperState::Closed));
        assert!(!GripperState::Open.differs(GripperState::Open));
    }

    #[test]
    fn se3_roundtrip_preserves_pose() {
        let pose =
            EePose::new(Vec3::new(0.4, -0.1, 0.3), Vec3::new(0.2, -0.5, 1.0), GripperState::Closed);
        let back = EePose::from_se3(&pose.to_se3(), pose.gripper);
        assert!((back.position - pose.position).norm() < 1e-9);
        let orig = pose.to_se3();
        let again = back.to_se3();
        assert!((orig.rotation - again.rotation).max_abs() < 1e-9);
        assert_eq!(back.gripper, GripperState::Closed);
    }

    #[test]
    fn array6_roundtrip() {
        let pose = EePose::from_array6([1.0, 2.0, 3.0, 0.1, 0.2, 0.3], GripperState::Open);
        assert_eq!(pose.to_array6(), [1.0, 2.0, 3.0, 0.1, 0.2, 0.3]);
    }

    #[test]
    fn delta_application_and_inverse() {
        let start = EePose::new(Vec3::new(0.3, 0.0, 0.2), Vec3::ZERO, GripperState::Open);
        let delta = DeltaAction::new(
            Vec3::new(0.01, -0.02, 0.005),
            Vec3::new(0.0, 0.0, 0.05),
            GripperState::Closed,
        );
        let next = start.apply_delta(&delta);
        let recovered = start.delta_to(&next);
        assert!((recovered.delta_position - delta.delta_position).norm() < 1e-12);
        assert!((recovered.delta_euler - delta.delta_euler).norm() < 1e-12);
        assert_eq!(recovered.gripper, GripperState::Closed);
    }

    #[test]
    fn delta_array7_roundtrip() {
        let delta = DeltaAction::new(
            Vec3::new(0.01, 0.02, -0.03),
            Vec3::new(0.1, 0.0, -0.2),
            GripperState::Closed,
        );
        let arr = delta.to_array7();
        let back = DeltaAction::from_array7(arr);
        assert_eq!(back, delta);
        assert!(
            (delta.position_norm() - (0.01f64.powi(2) + 0.02f64.powi(2) + 0.03f64.powi(2)).sqrt())
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn position_distance() {
        let a = EePose::new(Vec3::new(0.0, 0.0, 0.0), Vec3::ZERO, GripperState::Open);
        let b = EePose::new(Vec3::new(3.0, 4.0, 0.0), Vec3::ZERO, GripperState::Open);
        assert_eq!(a.position_distance(&b), 5.0);
    }
}
