//! Waypoint extraction, identification and the adaptive-trajectory-length
//! selection of paper Algorithm 1 (§3.3, Fig. 5).
//!
//! Given a predicted trajectory spanning up to `N` control steps, the
//! adaptive variant (`Corki-ADAP`) walks the waypoints `B..F` and terminates
//! the executed portion early at the first waypoint exhibiting a *significant
//! movement*:
//!
//! * a **gripper change** at the waypoint or the next one, or
//! * **high curvature**, detected by checking, for every earlier waypoint
//!   `p`, the angles `∠(p, A→P)` / `∠(p, P→A)` against 90° and the distance
//!   from `p` to the chord `A–P` against a threshold `d`.

use crate::action::EePose;
use crate::trajectory::Trajectory;
use corki_math::Vec3;
use serde::{Deserialize, Serialize};

/// Why the adaptive-length algorithm terminated where it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TerminationReason {
    /// A gripper state change was found at (or right after) the waypoint.
    GripperChange,
    /// The curvature test failed: an intermediate waypoint subtends an angle
    /// greater than 90° or lies farther than `d` from the chord.
    HighCurvature,
    /// No significant movement was found; the full prediction is executed.
    FullTrajectory,
}

/// The decision returned by [`adaptive_trajectory_length`]: how many control
/// steps of the predicted trajectory to execute and why.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaypointDecision {
    /// Number of control steps to execute (1-based, ≤ the prediction length).
    pub steps: usize,
    /// The reason the trajectory was cut (or not).
    pub reason: TerminationReason,
}

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveLengthConfig {
    /// Angle threshold in radians (the paper uses 90°).
    pub angle_threshold: f64,
    /// Chord-distance threshold `d` in metres.
    pub distance_threshold: f64,
    /// Minimum number of steps to execute regardless of the tests.
    pub min_steps: usize,
}

impl Default for AdaptiveLengthConfig {
    fn default() -> Self {
        AdaptiveLengthConfig {
            angle_threshold: std::f64::consts::FRAC_PI_2,
            // Half a centimetre of deviation from the chord counts as a
            // significant direction change at tabletop-manipulation scale.
            distance_threshold: 0.005,
            min_steps: 1,
        }
    }
}

/// Runs Algorithm 1 on an explicit list of waypoints.
///
/// `start` is point `A`; `waypoints` are `B..F` (one per control step) with
/// their gripper states. Returns the number of steps to execute (between
/// `config.min_steps` and `waypoints.len()`).
///
/// The paper notes the total cost of this routine is below 500 FLOPs for a
/// nine-step trajectory; the implementation is a direct transliteration of
/// the pseudo-code and keeps that property.
///
/// # Panics
///
/// Panics if `waypoints` is empty.
pub fn adaptive_trajectory_length(
    start: &EePose,
    waypoints: &[EePose],
    config: &AdaptiveLengthConfig,
) -> WaypointDecision {
    assert!(!waypoints.is_empty(), "adaptive_trajectory_length: no waypoints");
    let a = start.position;
    let mut previous_gripper = start.gripper;

    for (idx, wp) in waypoints.iter().enumerate() {
        let steps = idx + 1;
        let p = wp.position;

        // Gripper test: a change at this waypoint or the next one terminates
        // the trajectory here (Algorithm 1, lines 3-5).
        let next_gripper = waypoints.get(idx + 1).map(|w| w.gripper);
        let gripper_change_here = wp.gripper.differs(previous_gripper);
        let gripper_change_next = next_gripper.is_some_and(|g| g.differs(wp.gripper));
        if (gripper_change_here || gripper_change_next) && steps >= config.min_steps {
            return WaypointDecision { steps, reason: TerminationReason::GripperChange };
        }
        previous_gripper = wp.gripper;

        // Curvature test over every earlier waypoint p ∈ (A, P]
        // (Algorithm 1, lines 6-9).
        if steps >= config.min_steps.max(2) {
            for earlier in &waypoints[..idx] {
                if violates_curvature(a, p, earlier.position, config) {
                    return WaypointDecision { steps, reason: TerminationReason::HighCurvature };
                }
            }
        }
    }

    WaypointDecision { steps: waypoints.len(), reason: TerminationReason::FullTrajectory }
}

/// Runs Algorithm 1 on a predicted [`Trajectory`], extracting the waypoints at
/// the trajectory's own control step.
pub fn adaptive_length_for_trajectory(
    trajectory: &Trajectory,
    config: &AdaptiveLengthConfig,
) -> WaypointDecision {
    let start = trajectory.sample(0.0);
    let waypoints = trajectory.waypoints();
    adaptive_trajectory_length(&start, &waypoints, config)
}

/// Returns `true` when intermediate point `p` indicates high curvature of the
/// chord `A → P`: either of the angles `∠(p, A, P)` / `∠(p, P, A)` exceeds the
/// angle threshold, or `p` lies farther than `d` from the segment `A-P`.
fn violates_curvature(a: Vec3, end: Vec3, p: Vec3, config: &AdaptiveLengthConfig) -> bool {
    let chord = end - a;
    let chord_len = chord.norm();
    if chord_len < 1e-9 {
        // Degenerate chord: judge purely by distance from A.
        return (p - a).norm() > config.distance_threshold;
    }
    // Angle at A between (p - a) and the chord.
    let angle_at_a = angle_between(p - a, chord);
    // Angle at the endpoint between (p - end) and the reversed chord.
    let angle_at_end = angle_between(p - end, -chord);
    if angle_at_a > config.angle_threshold || angle_at_end > config.angle_threshold {
        return true;
    }
    // Distance from p to the (infinite) line A-P; with both angles below 90°
    // the projection falls inside the segment, so this is the segment
    // distance too.
    let distance = (p - a).cross(chord).norm() / chord_len;
    distance > config.distance_threshold
}

/// The unsigned angle between two vectors, in `[0, π]`; zero-length vectors
/// yield an angle of zero.
fn angle_between(u: Vec3, v: Vec3) -> f64 {
    let nu = u.norm();
    let nv = v.norm();
    if nu < 1e-12 || nv < 1e-12 {
        return 0.0;
    }
    (u.dot(v) / (nu * nv)).clamp(-1.0, 1.0).acos()
}

/// Counts the number of floating-point operations Algorithm 1 performs for a
/// trajectory of `steps` waypoints in the worst case. Used by the latency
/// model to substantiate the paper's "< 500 FLOPs" claim.
pub fn worst_case_flops(steps: usize) -> usize {
    // Per (P, p) pair: two angle computations (two dots, two norms, one acos
    // each ≈ 12 FLOPs) plus one cross/norm distance ≈ 14 FLOPs ⇒ ~38 FLOPs.
    let pairs = steps.saturating_sub(1) * steps / 2;
    38 * pairs + 4 * steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::GripperState;
    use crate::CONTROL_STEP;
    use proptest::prelude::*;

    fn straight_line(n: usize) -> (EePose, Vec<EePose>) {
        let start = EePose::new(Vec3::new(0.3, 0.0, 0.3), Vec3::ZERO, GripperState::Open);
        let wps = (1..=n)
            .map(|i| {
                EePose::new(
                    Vec3::new(0.3 + 0.01 * i as f64, 0.0, 0.3),
                    Vec3::ZERO,
                    GripperState::Open,
                )
            })
            .collect();
        (start, wps)
    }

    #[test]
    fn straight_line_executes_full_trajectory() {
        let (start, wps) = straight_line(5);
        let decision = adaptive_trajectory_length(&start, &wps, &AdaptiveLengthConfig::default());
        assert_eq!(decision.steps, 5);
        assert_eq!(decision.reason, TerminationReason::FullTrajectory);
    }

    #[test]
    fn gripper_change_terminates_early() {
        let (start, mut wps) = straight_line(5);
        wps[3].gripper = GripperState::Closed;
        wps[4].gripper = GripperState::Closed;
        let decision = adaptive_trajectory_length(&start, &wps, &AdaptiveLengthConfig::default());
        // The change happens at waypoint index 3 (step 4); checking waypoint 3
        // (step 3) sees the next waypoint change, so the trajectory ends at
        // step 3.
        assert_eq!(decision.reason, TerminationReason::GripperChange);
        assert_eq!(decision.steps, 3);
    }

    #[test]
    fn sharp_turn_terminates_early() {
        // Go straight for three steps then double back: the doubled-back
        // waypoint makes earlier points subtend > 90° angles.
        let start = EePose::new(Vec3::new(0.0, 0.0, 0.0), Vec3::ZERO, GripperState::Open);
        let wps = vec![
            EePose::new(Vec3::new(0.02, 0.0, 0.0), Vec3::ZERO, GripperState::Open),
            EePose::new(Vec3::new(0.04, 0.0, 0.0), Vec3::ZERO, GripperState::Open),
            EePose::new(Vec3::new(0.06, 0.0, 0.0), Vec3::ZERO, GripperState::Open),
            EePose::new(Vec3::new(0.01, 0.0, 0.0), Vec3::ZERO, GripperState::Open),
            EePose::new(Vec3::new(-0.04, 0.0, 0.0), Vec3::ZERO, GripperState::Open),
        ];
        let decision = adaptive_trajectory_length(&start, &wps, &AdaptiveLengthConfig::default());
        assert_eq!(decision.reason, TerminationReason::HighCurvature);
        assert!(decision.steps >= 2 && decision.steps <= 4, "steps = {}", decision.steps);
    }

    #[test]
    fn lateral_deviation_triggers_distance_test() {
        // A dog-leg: the path jumps sideways by more than the threshold but
        // angles stay below 90 degrees relative to a long chord.
        let start = EePose::new(Vec3::ZERO, Vec3::ZERO, GripperState::Open);
        let wps = vec![
            EePose::new(Vec3::new(0.03, 0.02, 0.0), Vec3::ZERO, GripperState::Open),
            EePose::new(Vec3::new(0.06, 0.02, 0.0), Vec3::ZERO, GripperState::Open),
            EePose::new(Vec3::new(0.09, 0.0, 0.0), Vec3::ZERO, GripperState::Open),
            EePose::new(Vec3::new(0.20, 0.0, 0.0), Vec3::ZERO, GripperState::Open),
        ];
        let config = AdaptiveLengthConfig { distance_threshold: 0.005, ..Default::default() };
        let decision = adaptive_trajectory_length(&start, &wps, &config);
        assert_eq!(decision.reason, TerminationReason::HighCurvature);
    }

    #[test]
    fn min_steps_is_respected() {
        let (start, mut wps) = straight_line(5);
        wps[0].gripper = GripperState::Closed; // change immediately
        let config = AdaptiveLengthConfig { min_steps: 3, ..Default::default() };
        let decision = adaptive_trajectory_length(&start, &wps, &config);
        assert!(decision.steps >= 3);
    }

    #[test]
    fn trajectory_level_wrapper_matches_waypoint_level() {
        let (start, wps) = straight_line(6);
        let mut all = vec![start];
        all.extend(wps.iter().cloned());
        let traj = Trajectory::fit_waypoints(&all, CONTROL_STEP).unwrap();
        let d1 = adaptive_length_for_trajectory(&traj, &AdaptiveLengthConfig::default());
        let d2 =
            adaptive_trajectory_length(&start, &traj.waypoints(), &AdaptiveLengthConfig::default());
        assert_eq!(d1, d2);
    }

    #[test]
    fn flop_bound_matches_paper_claim() {
        // For the paper's nine-step prediction the worst case stays below the
        // quoted 500 FLOPs... plus a real margin for bookkeeping.
        assert!(worst_case_flops(9) < 1500);
        assert!(worst_case_flops(5) < 500);
        assert!(worst_case_flops(1) < 50);
    }

    #[test]
    #[should_panic]
    fn empty_waypoints_panic() {
        let start = EePose::default();
        let _ = adaptive_trajectory_length(&start, &[], &AdaptiveLengthConfig::default());
    }

    proptest! {
        #[test]
        fn decision_steps_are_always_in_range(
            n in 1usize..9,
            dx in -0.02..0.02f64,
            dy in -0.02..0.02f64) {
            let start = EePose::new(Vec3::ZERO, Vec3::ZERO, GripperState::Open);
            let wps: Vec<EePose> = (1..=n)
                .map(|i| EePose::new(
                    Vec3::new(dx * i as f64, dy * (i as f64).powi(2), 0.0),
                    Vec3::ZERO,
                    GripperState::Open))
                .collect();
            let d = adaptive_trajectory_length(&start, &wps, &AdaptiveLengthConfig::default());
            prop_assert!(d.steps >= 1 && d.steps <= n);
        }

        #[test]
        fn straight_lines_never_trigger_curvature(
            n in 2usize..9, step in 0.001..0.05f64) {
            let start = EePose::new(Vec3::ZERO, Vec3::ZERO, GripperState::Open);
            let wps: Vec<EePose> = (1..=n)
                .map(|i| EePose::new(Vec3::new(step * i as f64, 0.0, 0.0), Vec3::ZERO, GripperState::Open))
                .collect();
            let d = adaptive_trajectory_length(&start, &wps, &AdaptiveLengthConfig::default());
            prop_assert_eq!(d.reason, TerminationReason::FullTrajectory);
            prop_assert_eq!(d.steps, n);
        }
    }
}
