//! Mapped shared-memory segments under `/dev/shm`, plus the bounds-checked
//! accessors that carve rings, seqlock slots and bare atomics out of one.
//!
//! All unsafety lives here and in the primitives this module hands out:
//! every accessor checks bounds and alignment against the mapping before
//! materialising a pointer, and the returned primitives borrow the segment,
//! so they cannot outlive the mapping.  `corki-serve` builds entirely on
//! these safe constructors.

use std::ffi::CString;
use std::io;
use std::sync::atomic::AtomicU64;

use crate::ring::SpscRing;
use crate::seqlock::SeqlockSlot;
use crate::sys;

/// A shared-memory mapping, either a named segment under `/dev/shm` or an
/// anonymous process-private one (used by tests).
///
/// The creator *owns* the name: dropping the owner unmaps **and unlinks**
/// the segment, so a coordinator that crashes after `create` does not leak
/// `/dev/shm` entries on any unwinding exit path.  Openers only unmap.
#[derive(Debug)]
pub struct ShmSegment {
    ptr: *mut u8,
    len: usize,
    /// `Some` only for the creating side of a named segment.
    owned_name: Option<String>,
}

// The raw pointer is to a MAP_SHARED mapping designed for cross-process
// concurrent access; all reads/writes through the accessors below are
// atomic or volatile and bounds-checked.
unsafe impl Send for ShmSegment {}
unsafe impl Sync for ShmSegment {}

fn shm_path(name: &str) -> io::Result<CString> {
    if name.is_empty()
        || !name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.'))
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid shared-memory segment name `{name}`"),
        ));
    }
    CString::new(format!("/dev/shm/{name}"))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "segment name contains NUL"))
}

fn map_fd(fd: i32, len: usize) -> io::Result<*mut u8> {
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ | sys::PROT_WRITE,
            sys::MAP_SHARED,
            fd,
            0,
        )
    };
    if ptr == sys::MAP_FAILED {
        return Err(io::Error::last_os_error());
    }
    Ok(ptr.cast())
}

impl ShmSegment {
    /// Creates (exclusively) and maps a named segment of `len` bytes under
    /// `/dev/shm`, zero-filled.  Fails if the name already exists — callers
    /// that want to recover from a stale segment [`unlink`](Self::unlink)
    /// it first.
    pub fn create(name: &str, len: usize) -> io::Result<Self> {
        let path = shm_path(name)?;
        assert!(len > 0, "a shared-memory segment needs a non-zero size");
        let fd =
            unsafe { sys::open(path.as_ptr(), sys::O_RDWR | sys::O_CREAT | sys::O_EXCL, 0o600) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let result = (|| {
            if unsafe { sys::ftruncate(fd, len as i64) } != 0 {
                return Err(io::Error::last_os_error());
            }
            map_fd(fd, len)
        })();
        unsafe { sys::close(fd) };
        match result {
            Ok(ptr) => Ok(ShmSegment { ptr, len, owned_name: Some(name.to_owned()) }),
            Err(err) => {
                unsafe { sys::unlink(path.as_ptr()) };
                Err(err)
            }
        }
    }

    /// Opens and maps an existing named segment of `len` bytes.  The opener
    /// never unlinks the name — that stays with the creator.
    pub fn open(name: &str, len: usize) -> io::Result<Self> {
        let path = shm_path(name)?;
        assert!(len > 0, "a shared-memory segment needs a non-zero size");
        let fd = unsafe { sys::open(path.as_ptr(), sys::O_RDWR, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let result = map_fd(fd, len);
        unsafe { sys::close(fd) };
        Ok(ShmSegment { ptr: result?, len, owned_name: None })
    }

    /// An anonymous `MAP_SHARED` mapping with no `/dev/shm` entry.  It has
    /// the exact memory semantics of a named segment (tests exercise the
    /// ring/seqlock primitives on it without touching the filesystem).
    pub fn anonymous(len: usize) -> io::Result<Self> {
        assert!(len > 0, "a shared-memory segment needs a non-zero size");
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED | sys::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        Ok(ShmSegment { ptr: ptr.cast(), len, owned_name: None })
    }

    /// Removes a named segment without mapping it (stale-segment cleanup).
    pub fn unlink(name: &str) -> io::Result<()> {
        let path = shm_path(name)?;
        if unsafe { sys::unlink(path.as_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Size of the mapping, bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never: construction rejects zero).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounds- and alignment-checked pointer to `size` bytes at `offset`.
    pub(crate) fn range(&self, offset: usize, size: usize, align: usize) -> *mut u8 {
        assert!(
            offset.checked_add(size).is_some_and(|end| end <= self.len),
            "segment range {offset}+{size} exceeds mapping of {} bytes",
            self.len
        );
        assert_eq!(offset % align, 0, "segment offset {offset} is not {align}-byte aligned");
        // The mapping itself is page-aligned, so offset alignment suffices.
        unsafe { self.ptr.add(offset) }
    }

    /// A bare shared atomic at `offset` (8-byte aligned, within bounds) —
    /// the building block for epoch barriers, abort flags and the
    /// link-arbiter clock of the live path.
    pub fn atomic_u64(&self, offset: usize) -> &AtomicU64 {
        let ptr = self.range(offset, 8, 8);
        unsafe { &*ptr.cast::<AtomicU64>() }
    }

    /// A bounds-checked slice of `len` bare shared atomics starting at
    /// `offset` (8-byte aligned) — the backing store for telemetry pages:
    /// arrays of monotonic counters written by one process and snapshot
    /// by another without any further framing.
    pub fn atomic_u64_array(&self, offset: usize, len: usize) -> &[AtomicU64] {
        let size = len.checked_mul(8).expect("atomic array size overflows");
        let ptr = self.range(offset, size, 8);
        unsafe { std::slice::from_raw_parts(ptr.cast::<AtomicU64>(), len) }
    }

    /// Initialises an SPSC ring of `capacity` slots of `slot_size` bytes at
    /// `offset` (creator side; the memory must not be shared yet).
    pub fn init_ring(&self, offset: usize, capacity: usize, slot_size: usize) -> SpscRing<'_> {
        let size = SpscRing::required_size(capacity, slot_size);
        SpscRing::init(self.range(offset, size, 64), capacity, slot_size)
    }

    /// Attaches to a ring previously initialised at `offset`, validating
    /// its magic and geometry against the mapping bounds.
    pub fn ring(&self, offset: usize) -> io::Result<SpscRing<'_>> {
        SpscRing::attach(self.range(offset, SpscRing::HEADER_SIZE, 64), self.len - offset)
    }

    /// Initialises a seqlock snapshot slot of `data_len` payload bytes at
    /// `offset` (creator side).
    pub fn init_seqlock(&self, offset: usize, data_len: usize) -> SeqlockSlot<'_> {
        let size = SeqlockSlot::required_size(data_len);
        SeqlockSlot::init(self.range(offset, size, 64), data_len)
    }

    /// Attaches to a seqlock slot previously initialised at `offset`.
    pub fn seqlock(&self, offset: usize) -> io::Result<SeqlockSlot<'_>> {
        SeqlockSlot::attach(self.range(offset, SeqlockSlot::HEADER_SIZE, 64), self.len - offset)
    }
}

impl Drop for ShmSegment {
    fn drop(&mut self) {
        unsafe { sys::munmap(self.ptr.cast(), self.len) };
        if let Some(name) = self.owned_name.take() {
            let _ = ShmSegment::unlink(&name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_name(tag: &str) -> String {
        format!("corki-test-{tag}-{}", std::process::id())
    }

    #[test]
    fn create_open_share_and_unlink_on_drop() {
        let name = unique_name("shm");
        let _ = ShmSegment::unlink(&name);
        let creator = ShmSegment::create(&name, 4096).expect("create");
        let opener = ShmSegment::open(&name, 4096).expect("open");
        creator.atomic_u64(128).store(0xDEAD_BEEF, std::sync::atomic::Ordering::Release);
        assert_eq!(
            opener.atomic_u64(128).load(std::sync::atomic::Ordering::Acquire),
            0xDEAD_BEEF,
            "both mappings must see the same memory"
        );
        assert!(ShmSegment::create(&name, 4096).is_err(), "exclusive create must refuse");
        drop(opener);
        drop(creator);
        assert!(ShmSegment::open(&name, 4096).is_err(), "the owner's drop must unlink the segment");
    }

    #[test]
    fn rejects_hostile_names() {
        for bad in ["", "../etc/passwd", "a/b", "nul\0byte"] {
            assert!(ShmSegment::create(bad, 64).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds mapping")]
    fn out_of_bounds_accessors_panic() {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let _ = seg.atomic_u64(4096);
    }

    #[test]
    fn atomic_array_shares_memory_with_scalar_accessors() {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let words = seg.atomic_u64_array(64, 8);
        assert_eq!(words.len(), 8);
        words[3].store(42, std::sync::atomic::Ordering::Release);
        assert_eq!(
            seg.atomic_u64(64 + 3 * 8).load(std::sync::atomic::Ordering::Acquire),
            42,
            "the array view and the scalar view must alias the same words"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds mapping")]
    fn out_of_bounds_atomic_array_panics() {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let _ = seg.atomic_u64_array(4032, 9);
    }
}
