//! The monotonic clock the live path timestamps with.
//!
//! Every process of a live run samples the *same* kernel clock
//! (`CLOCK_MONOTONIC`), so nanosecond timestamps taken on different sides
//! of a ring are directly comparable — that is what makes the per-hop
//! transit measurements (request send → coordinator receive, …) meaningful
//! without any cross-process clock synchronisation step.

use crate::sys;

/// Nanoseconds on `CLOCK_MONOTONIC` (comparable across the processes of a
/// live run; the epoch is unspecified, so only differences are meaningful).
pub fn monotonic_ns() -> u64 {
    let mut ts = sys::Timespec { tv_sec: 0, tv_nsec: 0 };
    let rc = unsafe { sys::clock_gettime(sys::CLOCK_MONOTONIC, &mut ts) };
    assert_eq!(rc, 0, "CLOCK_MONOTONIC must be available");
    (ts.tv_sec as u64) * 1_000_000_000 + ts.tv_nsec as u64
}

#[cfg(test)]
mod tests {
    use super::monotonic_ns;

    #[test]
    fn the_clock_is_monotonic_and_advances() {
        let a = monotonic_ns();
        let mut b = monotonic_ns();
        assert!(b >= a);
        // A 1 ms sleep must advance the clock by a visible amount.
        std::thread::sleep(std::time::Duration::from_millis(1));
        b = monotonic_ns();
        assert!(b - a >= 500_000, "clock advanced only {} ns across a 1 ms sleep", b - a);
    }
}
