//! Lock-free single-producer/single-consumer rings of fixed-size slots
//! over shared memory.
//!
//! Head and tail are free-running 64-bit counters on their own cache lines
//! (no false sharing between producer and consumer); `tail − head` is the
//! occupancy, the slot index is the counter modulo the capacity.  The
//! producer publishes a slot with a release store of `tail + 1`; the
//! consumer acquires it before reading, so each slot's bytes are written
//! and read by exactly one side at a time — no seqlock needed, and a full
//! ring simply refuses the push (backpressure, never overwrite).

use std::io;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies an initialised ring header in shared memory.
const RING_MAGIC: u64 = 0x434f_524b_4952_4e47; // "CORKIRNG"

#[repr(C)]
struct RingHeader {
    /// Consumer counter: slots `[0, head)` have been consumed.
    head: AtomicU64,
    _pad0: [u8; 56],
    /// Producer counter: slots `[0, tail)` have been published.
    tail: AtomicU64,
    _pad1: [u8; 56],
    magic: AtomicU64,
    capacity: AtomicU64,
    slot_size: AtomicU64,
    _pad2: [u8; 40],
}

/// A single-producer/single-consumer ring of fixed-size slots laid out in
/// a [`ShmSegment`](crate::ShmSegment).  Obtain one with
/// [`ShmSegment::init_ring`](crate::ShmSegment::init_ring) (creator) or
/// [`ShmSegment::ring`](crate::ShmSegment::ring) (attacher); the borrow
/// keeps the mapping alive for the ring's lifetime.
///
/// The SPSC contract is per *role*: at most one process pushes and at most
/// one pops.  Both handles are `Send`/`Sync` because pushes and pops are
/// individually atomic — but two concurrent pushers (or poppers) would
/// race for the same slot, so the live path dedicates one ring per
/// direction per peer.
pub struct SpscRing<'a> {
    hdr: &'a RingHeader,
    slots: *mut u8,
    capacity: u64,
    slot_size: usize,
    _segment: PhantomData<&'a ()>,
}

unsafe impl Send for SpscRing<'_> {}
unsafe impl Sync for SpscRing<'_> {}

impl<'a> SpscRing<'a> {
    /// Bytes of the ring header (three padded cache lines).
    pub const HEADER_SIZE: usize = std::mem::size_of::<RingHeader>();

    /// Total bytes a ring of `capacity` slots of `slot_size` bytes needs,
    /// rounded up to whole cache lines so consecutive rings never share
    /// one.
    pub fn required_size(capacity: usize, slot_size: usize) -> usize {
        let raw = Self::HEADER_SIZE + capacity * slot_size;
        raw.div_ceil(64) * 64
    }

    pub(crate) fn init(mem: *mut u8, capacity: usize, slot_size: usize) -> SpscRing<'a> {
        assert!(capacity > 0, "a ring needs at least one slot");
        assert!(
            slot_size > 0 && slot_size.is_multiple_of(8),
            "slot size must be a positive multiple of 8"
        );
        let hdr = unsafe { &*(mem as *const RingHeader) };
        hdr.head.store(0, Ordering::Relaxed);
        hdr.tail.store(0, Ordering::Relaxed);
        hdr.capacity.store(capacity as u64, Ordering::Relaxed);
        hdr.slot_size.store(slot_size as u64, Ordering::Relaxed);
        // The magic is published last: an attacher that sees it also sees
        // the geometry.
        hdr.magic.store(RING_MAGIC, Ordering::Release);
        SpscRing {
            hdr,
            slots: unsafe { mem.add(Self::HEADER_SIZE) },
            capacity: capacity as u64,
            slot_size,
            _segment: PhantomData,
        }
    }

    pub(crate) fn attach(mem: *mut u8, available: usize) -> io::Result<SpscRing<'a>> {
        let hdr = unsafe { &*(mem as *const RingHeader) };
        if hdr.magic.load(Ordering::Acquire) != RING_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "no initialised ring at this segment offset",
            ));
        }
        let capacity = hdr.capacity.load(Ordering::Relaxed);
        let slot_size = hdr.slot_size.load(Ordering::Relaxed) as usize;
        let needed = Self::required_size(capacity as usize, slot_size);
        if capacity == 0 || slot_size == 0 || needed > available {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ring geometry {capacity}x{slot_size} exceeds the mapped segment"),
            ));
        }
        Ok(SpscRing {
            hdr,
            slots: unsafe { mem.add(Self::HEADER_SIZE) },
            capacity,
            slot_size,
            _segment: PhantomData,
        })
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Payload bytes per slot.
    pub fn slot_size(&self) -> usize {
        self.slot_size
    }

    /// Slots currently occupied (a racy snapshot when both sides run).
    pub fn len(&self) -> usize {
        let tail = self.hdr.tail.load(Ordering::Acquire);
        let head = self.hdr.head.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring currently holds no messages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes one message (exactly [`slot_size`](Self::slot_size)
    /// bytes).  Returns `false` — leaving the ring untouched — when the
    /// ring is full: the producer backs off instead of overwriting.
    pub fn try_push(&self, msg: &[u8]) -> bool {
        assert_eq!(msg.len(), self.slot_size, "message must fill the slot exactly");
        let tail = self.hdr.tail.load(Ordering::Relaxed); // producer-owned
        let head = self.hdr.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.capacity {
            return false;
        }
        let slot = unsafe { self.slots.add((tail % self.capacity) as usize * self.slot_size) };
        unsafe { std::ptr::copy_nonoverlapping(msg.as_ptr(), slot, self.slot_size) };
        self.hdr.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumes one message into `out` (exactly
    /// [`slot_size`](Self::slot_size) bytes).  Returns `false` when the
    /// ring is empty.
    pub fn try_pop(&self, out: &mut [u8]) -> bool {
        assert_eq!(out.len(), self.slot_size, "output buffer must match the slot size");
        let head = self.hdr.head.load(Ordering::Relaxed); // consumer-owned
        let tail = self.hdr.tail.load(Ordering::Acquire);
        if head == tail {
            return false;
        }
        let slot = unsafe { self.slots.add((head % self.capacity) as usize * self.slot_size) };
        unsafe { std::ptr::copy_nonoverlapping(slot, out.as_mut_ptr(), self.slot_size) };
        self.hdr.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::ShmSegment;

    #[test]
    fn wraparound_preserves_fifo_order_across_many_laps() {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let ring = seg.init_ring(0, 4, 8);
        let mut sent = 0_u64;
        let mut received = 0_u64;
        let mut buf = [0_u8; 8];
        // 1000 messages through a 4-slot ring: 250 laps of the counters.
        while received < 1000 {
            while sent < 1000 && ring.try_push(&sent.to_le_bytes()) {
                sent += 1;
            }
            while ring.try_pop(&mut buf) {
                assert_eq!(u64::from_le_bytes(buf), received, "FIFO order across wraparound");
                received += 1;
            }
        }
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_refuses_pushes_until_drained() {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let ring = seg.init_ring(0, 3, 8);
        for i in 0_u64..3 {
            assert!(ring.try_push(&i.to_le_bytes()), "slot {i} fits");
        }
        assert_eq!(ring.len(), 3);
        assert!(!ring.try_push(&99_u64.to_le_bytes()), "a full ring must refuse");
        assert!(!ring.try_push(&99_u64.to_le_bytes()), "and keep refusing");
        let mut buf = [0_u8; 8];
        assert!(ring.try_pop(&mut buf));
        assert_eq!(u64::from_le_bytes(buf), 0, "backpressure never overwrote slot 0");
        assert!(ring.try_push(&3_u64.to_le_bytes()), "one pop frees one slot");
        assert!(!ring.try_push(&4_u64.to_le_bytes()));
        for expected in 1_u64..4 {
            assert!(ring.try_pop(&mut buf));
            assert_eq!(u64::from_le_bytes(buf), expected);
        }
        assert!(!ring.try_pop(&mut buf), "drained ring is empty");
    }

    #[test]
    fn attach_sees_the_initialised_geometry_and_contents() {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let producer = seg.init_ring(64, 8, 16);
        let mut msg = [0_u8; 16];
        msg[..8].copy_from_slice(&7_u64.to_le_bytes());
        msg[8..].copy_from_slice(&11_u64.to_le_bytes());
        assert!(producer.try_push(&msg));
        let consumer = seg.ring(64).expect("attach");
        assert_eq!(consumer.capacity(), 8);
        assert_eq!(consumer.slot_size(), 16);
        let mut out = [0_u8; 16];
        assert!(consumer.try_pop(&mut out));
        assert_eq!(out, msg);
        assert!(seg.ring(1024).is_err(), "uninitialised offsets must not attach");
    }

    #[test]
    fn cross_thread_transfer_is_in_order_and_complete() {
        let seg = ShmSegment::anonymous(1 << 16).expect("map");
        seg.init_ring(0, 16, 8);
        const COUNT: u64 = 20_000;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let ring = seg.ring(0).expect("attach producer");
                for i in 0..COUNT {
                    while !ring.try_push(&i.to_le_bytes()) {
                        std::thread::yield_now(); // single-core hosts: let the consumer drain
                    }
                }
            });
            scope.spawn(|| {
                let ring = seg.ring(0).expect("attach consumer");
                let mut buf = [0_u8; 8];
                for expected in 0..COUNT {
                    while !ring.try_pop(&mut buf) {
                        std::thread::yield_now();
                    }
                    assert_eq!(
                        u64::from_le_bytes(buf),
                        expected,
                        "messages must arrive exactly once, in order"
                    );
                }
            });
        });
    }
}
