//! Shared-memory IPC primitives for the live fleet-serving path.
//!
//! The live runtime (`corki-serve`) moves fixed-size messages between a
//! coordinator, robot-client processes and inference-worker processes over
//! one mmap'd `/dev/shm` segment per run:
//!
//! - [`ShmSegment`] — creates/opens the segment and hands out
//!   bounds-checked views of it;
//! - [`SpscRing`] — single-producer/single-consumer rings of fixed-size
//!   slots (request and completion queues), with backpressure instead of
//!   overwrites;
//! - [`SeqlockSlot`] — single-writer broadcast snapshots readers copy
//!   tear-free without blocking the writer (plan responses);
//! - [`monotonic_ns`] — the shared `CLOCK_MONOTONIC` timebase that makes
//!   timestamps comparable across the processes of a run.
//!
//! This is the only crate of the workspace that contains `unsafe` — the
//! system crate `forbid`s it — and it keeps the surface small: a handful
//! of `extern "C"` declarations ([`sys`]) against the C library `std`
//! already links (the environment has no registry access, so no `libc`
//! crate), and the pointer arithmetic behind the two primitives.  Callers
//! get a safe API: all offsets are bounds- and alignment-checked against
//! the mapping, and rings/slots borrow the segment so they cannot outlive
//! it.

#![warn(missing_docs)]

mod ring;
mod seqlock;
mod shm;
pub mod sys;
mod time;

pub use ring::SpscRing;
pub use seqlock::SeqlockSlot;
pub use shm::ShmSegment;
pub use time::monotonic_ns;
