//! Seqlock-protected snapshot slots: one writer publishes a fixed-size
//! record, any number of readers take tear-free copies without ever
//! blocking the writer.
//!
//! The sequence word starts even; the writer bumps it odd, overwrites the
//! payload, then bumps it even again with a release store.  A reader loads
//! the sequence, copies the payload with volatile word reads, and accepts
//! the copy only if the sequence was even and unchanged across the copy —
//! otherwise the copy may be torn and is retried.  This is the classic
//! Linux-kernel/crossbeam pattern; volatile per-word copies keep the
//! compiler from caching or widening the racing accesses.

use std::io;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Identifies an initialised seqlock header in shared memory.
const SEQLOCK_MAGIC: u64 = 0x434f_524b_5345_5156; // "CORKSEQV"

#[repr(C)]
struct SeqHeader {
    /// Even = stable, odd = write in progress; publish count = `seq / 2`.
    seq: AtomicU64,
    data_len: AtomicU64,
    magic: AtomicU64,
    _pad: [u8; 40],
}

/// A seqlock snapshot slot laid out in a
/// [`ShmSegment`](crate::ShmSegment).  Obtain one with
/// [`ShmSegment::init_seqlock`](crate::ShmSegment::init_seqlock) (creator)
/// or [`ShmSegment::seqlock`](crate::ShmSegment::seqlock) (attacher).
///
/// At most one process may call [`write`](Self::write); any number may
/// read.  The payload length is fixed at init time and must be a multiple
/// of 8 (the copy granularity).
pub struct SeqlockSlot<'a> {
    hdr: &'a SeqHeader,
    data: *mut u64,
    words: usize,
    _segment: PhantomData<&'a ()>,
}

unsafe impl Send for SeqlockSlot<'_> {}
unsafe impl Sync for SeqlockSlot<'_> {}

impl<'a> SeqlockSlot<'a> {
    /// Bytes of the seqlock header (one padded cache line).
    pub const HEADER_SIZE: usize = std::mem::size_of::<SeqHeader>();

    /// Total bytes a slot of `data_len` payload bytes needs, rounded up to
    /// whole cache lines.
    pub fn required_size(data_len: usize) -> usize {
        (Self::HEADER_SIZE + data_len).div_ceil(64) * 64
    }

    pub(crate) fn init(mem: *mut u8, data_len: usize) -> SeqlockSlot<'a> {
        assert!(
            data_len > 0 && data_len.is_multiple_of(8),
            "seqlock payload must be a positive multiple of 8 bytes"
        );
        let hdr = unsafe { &*(mem as *const SeqHeader) };
        hdr.seq.store(0, Ordering::Relaxed);
        hdr.data_len.store(data_len as u64, Ordering::Relaxed);
        hdr.magic.store(SEQLOCK_MAGIC, Ordering::Release);
        SeqlockSlot {
            hdr,
            data: unsafe { mem.add(Self::HEADER_SIZE).cast() },
            words: data_len / 8,
            _segment: PhantomData,
        }
    }

    pub(crate) fn attach(mem: *mut u8, available: usize) -> io::Result<SeqlockSlot<'a>> {
        let hdr = unsafe { &*(mem as *const SeqHeader) };
        if hdr.magic.load(Ordering::Acquire) != SEQLOCK_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "no initialised seqlock at this segment offset",
            ));
        }
        let data_len = hdr.data_len.load(Ordering::Relaxed) as usize;
        if data_len == 0 || !data_len.is_multiple_of(8) || Self::required_size(data_len) > available
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("seqlock payload of {data_len} bytes exceeds the mapped segment"),
            ));
        }
        Ok(SeqlockSlot {
            hdr,
            data: unsafe { mem.add(Self::HEADER_SIZE).cast() },
            words: data_len / 8,
            _segment: PhantomData,
        })
    }

    /// Payload bytes per snapshot.
    pub fn data_len(&self) -> usize {
        self.words * 8
    }

    /// Number of snapshots published so far.
    pub fn version(&self) -> u64 {
        self.hdr.seq.load(Ordering::Acquire) / 2
    }

    /// Publishes a new snapshot (single writer only).
    pub fn write(&self, payload: &[u8]) {
        assert_eq!(payload.len(), self.data_len(), "payload must fill the slot exactly");
        let seq = self.hdr.seq.load(Ordering::Relaxed);
        debug_assert_eq!(seq % 2, 0, "a second concurrent writer corrupted the seqlock");
        self.hdr.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        for word in 0..self.words {
            let value = u64::from_le_bytes(payload[word * 8..word * 8 + 8].try_into().unwrap());
            unsafe { self.data.add(word).write_volatile(value) };
        }
        self.hdr.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// One snapshot attempt: copies the payload into `out` and returns the
    /// publish count, or `None` if a concurrent write made the copy
    /// potentially torn (the caller retries; `out` then holds garbage).
    pub fn try_read(&self, out: &mut [u8]) -> Option<u64> {
        assert_eq!(out.len(), self.data_len(), "output buffer must match the payload size");
        let before = self.hdr.seq.load(Ordering::Acquire);
        if before % 2 == 1 {
            return None; // A write is in progress.
        }
        for word in 0..self.words {
            let value = unsafe { self.data.add(word).read_volatile() };
            out[word * 8..word * 8 + 8].copy_from_slice(&value.to_le_bytes());
        }
        fence(Ordering::Acquire);
        (self.hdr.seq.load(Ordering::Relaxed) == before).then_some(before / 2)
    }

    /// Takes a consistent snapshot, retrying across concurrent writes, and
    /// returns the publish count alongside.  Retries spin briefly, then
    /// yield the CPU — on a single-core host a pure spin would otherwise
    /// burn the writer's entire timeslice.
    pub fn read(&self, out: &mut [u8]) -> u64 {
        let mut attempts = 0_u32;
        loop {
            if let Some(version) = self.try_read(out) {
                return version;
            }
            attempts += 1;
            if attempts.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ShmSegment;

    #[test]
    fn versions_count_publishes_and_reads_round_trip() {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let slot = seg.init_seqlock(0, 32);
        let mut out = [0_u8; 32];
        assert_eq!(slot.try_read(&mut out), Some(0), "an initialised slot reads as version 0");
        assert_eq!(out, [0_u8; 32], "zero-filled before the first publish");
        let payload = [0xAB_u8; 32];
        slot.write(&payload);
        let reader = seg.seqlock(0).expect("attach");
        assert_eq!(reader.read(&mut out), 1);
        assert_eq!(out, payload);
        slot.write(&[0x11_u8; 32]);
        slot.write(&[0x22_u8; 32]);
        assert_eq!(reader.read(&mut out), 3);
        assert_eq!(out, [0x22_u8; 32]);
        assert!(seg.seqlock(2048).is_err(), "uninitialised offsets must not attach");
    }

    #[test]
    fn concurrent_writer_never_yields_a_torn_snapshot() {
        // The writer publishes uniform-byte payloads (all 0x00, all 0x01,
        // …); any mix of bytes in an accepted snapshot is a torn read.
        const LEN: usize = 512; // Large payload: torn windows are wide.
        let seg = ShmSegment::anonymous(8192).expect("map");
        seg.init_seqlock(0, LEN);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let slot = seg.seqlock(0).expect("attach writer");
                let mut value = 0_u8;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    value = value.wrapping_add(1);
                    slot.write(&[value; LEN]);
                }
            });
            scope.spawn(|| {
                let slot = seg.seqlock(0).expect("attach reader");
                let mut out = [0_u8; LEN];
                let mut accepted = 0_u64;
                let mut last_version = 0_u64;
                while accepted < 5_000 {
                    let version = slot.read(&mut out);
                    let first = out[0];
                    assert!(
                        out.iter().all(|&b| b == first),
                        "torn snapshot at version {version}: {:?} != {first}",
                        out.iter().find(|&&b| b != first)
                    );
                    assert!(version >= last_version, "versions must be monotonic");
                    last_version = version;
                    accepted += 1;
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
    }
}
