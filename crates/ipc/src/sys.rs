//! The minimal `extern "C"` surface the crate needs: file descriptors,
//! memory mapping and the monotonic clock.
//!
//! The workspace has no registry access, so instead of a `libc` dependency
//! these symbols are declared directly against the C library that `std`
//! already links.  Constants are the Linux/x86-64 + AArch64 values (the
//! only platforms the workspace targets); `off_t`, `time_t` and pointers
//! are all 64-bit there.

use std::os::raw::{c_char, c_int, c_void};

/// `open(2)` flag: read/write access.
pub const O_RDWR: c_int = 0o2;
/// `open(2)` flag: create the file if it does not exist.
pub const O_CREAT: c_int = 0o100;
/// `open(2)` flag: fail if the file already exists (with [`O_CREAT`]).
pub const O_EXCL: c_int = 0o200;
/// `mmap(2)` protection: readable pages.
pub const PROT_READ: c_int = 1;
/// `mmap(2)` protection: writable pages.
pub const PROT_WRITE: c_int = 2;
/// `mmap(2)` flag: updates are visible to other mappings of the file.
pub const MAP_SHARED: c_int = 1;
/// `mmap(2)` flag: anonymous mapping, no backing file (`fd = -1`).
pub const MAP_ANONYMOUS: c_int = 0x20;
/// `clock_gettime(2)` clock id: monotonic since an unspecified epoch.
pub const CLOCK_MONOTONIC: c_int = 1;

/// The value `mmap(2)` returns on failure.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

/// `struct timespec` on 64-bit Linux.
#[repr(C)]
pub struct Timespec {
    /// Whole seconds.
    pub tv_sec: i64,
    /// Nanoseconds within the second, `[0, 1e9)`.
    pub tv_nsec: i64,
}

extern "C" {
    /// `open(2)`.  Declared variadic in C; the mode is only read when
    /// [`O_CREAT`] is set, and on the SysV x86-64 and AAPCS64 calling
    /// conventions a third register argument is call-compatible with the
    /// variadic form.
    pub fn open(path: *const c_char, flags: c_int, mode: c_int) -> c_int;
    /// `close(2)`.
    pub fn close(fd: c_int) -> c_int;
    /// `ftruncate(2)` (`off_t` is 64-bit on the targeted platforms).
    pub fn ftruncate(fd: c_int, length: i64) -> c_int;
    /// `mmap(2)`.
    pub fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    /// `munmap(2)`.
    pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    /// `unlink(2)`.
    pub fn unlink(path: *const c_char) -> c_int;
    /// `clock_gettime(2)`.
    pub fn clock_gettime(clock: c_int, tp: *mut Timespec) -> c_int;
}
