//! Property test: under any interleaving of pushes and pops, an SPSC ring
//! behaves exactly like a bounded `VecDeque` — same accept/refuse
//! decisions, same values, same order.

use std::collections::VecDeque;

use corki_ipc::ShmSegment;
use proptest::prelude::*;

proptest! {
    #[test]
    fn ring_matches_a_bounded_vecdeque_model(
        capacity in 1usize..9,
        ops in proptest::collection::vec((0u8..2, 0u64..u64::MAX), 256),
    ) {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let ring = seg.init_ring(0, capacity, 8);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut buf = [0_u8; 8];
        for (op, value) in ops {
            if op == 0 {
                let accepted = ring.try_push(&value.to_le_bytes());
                prop_assert_eq!(accepted, model.len() < capacity);
                if accepted {
                    model.push_back(value);
                }
            } else {
                let got = ring.try_pop(&mut buf).then(|| u64::from_le_bytes(buf));
                prop_assert_eq!(got, model.pop_front());
            }
            prop_assert_eq!(ring.len(), model.len());
            prop_assert_eq!(ring.is_empty(), model.is_empty());
        }
        // Drain: everything still queued comes out in order.
        while let Some(expected) = model.pop_front() {
            prop_assert!(ring.try_pop(&mut buf));
            prop_assert_eq!(u64::from_le_bytes(buf), expected);
        }
        prop_assert!(ring.is_empty());
    }

    #[test]
    fn seqlock_snapshots_always_match_some_published_payload(
        writes in proptest::collection::vec(0u64..u64::MAX, 64),
    ) {
        let seg = ShmSegment::anonymous(4096).expect("map");
        let slot = seg.init_seqlock(0, 64);
        let mut out = [0_u8; 64];
        for (i, seed) in writes.iter().enumerate() {
            let mut payload = [0_u8; 64];
            for word in 0..8 {
                payload[word * 8..word * 8 + 8]
                    .copy_from_slice(&seed.wrapping_mul(word as u64 + 1).to_le_bytes());
            }
            slot.write(&payload);
            let version = slot.read(&mut out);
            prop_assert_eq!(version, i as u64 + 1);
            prop_assert_eq!(out, payload);
        }
    }
}
