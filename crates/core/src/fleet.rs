//! Fleet-serving experiments: how many robots can one inference server
//! (or a routed pool of servers) sustain, and how do trajectory length,
//! batch scheduling and device composition move that number?
//!
//! This is the experiment layer on top of the discrete-event fleet runtime
//! in `corki_system::fleet`.  A sweep runs robots-per-server × variant ×
//! scheduler × pool-size × device-composition cells and reports, per cell,
//! fleet throughput, end-to-end plan latency (mean/p99), server queueing
//! delay (mean/p99) and pool utilisation.  [`robots_within_budget`] then
//! condenses the sweep into the paper's serving claim: because one Corki
//! inference buys a multi-step trajectory, longer trajectories lower the
//! per-robot request rate and raise the number of robots a server sustains
//! within a latency budget.
//!
//! Since the `ScenarioSpec` redesign every sweep path runs through the
//! declarative scenario layer ([`corki_system::scenario`], re-exported as
//! [`crate::scenario`]): [`FleetExperiment`] is now a convenience *shim*
//! that [builds a spec](FleetExperiment::to_scenario), and the sweep itself
//! runs the spec's expanded cells ([`scenario_sweep`]).  That makes every
//! shape a spec can describe — mixed-*variant* fleets, per-group on-robot
//! devices, heterogeneous pools — first-class in [`FleetSweepRow`]s and the
//! budget table, whether it came from the legacy axis lists, a committed
//! scenario file or the `--scenario` CLI flag.
//!
//! Two additions beyond PR 3:
//!
//! * **heterogeneous axes** — [`FleetExperiment::server_counts`] sweeps the
//!   pool size under a [`RoutingPolicy`], and [`FleetComposition`] mixes
//!   on-robot devices (Jetson-class boards that bypass the uplink) into an
//!   otherwise offloaded fleet;
//! * **steady-state metrics** — sweeps enable the engine's warm-up window
//!   ([`FleetScale::warmup_ms`]), so the reported p99s measure the
//!   stationary regime of the closed queueing loop instead of its start-up
//!   transient.

use corki_sim::evaluation::{parallel_map, run_job, session_seed, EvalConfig};
use corki_system::fleet::{fleet_robot_seed, FleetSimulator, SchedulerKind, ServerConfig};
use corki_system::scenario::{
    ConcreteScenario, ScenarioAxes, ScenarioSpec, ThreadSpec, VariantMix, WarmupSpec,
};
use corki_system::{ControlBackend, InferenceModel, RoutingPolicy, Variant};
use corki_telemetry::TelemetryReport;
use serde::{Deserialize, Serialize};

use crate::variants::VariantSetup;

/// The device-composition axis entry, now defined once in the scenario
/// layer (kept under its historical name for the experiment shim).
pub use corki_system::scenario::CompositionSpec as FleetComposition;

/// Scale of a fleet sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScale {
    /// Fleet sizes to sweep (robots per cell).
    pub robot_counts: Vec<usize>,
    /// Camera frames each robot executes per cell.
    pub frames_per_robot: usize,
    /// Base seed; robots derive their jitter seeds from it.
    pub seed: u64,
    /// Warm-up window excluded from each cell's plan/queue latency
    /// statistics (ms), so short sweep runs report steady-state p99s.
    pub warmup_ms: f64,
}

impl Default for FleetScale {
    fn default() -> Self {
        FleetScale {
            robot_counts: vec![1, 2, 3, 4, 6, 8, 12, 16],
            frames_per_robot: 240,
            seed: 2024,
            warmup_ms: 2000.0,
        }
    }
}

impl FleetScale {
    /// A minimal configuration for CI and integration tests.
    pub fn smoke() -> Self {
        FleetScale { robot_counts: vec![1, 8], frames_per_robot: 60, seed: 2024, warmup_ms: 250.0 }
    }
}

/// A full fleet experiment: scale × variants × schedulers × pool sizes ×
/// compositions plus the latency budget used for the robots-per-server
/// summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetExperiment {
    /// Sweep scale.
    pub scale: FleetScale,
    /// Variants to sweep (one fleet-wide variant per cell).
    pub variants: Vec<Variant>,
    /// Schedulers to sweep (applied to every server of the pool).
    pub schedulers: Vec<SchedulerKind>,
    /// Pool sizes to sweep (replicas of the default V100 server).
    pub server_counts: Vec<usize>,
    /// How offloaded requests are spread over multi-server pools.
    pub routing: RoutingPolicy,
    /// Device compositions to sweep.
    pub compositions: Vec<FleetComposition>,
    /// Executed-length distribution for Corki-ADAP fleets; `None` uses the
    /// pipeline defaults, `Some` typically carries lengths measured by
    /// [`measured_adaptive_lengths`].
    pub adaptive_lengths: Option<Vec<usize>>,
    /// End-to-end plan-latency budget (p99, ms) for [`robots_within_budget`].
    pub latency_budget_ms: f64,
}

impl FleetExperiment {
    /// The default sweep: four variants spanning the trajectory-length axis
    /// and both serving disciplines, on the PR 3 single-server homogeneous
    /// pool.
    pub fn paper_defaults(scale: FleetScale) -> Self {
        FleetExperiment {
            scale,
            variants: vec![
                Variant::RoboFlamingo,
                Variant::CorkiFixed(3),
                Variant::CorkiFixed(9),
                Variant::CorkiAdaptive,
            ],
            schedulers: vec![
                SchedulerKind::Fifo,
                SchedulerKind::DynamicBatch { max_batch: 8, timeout_ms: 15.0 },
            ],
            server_counts: vec![1],
            routing: RoutingPolicy::RoundRobin,
            compositions: vec![FleetComposition::Homogeneous],
            adaptive_lengths: None,
            latency_budget_ms: 400.0,
        }
    }

    /// [`paper_defaults`](FleetExperiment::paper_defaults) widened by the
    /// heterogeneous axes: single server vs a pool of two behind
    /// least-queue-depth routing, and an all-offloaded fleet vs one with a
    /// Jetson board in every second robot.
    pub fn heterogeneous(scale: FleetScale) -> Self {
        let mut experiment = FleetExperiment::paper_defaults(scale);
        experiment.server_counts = vec![1, 2];
        experiment.routing = RoutingPolicy::LeastQueueDepth;
        experiment.compositions =
            vec![FleetComposition::Homogeneous, FleetComposition::jetson_every_second()];
        experiment
    }

    /// Lowers the experiment's axis lists into one declarative
    /// [`ScenarioSpec`] — the shim behind the legacy sweep API and the
    /// legacy CLI flags.  The spec expands into the exact cells (and the
    /// exact [`corki_system::FleetConfig`]s) the pre-scenario sweep built,
    /// so rows are byte-identical to the old code path.
    pub fn to_scenario(&self) -> ScenarioSpec {
        ScenarioSpec {
            name: "fleet-experiment".to_owned(),
            seed: self.scale.seed,
            frames_per_robot: self.scale.frames_per_robot,
            warmup_ms: WarmupSpec::Fixed(self.scale.warmup_ms),
            routing: self.routing,
            control_backend: ControlBackend::PerRobot,
            robots: Vec::new(),
            servers: vec![ServerConfig::new(InferenceModel::default(), SchedulerKind::Fifo)],
            adaptive_lengths: self.adaptive_lengths.clone().filter(|lengths| !lengths.is_empty()),
            latency_budget_ms: self.latency_budget_ms,
            shards: 1,
            threads: ThreadSpec::Fixed(1),
            axes: ScenarioAxes {
                robot_counts: self.scale.robot_counts.clone(),
                variants: self.variants.iter().cloned().map(VariantMix::uniform).collect(),
                schedulers: self.schedulers.clone(),
                server_counts: self.server_counts.clone(),
                compositions: self.compositions.clone(),
            },
            faults: None,
        }
    }
}

/// One cell of the fleet sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepRow {
    /// Robots in the fleet.
    pub robots: usize,
    /// Inference servers in the pool.
    pub servers: usize,
    /// Variant name.
    pub variant: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Routing policy name.
    pub routing: String,
    /// Device composition label.
    pub composition: String,
    /// Executed control steps per second across the fleet.
    pub throughput_steps_per_s: f64,
    /// Effective per-robot step rate (Hz).
    pub per_robot_rate_hz: f64,
    /// Mean end-to-end plan latency: capture → trajectory received (ms).
    pub mean_plan_latency_ms: f64,
    /// 99th-percentile end-to-end plan latency (ms, warm-up-trimmed).
    pub p99_plan_latency_ms: f64,
    /// Mean server queueing delay (ms).
    pub mean_queue_delay_ms: f64,
    /// 99th-percentile server queueing delay (ms, warm-up-trimmed).
    pub p99_queue_delay_ms: f64,
    /// Fraction of the pool's capacity spent busy.
    pub server_utilization: f64,
    /// Mean formed batch size.
    pub mean_batch_size: f64,
    /// Fraction of warm-up-trimmed plans whose end-to-end latency exceeded
    /// the scenario's latency budget.
    pub slo_violation_fraction: f64,
    /// Requests whose reply missed the fault plan's timeout.
    pub timed_out_requests: usize,
    /// Re-uploads after a timeout (bounded by the plan's retry policy).
    pub retries: usize,
    /// Plans abandoned after exhausting retries with no fallback model.
    pub dropped_requests: usize,
    /// Plans served by the degraded-mode on-robot fallback model.
    pub fallback_inferences: usize,
    /// Mean time from a crashed server's recovery to its next completed
    /// batch (ms; 0 when no crash recovered in-run).
    pub mean_recovery_ms: f64,
}

/// Runs the fleet sweep, fanning independent cells out over all cores.
///
/// Results are **byte-identical for every job count** — each cell is an
/// independent deterministic simulation and rows are assembled in sweep
/// order (pool-size-major, then composition, then scheduler, then variant,
/// then fleet size).
pub fn fleet_sweep(experiment: &FleetExperiment) -> Vec<FleetSweepRow> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    fleet_sweep_with_jobs(experiment, cores)
}

/// [`fleet_sweep`] with an explicit worker count (`1` runs sequentially).
///
/// The experiment is lowered to a [`ScenarioSpec`] first
/// ([`FleetExperiment::to_scenario`]) and its expanded cells are run by
/// [`scenario_sweep_with_jobs`] — the legacy axis lists are a shim over the
/// declarative scenario layer.
pub fn fleet_sweep_with_jobs(experiment: &FleetExperiment, jobs: usize) -> Vec<FleetSweepRow> {
    // The legacy API multiplies its axis lists, so any empty list means an
    // empty sweep (a spec would instead fall back to its base value).
    if experiment.scale.robot_counts.is_empty()
        || experiment.variants.is_empty()
        || experiment.schedulers.is_empty()
        || experiment.server_counts.is_empty()
        || experiment.compositions.is_empty()
    {
        return Vec::new();
    }
    let cells = experiment
        .to_scenario()
        .expand()
        .expect("FleetExperiment axis lists always lower to a valid scenario");
    scenario_sweep_with_jobs(&cells, jobs)
}

/// Runs expanded scenario cells, fanning them out over all cores.
pub fn scenario_sweep(cells: &[ConcreteScenario]) -> Vec<FleetSweepRow> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    scenario_sweep_with_jobs(cells, cores)
}

/// [`scenario_sweep`] with an explicit worker count (`1` runs sequentially).
///
/// Rows are assembled in cell order and are byte-identical for every job
/// count; their labels come from the cells, which derive them from the one
/// canonical `Display` implementation per axis type.
pub fn scenario_sweep_with_jobs(cells: &[ConcreteScenario], jobs: usize) -> Vec<FleetSweepRow> {
    scenario_sweep_detailed_with_jobs(cells, jobs).into_iter().map(|cell| cell.row).collect()
}

/// One cell's full result: the sweep row plus the always-on in-path
/// telemetry the engine recorded while producing it (per-stage latency
/// histograms and per-robot timelines, the same six-stage taxonomy the
/// live path reports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetailedSweepCell {
    /// The summary row, exactly as [`scenario_sweep`] reports it.
    pub row: FleetSweepRow,
    /// The engine's telemetry report for this cell.
    pub telemetry: TelemetryReport,
}

/// [`scenario_sweep`] keeping each cell's telemetry report alongside its
/// row.
pub fn scenario_sweep_detailed(cells: &[ConcreteScenario]) -> Vec<DetailedSweepCell> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    scenario_sweep_detailed_with_jobs(cells, cores)
}

/// [`scenario_sweep_detailed`] with an explicit worker count (`1` runs
/// sequentially).  This is the primary sweep implementation; the row-only
/// entry points project their rows out of it.
pub fn scenario_sweep_detailed_with_jobs(
    cells: &[ConcreteScenario],
    jobs: usize,
) -> Vec<DetailedSweepCell> {
    let run_cell = |cell: &ConcreteScenario| {
        // Honour the cell's shard and thread knobs; results are invariant
        // in both, so the rows stay byte-identical whatever the spec
        // requested.
        let outcome = FleetSimulator::new(cell.config.clone())
            .with_shards(cell.shards)
            .with_threads(cell.threads)
            .run();
        let summary = &outcome.summary;
        let row = FleetSweepRow {
            robots: cell.robots,
            servers: cell.servers,
            variant: cell.variant_label.clone(),
            scheduler: cell.scheduler_label.clone(),
            routing: cell.routing_label.clone(),
            composition: cell.composition_label.clone(),
            throughput_steps_per_s: summary.throughput_steps_per_s,
            per_robot_rate_hz: summary.throughput_steps_per_s / cell.robots as f64,
            mean_plan_latency_ms: summary.mean_plan_latency_ms,
            p99_plan_latency_ms: summary.p99_plan_latency_ms,
            mean_queue_delay_ms: summary.mean_queue_delay_ms,
            p99_queue_delay_ms: summary.p99_queue_delay_ms,
            server_utilization: summary.server_utilization,
            mean_batch_size: summary.mean_batch_size,
            slo_violation_fraction: summary.slo_violation_fraction,
            timed_out_requests: summary.timed_out_requests,
            retries: summary.retries,
            dropped_requests: summary.dropped_requests,
            fallback_inferences: summary.fallback_inferences,
            mean_recovery_ms: summary.mean_recovery_ms,
        };
        DetailedSweepCell { row, telemetry: outcome.telemetry }
    };
    parallel_map(cells, |_, cell| run_cell(cell), jobs)
}

/// Scales expanded cells down to a smoke footprint (the CI path for
/// full-scale committed scenarios): each fleet keeps at most `max_robots`
/// robots — the leading ones, preserving group order and derived seeds —
/// and runs at most `max_frames` frames per robot.  The pool, routing,
/// labels and shard knob are untouched, so a smoke run exercises exactly
/// the code paths of the full-scale scenario, just smaller.
pub fn smoke_scale_cells(
    cells: Vec<ConcreteScenario>,
    max_robots: usize,
    max_frames: usize,
) -> Vec<ConcreteScenario> {
    cells
        .into_iter()
        .map(|mut cell| {
            cell.config.robots.truncate(max_robots.max(1));
            cell.robots = cell.config.robots.len();
            cell.config.frames_per_robot = cell.config.frames_per_robot.min(max_frames.max(1));
            cell
        })
        .collect()
}

/// Robots-per-pool at a latency budget: for one variant × scheduler × pool
/// shape, the largest swept fleet whose p99 end-to-end plan latency stays
/// within budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetRow {
    /// Variant name.
    pub variant: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Inference servers in the pool.
    pub servers: usize,
    /// Device composition label.
    pub composition: String,
    /// p99 plan-latency budget applied (ms).
    pub budget_ms: f64,
    /// Largest swept fleet size within budget (0 when even one robot
    /// overruns it).
    pub max_robots: usize,
}

/// Condenses sweep rows into the robots-per-server-at-budget table, in the
/// rows' variant × scheduler × pool-shape order.
pub fn robots_within_budget(rows: &[FleetSweepRow], budget_ms: f64) -> Vec<BudgetRow> {
    let mut out: Vec<BudgetRow> = Vec::new();
    for row in rows {
        let within = row.p99_plan_latency_ms <= budget_ms;
        match out.iter_mut().find(|b| {
            b.variant == row.variant
                && b.scheduler == row.scheduler
                && b.servers == row.servers
                && b.composition == row.composition
        }) {
            Some(budget_row) => {
                if within && row.robots > budget_row.max_robots {
                    budget_row.max_robots = row.robots;
                }
            }
            None => out.push(BudgetRow {
                variant: row.variant.clone(),
                scheduler: row.scheduler.clone(),
                servers: row.servers,
                composition: row.composition.clone(),
                budget_ms,
                max_robots: if within { row.robots } else { 0 },
            }),
        }
    }
    out
}

/// Measures the executed-length distribution of Corki-ADAP rollouts in the
/// simulator (the closed loop between the accuracy layer and the serving
/// layer: the fleet sweep can run on lengths the policy actually produced).
///
/// Reuses one policy instance across jobs via the
/// [`reseed`](corki_policy::ManipulationPolicy::reseed) session seeding
/// hook; returns the pipeline's default distribution when the rollouts
/// produce no lengths.
pub fn measured_adaptive_lengths(jobs: usize, seed: u64) -> Vec<usize> {
    let setup = VariantSetup::new(Variant::CorkiAdaptive);
    let env = setup.build_environment(seed);
    let mut policy = setup.build_policy(session_seed(seed, 0));
    let config = EvalConfig { num_jobs: 1, unseen: false, seed };
    let mut lengths = Vec::new();
    for job in 0..jobs {
        policy.reseed(session_seed(seed, job as u64));
        let result = run_job(&env, policy.as_mut(), &config, job);
        for episode in &result.episodes {
            lengths.extend(episode.executed_lengths.iter().copied());
        }
    }
    if lengths.is_empty() {
        corki_system::PipelineConfig::paper_defaults(Variant::CorkiAdaptive).adaptive_lengths
    } else {
        lengths
    }
}

/// Seeds of the robots of one fleet cell (exposed for tests and tooling;
/// must match what `FleetConfig::paper_defaults` assigns).
pub fn robot_seeds(seed: u64, robots: usize) -> Vec<u64> {
    (0..robots).map(|r| fleet_robot_seed(seed, r as u64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corki_system::fleet::{FleetConfig, RobotCompute};
    use corki_system::ScenarioBuilder;

    fn smoke_experiment() -> FleetExperiment {
        FleetExperiment::paper_defaults(FleetScale::smoke())
    }

    #[test]
    fn sweep_covers_every_cell_in_order() {
        let experiment = smoke_experiment();
        let rows = fleet_sweep_with_jobs(&experiment, 1);
        assert_eq!(
            rows.len(),
            experiment.server_counts.len()
                * experiment.compositions.len()
                * experiment.schedulers.len()
                * experiment.variants.len()
                * experiment.scale.robot_counts.len()
        );
        assert_eq!(rows[0].variant, "RoboFlamingo");
        assert_eq!(rows[0].robots, 1);
        assert_eq!(rows[0].servers, 1);
        assert_eq!(rows[0].composition, "offloaded");
        for row in &rows {
            assert!(row.throughput_steps_per_s > 0.0);
            assert!(row.p99_plan_latency_ms.is_finite() && row.p99_plan_latency_ms >= 0.0);
            assert!(row.server_utilization > 0.0 && row.server_utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn sweep_is_byte_identical_across_job_counts() {
        let experiment = smoke_experiment();
        let sequential = fleet_sweep_with_jobs(&experiment, 1);
        for jobs in [2, 5, 16] {
            let parallel = fleet_sweep_with_jobs(&experiment, jobs);
            assert_eq!(
                serde_json::to_string(&sequential).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "jobs={jobs} changed the sweep"
            );
        }
    }

    #[test]
    fn heterogeneous_axes_add_pool_and_mixed_rows() {
        let experiment = FleetExperiment::heterogeneous(FleetScale::smoke());
        let rows = fleet_sweep_with_jobs(&experiment, 1);
        assert!(rows.iter().any(|r| r.servers == 2));
        assert!(rows.iter().any(|r| r.composition.starts_with("mix(")));
        assert!(rows.iter().all(|r| r.routing == "least-queue-depth"));
        // A second server must not hurt a saturated single-variant fleet.
        let single = rows
            .iter()
            .find(|r| {
                r.servers == 1
                    && r.robots == 8
                    && r.variant == "Corki-3"
                    && r.composition == "offloaded"
                    && r.scheduler == "fifo"
            })
            .expect("single-server cell swept");
        let pooled = rows
            .iter()
            .find(|r| {
                r.servers == 2
                    && r.robots == 8
                    && r.variant == "Corki-3"
                    && r.composition == "offloaded"
                    && r.scheduler == "fifo"
            })
            .expect("two-server cell swept");
        assert!(pooled.throughput_steps_per_s >= single.throughput_steps_per_s * 0.999);
        assert!(pooled.mean_queue_delay_ms <= single.mean_queue_delay_ms);
        // Budget table keys on the pool shape, so both shapes appear.
        let budget = robots_within_budget(&rows, experiment.latency_budget_ms);
        assert!(budget.iter().any(|b| b.servers == 2));
        assert!(budget.iter().any(|b| b.composition.starts_with("mix(")));
    }

    #[test]
    fn mixed_composition_marks_every_second_robot_on_robot() {
        let mut config = FleetConfig::paper_defaults(Variant::CorkiFixed(5), 6, 1);
        FleetComposition::jetson_every_second().apply(&mut config);
        let on_robot: Vec<usize> = config
            .robots
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.compute, RobotCompute::OnRobot(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(on_robot, vec![1, 3, 5]);
        assert!(FleetComposition::jetson_every_second().label().contains("Jetson"));
        assert_eq!(FleetComposition::Homogeneous.label(), "offloaded");
    }

    #[test]
    fn longer_trajectories_raise_robots_per_server_at_fixed_budget() {
        // Long enough that p99 measures the steady state, not the start-up
        // transient of the closed queueing loop (the sweep additionally
        // trims the warm-up window).
        let mut experiment = FleetExperiment::paper_defaults(FleetScale {
            robot_counts: vec![1, 2, 3, 4, 6, 8],
            frames_per_robot: 240,
            seed: 2024,
            warmup_ms: 2000.0,
        });
        experiment.variants =
            vec![Variant::RoboFlamingo, Variant::CorkiFixed(3), Variant::CorkiFixed(9)];
        experiment.schedulers = vec![SchedulerKind::Fifo];
        let rows = fleet_sweep(&experiment);
        let budget = robots_within_budget(&rows, experiment.latency_budget_ms);
        let max = |variant: &str| {
            budget.iter().find(|b| b.variant == variant).expect("variant swept").max_robots
        };
        let baseline = max("RoboFlamingo");
        let corki3 = max("Corki-3");
        let corki9 = max("Corki-9");
        assert!(
            baseline <= corki3 && corki3 <= corki9,
            "robots-per-server must not fall as trajectories lengthen: \
             baseline {baseline}, Corki-3 {corki3}, Corki-9 {corki9}"
        );
        assert!(corki9 > baseline, "Corki-9 ({corki9}) must beat the frame baseline ({baseline})");
        // At a saturated fleet size the throughput separation is large:
        // every extra trajectory step is a served control step the baseline
        // would spend on another full inference.
        let throughput = |variant: &str| {
            rows.iter()
                .find(|r| r.variant == variant && r.robots == 8)
                .expect("N=8 swept")
                .throughput_steps_per_s
        };
        assert!(throughput("Corki-9") > 2.0 * throughput("Corki-3"));
        assert!(throughput("Corki-3") > 2.0 * throughput("RoboFlamingo"));
    }

    #[test]
    fn sweep_rows_round_trip_through_serde() {
        let rows = fleet_sweep_with_jobs(&smoke_experiment(), 1);
        let json = serde_json::to_string(&rows).unwrap();
        let parsed: Vec<FleetSweepRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, rows);
    }

    /// The scenario shim must reproduce the pre-redesign sweep exactly: this
    /// re-implements the historical cell construction inline and compares
    /// the rows byte for byte, heterogeneous axes included.
    #[test]
    fn scenario_shim_rows_are_byte_identical_to_the_legacy_sweep() {
        let experiment = FleetExperiment::heterogeneous(FleetScale::smoke());
        let mut legacy: Vec<FleetSweepRow> = Vec::new();
        for &servers in &experiment.server_counts {
            for composition in &experiment.compositions {
                for scheduler in &experiment.schedulers {
                    for variant in &experiment.variants {
                        for &robots in &experiment.scale.robot_counts {
                            let mut config = FleetConfig::paper_defaults(
                                variant.clone(),
                                robots,
                                experiment.scale.seed,
                            )
                            .with_pool(servers);
                            config.frames_per_robot = experiment.scale.frames_per_robot;
                            config.set_scheduler(*scheduler);
                            config.routing = experiment.routing;
                            config.warmup_ms = experiment.scale.warmup_ms;
                            composition.apply(&mut config);
                            let summary = FleetSimulator::new(config).run().summary;
                            legacy.push(FleetSweepRow {
                                robots,
                                servers,
                                variant: variant.name(),
                                scheduler: summary.scheduler.clone(),
                                routing: summary.routing.clone(),
                                composition: composition.label(),
                                throughput_steps_per_s: summary.throughput_steps_per_s,
                                per_robot_rate_hz: summary.throughput_steps_per_s / robots as f64,
                                mean_plan_latency_ms: summary.mean_plan_latency_ms,
                                p99_plan_latency_ms: summary.p99_plan_latency_ms,
                                mean_queue_delay_ms: summary.mean_queue_delay_ms,
                                p99_queue_delay_ms: summary.p99_queue_delay_ms,
                                server_utilization: summary.server_utilization,
                                mean_batch_size: summary.mean_batch_size,
                                slo_violation_fraction: summary.slo_violation_fraction,
                                timed_out_requests: summary.timed_out_requests,
                                retries: summary.retries,
                                dropped_requests: summary.dropped_requests,
                                fallback_inferences: summary.fallback_inferences,
                                mean_recovery_ms: summary.mean_recovery_ms,
                            });
                        }
                    }
                }
            }
        }
        let rows = fleet_sweep_with_jobs(&experiment, 1);
        assert_eq!(
            serde_json::to_string(&rows).unwrap(),
            serde_json::to_string(&legacy).unwrap(),
            "the scenario shim changed the sweep"
        );
    }

    /// Cell labels are derived once in the scenario layer; the engine's own
    /// summary labels must agree with them.
    #[test]
    fn cell_labels_agree_with_engine_summaries() {
        let cells = smoke_experiment().to_scenario().expand().expect("valid scenario");
        for cell in &cells {
            let summary = FleetSimulator::new(cell.config.clone()).run().summary;
            assert_eq!(summary.scheduler, cell.scheduler_label);
            assert_eq!(summary.routing, cell.routing_label);
            assert_eq!(summary.robots, cell.robots);
            assert_eq!(summary.servers, cell.servers);
        }
    }

    /// The ROADMAP's mixed-variant item: a Corki-3 + Corki-9 fleet expressed
    /// purely as a scenario appears in sweep rows and the budget table,
    /// keyed by its own variant-mix label.
    #[test]
    fn mixed_variant_scenario_reaches_rows_and_budget_table() {
        let spec = ScenarioBuilder::new("mixed-variant")
            .seed(2024)
            .frames_per_robot(60)
            .warmup_ms(250.0)
            .group(Variant::CorkiFixed(3), 1)
            .group(Variant::CorkiFixed(9), 1)
            .default_servers(1, SchedulerKind::Fifo)
            .robot_counts(vec![2, 8])
            .build()
            .expect("mixed-variant spec is valid");
        let cells = spec.expand().expect("expands");
        let rows = scenario_sweep_with_jobs(&cells, 1);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.variant, "Corki-3+Corki-9");
            assert!(row.throughput_steps_per_s > 0.0);
        }
        // Half the fleet runs each variant.
        let robots = &cells[1].config.robots;
        let corki3 = robots.iter().filter(|r| r.variant == Variant::CorkiFixed(3)).count();
        assert_eq!((corki3, robots.len()), (4, 8));
        let budget = robots_within_budget(&rows, spec.latency_budget_ms);
        assert_eq!(budget.len(), 1);
        assert_eq!(budget[0].variant, "Corki-3+Corki-9");
        assert!(
            budget[0].max_robots >= 2,
            "a small mixed Corki-3/9 fleet must fit a 400 ms p99, got {}",
            budget[0].max_robots
        );
    }

    #[test]
    fn empty_axis_lists_keep_producing_an_empty_legacy_sweep() {
        let mut experiment = smoke_experiment();
        experiment.variants.clear();
        assert!(fleet_sweep_with_jobs(&experiment, 1).is_empty());
        let mut experiment = smoke_experiment();
        experiment.scale.robot_counts.clear();
        assert!(fleet_sweep_with_jobs(&experiment, 1).is_empty());
    }

    #[test]
    fn measured_adaptive_lengths_are_plausible() {
        let lengths = measured_adaptive_lengths(2, 5);
        assert!(!lengths.is_empty());
        assert!(lengths.iter().all(|&l| (1..=9).contains(&l)));
    }

    #[test]
    fn robot_seeds_are_distinct_per_fleet() {
        let seeds = robot_seeds(2024, 16);
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 16);
    }
}
