//! Mapping from the paper's variant names to concrete policy + environment
//! configurations.

use corki_policy::{ManipulationPolicy, NoiseModel, OracleFramePolicy, OracleTrajectoryPolicy};
use corki_sim::{Environment, EnvironmentConfig, StepsPolicy};
use corki_system::Variant;
use corki_trajectory::waypoints::AdaptiveLengthConfig;
use corki_trajectory::MAX_PREDICTION_STEPS;

/// Everything needed to evaluate one paper variant: which policy to run and
/// how the environment executes its plans.
#[derive(Debug, Clone)]
pub struct VariantSetup {
    /// The variant being configured.
    pub variant: Variant,
    /// The prediction-error model used by the oracle policies.
    pub noise: NoiseModel,
    /// Maximum number of control steps per task episode.
    pub max_steps: usize,
}

impl VariantSetup {
    /// Default setup for a variant (paper-calibrated noise model).
    pub fn new(variant: Variant) -> Self {
        VariantSetup { variant, noise: NoiseModel::default(), max_steps: 100 }
    }

    /// Overrides the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Builds the oracle policy implementing this variant.
    pub fn build_policy(&self, seed: u64) -> Box<dyn ManipulationPolicy> {
        match self.variant {
            Variant::RoboFlamingo => Box::new(OracleFramePolicy::new(self.noise, seed)),
            Variant::CorkiFixed(_) | Variant::CorkiAdaptive | Variant::CorkiSoftware => {
                Box::new(OracleTrajectoryPolicy::new(MAX_PREDICTION_STEPS, self.noise, seed))
            }
        }
    }

    /// Builds the rollout environment implementing this variant's execution
    /// model (steps taken per prediction, control backend tracking quality).
    pub fn build_environment(&self, seed: u64) -> Environment {
        let steps_policy = match self.variant {
            Variant::RoboFlamingo => StepsPolicy::All,
            Variant::CorkiFixed(n) => StepsPolicy::Fixed(n),
            Variant::CorkiAdaptive => StepsPolicy::Adaptive(AdaptiveLengthConfig::default()),
            // Corki-SW executes like Corki-5; only the control substrate
            // changes, which the paper notes does not affect accuracy.
            Variant::CorkiSoftware => StepsPolicy::Fixed(5),
        };
        let tracking_error = match self.variant {
            // The baseline's control runs on the robot CPU below the target
            // rate, so it tracks references less tightly.
            Variant::RoboFlamingo => EnvironmentConfig::CPU_TRACKING_ERROR,
            // Corki-SW matches Corki-5 accuracy by construction (§6.2).
            _ => EnvironmentConfig::ACCELERATOR_TRACKING_ERROR,
        };
        Environment::new(EnvironmentConfig {
            max_steps: self.max_steps,
            steps_policy,
            close_loop_feedback: self.variant != Variant::RoboFlamingo,
            tracking_error,
            seed,
            ..Default::default()
        })
    }

    /// The variants evaluated in Tables 1/2 and Fig. 13, in the paper's order.
    pub fn paper_lineup() -> Vec<VariantSetup> {
        Variant::paper_lineup().into_iter().map(VariantSetup::new).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corki_policy::PolicyKind;

    #[test]
    fn lineup_matches_the_paper() {
        let lineup = VariantSetup::paper_lineup();
        assert_eq!(lineup.len(), 8);
        assert_eq!(lineup[0].variant, Variant::RoboFlamingo);
        assert_eq!(lineup[7].variant, Variant::CorkiSoftware);
    }

    #[test]
    fn baseline_builds_a_frame_policy_and_corki_a_trajectory_policy() {
        let base = VariantSetup::new(Variant::RoboFlamingo).build_policy(0);
        assert_eq!(base.kind(), PolicyKind::FramePrediction);
        let corki = VariantSetup::new(Variant::CorkiFixed(5)).build_policy(0);
        assert_eq!(corki.kind(), PolicyKind::TrajectoryPrediction);
    }

    #[test]
    fn environments_reflect_the_execution_model() {
        let base_env = VariantSetup::new(Variant::RoboFlamingo).build_environment(0);
        assert_eq!(base_env.config().tracking_error, EnvironmentConfig::CPU_TRACKING_ERROR);
        let corki_env = VariantSetup::new(Variant::CorkiFixed(5)).build_environment(0);
        assert_eq!(
            corki_env.config().tracking_error,
            EnvironmentConfig::ACCELERATOR_TRACKING_ERROR
        );
        assert!(matches!(corki_env.config().steps_policy, StepsPolicy::Fixed(5)));
        let adap_env = VariantSetup::new(Variant::CorkiAdaptive).build_environment(0);
        assert!(matches!(adap_env.config().steps_policy, StepsPolicy::Adaptive(_)));
    }
}
