//! # DaDu-Corki — algorithm/architecture co-design for embodied-AI
//! # robotic manipulation (paper reproduction)
//!
//! This crate is the public facade of the workspace: it ties the policy
//! layer, the CALVIN-like simulator, the TS-CTC accelerator model and the
//! end-to-end pipeline simulation together, exposes the paper's eight policy
//! variants as a single [`Variant`] enum, and provides one function per table
//! and figure of the paper's evaluation in the [`experiments`] module.
//!
//! ## Quick start
//!
//! ```
//! use corki::{Variant, VariantSetup};
//! use corki_sim::evaluation::{evaluate, EvalConfig};
//!
//! // Evaluate Corki-5 on ten seen-split jobs.
//! let setup = VariantSetup::new(Variant::CorkiFixed(5));
//! let mut policy = setup.build_policy(0);
//! let env = setup.build_environment(0);
//! let summary = evaluate(&env, policy.as_mut(), &EvalConfig { num_jobs: 10, unseen: false, seed: 1 });
//! assert!(summary.average_length <= 5.0);
//! ```
//!
//! The `corki-bench` crate's `experiments` binary prints every table/figure;
//! see `EXPERIMENTS.md` at the workspace root for the recorded output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fleet;
mod variants;

/// The declarative scenario layer: one serializable [`scenario::ScenarioSpec`]
/// describes a whole fleet experiment (robot groups, server pool, routing,
/// sweep axes) and expands into runnable cells.  Defined in `corki_system`
/// and re-exported here as the facade's experiment-description API.
pub use corki_system::scenario;

pub use corki_system::{
    DataRepresentation, InferenceDevice, InferenceModel, RoutingPolicy, SchedulerKind, Variant,
};
pub use scenario::{ScenarioBuilder, ScenarioError, ScenarioSpec};
pub use variants::VariantSetup;

// Re-export the sub-crates so downstream users need a single dependency.
pub use corki_accel as accel;
pub use corki_math as math;
pub use corki_nn as nn;
pub use corki_policy as policy;
pub use corki_robot as robot;
pub use corki_sim as sim;
pub use corki_system as system;
pub use corki_trajectory as trajectory;
