//! One entry point per table and figure of the paper's evaluation section.
//!
//! Every function returns plain data structures; the `experiments` binary in
//! `corki-bench` formats them as the rows/series the paper reports, and
//! `EXPERIMENTS.md` records paper-vs-measured values.

use crate::variants::VariantSetup;
use corki_accel::ace::{
    mass_matrix_sensitivity, representative_joint_trace, sweep_thresholds, AceConfig, AceState,
    JointImpactFactors, MassMatrixSensitivity, ThresholdSweepPoint,
};
use corki_accel::{AcceleratorConfig, AcceleratorModel, CpuControlModel, OpCounts, ResourceReport};
use corki_robot::panda::{panda_model, PANDA_HOME};
use corki_sim::evaluation::{
    evaluate_parallel, run_job, session_seed, EpisodeTraces, EvalConfig, EvaluationSummary,
};
use corki_system::{
    DataRepresentation, InferenceDevice, InferenceModel, PipelineConfig, PipelineSimulator,
    PipelineSummary, Variant,
};
use serde::Serialize;

/// Controls the scale (and therefore runtime) of the simulation-backed
/// experiments.  The paper evaluates 1 000 jobs; the default here is smaller
/// so that the whole suite completes in seconds — pass `--full` to the
/// `experiments` binary for a paper-scale run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ExperimentScale {
    /// Number of long-horizon jobs per variant and split.
    pub jobs: usize,
    /// Number of camera frames simulated per pipeline variant.
    pub frames: usize,
    /// Base random seed.
    pub seed: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale { jobs: 60, frames: 300, seed: 2024 }
    }
}

impl ExperimentScale {
    /// The paper-scale configuration (1 000 jobs).
    pub fn full() -> Self {
        ExperimentScale { jobs: 1000, frames: 300, seed: 2024 }
    }

    /// A minimal configuration for CI and integration tests.
    pub fn smoke() -> Self {
        ExperimentScale { jobs: 8, frames: 120, seed: 2024 }
    }
}

/// Tables 1 and 2: success rate per chain position and average job length for
/// every variant, on the seen or unseen split. Runs the eight variants (and
/// their jobs) across all available cores; see [`accuracy_table_with`].
pub fn accuracy_table(unseen: bool, scale: &ExperimentScale) -> Vec<EvaluationSummary> {
    accuracy_table_with(unseen, scale, true)
}

/// [`accuracy_table`] with explicit control over parallelism.
///
/// With `parallel = true` the eight variants of the paper lineup run on one
/// scoped thread each, and every variant fans its jobs out over the
/// remaining cores. Policies are seeded deterministically per job, so the
/// result is **byte-identical** between the parallel and sequential runs —
/// the sweep is reproducible regardless of core count.
pub fn accuracy_table_with(
    unseen: bool,
    scale: &ExperimentScale,
    parallel: bool,
) -> Vec<EvaluationSummary> {
    let setups = VariantSetup::paper_lineup();
    let job_threads = if parallel {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        cores.div_ceil(setups.len()).max(1)
    } else {
        1
    };
    let run_one = |setup: &VariantSetup| {
        // Per-job session seeds (see `corki_sim::evaluation::session_seed`)
        // keep the policy noise stream decorrelated from the
        // scene-randomisation stream and independent of the thread count.
        let make = |job: usize| setup.build_policy(session_seed(scale.seed, job as u64));
        let env = setup.build_environment(scale.seed);
        let config = EvalConfig { num_jobs: scale.jobs, unseen, seed: scale.seed };
        let mut summary = evaluate_parallel(&env, &make, &config, job_threads);
        summary.variant = setup.variant.name();
        summary
    };
    if parallel {
        let mut rows: Vec<Option<EvaluationSummary>> = setups.iter().map(|_| None).collect();
        std::thread::scope(|scope| {
            let run_one = &run_one;
            for (slot, setup) in rows.iter_mut().zip(&setups) {
                scope.spawn(move || *slot = Some(run_one(setup)));
            }
        });
        rows.into_iter().map(|row| row.expect("every variant ran")).collect()
    } else {
        setups.iter().map(run_one).collect()
    }
}

/// Figure 11: the trajectory-error statistics are part of the
/// [`EvaluationSummary`] returned by [`accuracy_table`]; this helper extracts
/// the `(variant, rmse, max_distance_xyz)` series.
pub fn trajectory_error_series(summaries: &[EvaluationSummary]) -> Vec<(String, f64, [f64; 3])> {
    summaries
        .iter()
        .map(|s| {
            (
                s.variant.clone(),
                s.trajectory_error.rmse,
                [
                    s.trajectory_error.max_distance.x,
                    s.trajectory_error.max_distance.y,
                    s.trajectory_error.max_distance.z,
                ],
            )
        })
        .collect()
}

/// Figure 12: X/Y/Z traces of one randomly picked test sequence for the
/// baseline and Corki-5.
pub fn fig12_traces(scale: &ExperimentScale) -> Vec<(String, EpisodeTraces)> {
    [Variant::RoboFlamingo, Variant::CorkiFixed(5)]
        .into_iter()
        .map(|variant| {
            let setup = VariantSetup::new(variant.clone());
            let mut policy = setup.build_policy(scale.seed);
            let env = setup.build_environment(scale.seed);
            let config = EvalConfig { num_jobs: 1, unseen: false, seed: scale.seed + 3 };
            let job = run_job(&env, policy.as_mut(), &config, 0);
            let episode = job.episodes.first().expect("job has at least one episode");
            (variant.name(), EpisodeTraces::from_outcome(episode))
        })
        .collect()
}

/// Figure 2: the per-frame latency and energy breakdown of the baseline
/// pipeline `(stage, latency_ms, energy_j)`.
pub fn fig2_breakdown() -> Vec<(String, f64, f64)> {
    let inference = InferenceModel::default();
    let comm = corki_system::CommunicationModel::default();
    let cpu = CpuControlModel::i7_6770hq();
    let control_ms = corki_system::BASELINE_FRAME_MS * 0.099;
    vec![
        ("LLM inference".to_owned(), inference.action_latency_ms(), inference.action_energy_j()),
        ("Robot control".to_owned(), control_ms, control_ms / 1000.0 * cpu.power_w),
        ("Data communication".to_owned(), comm.per_frame_ms, comm.energy_per_frame_j()),
    ]
}

/// Figures 13/14: pipeline simulation of every variant, returning the
/// per-variant summary (which includes the per-frame traces).
pub fn pipeline_comparison(scale: &ExperimentScale) -> Vec<PipelineSummary> {
    Variant::paper_lineup()
        .into_iter()
        .map(|variant| {
            let mut config = PipelineConfig::paper_defaults(variant);
            config.num_frames = scale.frames;
            PipelineSimulator::new(config).simulate()
        })
        .collect()
}

/// Table 3: end-to-end speed-up of Corki-ADAP under different inference
/// devices. Returns `(device, normalized inference latency, speedup)`.
pub fn device_table(scale: &ExperimentScale) -> Vec<(String, f64, f64)> {
    InferenceDevice::ALL
        .iter()
        .map(|device| {
            let mut config = PipelineConfig::paper_defaults(Variant::CorkiAdaptive);
            config.inference = InferenceModel::new(*device, DataRepresentation::Float32);
            config.num_frames = scale.frames;
            let sim = PipelineSimulator::new(config);
            let corki = sim.simulate();
            let baseline = sim.simulate_baseline_reference();
            (device.name().to_owned(), device.normalized_latency(), corki.speedup_over(&baseline))
        })
        .collect()
}

/// Table 4: end-to-end speed-up of Corki-ADAP under different data
/// representations. Returns `(representation, normalized latency, speedup)`.
pub fn precision_table(scale: &ExperimentScale) -> Vec<(String, f64, f64)> {
    DataRepresentation::ALL
        .iter()
        .map(|representation| {
            let mut config = PipelineConfig::paper_defaults(Variant::CorkiAdaptive);
            config.inference = InferenceModel::new(InferenceDevice::V100, *representation);
            config.num_frames = scale.frames;
            let sim = PipelineSimulator::new(config);
            let corki = sim.simulate();
            let baseline = sim.simulate_baseline_reference();
            (
                representation.name().to_owned(),
                representation.latency_scale(),
                corki.speedup_over(&baseline),
            )
        })
        .collect()
}

/// Section 6.1: FPGA resource consumption of the accelerator.
pub fn resource_report() -> ResourceReport {
    ResourceReport::corki_on_zc706()
}

/// Figure 9: mass-matrix sensitivity to individual joint motions of 6°, 17°
/// and 29°.
pub fn fig9_sensitivity() -> Vec<MassMatrixSensitivity> {
    let robot = panda_model();
    mass_matrix_sensitivity(&robot, &PANDA_HOME, &[0.1, 0.3, 0.5])
}

/// Section 4.2 ablation: latency of the unoptimised, reuse-only and fully
/// optimised accelerator design points. Returns `(name, latency_ms)`.
pub fn accelerator_ablation() -> Vec<(String, f64)> {
    let ops = OpCounts::default();
    vec![
        (
            "no reuse, no pipelining".to_owned(),
            AcceleratorModel::new(AcceleratorConfig::unoptimized(), ops)
                .control_latency()
                .latency_ms,
        ),
        (
            "data reuse".to_owned(),
            AcceleratorModel::new(AcceleratorConfig::reuse_only(), ops)
                .control_latency()
                .latency_ms,
        ),
        (
            "data reuse + pipelining".to_owned(),
            AcceleratorModel::new(AcceleratorConfig::default(), ops).control_latency().latency_ms,
        ),
    ]
}

/// Section 4.3 / Figure 15: the ACE skip statistics at the design threshold
/// and the full threshold sweep.
pub fn approximation_study() -> (f64, Vec<ThresholdSweepPoint>) {
    let trace = representative_joint_trace(300);
    let mut ace = AceState::new(AceConfig::default());
    let stats = ace.run_trace(&trace);
    let model = AcceleratorModel::default();
    let thresholds: Vec<f64> = (0..=8).map(|i| i as f64 * 0.1).collect();
    let sweep =
        sweep_thresholds(&model, &JointImpactFactors::panda_defaults(), &trace, &thresholds);
    (stats.skip_fraction(), sweep)
}

/// Section 2.2 bottleneck analysis: the control-only loop rate on the robot
/// CPU and the accelerator, plus the share of the loop spent on control.
/// Returns `(cpu_loop_hz, cpu_control_share, accelerator_control_hz)`.
pub fn bottleneck_analysis() -> (f64, f64, f64) {
    let cpu = CpuControlModel::i7_6770hq();
    let accel = AcceleratorModel::default();
    let loop_ms = cpu.control_latency_ms + CpuControlModel::loop_communication_ms();
    (
        cpu.control_loop_frequency_hz(),
        cpu.control_latency_ms / loop_ms,
        accel.control_frequency_hz(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_accuracy_table_has_all_variants() {
        let scale = ExperimentScale::smoke();
        let table = accuracy_table(false, &scale);
        assert_eq!(table.len(), 8);
        assert_eq!(table[0].variant, "RoboFlamingo");
        for row in &table {
            for k in 1..5 {
                assert!(row.success_rates[k] <= row.success_rates[k - 1] + 1e-12);
            }
        }
        let errors = trajectory_error_series(&table);
        assert_eq!(errors.len(), 8);
    }

    #[test]
    fn parallel_variant_sweep_is_byte_identical_to_sequential() {
        let scale = ExperimentScale { jobs: 6, frames: 120, seed: 2024 };
        let parallel = accuracy_table_with(false, &scale, true);
        let sequential = accuracy_table_with(false, &scale, false);
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            serde_json::to_string(&sequential).unwrap(),
            "the parallel sweep must reproduce the sequential one exactly"
        );
    }

    #[test]
    fn fig2_breakdown_sums_to_the_measured_frame_latency() {
        let rows = fig2_breakdown();
        let total: f64 = rows.iter().map(|(_, ms, _)| ms).sum();
        assert!((total - corki_system::BASELINE_FRAME_MS).abs() < 1e-6);
        let energy: f64 = rows.iter().map(|(_, _, j)| j).sum();
        assert!(energy > 20.0 && energy < 30.0);
    }

    #[test]
    fn pipeline_comparison_covers_the_lineup() {
        let scale = ExperimentScale::smoke();
        let rows = pipeline_comparison(&scale);
        assert_eq!(rows.len(), 8);
        let baseline = &rows[0];
        let corki9 = rows.iter().find(|r| r.variant == "Corki-9").unwrap();
        assert!(corki9.speedup_over(baseline) > 5.0);
    }

    #[test]
    fn device_and_precision_tables_have_expected_shapes() {
        let scale = ExperimentScale::smoke();
        let devices = device_table(&scale);
        assert_eq!(devices.len(), 4);
        let precisions = precision_table(&scale);
        assert_eq!(precisions.len(), 3);
        for (_, _, speedup) in devices.iter().chain(precisions.iter()) {
            assert!(*speedup > 3.0, "speed-up {speedup} suspiciously low");
        }
    }

    #[test]
    fn standalone_studies_run() {
        let report = resource_report();
        assert!(report.utilization_percent().0 > 10.0);
        assert_eq!(fig9_sensitivity().len(), 21);
        let ablation = accelerator_ablation();
        assert_eq!(ablation.len(), 3);
        assert!(ablation[0].1 > ablation[2].1);
        let (skip, sweep) = approximation_study();
        assert!(skip > 0.5);
        assert_eq!(sweep.len(), 9);
        let (cpu_hz, control_share, accel_hz) = bottleneck_analysis();
        assert!((cpu_hz - 22.1).abs() < 0.2);
        assert!((control_share - 0.397).abs() < 0.01);
        assert!(accel_hz > 100.0);
    }

    #[test]
    fn fig12_traces_cover_baseline_and_corki5() {
        let traces = fig12_traces(&ExperimentScale::smoke());
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|(_, t)| !t.ground_truth.is_empty()));
    }
}
