//! Vendored-proptest suite: shard-count invariance of the sharded fleet
//! engine.
//!
//! The contract under test is the acceptance bar of the sharded refactor —
//! for shards ∈ {1, 2, 3, 8} crossed with worker threads ∈ {1, 2, 4} a run
//! must be **byte-identical** to the single-shard single-thread engine:
//! identical `FleetSweepRow`s out of the sweep layer and identical full
//! outcomes (event timeline, jittered robot traces and aggregate metrics)
//! out of the engine itself, across random small scenarios spanning every
//! variant family, scheduler discipline, routing policy and pool size.

use corki::fleet::scenario_sweep_with_jobs;
use corki_system::fleet::{FleetSimulator, SchedulerKind};
use corki_system::{
    CrashSpec, DataRepresentation, FaultPlan, InferenceDevice, InferenceModel, LinkDegradationSpec,
    RoutingPolicy, ScenarioBuilder, ScenarioSpec, ThreadSpec, TimeoutSpec, Variant,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn variant(index: usize) -> Variant {
    match index % 5 {
        0 => Variant::RoboFlamingo,
        1 => Variant::CorkiFixed(1),
        2 => Variant::CorkiFixed(5),
        3 => Variant::CorkiFixed(9),
        _ => Variant::CorkiAdaptive,
    }
}

fn scheduler(index: usize) -> SchedulerKind {
    match index % 3 {
        0 => SchedulerKind::Fifo,
        1 => SchedulerKind::DynamicBatch { max_batch: 3, timeout_ms: 15.0 },
        _ => SchedulerKind::ShortestTrajectoryFirst,
    }
}

fn routing(index: usize) -> RoutingPolicy {
    match index % 3 {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::LeastQueueDepth,
        _ => RoutingPolicy::DeviceAffinity,
    }
}

#[allow(clippy::too_many_arguments)]
fn random_spec(
    seed: u64,
    frames: usize,
    robots: usize,
    extra_robots: usize,
    v_index: usize,
    s_index: usize,
    servers: usize,
    r_index: usize,
) -> ScenarioSpec {
    ScenarioBuilder::new("shard-invariance")
        .seed(seed)
        .frames_per_robot(frames)
        .routing(routing(r_index))
        .group(variant(v_index), robots)
        .group(variant(v_index + 1), extra_robots)
        .default_servers(servers, scheduler(s_index))
        .build()
        .expect("random small scenarios are valid")
}

/// Fault events (crashes, loss draws, timeouts, retries, fallbacks) must obey
/// the same invariance bar as the fault-free engine: identical sweep rows and
/// event timelines whatever the shard count.
#[test]
fn crash_and_retry_runs_are_shard_count_invariant() {
    let base = ScenarioBuilder::new("shard-invariance-faults")
        .seed(99)
        .frames_per_robot(40)
        .routing(RoutingPolicy::LeastQueueDepth)
        .group(Variant::CorkiFixed(5), 6)
        .default_servers(2, SchedulerKind::Fifo)
        .faults(FaultPlan {
            crashes: vec![
                CrashSpec { server: 0, at_ms: 300.0, down_ms: 1500.0 },
                CrashSpec { server: 1, at_ms: 400.0, down_ms: 1500.0 },
            ],
            link_degradations: vec![LinkDegradationSpec {
                from_ms: 100.0,
                until_ms: 900.0,
                latency_factor: 2.0,
                loss: 0.25,
            }],
            timeout: Some(TimeoutSpec { timeout_ms: 800.0, max_retries: 2, backoff_ms: 50.0 }),
            fallback: Some(InferenceModel::new(
                InferenceDevice::JetsonOrin32Gb,
                DataRepresentation::Float16,
            )),
            ..FaultPlan::none()
        })
        .build()
        .expect("the fault scenario is valid");
    let mut reference: Option<(String, String)> = None;
    for (shards, threads) in
        [(1usize, 1usize), (2, 1), (2, 2), (4, 2), (4, 4), (8, 1), (8, 2), (8, 4)]
    {
        let mut spec = base.clone();
        spec.shards = shards;
        spec.threads = ThreadSpec::Fixed(threads);
        let cells = spec.expand().expect("spec expands");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].threads, threads);
        let rows = scenario_sweep_with_jobs(&cells, 1);
        assert!(rows[0].timed_out_requests > 0, "the crash windows must force timeouts");
        assert!(rows[0].retries > 0, "timeouts must trigger retries");
        let rows = serde_json::to_string(&rows).expect("rows serialise");
        let mut config = cells[0].config.clone();
        config.record_event_log = true;
        let outcome = FleetSimulator::new(config).with_shards(shards).with_threads(threads).run();
        assert!(!outcome.event_log.is_empty());
        let run = serde_json::to_string(&outcome).expect("outcome serialises");
        match &reference {
            None => reference = Some((rows, run)),
            Some((reference_rows, reference_run)) => {
                assert_eq!(
                    &rows, reference_rows,
                    "fault-injected FleetSweepRows must be shard- and thread-count invariant \
                     ({shards} shards x {threads} threads)"
                );
                assert_eq!(
                    &run, reference_run,
                    "fault-injected event timelines must be shard- and thread-count invariant \
                     ({shards} shards x {threads} threads)"
                );
            }
        }
    }
}

/// Golden pin for a committed fault scenario: the server-crash scenario under
/// `crates/bench/scenarios/` must reproduce its sweep rows byte-for-byte,
/// across reruns and for shards ∈ {1, 4} — the acceptance bar of the fault
/// layer.  Regenerate with `FLEET_FAULT_GOLDEN_REGEN=1 cargo test -p corki
/// --test shard_invariance` — only ever alongside a reviewed engine change.
#[test]
fn committed_crash_scenario_matches_golden_rows() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let scenario = manifest.join("../bench/scenarios/crash_pool2_lqd_8robots_60frames.json");
    let json = std::fs::read_to_string(&scenario)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", scenario.display()));
    let spec = ScenarioSpec::from_json(&json).expect("the committed crash scenario parses");
    let mut rows_by_shards = Vec::new();
    for (shards, threads) in [(1usize, 1usize), (4, 4), (1, 1)] {
        let mut spec = spec.clone();
        spec.shards = shards;
        spec.threads = ThreadSpec::Fixed(threads);
        let cells = spec.expand().expect("the committed crash scenario expands");
        let rows = scenario_sweep_with_jobs(&cells, 1);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.fallback_inferences > 0, "the full-pool outage must force fallbacks");
        assert!(row.retries > 0, "the crash windows must force retries");
        assert!(
            row.mean_recovery_ms.is_finite() && row.mean_recovery_ms > 0.0,
            "both servers must recover within the horizon: {}",
            row.mean_recovery_ms
        );
        rows_by_shards.push(serde_json::to_string_pretty(&rows).expect("rows serialise"));
    }
    assert_eq!(
        rows_by_shards[0], rows_by_shards[1],
        "rows must be identical for shards 1 / threads 1 and shards 4 / threads 4"
    );
    assert_eq!(rows_by_shards[0], rows_by_shards[2], "rows must be identical across reruns");
    let fixture = manifest.join("tests/fixtures/fault_crash_pool2_rows.json");
    if std::env::var_os("FLEET_FAULT_GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(fixture.parent().expect("fixture dir")).expect("mkdir fixtures");
        std::fs::write(&fixture, &rows_by_shards[0]).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
        panic!("cannot read {} ({e}); regenerate on purpose only", fixture.display())
    });
    assert_eq!(
        rows_by_shards[0].trim_end(),
        expected.trim_end(),
        "the fault engine no longer reproduces the committed crash scenario's sweep rows"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sweep_rows_and_event_timelines_are_shard_count_invariant(
        seed in 0u64..1_000_000,
        frames in 8usize..40,
        robots in 1usize..6,
        extra_robots in 1usize..4,
        v_index in 0usize..5,
        s_index in 0usize..3,
        servers in 1usize..4,
        r_index in 0usize..3,
    ) {
        let base =
            random_spec(seed, frames, robots, extra_robots, v_index, s_index, servers, r_index);
        let mut reference: Option<(String, String)> = None;
        for (shards, threads) in [(1usize, 1usize), (2, 2), (3, 2), (8, 4)] {
            let mut spec = base.clone();
            spec.shards = shards;
            spec.threads = ThreadSpec::Fixed(threads);
            let cells = spec.expand().expect("spec expands");
            prop_assert_eq!(cells.len(), 1);
            prop_assert_eq!(cells[0].shards, shards);
            prop_assert_eq!(cells[0].threads, threads);
            let rows = serde_json::to_string(&scenario_sweep_with_jobs(&cells, 1))
                .expect("rows serialise");
            let mut config = cells[0].config.clone();
            config.record_event_log = true;
            let outcome =
                FleetSimulator::new(config).with_shards(shards).with_threads(threads).run();
            prop_assert!(!outcome.event_log.is_empty());
            let run = serde_json::to_string(&outcome).expect("outcome serialises");
            match &reference {
                None => reference = Some((rows, run)),
                Some((reference_rows, reference_run)) => {
                    prop_assert!(
                        &rows == reference_rows,
                        "FleetSweepRows must be shard- and thread-count invariant \
                         ({shards} shards x {threads} threads)"
                    );
                    prop_assert!(
                        &run == reference_run,
                        "event timeline + traces must be shard- and thread-count invariant \
                         ({shards} shards x {threads} threads)"
                    );
                }
            }
        }
    }
}
