//! Vendored-proptest suite: shard-count invariance of the sharded fleet
//! engine.
//!
//! The contract under test is the acceptance bar of the sharded refactor —
//! for shards ∈ {1, 2, 3, 8} a run must be **byte-identical** to the
//! single-shard engine: identical `FleetSweepRow`s out of the sweep layer
//! and identical full outcomes (event timeline, jittered robot traces and
//! aggregate metrics) out of the engine itself, across random small
//! scenarios spanning every variant family, scheduler discipline, routing
//! policy and pool size.

use corki::fleet::scenario_sweep_with_jobs;
use corki_system::fleet::{FleetSimulator, SchedulerKind};
use corki_system::{RoutingPolicy, ScenarioBuilder, ScenarioSpec, Variant};
use proptest::prelude::*;

fn variant(index: usize) -> Variant {
    match index % 5 {
        0 => Variant::RoboFlamingo,
        1 => Variant::CorkiFixed(1),
        2 => Variant::CorkiFixed(5),
        3 => Variant::CorkiFixed(9),
        _ => Variant::CorkiAdaptive,
    }
}

fn scheduler(index: usize) -> SchedulerKind {
    match index % 3 {
        0 => SchedulerKind::Fifo,
        1 => SchedulerKind::DynamicBatch { max_batch: 3, timeout_ms: 15.0 },
        _ => SchedulerKind::ShortestTrajectoryFirst,
    }
}

fn routing(index: usize) -> RoutingPolicy {
    match index % 3 {
        0 => RoutingPolicy::RoundRobin,
        1 => RoutingPolicy::LeastQueueDepth,
        _ => RoutingPolicy::DeviceAffinity,
    }
}

#[allow(clippy::too_many_arguments)]
fn random_spec(
    seed: u64,
    frames: usize,
    robots: usize,
    extra_robots: usize,
    v_index: usize,
    s_index: usize,
    servers: usize,
    r_index: usize,
) -> ScenarioSpec {
    ScenarioBuilder::new("shard-invariance")
        .seed(seed)
        .frames_per_robot(frames)
        .routing(routing(r_index))
        .group(variant(v_index), robots)
        .group(variant(v_index + 1), extra_robots)
        .default_servers(servers, scheduler(s_index))
        .build()
        .expect("random small scenarios are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sweep_rows_and_event_timelines_are_shard_count_invariant(
        seed in 0u64..1_000_000,
        frames in 8usize..40,
        robots in 1usize..6,
        extra_robots in 1usize..4,
        v_index in 0usize..5,
        s_index in 0usize..3,
        servers in 1usize..4,
        r_index in 0usize..3,
    ) {
        let base =
            random_spec(seed, frames, robots, extra_robots, v_index, s_index, servers, r_index);
        let mut reference: Option<(String, String)> = None;
        for shards in [1usize, 2, 3, 8] {
            let mut spec = base.clone();
            spec.shards = shards;
            let cells = spec.expand().expect("spec expands");
            prop_assert_eq!(cells.len(), 1);
            prop_assert_eq!(cells[0].shards, shards);
            let rows = serde_json::to_string(&scenario_sweep_with_jobs(&cells, 1))
                .expect("rows serialise");
            let mut config = cells[0].config.clone();
            config.record_event_log = true;
            let outcome = FleetSimulator::new(config).with_shards(shards).run();
            prop_assert!(!outcome.event_log.is_empty());
            let run = serde_json::to_string(&outcome).expect("outcome serialises");
            match &reference {
                None => reference = Some((rows, run)),
                Some((reference_rows, reference_run)) => {
                    prop_assert!(
                        &rows == reference_rows,
                        "FleetSweepRows must be shard-count invariant ({shards} shards)"
                    );
                    prop_assert!(
                        &run == reference_run,
                        "event timeline + traces must be shard-count invariant ({shards} shards)"
                    );
                }
            }
        }
    }
}
