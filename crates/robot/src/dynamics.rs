//! Joint-space and task-space dynamics: RNEA, CRBA and the quantities used by
//! task-space computed torque control.
//!
//! The five "key computing blocks" of the paper (Fig. 6/7) map onto this
//! module as follows:
//!
//! | Paper block              | Function                                   |
//! |--------------------------|--------------------------------------------|
//! | Forward kinematics       | [`crate::RobotModel::forward_kinematics`]  |
//! | Jacobian (and transpose) | [`crate::RobotModel::jacobian`]            |
//! | Task-space mass matrix   | [`TaskSpaceDynamics::compute`] (`Mx`)      |
//! | Task-space bias force    | [`TaskSpaceDynamics::compute`] (`hx`)      |
//! | Joint torque             | [`crate::TaskSpaceController`]             |

use crate::kinematics::Jacobian;
use crate::model::{JointKind, RobotModel};
use crate::state::EndEffectorState;
use corki_math::{DMat, DVec, SpatialForce, SpatialInertia, SpatialMotion, SpatialTransform, Vec3};
use serde::{Deserialize, Serialize};

impl RobotModel {
    /// Inverse dynamics via the recursive Newton-Euler algorithm (RNEA):
    /// the joint torques required to realise accelerations `qdd` at state
    /// `(q, qd)` under gravity.
    ///
    /// # Panics
    ///
    /// Panics if any input length differs from the robot's DoF.
    pub fn inverse_dynamics(&self, q: &[f64], qd: &[f64], qdd: &[f64]) -> Vec<f64> {
        let dof = self.dof();
        assert_eq!(q.len(), dof, "inverse_dynamics: wrong q length");
        assert_eq!(qd.len(), dof, "inverse_dynamics: wrong qd length");
        assert_eq!(qdd.len(), dof, "inverse_dynamics: wrong qdd length");

        let n = self.num_bodies();
        let mut xforms = Vec::with_capacity(n);
        let mut subspaces = Vec::with_capacity(n);
        let mut velocities = vec![SpatialMotion::ZERO; n];
        let mut accelerations = vec![SpatialMotion::ZERO; n];
        let mut forces = vec![SpatialForce::ZERO; n];

        // Gravity trick: give the base an upward acceleration of -g so that
        // gravitational forces appear automatically in the recursion.
        let base_acceleration = SpatialMotion::new(Vec3::ZERO, -self.gravity());

        let mut dof_idx = 0usize;
        for (i, joint) in self.joints().iter().enumerate() {
            let (qi, qdi, qddi) = if joint.kind.is_actuated() {
                let v = (q[dof_idx], qd[dof_idx], qdd[dof_idx]);
                dof_idx += 1;
                v
            } else {
                (0.0, 0.0, 0.0)
            };
            let pose = joint.transform(qi);
            let x = SpatialTransform::from_pose(&pose);
            let s = match joint.kind {
                JointKind::RevoluteZ => SpatialMotion::revolute_z(),
                JointKind::PrismaticZ => SpatialMotion::prismatic_z(),
                JointKind::Fixed => SpatialMotion::ZERO,
            };
            let v_joint = s * qdi;
            let (v_parent, a_parent) = if i == 0 {
                (SpatialMotion::ZERO, base_acceleration)
            } else {
                (velocities[i - 1], accelerations[i - 1])
            };
            let v = x.apply_motion(&v_parent) + v_joint;
            let a = x.apply_motion(&a_parent) + s * qddi + v.cross_motion(&v_joint);
            let inertia = &self.links()[i].inertia;
            let momentum = inertia.apply(&v);
            forces[i] = inertia.apply(&a) + v.cross_force(&momentum);
            velocities[i] = v;
            accelerations[i] = a;
            xforms.push(x);
            subspaces.push(s);
        }

        // Backward pass: project forces onto joint axes and propagate to
        // parents.
        let mut tau = vec![0.0; dof];
        let mut dof_idx = dof;
        for i in (0..n).rev() {
            let joint = &self.joints()[i];
            if joint.kind.is_actuated() {
                dof_idx -= 1;
                tau[dof_idx] = subspaces[i].dot_force(&forces[i]);
            }
            if i > 0 {
                let to_parent = xforms[i].inv_apply_force(&forces[i]);
                forces[i - 1] += to_parent;
            }
        }
        tau
    }

    /// Bias forces `h(θ, θ̇)` (Coriolis, centrifugal and gravity): the torque
    /// required to produce zero joint acceleration.
    pub fn bias_forces(&self, q: &[f64], qd: &[f64]) -> Vec<f64> {
        let zeros = vec![0.0; self.dof()];
        self.inverse_dynamics(q, qd, &zeros)
    }

    /// Gravity torques `g(θ)`.
    pub fn gravity_torques(&self, q: &[f64]) -> Vec<f64> {
        let zeros = vec![0.0; self.dof()];
        self.inverse_dynamics(q, &zeros, &zeros)
    }

    /// Joint-space mass matrix `M(θ)` via the composite rigid-body algorithm
    /// (CRBA).
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` differs from the robot's DoF.
    pub fn mass_matrix(&self, q: &[f64]) -> DMat {
        let dof = self.dof();
        assert_eq!(q.len(), dof, "mass_matrix: wrong q length");
        let n = self.num_bodies();

        // Per-body joint transforms, poses in parent, motion subspaces and the
        // actuated column index of each body (if any).
        let mut poses_in_parent = Vec::with_capacity(n);
        let mut xforms = Vec::with_capacity(n);
        let mut subspaces = Vec::with_capacity(n);
        let mut column_of_body = vec![None; n];
        let mut dof_idx = 0usize;
        for (i, joint) in self.joints().iter().enumerate() {
            let qi = if joint.kind.is_actuated() {
                let v = q[dof_idx];
                column_of_body[i] = Some(dof_idx);
                dof_idx += 1;
                v
            } else {
                0.0
            };
            let pose = joint.transform(qi);
            xforms.push(SpatialTransform::from_pose(&pose));
            poses_in_parent.push(pose);
            subspaces.push(match joint.kind {
                JointKind::RevoluteZ => SpatialMotion::revolute_z(),
                JointKind::PrismaticZ => SpatialMotion::prismatic_z(),
                JointKind::Fixed => SpatialMotion::ZERO,
            });
        }

        // Composite inertias, accumulated tip-to-base.
        let mut composite: Vec<SpatialInertia> = self.links().iter().map(|l| l.inertia).collect();
        for i in (1..n).rev() {
            let in_parent = composite[i].expressed_in_parent(&poses_in_parent[i]);
            composite[i - 1] = composite[i - 1].combine(&in_parent);
        }

        let mut m = DMat::zeros(dof, dof);
        for i in 0..n {
            let Some(col_i) = column_of_body[i] else { continue };
            // Force produced by unit acceleration of joint i on the composite
            // body rooted at i, expressed in frame i.
            let mut f = composite[i].apply(&subspaces[i]);
            m[(col_i, col_i)] = subspaces[i].dot_force(&f);
            // Walk towards the base, projecting onto each ancestor joint.
            let mut j = i;
            while j > 0 {
                f = xforms[j].inv_apply_force(&f);
                j -= 1;
                if let Some(col_j) = column_of_body[j] {
                    let value = subspaces[j].dot_force(&f);
                    m[(col_i, col_j)] = value;
                    m[(col_j, col_i)] = value;
                }
            }
        }
        m
    }

    /// Forward dynamics: the joint accelerations produced by torques `tau` at
    /// state `(q, qd)`, i.e. `qdd = M(θ)⁻¹ (τ − h(θ, θ̇))`.
    ///
    /// # Panics
    ///
    /// Panics if any input length differs from the robot's DoF.
    pub fn forward_dynamics(&self, q: &[f64], qd: &[f64], tau: &[f64]) -> Vec<f64> {
        assert_eq!(tau.len(), self.dof(), "forward_dynamics: wrong tau length");
        let m = self.mass_matrix(q);
        let h = self.bias_forces(q, qd);
        let mut rhs = DVec::from_slice(tau);
        rhs -= &DVec::from_vec(h);
        m.solve_cholesky(&rhs).expect("mass matrix must be positive definite").into_vec()
    }
}

/// All task-space quantities needed by one TS-CTC control cycle (paper Equ. 6
/// and Fig. 6): the Jacobian, the task-space mass matrix `Mx`, the task-space
/// bias force `hx`, and the current end-effector state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSpaceModel {
    /// Geometric Jacobian `J(θ)` (6×n, linear rows first).
    pub jacobian: Jacobian,
    /// Joint-space mass matrix `M(θ)` (n×n).
    pub joint_mass_matrix: DMat,
    /// Joint-space bias forces `h(θ, θ̇)` (length n).
    pub joint_bias: Vec<f64>,
    /// Task-space mass matrix `Mx(θ)` (6×6).
    pub task_mass_matrix: DMat,
    /// Task-space bias force `hx(θ, θ̇)` (length 6, linear rows first).
    pub task_bias: [f64; 6],
    /// The acceleration bias `J̇ θ̇` (length 6).
    pub jdot_qdot: [f64; 6],
    /// Current end-effector pose and velocity.
    pub end_effector: EndEffectorState,
}

/// Computes [`TaskSpaceModel`]s, with a configurable damping term that keeps
/// the task-space mass matrix invertible near kinematic singularities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpaceDynamics {
    /// Damping added to the diagonal of `J M⁻¹ Jᵀ` before inversion
    /// (damped least squares). Default `1e-6`.
    pub damping: f64,
}

impl Default for TaskSpaceDynamics {
    fn default() -> Self {
        TaskSpaceDynamics { damping: 1e-6 }
    }
}

impl TaskSpaceDynamics {
    /// Creates a computer with the given singularity damping.
    pub fn new(damping: f64) -> Self {
        TaskSpaceDynamics { damping }
    }

    /// Computes every task-space quantity required by one control cycle.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `qd` have the wrong length.
    pub fn compute(&self, robot: &RobotModel, q: &[f64], qd: &[f64]) -> TaskSpaceModel {
        let fk = robot.forward_kinematics(q);
        let jacobian = robot.jacobian_from_fk(&fk);
        let joint_mass_matrix = robot.mass_matrix(q);
        let joint_bias = robot.bias_forces(q, qd);
        let jdot_qdot = robot.jacobian_dot_qdot(q, qd);

        // The seven solves below (M⁻¹ Jᵀ column by column, then M⁻¹ h) share
        // one Cholesky factorisation of the mass matrix instead of
        // re-factorising per solve — identical results, ~7× less O(n³) work
        // per control cycle.
        let mass_factor =
            joint_mass_matrix.cholesky_factor().expect("mass matrix must be positive definite");
        let jt = jacobian.transpose(); // n×6
        let n = robot.dof();
        let mut minv_jt = DMat::zeros(n, 6);
        let mut rhs = DVec::zeros(n);
        let mut x = DVec::zeros(n);
        for col in 0..6 {
            for row in 0..n {
                rhs[row] = jt[(row, col)];
            }
            mass_factor
                .cholesky_solve_with_factor(&rhs, &mut x)
                .expect("factor and right-hand side dimensions agree");
            for row in 0..n {
                minv_jt[(row, col)] = x[row];
            }
        }
        // Λ⁻¹ = J M⁻¹ Jᵀ  (6×6), then damped inversion.
        let mut lambda_inv = jacobian.matrix().mul_mat(&minv_jt);
        for i in 0..6 {
            lambda_inv[(i, i)] += self.damping;
        }
        let task_mass_matrix =
            lambda_inv.inverse().expect("damped task-space inertia is invertible");

        // hx = Λ (J M⁻¹ h − J̇ q̇)
        let mut minv_h = DVec::zeros(n);
        mass_factor
            .cholesky_solve_with_factor(&DVec::from_slice(&joint_bias), &mut minv_h)
            .expect("factor and right-hand side dimensions agree");
        let j_minv_h = jacobian.matrix().mul_vec(&minv_h);
        let mut residual = j_minv_h;
        residual -= &DVec::from_slice(&jdot_qdot);
        let hx_vec = task_mass_matrix.mul_vec(&residual);
        let mut task_bias = [0.0; 6];
        for (i, t) in task_bias.iter_mut().enumerate() {
            *t = hx_vec[i];
        }

        let (linear_velocity, angular_velocity) = jacobian.mul_qdot(qd);
        TaskSpaceModel {
            jacobian,
            joint_mass_matrix,
            joint_bias,
            task_mass_matrix,
            task_bias,
            jdot_qdot,
            end_effector: EndEffectorState {
                pose: fk.end_effector,
                linear_velocity,
                angular_velocity,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panda::{panda_model, PANDA_HOME};
    use proptest::prelude::*;

    fn random_like_config(seed: usize) -> Vec<f64> {
        // Deterministic, limit-respecting configurations for tests.
        let base = [0.3, -0.5, 0.4, -1.7, 0.2, 1.4, 0.6];
        base.iter().enumerate().map(|(i, b)| b + 0.1 * ((seed + i) as f64).sin()).collect()
    }

    #[test]
    fn mass_matrix_is_symmetric_positive_definite() {
        let robot = panda_model();
        for seed in 0..5 {
            let q = random_like_config(seed);
            let m = robot.mass_matrix(&q);
            assert!(m.is_symmetric(1e-9), "mass matrix not symmetric");
            assert!(m.cholesky_factor().is_ok(), "mass matrix not positive definite");
        }
    }

    #[test]
    fn rnea_and_crba_are_consistent() {
        // τ = M(q)·qdd + h(q, qd) must match RNEA exactly.
        let robot = panda_model();
        let q = random_like_config(1);
        let qd: Vec<f64> = (0..7).map(|i| 0.1 * (i as f64 + 1.0)).collect();
        let qdd: Vec<f64> = (0..7).map(|i| 0.2 * (i as f64 - 3.0)).collect();
        let tau_rnea = robot.inverse_dynamics(&q, &qd, &qdd);
        let m = robot.mass_matrix(&q);
        let h = robot.bias_forces(&q, &qd);
        let m_qdd = m.mul_vec(&DVec::from_slice(&qdd));
        for i in 0..7 {
            let tau_crba = m_qdd[i] + h[i];
            assert!(
                (tau_rnea[i] - tau_crba).abs() < 1e-8,
                "joint {i}: RNEA {} vs CRBA {}",
                tau_rnea[i],
                tau_crba
            );
        }
    }

    #[test]
    fn gravity_torques_vanish_without_gravity() {
        let mut robot = panda_model();
        robot.set_gravity(corki_math::Vec3::ZERO);
        let g = robot.gravity_torques(&PANDA_HOME);
        assert!(g.iter().all(|t| t.abs() < 1e-10));
    }

    #[test]
    fn gravity_torques_are_nonzero_under_gravity() {
        let robot = panda_model();
        let g = robot.gravity_torques(&PANDA_HOME);
        assert!(g.iter().any(|t| t.abs() > 1.0), "gravity torques suspiciously small");
    }

    #[test]
    fn forward_and_inverse_dynamics_roundtrip() {
        let robot = panda_model();
        let q = random_like_config(2);
        let qd: Vec<f64> = (0..7).map(|i| -0.05 * (i as f64 + 1.0)).collect();
        let qdd_target: Vec<f64> = (0..7).map(|i| 0.3 * ((i as f64) - 2.0)).collect();
        let tau = robot.inverse_dynamics(&q, &qd, &qdd_target);
        let qdd = robot.forward_dynamics(&q, &qd, &tau);
        for i in 0..7 {
            assert!((qdd[i] - qdd_target[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn bias_reduces_to_gravity_at_rest() {
        let robot = panda_model();
        let q = PANDA_HOME.to_vec();
        let h = robot.bias_forces(&q, &[0.0; 7]);
        let g = robot.gravity_torques(&q);
        for i in 0..7 {
            assert!((h[i] - g[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn task_space_mass_matrix_is_symmetric_positive_definite() {
        let robot = panda_model();
        let tsd = TaskSpaceDynamics::default();
        let q = random_like_config(3);
        let qd = vec![0.05; 7];
        let model = tsd.compute(&robot, &q, &qd);
        assert!(model.task_mass_matrix.is_symmetric(1e-6));
        assert!(model.task_mass_matrix.cholesky_factor().is_ok());
    }

    #[test]
    fn task_bias_matches_gravity_projection_at_rest() {
        // At rest, hx = Λ J M⁻¹ g; verify against a direct computation.
        let robot = panda_model();
        let tsd = TaskSpaceDynamics::default();
        let q = random_like_config(4);
        let qd = vec![0.0; 7];
        let model = tsd.compute(&robot, &q, &qd);
        let g = robot.gravity_torques(&q);
        let minv_g = model.joint_mass_matrix.solve_cholesky(&DVec::from_slice(&g)).unwrap();
        let j_minv_g = model.jacobian.matrix().mul_vec(&minv_g);
        let expected = model.task_mass_matrix.mul_vec(&j_minv_g);
        for i in 0..6 {
            assert!((model.task_bias[i] - expected[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn kinetic_energy_is_nonnegative() {
        let robot = panda_model();
        let q = random_like_config(5);
        let qd: Vec<f64> = (0..7).map(|i| 0.4 * ((i * 7 % 3) as f64 - 1.0)).collect();
        let m = robot.mass_matrix(&q);
        let m_qd = m.mul_vec(&DVec::from_slice(&qd));
        let ke: f64 = 0.5 * qd.iter().zip(m_qd.as_slice()).map(|(a, b)| a * b).sum::<f64>();
        assert!(ke >= 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn mass_matrix_spd_across_workspace(
            q in proptest::collection::vec(-1.5..1.5f64, 7)) {
            let robot = panda_model();
            let m = robot.mass_matrix(&q);
            prop_assert!(m.is_symmetric(1e-9));
            prop_assert!(m.cholesky_factor().is_ok());
        }

        #[test]
        fn rnea_linear_in_acceleration(
            q in proptest::collection::vec(-1.2..1.2f64, 7),
            qdd in proptest::collection::vec(-1.0..1.0f64, 7)) {
            // τ(q, 0, a+b) - τ(q, 0, b) == M(q)·a, exercised with b = 0.
            let robot = panda_model();
            let qd = vec![0.0; 7];
            let tau_a = robot.inverse_dynamics(&q, &qd, &qdd);
            let tau_0 = robot.inverse_dynamics(&q, &qd, &[0.0; 7]);
            let m = robot.mass_matrix(&q);
            let m_qdd = m.mul_vec(&DVec::from_slice(&qdd));
            for i in 0..7 {
                prop_assert!((tau_a[i] - tau_0[i] - m_qdd[i]).abs() < 1e-7);
            }
        }
    }
}
