//! Rigid-body kinematics, dynamics and task-space computed torque control
//! (TS-CTC) for a 7-DoF manipulator — the control substrate of the DaDu-Corki
//! reproduction.
//!
//! The crate provides exactly the computations that the Corki accelerator
//! (`corki-accel`) is designed around (paper §4.1, Fig. 6):
//!
//! * **Forward kinematics** — the pose `x` of the end-effector from joint
//!   angles `θ`,
//! * **Jacobian** — the geometric Jacobian `J(θ)` and end-effector velocity,
//! * **Task-space mass matrix** — `Mx(θ) = (J M⁻¹ Jᵀ)⁻¹`,
//! * **Task-space bias force** — `hx(θ, θ̇)`,
//! * **Joint torque** — `τ = Jᵀ[Mx(ẍd + Kp e + Kv ė) + hx]` (Equation 6).
//!
//! The underlying joint-space quantities (mass matrix via CRBA, bias via
//! RNEA) use the spatial-algebra primitives from [`corki_math`].
//!
//! # Example
//!
//! ```
//! use corki_robot::{panda, JointState, TaskSpaceController, ControllerGains, TaskReference};
//!
//! let robot = panda::panda_model();
//! let state = JointState::zeros(robot.dof());
//! let fk = robot.forward_kinematics(&state.positions);
//! let controller = TaskSpaceController::new(ControllerGains::default());
//! let reference = TaskReference::hold(fk.end_effector);
//! let torque = controller.compute_torque(&robot, &state, &reference);
//! assert_eq!(torque.len(), robot.dof());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod control;
mod dynamics;
mod kinematics;
mod model;
pub mod panda;
mod simulate;
mod state;

pub use self::simulate::{ArmSimulator, SimulatorConfig};
pub use control::{
    rotation_angle_between, rotation_error_vector, ControllerGains, JointSpaceController,
    TaskReference, TaskSpaceController,
};
pub use dynamics::{TaskSpaceDynamics, TaskSpaceModel};
pub use kinematics::{ForwardKinematics, Jacobian};
pub use model::{JointKind, JointModel, Link, RobotError, RobotModel};
pub use state::{EndEffectorState, JointState};
