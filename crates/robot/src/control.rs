//! Task-space computed torque control (TS-CTC), paper Equation 6:
//!
//! ```text
//! τ = Jᵀ(θ) [ Mx(θ) (ẍd + Kp e + Kv ė) + hx(θ, θ̇) ]
//! e = xd − x,   ė = ẋd − ẋ
//! ```
//!
//! plus a joint-space computed-torque controller used as a cross-check in
//! tests and by the CPU-baseline latency model.

use crate::dynamics::TaskSpaceDynamics;
use crate::model::RobotModel;
use crate::state::{EndEffectorState, JointState};
use corki_math::{DVec, UnitQuaternion, Vec3, SE3};
use serde::{Deserialize, Serialize};

/// Proportional/derivative gains of the TS-CTC controller, split between the
/// translational and rotational subspaces, plus a small null-space damping
/// that keeps the redundant 7th degree of freedom from drifting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerGains {
    /// Proportional gain on the position error (1/s²).
    pub kp_linear: f64,
    /// Derivative gain on the linear-velocity error (1/s).
    pub kv_linear: f64,
    /// Proportional gain on the orientation error (1/s²).
    pub kp_angular: f64,
    /// Derivative gain on the angular-velocity error (1/s).
    pub kv_angular: f64,
    /// Joint-space damping applied to the whole torque command (N·m·s/rad).
    pub null_space_damping: f64,
}

impl Default for ControllerGains {
    fn default() -> Self {
        // Critically damped at ~10 rad/s task-space bandwidth, matching the
        // 100 Hz control rate targeted by the paper.
        ControllerGains {
            kp_linear: 400.0,
            kv_linear: 40.0,
            kp_angular: 100.0,
            kv_angular: 20.0,
            null_space_damping: 1.0,
        }
    }
}

impl ControllerGains {
    /// Gains with the derivative terms set for critical damping
    /// (`kv = 2·sqrt(kp)`).
    pub fn critically_damped(kp_linear: f64, kp_angular: f64, null_space_damping: f64) -> Self {
        ControllerGains {
            kp_linear,
            kv_linear: 2.0 * kp_linear.sqrt(),
            kp_angular,
            kv_angular: 2.0 * kp_angular.sqrt(),
            null_space_damping,
        }
    }
}

/// The task-space reference handed to the controller for one control cycle:
/// desired pose, velocity and feed-forward acceleration of the end-effector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskReference {
    /// Desired end-effector pose `xd`.
    pub pose: SE3,
    /// Desired linear velocity `ẋd` (m/s).
    pub linear_velocity: Vec3,
    /// Desired angular velocity (rad/s).
    pub angular_velocity: Vec3,
    /// Feed-forward linear acceleration `ẍd` (m/s²).
    pub linear_acceleration: Vec3,
    /// Feed-forward angular acceleration (rad/s²).
    pub angular_acceleration: Vec3,
}

impl TaskReference {
    /// A reference that holds a pose with zero velocity and acceleration.
    pub fn hold(pose: SE3) -> Self {
        TaskReference {
            pose,
            linear_velocity: Vec3::ZERO,
            angular_velocity: Vec3::ZERO,
            linear_acceleration: Vec3::ZERO,
            angular_acceleration: Vec3::ZERO,
        }
    }

    /// Convenience constructor from pose and velocities.
    pub fn moving(pose: SE3, linear_velocity: Vec3, angular_velocity: Vec3) -> Self {
        TaskReference {
            pose,
            linear_velocity,
            angular_velocity,
            linear_acceleration: Vec3::ZERO,
            angular_acceleration: Vec3::ZERO,
        }
    }
}

/// Orientation error as a rotation vector (axis · angle) taking the current
/// orientation to the desired one, expressed in the base frame.
pub(crate) fn orientation_error(desired: &SE3, actual: &SE3) -> Vec3 {
    let q_desired = desired.quaternion();
    let q_actual = actual.quaternion();
    let q_err = q_desired * q_actual.conjugate();
    // Convert to rotation vector; guard the small-angle case.
    let w = q_err.w.clamp(-1.0, 1.0);
    let angle = 2.0 * w.acos();
    let sin_half = (1.0 - w * w).sqrt();
    let axis =
        if sin_half < 1e-9 { Vec3::ZERO } else { Vec3::new(q_err.x, q_err.y, q_err.z) / sin_half };
    // Map the angle into (-pi, pi] so the error is the short way around.
    let angle = corki_math::wrap_angle(angle);
    axis * angle
}

/// The task-space computed torque controller of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpaceController {
    gains: ControllerGains,
    dynamics: TaskSpaceDynamics,
    clamp_to_effort_limits: bool,
}

impl Default for TaskSpaceController {
    fn default() -> Self {
        TaskSpaceController::new(ControllerGains::default())
    }
}

impl TaskSpaceController {
    /// Creates a controller with the given gains and default singularity
    /// damping.
    pub fn new(gains: ControllerGains) -> Self {
        TaskSpaceController {
            gains,
            dynamics: TaskSpaceDynamics::default(),
            clamp_to_effort_limits: true,
        }
    }

    /// The controller gains.
    pub fn gains(&self) -> &ControllerGains {
        &self.gains
    }

    /// Disables clamping of the output to the robot's effort limits (useful
    /// for analysing the unconstrained control law).
    pub fn without_effort_clamping(mut self) -> Self {
        self.clamp_to_effort_limits = false;
        self
    }

    /// Runs one TS-CTC cycle, returning the joint torques.
    ///
    /// # Panics
    ///
    /// Panics if the joint state does not match the robot's DoF.
    pub fn compute_torque(
        &self,
        robot: &RobotModel,
        state: &JointState,
        reference: &TaskReference,
    ) -> Vec<f64> {
        let model = self.dynamics.compute(robot, &state.positions, &state.velocities);
        self.compute_torque_with_model(robot, state, reference, &model.end_effector, &model)
    }

    /// Runs one TS-CTC cycle reusing an already-computed [`crate::TaskSpaceModel`]
    /// (the accelerator model uses this entry point so that the functional
    /// result and the timing model share the same inputs).
    pub fn compute_torque_with_model(
        &self,
        robot: &RobotModel,
        state: &JointState,
        reference: &TaskReference,
        end_effector: &EndEffectorState,
        model: &crate::TaskSpaceModel,
    ) -> Vec<f64> {
        let g = &self.gains;
        // Errors (Equation 6): e = xd − x, ė = ẋd − ẋ.
        let e_pos = reference.pose.translation - end_effector.pose.translation;
        let e_rot = orientation_error(&reference.pose, &end_effector.pose);
        let e_vel_lin = reference.linear_velocity - end_effector.linear_velocity;
        let e_vel_ang = reference.angular_velocity - end_effector.angular_velocity;

        // Commanded task-space acceleration: ẍd + Kp e + Kv ė.
        let acc_lin = reference.linear_acceleration + e_pos * g.kp_linear + e_vel_lin * g.kv_linear;
        let acc_ang =
            reference.angular_acceleration + e_rot * g.kp_angular + e_vel_ang * g.kv_angular;
        let acc_ref = [acc_lin.x, acc_lin.y, acc_lin.z, acc_ang.x, acc_ang.y, acc_ang.z];

        // F = Mx·acc_ref + hx
        let f = model.task_mass_matrix.mul_vec(&DVec::from_slice(&acc_ref));
        let mut wrench = [0.0; 6];
        for (i, w) in wrench.iter_mut().enumerate() {
            *w = f[i] + model.task_bias[i];
        }

        // τ = Jᵀ F, plus null-space damping.
        let mut tau = model.jacobian.transpose_mul_wrench(&wrench);
        for (t, qd) in tau.iter_mut().zip(&state.velocities) {
            *t -= g.null_space_damping * qd;
        }

        if self.clamp_to_effort_limits {
            for (t, limit) in tau.iter_mut().zip(robot.effort_limits()) {
                *t = t.clamp(-limit, limit);
            }
        }
        tau
    }
}

/// A joint-space computed-torque controller:
/// `τ = M(θ)(q̈d + Kp e + Kv ė) + h(θ, θ̇)`.
///
/// Used by tests as an independent cross-check of the dynamics and by the
/// baseline CPU-control latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointSpaceController {
    /// Proportional gain (1/s²).
    pub kp: f64,
    /// Derivative gain (1/s).
    pub kv: f64,
}

impl Default for JointSpaceController {
    fn default() -> Self {
        JointSpaceController { kp: 100.0, kv: 20.0 }
    }
}

impl JointSpaceController {
    /// Creates a joint-space computed-torque controller.
    pub fn new(kp: f64, kv: f64) -> Self {
        JointSpaceController { kp, kv }
    }

    /// Computes the joint torques tracking the desired joint trajectory point
    /// `(qd, qdotd, qddotd)`.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the robot's DoF.
    pub fn compute_torque(
        &self,
        robot: &RobotModel,
        state: &JointState,
        q_desired: &[f64],
        qd_desired: &[f64],
        qdd_desired: &[f64],
    ) -> Vec<f64> {
        assert_eq!(q_desired.len(), robot.dof(), "q_desired length");
        assert_eq!(qd_desired.len(), robot.dof(), "qd_desired length");
        assert_eq!(qdd_desired.len(), robot.dof(), "qdd_desired length");
        let n = robot.dof();
        let mut acc_cmd = vec![0.0; n];
        for i in 0..n {
            acc_cmd[i] = qdd_desired[i]
                + self.kp * (q_desired[i] - state.positions[i])
                + self.kv * (qd_desired[i] - state.velocities[i]);
        }
        robot.inverse_dynamics(&state.positions, &state.velocities, &acc_cmd)
    }
}

/// Helper exposing the orientation error for other crates (the trajectory
/// metrics use it to compare rotational tracking).
pub fn rotation_error_vector(desired: &SE3, actual: &SE3) -> Vec3 {
    orientation_error(desired, actual)
}

/// Returns the quaternion geodesic distance between two poses' orientations.
pub fn rotation_angle_between(a: &SE3, b: &SE3) -> f64 {
    let qa: UnitQuaternion = a.quaternion();
    let qb: UnitQuaternion = b.quaternion();
    qa.angle_to(&qb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::panda::{panda_model, PANDA_HOME};
    use corki_math::Mat3;

    #[test]
    fn holding_reference_at_equilibrium_produces_gravity_compensation() {
        let robot = panda_model();
        let state = JointState::at_rest(PANDA_HOME.to_vec());
        let fk = robot.forward_kinematics(&state.positions);
        let controller = TaskSpaceController::new(ControllerGains::default());
        let reference = TaskReference::hold(fk.end_effector);
        let tau = controller.compute_torque(&robot, &state, &reference);
        // With zero error, τ = Jᵀ hx ≈ gravity compensation projected through
        // the task space; it should be close to the gravity torques for the
        // wrist joints and certainly bounded by the effort limits.
        let limits = robot.effort_limits();
        for (t, l) in tau.iter().zip(limits) {
            assert!(t.abs() <= l + 1e-9);
        }
        assert!(tau.iter().any(|t| t.abs() > 0.1), "expected non-trivial torques");
    }

    #[test]
    fn torque_pushes_towards_target() {
        // Displace the target along +x; the resulting end-effector force
        // should accelerate the end-effector towards +x.
        let robot = panda_model();
        let state = JointState::at_rest(PANDA_HOME.to_vec());
        let fk = robot.forward_kinematics(&state.positions);
        let mut target = fk.end_effector;
        target.translation.x += 0.05;
        let controller = TaskSpaceController::new(ControllerGains::default());
        let tau = controller.compute_torque(&robot, &state, &TaskReference::hold(target));
        let qdd = robot.forward_dynamics(&state.positions, &state.velocities, &tau);
        // Map the joint acceleration to task space: ẍ = J q̈ + J̇ q̇ (q̇ = 0).
        let j = robot.jacobian(&state.positions);
        let (lin, _) = j.mul_qdot(&qdd);
        assert!(lin.x > 0.0, "end-effector should accelerate towards the target, got {lin}");
    }

    #[test]
    fn orientation_error_is_zero_for_identical_poses() {
        let pose = SE3::new(Mat3::from_euler_xyz(0.3, -0.2, 0.9), Vec3::new(0.4, 0.0, 0.5));
        assert!(orientation_error(&pose, &pose).norm() < 1e-12);
    }

    #[test]
    fn orientation_error_matches_small_rotation() {
        let actual = SE3::identity();
        let angle = 0.01;
        let desired = SE3::from_rotation(Mat3::rotation_z(angle));
        let err = orientation_error(&desired, &actual);
        assert!((err - Vec3::new(0.0, 0.0, angle)).norm() < 1e-6);
    }

    #[test]
    fn effort_clamping_respects_limits() {
        let robot = panda_model();
        let state = JointState::at_rest(PANDA_HOME.to_vec());
        let fk = robot.forward_kinematics(&state.positions);
        let mut target = fk.end_effector;
        target.translation.x += 10.0; // absurdly far target
        let controller = TaskSpaceController::new(ControllerGains::default());
        let tau = controller.compute_torque(&robot, &state, &TaskReference::hold(target));
        for (t, l) in tau.iter().zip(robot.effort_limits()) {
            assert!(t.abs() <= l + 1e-9);
        }
        let unclamped = TaskSpaceController::new(ControllerGains::default())
            .without_effort_clamping()
            .compute_torque(&robot, &state, &TaskReference::hold(target));
        assert!(unclamped.iter().zip(robot.effort_limits()).any(|(t, l)| t.abs() > l));
    }

    #[test]
    fn joint_space_controller_tracks_reference_acceleration() {
        let robot = panda_model();
        let state = JointState::at_rest(PANDA_HOME.to_vec());
        let ctrl = JointSpaceController::new(0.0, 0.0);
        let qdd_desired: Vec<f64> = (0..7).map(|i| 0.1 * i as f64).collect();
        let tau =
            ctrl.compute_torque(&robot, &state, &state.positions, &state.velocities, &qdd_desired);
        let qdd = robot.forward_dynamics(&state.positions, &state.velocities, &tau);
        for i in 0..7 {
            assert!((qdd[i] - qdd_desired[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn critically_damped_gains() {
        let g = ControllerGains::critically_damped(400.0, 100.0, 0.5);
        assert!((g.kv_linear - 40.0).abs() < 1e-12);
        assert!((g.kv_angular - 20.0).abs() < 1e-12);
        assert_eq!(g.null_space_damping, 0.5);
    }

    #[test]
    fn rotation_helpers_are_consistent() {
        let a = SE3::from_rotation(Mat3::rotation_y(0.4));
        let b = SE3::from_rotation(Mat3::rotation_y(-0.1));
        let v = rotation_error_vector(&a, &b);
        let angle = rotation_angle_between(&a, &b);
        assert!((v.norm() - angle).abs() < 1e-9);
    }
}
