//! Robot model description: joints, links and the kinematic chain.

use corki_math::{SpatialInertia, SE3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a joint in the kinematic chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JointKind {
    /// Rotation about the local Z axis (all seven Panda joints).
    RevoluteZ,
    /// Translation along the local Z axis.
    PrismaticZ,
    /// A rigid connection contributing no degree of freedom (e.g. the flange
    /// and the gripper body).
    Fixed,
}

impl JointKind {
    /// Returns `true` for joints that contribute a degree of freedom.
    pub fn is_actuated(self) -> bool {
        !matches!(self, JointKind::Fixed)
    }
}

/// A single joint: its kind, limits and the modified-DH frame placement of the
/// link it drives (relative to the previous link frame, before the joint
/// variable is applied).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JointModel {
    /// Human-readable joint name.
    pub name: String,
    /// Joint kind.
    pub kind: JointKind,
    /// Modified-DH link length `a_{i-1}` in metres.
    pub a: f64,
    /// Modified-DH link offset `d_i` in metres.
    pub d: f64,
    /// Modified-DH link twist `α_{i-1}` in radians.
    pub alpha: f64,
    /// Fixed joint-angle offset `θ_offset` added to the joint variable.
    pub theta_offset: f64,
    /// Lower position limit (radians or metres).
    pub position_min: f64,
    /// Upper position limit (radians or metres).
    pub position_max: f64,
    /// Velocity limit magnitude (rad/s or m/s).
    pub velocity_limit: f64,
    /// Torque/force limit magnitude (N·m or N).
    pub effort_limit: f64,
}

impl JointModel {
    /// Convenience constructor for a revolute modified-DH joint.
    #[allow(clippy::too_many_arguments)]
    pub fn revolute(
        name: &str,
        a: f64,
        d: f64,
        alpha: f64,
        position_min: f64,
        position_max: f64,
        velocity_limit: f64,
        effort_limit: f64,
    ) -> Self {
        JointModel {
            name: name.to_owned(),
            kind: JointKind::RevoluteZ,
            a,
            d,
            alpha,
            theta_offset: 0.0,
            position_min,
            position_max,
            velocity_limit,
            effort_limit,
        }
    }

    /// Convenience constructor for a fixed (0-DoF) joint.
    pub fn fixed(name: &str, a: f64, d: f64, alpha: f64, theta_offset: f64) -> Self {
        JointModel {
            name: name.to_owned(),
            kind: JointKind::Fixed,
            a,
            d,
            alpha,
            theta_offset,
            position_min: 0.0,
            position_max: 0.0,
            velocity_limit: 0.0,
            effort_limit: 0.0,
        }
    }

    /// The pose of the driven link frame in the parent link frame for joint
    /// variable `q` (ignored for fixed joints).
    pub fn transform(&self, q: f64) -> SE3 {
        let theta = match self.kind {
            JointKind::RevoluteZ => self.theta_offset + q,
            JointKind::PrismaticZ | JointKind::Fixed => self.theta_offset,
        };
        let d = match self.kind {
            JointKind::PrismaticZ => self.d + q,
            JointKind::RevoluteZ | JointKind::Fixed => self.d,
        };
        SE3::from_mdh(self.a, d, self.alpha, theta)
    }

    /// Clamps a joint position into its limits.
    pub fn clamp_position(&self, q: f64) -> f64 {
        if self.kind == JointKind::Fixed {
            return q;
        }
        q.max(self.position_min).min(self.position_max)
    }
}

/// A rigid link with its inertial parameters expressed in the link frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Human-readable link name.
    pub name: String,
    /// Spatial inertia of the link expressed in the link frame.
    pub inertia: SpatialInertia,
}

impl Link {
    /// Creates a link from a name and inertia.
    pub fn new(name: &str, inertia: SpatialInertia) -> Self {
        Link { name: name.to_owned(), inertia }
    }
}

/// Errors produced by [`RobotModel`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RobotError {
    /// The number of joint values supplied does not match the robot's DoF.
    DimensionMismatch {
        /// Expected number of joint values (the robot's DoF).
        expected: usize,
        /// Number of joint values actually supplied.
        actual: usize,
    },
    /// The model definition is inconsistent (e.g. no actuated joints).
    InvalidModel(String),
}

impl fmt::Display for RobotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RobotError::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} joint values, got {actual}")
            }
            RobotError::InvalidModel(msg) => write!(f, "invalid robot model: {msg}"),
        }
    }
}

impl std::error::Error for RobotError {}

/// A serial-chain robot model: an alternating sequence of joints and the links
/// they drive, rooted at a fixed base.
///
/// The Franka Emika Panda model used throughout the paper reproduction is
/// constructed by [`crate::panda::panda_model`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RobotModel {
    name: String,
    joints: Vec<JointModel>,
    links: Vec<Link>,
    gravity: corki_math::Vec3,
}

impl RobotModel {
    /// Builds a robot model from joints and links.
    ///
    /// # Errors
    ///
    /// Returns [`RobotError::InvalidModel`] if the numbers of joints and links
    /// differ or no joint is actuated.
    pub fn new(name: &str, joints: Vec<JointModel>, links: Vec<Link>) -> Result<Self, RobotError> {
        if joints.len() != links.len() {
            return Err(RobotError::InvalidModel(format!(
                "{} joints but {} links",
                joints.len(),
                links.len()
            )));
        }
        if !joints.iter().any(|j| j.kind.is_actuated()) {
            return Err(RobotError::InvalidModel("model has no actuated joints".to_owned()));
        }
        Ok(RobotModel {
            name: name.to_owned(),
            joints,
            links,
            gravity: corki_math::Vec3::new(0.0, 0.0, -9.81),
        })
    }

    /// The robot's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of actuated degrees of freedom.
    pub fn dof(&self) -> usize {
        self.joints.iter().filter(|j| j.kind.is_actuated()).count()
    }

    /// Total number of bodies (actuated and fixed) in the chain.
    pub fn num_bodies(&self) -> usize {
        self.joints.len()
    }

    /// All joints in chain order (including fixed ones).
    pub fn joints(&self) -> &[JointModel] {
        &self.joints
    }

    /// All links in chain order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Gravity vector in the base frame (default `(0, 0, -9.81)` m/s²).
    pub fn gravity(&self) -> corki_math::Vec3 {
        self.gravity
    }

    /// Overrides the gravity vector (used in tests for zero-gravity checks).
    pub fn set_gravity(&mut self, gravity: corki_math::Vec3) {
        self.gravity = gravity;
    }

    /// Indices (into [`RobotModel::joints`]) of the actuated joints, in order.
    pub fn actuated_indices(&self) -> Vec<usize> {
        self.joints
            .iter()
            .enumerate()
            .filter(|(_, j)| j.kind.is_actuated())
            .map(|(i, _)| i)
            .collect()
    }

    /// Validates that a joint-position (or velocity/torque) vector matches the
    /// robot's DoF.
    ///
    /// # Errors
    ///
    /// Returns [`RobotError::DimensionMismatch`] on length mismatch.
    pub fn check_dof(&self, values: &[f64]) -> Result<(), RobotError> {
        if values.len() != self.dof() {
            Err(RobotError::DimensionMismatch { expected: self.dof(), actual: values.len() })
        } else {
            Ok(())
        }
    }

    /// Clamps a joint-position vector into the joint limits.
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` does not match the robot's DoF.
    pub fn clamp_positions(&self, q: &[f64]) -> Vec<f64> {
        assert_eq!(q.len(), self.dof(), "clamp_positions: wrong DoF");
        let mut out = Vec::with_capacity(q.len());
        let mut qi = q.iter();
        for joint in &self.joints {
            if joint.kind.is_actuated() {
                out.push(joint.clamp_position(*qi.next().expect("length checked")));
            }
        }
        out
    }

    /// Returns per-joint effort (torque) limits for the actuated joints.
    pub fn effort_limits(&self) -> Vec<f64> {
        self.joints.iter().filter(|j| j.kind.is_actuated()).map(|j| j.effort_limit).collect()
    }

    /// Returns per-joint velocity limits for the actuated joints.
    pub fn velocity_limits(&self) -> Vec<f64> {
        self.joints.iter().filter(|j| j.kind.is_actuated()).map(|j| j.velocity_limit).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corki_math::{Mat3, SpatialInertia, Vec3};

    fn two_link() -> RobotModel {
        let joints = vec![
            JointModel::revolute("j1", 0.0, 0.0, 0.0, -3.0, 3.0, 2.0, 50.0),
            JointModel::revolute("j2", 0.3, 0.0, 0.0, -2.0, 2.0, 2.0, 50.0),
        ];
        let links = vec![
            Link::new(
                "l1",
                SpatialInertia::new(1.0, Vec3::new(0.15, 0.0, 0.0), Mat3::identity() * 0.01),
            ),
            Link::new(
                "l2",
                SpatialInertia::new(0.5, Vec3::new(0.1, 0.0, 0.0), Mat3::identity() * 0.005),
            ),
        ];
        RobotModel::new("two-link", joints, links).unwrap()
    }

    #[test]
    fn dof_counts_actuated_joints_only() {
        let mut joints = two_link().joints().to_vec();
        joints.push(JointModel::fixed("flange", 0.0, 0.1, 0.0, 0.0));
        let mut links = two_link().links().to_vec();
        links.push(Link::new("flange", SpatialInertia::zero()));
        let robot = RobotModel::new("with-flange", joints, links).unwrap();
        assert_eq!(robot.dof(), 2);
        assert_eq!(robot.num_bodies(), 3);
        assert_eq!(robot.actuated_indices(), vec![0, 1]);
    }

    #[test]
    fn mismatched_joints_and_links_rejected() {
        let joints = vec![JointModel::revolute("j1", 0.0, 0.0, 0.0, -1.0, 1.0, 1.0, 1.0)];
        let links = vec![];
        assert!(matches!(RobotModel::new("bad", joints, links), Err(RobotError::InvalidModel(_))));
    }

    #[test]
    fn all_fixed_joints_rejected() {
        let joints = vec![JointModel::fixed("f", 0.0, 0.0, 0.0, 0.0)];
        let links = vec![Link::new("l", SpatialInertia::zero())];
        assert!(RobotModel::new("bad", joints, links).is_err());
    }

    #[test]
    fn check_dof_validates_length() {
        let robot = two_link();
        assert!(robot.check_dof(&[0.0, 0.0]).is_ok());
        let err = robot.check_dof(&[0.0]).unwrap_err();
        assert_eq!(err, RobotError::DimensionMismatch { expected: 2, actual: 1 });
        assert!(err.to_string().contains("expected 2"));
    }

    #[test]
    fn clamp_positions_respects_limits() {
        let robot = two_link();
        let clamped = robot.clamp_positions(&[10.0, -10.0]);
        assert_eq!(clamped, vec![3.0, -2.0]);
    }

    #[test]
    fn revolute_transform_rotates_about_z() {
        let joint = JointModel::revolute("j", 0.0, 0.0, 0.0, -3.0, 3.0, 1.0, 1.0);
        let t = joint.transform(0.5);
        let expected = corki_math::Mat3::rotation_z(0.5);
        assert!((t.rotation - expected).max_abs() < 1e-12);
    }

    #[test]
    fn fixed_transform_ignores_q() {
        let joint = JointModel::fixed("f", 0.1, 0.2, 0.0, 0.3);
        assert_eq!(joint.transform(123.0), joint.transform(0.0));
    }

    #[test]
    fn effort_and_velocity_limits_exposed() {
        let robot = two_link();
        assert_eq!(robot.effort_limits(), vec![50.0, 50.0]);
        assert_eq!(robot.velocity_limits(), vec![2.0, 2.0]);
    }

    #[test]
    fn gravity_default_and_override() {
        let mut robot = two_link();
        assert_eq!(robot.gravity(), Vec3::new(0.0, 0.0, -9.81));
        robot.set_gravity(Vec3::ZERO);
        assert_eq!(robot.gravity(), Vec3::ZERO);
    }
}
