//! The Franka Emika Panda 7-DoF manipulator model used throughout the paper.
//!
//! Kinematic parameters follow the official modified-DH table of the Panda;
//! inertial parameters follow the identified dynamic model of Gaz et al.,
//! *"Dynamic identification of the Franka Emika Panda robot with retrieval of
//! feasible parameters using penalty-based optimization"* (RA-L 2019), which
//! is the same source the paper cites for its mass-matrix sensitivity study
//! (Fig. 9/10).

use crate::model::{JointModel, Link, RobotModel};
use corki_math::{Mat3, SpatialInertia, Vec3};
use std::f64::consts::FRAC_PI_2;

/// Number of actuated joints of the Panda arm.
pub const PANDA_DOF: usize = 7;

/// A comfortable "home" configuration (radians) away from joint limits and
/// singularities, used as the reset configuration by the simulator.
pub const PANDA_HOME: [f64; PANDA_DOF] = [0.0, -0.3, 0.0, -1.8, 0.0, 1.5, 0.785];

/// Builds the Franka Emika Panda model (7 revolute joints, flange and a
/// parallel-gripper body as fixed links).
///
/// ```
/// let robot = corki_robot::panda::panda_model();
/// assert_eq!(robot.dof(), 7);
/// ```
pub fn panda_model() -> RobotModel {
    // Modified-DH parameters (a_{i-1} [m], d_i [m], alpha_{i-1} [rad]).
    // Joint limits and effort/velocity limits from the Panda datasheet.
    let joints = vec![
        JointModel::revolute("panda_joint1", 0.0, 0.333, 0.0, -2.8973, 2.8973, 2.1750, 87.0),
        JointModel::revolute("panda_joint2", 0.0, 0.0, -FRAC_PI_2, -1.7628, 1.7628, 2.1750, 87.0),
        JointModel::revolute("panda_joint3", 0.0, 0.316, FRAC_PI_2, -2.8973, 2.8973, 2.1750, 87.0),
        JointModel::revolute(
            "panda_joint4",
            0.0825,
            0.0,
            FRAC_PI_2,
            -3.0718,
            -0.0698,
            2.1750,
            87.0,
        ),
        JointModel::revolute(
            "panda_joint5",
            -0.0825,
            0.384,
            -FRAC_PI_2,
            -2.8973,
            2.8973,
            2.6100,
            12.0,
        ),
        JointModel::revolute("panda_joint6", 0.0, 0.0, FRAC_PI_2, -0.0175, 3.7525, 2.6100, 12.0),
        JointModel::revolute("panda_joint7", 0.088, 0.0, FRAC_PI_2, -2.8973, 2.8973, 2.6100, 12.0),
        // Flange (fixed) and gripper body (fixed).
        JointModel::fixed("panda_flange", 0.0, 0.107, 0.0, 0.0),
        JointModel::fixed("panda_hand", 0.0, 0.1034, 0.0, -std::f64::consts::FRAC_PI_4),
    ];

    let links = vec![
        link(
            "panda_link1",
            4.970684,
            Vec3::new(0.003875, 0.002081, -0.04762),
            [0.70337, 0.70661, 0.009117, -0.000139, 0.006772, 0.019169],
        ),
        link(
            "panda_link2",
            0.646926,
            Vec3::new(-0.003141, -0.02872, 0.003495),
            [0.007962, 0.02811, 0.025995, -0.003925, 0.000704, 0.010254],
        ),
        link(
            "panda_link3",
            3.228604,
            Vec3::new(0.027518, 0.039252, -0.066502),
            [0.037242, 0.036155, 0.01083, -0.004761, -0.011396, -0.012805],
        ),
        link(
            "panda_link4",
            3.587895,
            Vec3::new(-0.05317, 0.104419, 0.027454),
            [0.025853, 0.019552, 0.028323, 0.007796, 0.008641, -0.001332],
        ),
        link(
            "panda_link5",
            1.225946,
            Vec3::new(-0.011953, 0.041065, -0.038437),
            [0.035549, 0.029474, 0.008627, -0.002117, 0.000229, -0.004037],
        ),
        link(
            "panda_link6",
            1.666555,
            Vec3::new(0.060149, -0.014117, -0.010517),
            [0.001964, 0.004354, 0.005433, 0.000109, -0.001158, 0.000341],
        ),
        link(
            "panda_link7",
            0.735522,
            Vec3::new(0.010517, -0.004252, 0.061597),
            [0.012516, 0.010027, 0.004815, -0.000428, -0.001196, -0.000741],
        ),
        // Flange: essentially massless adapter plate.
        link("panda_flange", 0.1, Vec3::new(0.0, 0.0, 0.01), [1e-4, 1e-4, 1e-4, 0.0, 0.0, 0.0]),
        // Hand with two fingers (combined), per the Franka hand datasheet.
        link(
            "panda_hand",
            0.73,
            Vec3::new(-0.01, 0.0, 0.03),
            [0.001, 0.0025, 0.0017, 0.0, 0.0, 0.0],
        ),
    ];

    RobotModel::new("franka_emika_panda", joints, links)
        .expect("the built-in Panda description is consistent")
}

/// Builds a link from mass, centre of mass and the six independent entries
/// `[Ixx, Iyy, Izz, Ixy, Ixz, Iyz]` of its rotational inertia about the CoM.
fn link(name: &str, mass: f64, com: Vec3, i: [f64; 6]) -> Link {
    let inertia_com = Mat3::from_rows([i[0], i[3], i[4]], [i[3], i[1], i[5]], [i[4], i[5], i[2]]);
    Link::new(name, SpatialInertia::new(mass, com, inertia_com))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_dimensions() {
        let robot = panda_model();
        assert_eq!(robot.dof(), PANDA_DOF);
        assert_eq!(robot.num_bodies(), 9);
        assert_eq!(robot.name(), "franka_emika_panda");
    }

    #[test]
    fn total_mass_is_plausible() {
        let robot = panda_model();
        let total: f64 = robot.links().iter().map(|l| l.inertia.mass).sum();
        // The Panda arm weighs roughly 18 kg plus ~0.8 kg hand.
        assert!(total > 15.0 && total < 20.0, "total mass {total} out of range");
    }

    #[test]
    fn home_configuration_is_within_limits() {
        let robot = panda_model();
        let clamped = robot.clamp_positions(&PANDA_HOME);
        for (a, b) in clamped.iter().zip(PANDA_HOME.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn home_end_effector_pose_is_in_front_of_robot() {
        let robot = panda_model();
        let fk = robot.forward_kinematics(&PANDA_HOME);
        let p = fk.end_effector.translation;
        // At the home configuration the TCP sits in front of the base (+x),
        // roughly half a metre up.
        assert!(p.x > 0.2, "x = {}", p.x);
        assert!(p.z > 0.2 && p.z < 1.0, "z = {}", p.z);
    }

    #[test]
    fn zero_configuration_matches_kinematic_structure() {
        // At the (mechanically infeasible but kinematically well-defined)
        // all-zero configuration the arm extends upward with the flange
        // pointing down, so the TCP height is the sum of the link offsets
        // minus the flange and hand lengths, and the lateral offset is the
        // joint-7 link length a7 = 0.088 m.
        let robot = panda_model();
        let fk = robot.forward_kinematics(&[0.0; 7]);
        let expected_z = 0.333 + 0.316 + 0.384 - 0.107 - 0.1034;
        assert!((fk.end_effector.translation.z - expected_z).abs() < 1e-9);
        assert!((fk.end_effector.translation.x - 0.088).abs() < 1e-9);
        assert!(fk.end_effector.translation.y.abs() < 1e-9);
    }

    #[test]
    fn ready_pose_is_in_front_of_and_above_the_table() {
        // The standard Panda "ready" configuration puts the TCP roughly 0.3 m
        // in front of the base and about half a metre above it.
        let robot = panda_model();
        let ready = [
            0.0,
            -std::f64::consts::FRAC_PI_4,
            0.0,
            -3.0 * std::f64::consts::FRAC_PI_4,
            0.0,
            std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_4,
        ];
        let fk = robot.forward_kinematics(&ready);
        let p = fk.end_effector.translation;
        assert!(p.x > 0.2 && p.x < 0.45, "x = {}", p.x);
        assert!(p.y.abs() < 0.05, "y = {}", p.y);
        assert!(p.z > 0.35 && p.z < 0.75, "z = {}", p.z);
    }

    #[test]
    fn effort_limits_match_datasheet_groups() {
        let robot = panda_model();
        let limits = robot.effort_limits();
        assert_eq!(&limits[..4], &[87.0, 87.0, 87.0, 87.0]);
        assert_eq!(&limits[4..], &[12.0, 12.0, 12.0]);
    }
}
