//! Forward kinematics and the geometric Jacobian.
//!
//! These correspond to the *Forward Kinematics* and *Jacobian* blocks of the
//! TS-CTC data flow (paper Fig. 6/7): the pose block consumes joint angles,
//! the Jacobian block reuses the link poses computed by the pose block — the
//! data-reuse opportunity that the Corki accelerator exploits.

use crate::model::{JointKind, RobotModel};
use corki_math::{DMat, DVec, Vec3, SE3};
use serde::{Deserialize, Serialize};

/// The result of a forward-kinematics pass: the pose of every body frame and
/// of the end-effector, all expressed in the robot base frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardKinematics {
    /// Pose of each body frame (actuated and fixed) in the base frame, in
    /// chain order.
    pub link_poses: Vec<SE3>,
    /// Pose of the final frame in the chain (the end-effector / TCP).
    pub end_effector: SE3,
}

/// The 6×n geometric Jacobian of the end-effector, with the **linear** rows
/// on top and the **angular** rows below, expressed in the base frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jacobian {
    matrix: DMat,
}

impl Jacobian {
    /// Wraps a 6×n matrix as a Jacobian.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not have exactly six rows.
    pub fn from_matrix(matrix: DMat) -> Self {
        assert_eq!(matrix.rows(), 6, "a geometric Jacobian must have 6 rows");
        Jacobian { matrix }
    }

    /// The underlying 6×n matrix.
    pub fn matrix(&self) -> &DMat {
        &self.matrix
    }

    /// Number of joint columns.
    pub fn dof(&self) -> usize {
        self.matrix.cols()
    }

    /// Maps joint velocities to the end-effector spatial velocity
    /// `(linear, angular)`.
    ///
    /// # Panics
    ///
    /// Panics if `qd.len()` differs from the number of columns.
    pub fn mul_qdot(&self, qd: &[f64]) -> (Vec3, Vec3) {
        let v = self.matrix.mul_vec(&DVec::from_slice(qd));
        (Vec3::new(v[0], v[1], v[2]), Vec3::new(v[3], v[4], v[5]))
    }

    /// Maps a task-space wrench `[f; n]` (linear force on top, moment below,
    /// matching the row layout) to joint torques: `τ = Jᵀ F`.
    pub fn transpose_mul_wrench(&self, wrench: &[f64; 6]) -> Vec<f64> {
        let mut tau = vec![0.0; self.matrix.cols()];
        for (j, tau_j) in tau.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, w) in wrench.iter().enumerate() {
                acc += self.matrix[(i, j)] * w;
            }
            *tau_j = acc;
        }
        tau
    }

    /// The transpose as a plain matrix (n×6).
    pub fn transpose(&self) -> DMat {
        self.matrix.transpose()
    }
}

impl RobotModel {
    /// Computes the pose of every body frame and the end-effector for joint
    /// positions `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` does not equal [`RobotModel::dof`].
    pub fn forward_kinematics(&self, q: &[f64]) -> ForwardKinematics {
        assert_eq!(q.len(), self.dof(), "forward_kinematics: wrong DoF");
        let mut link_poses = Vec::with_capacity(self.num_bodies());
        let mut current = SE3::identity();
        let mut qi = q.iter();
        for joint in self.joints() {
            let value = if joint.kind.is_actuated() {
                *qi.next().expect("length checked above")
            } else {
                0.0
            };
            current = current * joint.transform(value);
            link_poses.push(current);
        }
        ForwardKinematics {
            end_effector: *link_poses.last().expect("model has at least one body"),
            link_poses,
        }
    }

    /// Computes the geometric Jacobian of the end-effector at configuration
    /// `q` (linear rows on top, angular rows below, base frame).
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` does not equal [`RobotModel::dof`].
    pub fn jacobian(&self, q: &[f64]) -> Jacobian {
        let fk = self.forward_kinematics(q);
        self.jacobian_from_fk(&fk)
    }

    /// Computes the geometric Jacobian reusing an existing forward-kinematics
    /// result — the data-reuse path highlighted in the paper (Fig. 7).
    pub fn jacobian_from_fk(&self, fk: &ForwardKinematics) -> Jacobian {
        let p_ee = fk.end_effector.translation;
        let mut matrix = DMat::zeros(6, self.dof());
        let mut col = 0usize;
        for (body, joint) in self.joints().iter().enumerate() {
            if !joint.kind.is_actuated() {
                continue;
            }
            let pose = &fk.link_poses[body];
            let axis = pose.rotation.col(2); // local Z in base frame
            match joint.kind {
                JointKind::RevoluteZ => {
                    let lever = p_ee - pose.translation;
                    let linear = axis.cross(lever);
                    for i in 0..3 {
                        matrix[(i, col)] = linear[i];
                        matrix[(i + 3, col)] = axis[i];
                    }
                }
                JointKind::PrismaticZ => {
                    for i in 0..3 {
                        matrix[(i, col)] = axis[i];
                        matrix[(i + 3, col)] = 0.0;
                    }
                }
                JointKind::Fixed => unreachable!("filtered above"),
            }
            col += 1;
        }
        Jacobian::from_matrix(matrix)
    }

    /// End-effector linear and angular velocity for the given joint state.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `qd` have the wrong length.
    pub fn end_effector_velocity(&self, q: &[f64], qd: &[f64]) -> (Vec3, Vec3) {
        assert_eq!(qd.len(), self.dof(), "end_effector_velocity: wrong DoF");
        self.jacobian(q).mul_qdot(qd)
    }

    /// The product `J̇(θ, θ̇)·θ̇` — the acceleration bias of the end-effector —
    /// evaluated by central finite differences along the joint motion.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `qd` have the wrong length.
    pub fn jacobian_dot_qdot(&self, q: &[f64], qd: &[f64]) -> [f64; 6] {
        assert_eq!(q.len(), self.dof(), "jacobian_dot_qdot: wrong DoF");
        assert_eq!(qd.len(), self.dof(), "jacobian_dot_qdot: wrong DoF");
        let eps = 1e-6;
        let q_plus: Vec<f64> = q.iter().zip(qd).map(|(qi, di)| qi + eps * di).collect();
        let q_minus: Vec<f64> = q.iter().zip(qd).map(|(qi, di)| qi - eps * di).collect();
        let j_plus = self.jacobian(&q_plus);
        let j_minus = self.jacobian(&q_minus);
        let qd_vec = DVec::from_slice(qd);
        let v_plus = j_plus.matrix().mul_vec(&qd_vec);
        let v_minus = j_minus.matrix().mul_vec(&qd_vec);
        let mut out = [0.0; 6];
        for (i, o) in out.iter_mut().enumerate() {
            *o = (v_plus[i] - v_minus[i]) / (2.0 * eps);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{JointModel, Link};
    use crate::panda;
    use corki_math::{Mat3, SpatialInertia};
    use proptest::prelude::*;

    /// A planar two-link arm with unit-length links in the XY plane, whose
    /// kinematics have a simple closed form for cross-checking.
    fn planar_two_link() -> RobotModel {
        let joints = vec![
            JointModel::revolute("j1", 0.0, 0.0, 0.0, -3.1, 3.1, 10.0, 100.0),
            JointModel::revolute("j2", 1.0, 0.0, 0.0, -3.1, 3.1, 10.0, 100.0),
            JointModel::fixed("tip", 1.0, 0.0, 0.0, 0.0),
        ];
        let links = vec![
            Link::new(
                "l1",
                SpatialInertia::new(
                    1.0,
                    corki_math::Vec3::new(0.5, 0.0, 0.0),
                    Mat3::identity() * 0.01,
                ),
            ),
            Link::new(
                "l2",
                SpatialInertia::new(
                    1.0,
                    corki_math::Vec3::new(0.5, 0.0, 0.0),
                    Mat3::identity() * 0.01,
                ),
            ),
            Link::new("tip", SpatialInertia::zero()),
        ];
        RobotModel::new("planar2", joints, links).unwrap()
    }

    #[test]
    fn planar_fk_matches_closed_form() {
        let robot = planar_two_link();
        for &(q1, q2) in &[(0.0, 0.0), (0.3, -0.5), (1.2, 0.7), (-2.0, 1.5)] {
            let fk = robot.forward_kinematics(&[q1, q2]);
            let expected_x = q1.cos() + (q1 + q2).cos();
            let expected_y = q1.sin() + (q1 + q2).sin();
            let p = fk.end_effector.translation;
            assert!((p.x - expected_x).abs() < 1e-12, "x mismatch at ({q1},{q2})");
            assert!((p.y - expected_y).abs() < 1e-12, "y mismatch at ({q1},{q2})");
            assert!(p.z.abs() < 1e-12);
        }
    }

    #[test]
    fn planar_jacobian_matches_closed_form() {
        let robot = planar_two_link();
        let (q1, q2) = (0.4, -0.9);
        let j = robot.jacobian(&[q1, q2]);
        let m = j.matrix();
        // dx/dq1 = -sin(q1) - sin(q1+q2), dx/dq2 = -sin(q1+q2)
        assert!((m[(0, 0)] - (-q1.sin() - (q1 + q2).sin())).abs() < 1e-12);
        assert!((m[(0, 1)] - (-(q1 + q2).sin())).abs() < 1e-12);
        // dy/dq1 = cos(q1) + cos(q1+q2), dy/dq2 = cos(q1+q2)
        assert!((m[(1, 0)] - (q1.cos() + (q1 + q2).cos())).abs() < 1e-12);
        assert!((m[(1, 1)] - (q1 + q2).cos()).abs() < 1e-12);
        // Angular rows: both joints rotate about base Z.
        assert!((m[(5, 0)] - 1.0).abs() < 1e-12);
        assert!((m[(5, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jacobian_matches_numeric_differentiation_on_panda() {
        let robot = panda::panda_model();
        let q = [0.3, -0.6, 0.2, -1.8, 0.1, 1.9, 0.5];
        let j = robot.jacobian(&q);
        let eps = 1e-7;
        for col in 0..robot.dof() {
            let mut qp = q;
            qp[col] += eps;
            let mut qm = q;
            qm[col] -= eps;
            let fp = robot.forward_kinematics(&qp).end_effector.translation;
            let fm = robot.forward_kinematics(&qm).end_effector.translation;
            let numeric = (fp - fm) / (2.0 * eps);
            for row in 0..3 {
                assert!(
                    (j.matrix()[(row, col)] - numeric[row]).abs() < 1e-5,
                    "jacobian mismatch at ({row},{col})"
                );
            }
        }
    }

    #[test]
    fn velocity_from_jacobian_matches_finite_difference() {
        let robot = panda::panda_model();
        let q = [0.1, -0.4, 0.3, -2.0, 0.0, 1.6, 0.2];
        let qd = [0.2, -0.1, 0.3, 0.1, -0.2, 0.15, 0.05];
        let (lin, _ang) = robot.end_effector_velocity(&q, &qd);
        let dt = 1e-7;
        let q_next: Vec<f64> = q.iter().zip(&qd).map(|(a, b)| a + b * dt).collect();
        let p0 = robot.forward_kinematics(&q).end_effector.translation;
        let p1 = robot.forward_kinematics(&q_next).end_effector.translation;
        let lin_fd = (p1 - p0) / dt;
        assert!((lin - lin_fd).norm() < 1e-5);
    }

    #[test]
    fn transpose_mul_wrench_matches_manual() {
        let robot = planar_two_link();
        let j = robot.jacobian(&[0.2, 0.3]);
        let wrench = [1.0, -2.0, 0.5, 0.1, 0.0, -0.3];
        let tau = j.transpose_mul_wrench(&wrench);
        for (col, tau_c) in tau.iter().enumerate() {
            let mut expected = 0.0;
            for (row, w) in wrench.iter().enumerate() {
                expected += j.matrix()[(row, col)] * w;
            }
            assert!((tau_c - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobian_dot_qdot_zero_when_stationary() {
        let robot = panda::panda_model();
        let q = [0.0, -0.3, 0.0, -1.5, 0.0, 1.2, 0.0];
        let qd = [0.0; 7];
        let jdqd = robot.jacobian_dot_qdot(&q, &qd);
        assert!(jdqd.iter().all(|x| x.abs() < 1e-9));
    }

    #[test]
    #[should_panic]
    fn wrong_dof_panics() {
        let robot = panda::panda_model();
        let _ = robot.forward_kinematics(&[0.0; 3]);
    }

    proptest! {
        #[test]
        fn panda_end_effector_stays_within_reach(
            q in proptest::collection::vec(-1.5..1.5f64, 7)) {
            let robot = panda::panda_model();
            let fk = robot.forward_kinematics(&q);
            // The Panda's reach is roughly 0.855 m plus flange/gripper length.
            prop_assert!(fk.end_effector.translation.norm() < 1.4);
            prop_assert!(fk.end_effector.rotation.is_rotation(1e-9));
        }

        #[test]
        fn jacobian_linear_velocity_consistency(
            q in proptest::collection::vec(-1.2..1.2f64, 7),
            qd in proptest::collection::vec(-0.5..0.5f64, 7)) {
            let robot = panda::panda_model();
            let (lin, _) = robot.end_effector_velocity(&q, &qd);
            let dt = 1e-7;
            let q_next: Vec<f64> = q.iter().zip(&qd).map(|(a, b)| a + b * dt).collect();
            let p0 = robot.forward_kinematics(&q).end_effector.translation;
            let p1 = robot.forward_kinematics(&q_next).end_effector.translation;
            let fd = (p1 - p0) / dt;
            prop_assert!((lin - fd).norm() < 1e-4);
        }
    }
}
