//! A small joint-space dynamics simulator used to execute torque commands.
//!
//! The simulator integrates the manipulator's rigid-body dynamics with a
//! semi-implicit Euler scheme at a configurable physics step, which is how
//! `corki-sim` closes the loop policy → trajectory → TS-CTC → robot motion.

use crate::model::RobotModel;
use crate::state::JointState;
use serde::{Deserialize, Serialize};

/// Configuration of the joint-space simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulatorConfig {
    /// Physics integration step in seconds (default 1 ms).
    pub physics_dt: f64,
    /// Viscous joint friction coefficient (N·m·s/rad), applied per joint.
    pub joint_friction: f64,
    /// Whether to clamp joint positions to the model's limits after each step.
    pub enforce_position_limits: bool,
    /// Whether to clamp applied torques to the model's effort limits.
    pub enforce_effort_limits: bool,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            physics_dt: 1e-3,
            joint_friction: 0.5,
            enforce_position_limits: true,
            enforce_effort_limits: true,
        }
    }
}

/// A forward-dynamics simulator for a serial manipulator.
///
/// ```
/// use corki_robot::{panda, ArmSimulator, SimulatorConfig, JointState};
///
/// let robot = panda::panda_model();
/// let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
/// sim.reset(JointState::at_rest(panda::PANDA_HOME.to_vec()));
/// let gravity_comp = sim.robot().gravity_torques(&sim.state().positions);
/// sim.step(&gravity_comp, 0.01);
/// assert!(sim.state().velocities.iter().all(|v| v.abs() < 0.05));
/// ```
#[derive(Debug, Clone)]
pub struct ArmSimulator {
    robot: RobotModel,
    state: JointState,
    config: SimulatorConfig,
    elapsed: f64,
}

impl ArmSimulator {
    /// Creates a simulator with the robot at the all-zero configuration.
    pub fn new(robot: RobotModel, config: SimulatorConfig) -> Self {
        let state = JointState::zeros(robot.dof());
        ArmSimulator { robot, state, config, elapsed: 0.0 }
    }

    /// The simulated robot model.
    pub fn robot(&self) -> &RobotModel {
        &self.robot
    }

    /// The current joint state.
    pub fn state(&self) -> &JointState {
        &self.state
    }

    /// Total simulated time in seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimulatorConfig {
        &self.config
    }

    /// Resets the simulator to the given joint state and zero elapsed time.
    ///
    /// # Panics
    ///
    /// Panics if the state's DoF differs from the robot's.
    pub fn reset(&mut self, state: JointState) {
        assert_eq!(state.dof(), self.robot.dof(), "reset: wrong DoF");
        self.state = state;
        self.elapsed = 0.0;
    }

    /// Applies a constant torque for `duration` seconds, sub-stepping at the
    /// configured physics step. Returns the state after integration.
    ///
    /// # Panics
    ///
    /// Panics if `torque.len()` differs from the robot's DoF or `duration` is
    /// negative.
    pub fn step(&mut self, torque: &[f64], duration: f64) -> &JointState {
        assert_eq!(torque.len(), self.robot.dof(), "step: wrong torque length");
        assert!(duration >= 0.0, "step: negative duration");
        let mut remaining = duration;
        while remaining > 1e-12 {
            let dt = remaining.min(self.config.physics_dt);
            self.substep(torque, dt);
            remaining -= dt;
        }
        self.elapsed += duration;
        &self.state
    }

    fn substep(&mut self, torque: &[f64], dt: f64) {
        let mut applied = torque.to_vec();
        if self.config.enforce_effort_limits {
            for (t, limit) in applied.iter_mut().zip(self.robot.effort_limits()) {
                *t = t.clamp(-limit, limit);
            }
        }
        // Viscous friction.
        for (t, qd) in applied.iter_mut().zip(&self.state.velocities) {
            *t -= self.config.joint_friction * qd;
        }
        let qdd =
            self.robot.forward_dynamics(&self.state.positions, &self.state.velocities, &applied);
        // Semi-implicit Euler: update velocity first, then position.
        for (v, a) in self.state.velocities.iter_mut().zip(&qdd) {
            *v += a * dt;
        }
        let vel_limits = self.robot.velocity_limits();
        for (v, limit) in self.state.velocities.iter_mut().zip(vel_limits) {
            if limit > 0.0 {
                *v = v.clamp(-limit, limit);
            }
        }
        for (p, v) in self.state.positions.iter_mut().zip(&self.state.velocities) {
            *p += v * dt;
        }
        if self.config.enforce_position_limits {
            let clamped = self.robot.clamp_positions(&self.state.positions);
            let joints = self.state.positions.iter_mut().zip(self.state.velocities.iter_mut());
            for ((p, v), c) in joints.zip(&clamped) {
                if (c - *p).abs() > 1e-12 {
                    // Hit a joint limit: stop the joint.
                    *p = *c;
                    *v = 0.0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{ControllerGains, TaskReference, TaskSpaceController};
    use crate::panda::{panda_model, PANDA_HOME};

    #[test]
    fn gravity_compensation_keeps_arm_still() {
        let robot = panda_model();
        let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
        sim.reset(JointState::at_rest(PANDA_HOME.to_vec()));
        for _ in 0..20 {
            let tau = sim.robot().gravity_torques(&sim.state().positions);
            sim.step(&tau, 0.005);
        }
        for (p, home) in sim.state().positions.iter().zip(PANDA_HOME.iter()) {
            assert!((p - home).abs() < 0.01, "joint drifted: {p} vs {home}");
        }
    }

    #[test]
    fn unpowered_arm_falls_under_gravity() {
        let robot = panda_model();
        let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
        sim.reset(JointState::at_rest(PANDA_HOME.to_vec()));
        let zero = vec![0.0; 7];
        sim.step(&zero, 0.2);
        let moved: f64 =
            sim.state().positions.iter().zip(PANDA_HOME.iter()).map(|(a, b)| (a - b).abs()).sum();
        assert!(moved > 0.05, "arm should sag without torque, moved {moved}");
    }

    #[test]
    fn ts_ctc_closed_loop_converges_to_target() {
        let robot = panda_model();
        let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
        sim.reset(JointState::at_rest(PANDA_HOME.to_vec()));
        let start = sim.robot().forward_kinematics(&sim.state().positions).end_effector;
        let mut target = start;
        target.translation.x += 0.05;
        target.translation.z -= 0.03;
        let controller = TaskSpaceController::new(ControllerGains::default());
        let reference = TaskReference::hold(target);
        // 1 s of closed-loop control at 100 Hz.
        for _ in 0..100 {
            let tau = controller.compute_torque(sim.robot(), sim.state(), &reference);
            sim.step(&tau, 0.01);
        }
        let reached = sim.robot().forward_kinematics(&sim.state().positions).end_effector;
        let err = (reached.translation - target.translation).norm();
        assert!(err < 0.01, "closed-loop position error too large: {err}");
    }

    #[test]
    fn position_limits_are_enforced() {
        let robot = panda_model();
        let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
        sim.reset(JointState::at_rest(vec![0.0, -1.7, 0.0, -3.0, 0.0, 0.0, 0.0]));
        // Push joint 2 hard past its limit.
        let mut torque = vec![0.0; 7];
        torque[1] = -500.0;
        sim.step(&torque, 0.5);
        let limits_low = -1.7628;
        assert!(sim.state().positions[1] >= limits_low - 1e-9);
    }

    #[test]
    fn elapsed_time_accumulates() {
        let robot = panda_model();
        let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
        let tau = vec![0.0; 7];
        sim.step(&tau, 0.033);
        sim.step(&tau, 0.033);
        assert!((sim.elapsed() - 0.066).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn wrong_torque_length_panics() {
        let robot = panda_model();
        let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
        sim.step(&[0.0; 3], 0.01);
    }
}
