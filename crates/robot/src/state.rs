//! Joint-space and task-space state containers.

use corki_math::{Vec3, SE3};
use serde::{Deserialize, Serialize};

/// The joint-space state of the manipulator: positions and velocities of the
/// actuated joints.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JointState {
    /// Joint positions `θ` (radians for revolute joints).
    pub positions: Vec<f64>,
    /// Joint velocities `θ̇` (rad/s).
    pub velocities: Vec<f64>,
}

impl JointState {
    /// A state with all positions and velocities set to zero.
    pub fn zeros(dof: usize) -> Self {
        JointState { positions: vec![0.0; dof], velocities: vec![0.0; dof] }
    }

    /// Creates a state from position and velocity vectors.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors have different lengths.
    pub fn new(positions: Vec<f64>, velocities: Vec<f64>) -> Self {
        assert_eq!(
            positions.len(),
            velocities.len(),
            "positions and velocities must have the same length"
        );
        JointState { positions, velocities }
    }

    /// Creates a stationary state at the given positions.
    pub fn at_rest(positions: Vec<f64>) -> Self {
        let velocities = vec![0.0; positions.len()];
        JointState { positions, velocities }
    }

    /// Number of degrees of freedom.
    pub fn dof(&self) -> usize {
        self.positions.len()
    }

    /// Kinetic-energy-free check: `true` when all velocities are (near) zero.
    pub fn is_at_rest(&self, tol: f64) -> bool {
        self.velocities.iter().all(|v| v.abs() <= tol)
    }
}

/// The Cartesian (task-space) state of the end-effector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndEffectorState {
    /// Pose of the end-effector in the base frame.
    pub pose: SE3,
    /// Linear velocity (m/s) in the base frame.
    pub linear_velocity: Vec3,
    /// Angular velocity (rad/s) in the base frame.
    pub angular_velocity: Vec3,
}

impl Default for EndEffectorState {
    fn default() -> Self {
        EndEffectorState {
            pose: SE3::identity(),
            linear_velocity: Vec3::ZERO,
            angular_velocity: Vec3::ZERO,
        }
    }
}

impl EndEffectorState {
    /// A stationary end-effector at the given pose.
    pub fn at_pose(pose: SE3) -> Self {
        EndEffectorState { pose, linear_velocity: Vec3::ZERO, angular_velocity: Vec3::ZERO }
    }

    /// Position part of the pose.
    pub fn position(&self) -> Vec3 {
        self.pose.translation
    }

    /// XYZ Euler angles of the orientation.
    pub fn euler_xyz(&self) -> (f64, f64, f64) {
        self.pose.euler_xyz()
    }

    /// Speed (norm of the linear velocity).
    pub fn speed(&self) -> f64 {
        self.linear_velocity.norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corki_math::Mat3;

    #[test]
    fn zeros_has_matching_lengths() {
        let s = JointState::zeros(7);
        assert_eq!(s.dof(), 7);
        assert!(s.is_at_rest(0.0));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let _ = JointState::new(vec![0.0; 3], vec![0.0; 2]);
    }

    #[test]
    fn at_rest_constructor() {
        let s = JointState::at_rest(vec![0.1, 0.2]);
        assert_eq!(s.velocities, vec![0.0, 0.0]);
        assert!(s.is_at_rest(1e-12));
    }

    #[test]
    fn is_at_rest_tolerance() {
        let mut s = JointState::zeros(2);
        s.velocities[1] = 1e-3;
        assert!(!s.is_at_rest(1e-6));
        assert!(s.is_at_rest(1e-2));
    }

    #[test]
    fn end_effector_accessors() {
        let pose = SE3::new(Mat3::rotation_z(0.4), Vec3::new(0.3, 0.1, 0.5));
        let ee = EndEffectorState::at_pose(pose);
        assert_eq!(ee.position(), Vec3::new(0.3, 0.1, 0.5));
        assert_eq!(ee.speed(), 0.0);
        let (_, _, yaw) = ee.euler_xyz();
        assert!((yaw - 0.4).abs() < 1e-12);
    }
}
