//! The registry-free micro-bench runner.
//!
//! Usage:
//!
//! ```text
//! bench [--quick] [--only <prefix>] [--json <path>] [--check <path>]
//!       [--compare <baseline>]
//! ```
//!
//! * default — run the full suite and print the report table;
//! * `--quick` — tiny iteration counts (CI smoke runs);
//! * `--only <prefix>` — run only benchmarks whose name starts with the
//!   prefix (e.g. `fleet_serving` for the `BENCH_fleet.json` metrics);
//! * `--json <path>` — additionally write the canonical `BENCH_*.json`
//!   report (the file is parsed back and schema-validated after writing);
//! * `--check <path>` — only validate an existing report against the schema;
//! * `--compare <baseline>` — after running, print per-benchmark deltas
//!   against a previously committed report (e.g. `BENCH_baseline.json`).
//!   Deterministic fleet rows are compared by content: the `scenario_hash`
//!   provenance fingerprint distinguishes an edited scenario (hashes differ,
//!   metrics not comparable) from an engine regression (same scenario,
//!   different metrics).

use corki_bench::micro::{run_suite_filtered, BenchReport, RunnerConfig};

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn load_report(path: &str) -> BenchReport {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    BenchReport::from_json(&json).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn main() {
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--only" => match args.next() {
                Some(prefix) => only = Some(prefix),
                None => fail("--only requires a benchmark-name prefix"),
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => fail("--json requires a path argument"),
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => fail("--check requires a path argument"),
            },
            "--compare" => match args.next() {
                Some(path) => compare_path = Some(path),
                None => fail("--compare requires a path argument"),
            },
            other => fail(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(path) = check_path {
        let report = load_report(&path);
        println!(
            "{path}: valid bench report ({} benches, {} mode)",
            report.benches.len(),
            report.mode
        );
        return;
    }

    let (config, mode) =
        if quick { (RunnerConfig::quick(), "quick") } else { (RunnerConfig::full(), "full") };
    let report = run_suite_filtered(&config, mode, only.as_deref());
    if report.benches.is_empty() {
        fail(&format!("no benchmark matches prefix `{}`", only.unwrap_or_default()));
    }
    print!("{}", report.to_table());

    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        // Round-trip the file through the schema validator so a corrupt
        // write fails the run, not a later consumer.
        let _ = load_report(path);
        println!("(wrote and validated JSON report at {path})");
    }

    if let Some(path) = compare_path {
        let baseline = load_report(&path);
        println!("comparison against {path}:");
        for bench in &report.benches {
            match baseline.benches.iter().find(|b| b.name == bench.name) {
                Some(base) => println!(
                    "  {:<44} {:>10.1} ns/op vs {:>10.1} ns/op  ({:+.1} %)",
                    bench.name,
                    bench.median_ns,
                    base.median_ns,
                    100.0 * (bench.median_ns - base.median_ns) / base.median_ns
                ),
                None => println!("  {:<44} (not in baseline)", bench.name),
            }
        }
        for row in &report.fleet_rows {
            match baseline.fleet_rows.iter().find(|b| b.name == row.name) {
                None => println!("  {:<44} (not in baseline)", row.name),
                Some(base) if base.scenario_hash != row.scenario_hash => println!(
                    "  {:<44} scenario edited ({} -> {}); metrics not comparable",
                    row.name, base.scenario_hash, row.scenario_hash
                ),
                Some(base) if base == row => {
                    println!("  {:<44} deterministic metrics unchanged", row.name);
                }
                Some(_) => println!(
                    "  {:<44} ENGINE REGRESSION: same scenario hash, different metrics",
                    row.name
                ),
            }
        }
    }
}
