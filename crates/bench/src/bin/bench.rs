//! The registry-free micro-bench runner.
//!
//! Usage:
//!
//! ```text
//! bench [--quick] [--only <prefix>] [--json <path>] [--check <path>]
//!       [--compare <baseline>] [--threshold-pct <p>] [--flamegraph <path>]
//! ```
//!
//! * default — run the full suite and print the report table;
//! * `--quick` — tiny iteration counts (CI smoke runs);
//! * `--only <prefixes>` — run only benchmarks whose name starts with one
//!   of the comma-separated prefixes (e.g. `fleet_serving` for the
//!   `BENCH_fleet.json` metrics, or `ipc_transit,des_queue`);
//! * `--json <path>` — additionally write the canonical `BENCH_*.json`
//!   report (the file is parsed back and schema-validated after writing);
//! * `--check <path>` — only validate an existing report against the schema;
//! * `--compare <baseline>` — after running, print per-benchmark deltas
//!   against a previously committed report (e.g. `BENCH_baseline.json`).
//!   Deterministic fleet rows are compared by content: the `scenario_hash`
//!   provenance fingerprint distinguishes an edited scenario (hashes differ,
//!   metrics not comparable) from an engine regression (same scenario,
//!   different metrics);
//! * `--threshold-pct <p>` — turn `--compare` into a regression gate: exit
//!   non-zero when any timing case regresses past `p` percent against a
//!   baseline entry whose scenario content (by `scenario_hash`, for fleet,
//!   e2e and live rows) still matches, or when a deterministic fleet row
//!   changed under an unchanged hash (an engine regression at any
//!   threshold).  Live rows gate on their p99 plan latency — dominated by
//!   modelled sleeps, so it moves with real serving regressions, not with
//!   machine speed.  Edited scenarios (hash moved) are reported but never
//!   gate;
//! * `--flamegraph <path>` — write the telemetry stage rows as folded
//!   stacks (`corki;<scenario>;<stage> <total_ns>`, one line per stage,
//!   weighted by total recorded nanoseconds), ready to pipe through
//!   `flamegraph.pl` or `inferno-flamegraph` for a per-stage time
//!   breakdown of every deterministic fleet scenario.  Requires a run
//!   that produced telemetry rows (i.e. the fleet_serving cases).

use corki_bench::micro::{run_suite_filtered, BenchReport, RunnerConfig};

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(1);
}

fn load_report(path: &str) -> BenchReport {
    let json =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    BenchReport::from_json(&json).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
}

fn main() {
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut threshold_pct: Option<f64> = None;
    let mut flamegraph_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--only" => match args.next() {
                Some(prefix) => only = Some(prefix),
                None => fail("--only requires a benchmark-name prefix"),
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => fail("--json requires a path argument"),
            },
            "--check" => match args.next() {
                Some(path) => check_path = Some(path),
                None => fail("--check requires a path argument"),
            },
            "--compare" => match args.next() {
                Some(path) => compare_path = Some(path),
                None => fail("--compare requires a path argument"),
            },
            "--threshold-pct" => match args.next().map(|p| p.parse::<f64>()) {
                Some(Ok(p)) if p.is_finite() && p >= 0.0 => threshold_pct = Some(p),
                _ => fail("--threshold-pct requires a non-negative number"),
            },
            "--flamegraph" => match args.next() {
                Some(path) => flamegraph_path = Some(path),
                None => fail("--flamegraph requires a path argument"),
            },
            other => fail(&format!("unknown argument `{other}`")),
        }
    }
    if threshold_pct.is_some() && compare_path.is_none() {
        fail("--threshold-pct only gates a --compare run; add --compare <baseline>");
    }

    if let Some(path) = check_path {
        let report = load_report(&path);
        println!(
            "{path}: valid bench report ({} benches, {} mode)",
            report.benches.len(),
            report.mode
        );
        return;
    }

    let (config, mode) =
        if quick { (RunnerConfig::quick(), "quick") } else { (RunnerConfig::full(), "full") };
    let report = run_suite_filtered(&config, mode, only.as_deref());
    if report.benches.is_empty() {
        fail(&format!("no benchmark matches prefix `{}`", only.unwrap_or_default()));
    }
    print!("{}", report.to_table());

    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        // Round-trip the file through the schema validator so a corrupt
        // write fails the run, not a later consumer.
        let _ = load_report(path);
        println!("(wrote and validated JSON report at {path})");
    }

    if let Some(path) = &flamegraph_path {
        if report.telemetry.is_empty() {
            fail("--flamegraph needs telemetry rows; run without --only or include fleet_serving");
        }
        // Folded-stack format: one `frame;frame;… weight` line per stage,
        // weighted by the total nanoseconds that stage accumulated across
        // the scenario.  Tools like flamegraph.pl / inferno-flamegraph
        // turn this directly into an SVG.
        let mut folded = String::new();
        for row in &report.telemetry {
            let scenario = row
                .name
                .trim_start_matches("telemetry/")
                .trim_end_matches(&format!("/{}", row.stage));
            let total_ns = (row.mean_ns * row.samples as f64).round() as u64;
            folded.push_str(&format!("corki;{scenario};{} {total_ns}\n", row.stage));
        }
        std::fs::write(path, folded).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("(wrote folded flamegraph stacks at {path})");
    }

    if let Some(path) = compare_path {
        let baseline = load_report(&path);
        // With --threshold-pct the comparison is a gate: collect every
        // violation instead of stopping at the first so CI logs show the
        // full regression picture in one run.
        let mut violations: Vec<String> = Vec::new();
        // A timing case only gates when the scenario content behind it is
        // unchanged; map `fleet_serving/<scenario>[/case]` bench names to
        // their metric row's provenance hash to decide.
        let scenario_unchanged = |bench_name: &str| {
            report
                .fleet_rows
                .iter()
                .find(|row| {
                    bench_name == row.name || bench_name.starts_with(&format!("{}/", row.name))
                })
                .is_none_or(|row| {
                    baseline
                        .fleet_rows
                        .iter()
                        .find(|base| base.name == row.name)
                        .is_some_and(|base| base.scenario_hash == row.scenario_hash)
                })
        };
        println!("comparison against {path}:");
        for bench in &report.benches {
            match baseline.benches.iter().find(|b| b.name == bench.name) {
                Some(base) => {
                    let delta_pct = 100.0 * (bench.median_ns - base.median_ns) / base.median_ns;
                    println!(
                        "  {:<44} {:>10.1} ns/op vs {:>10.1} ns/op  ({:+.1} %)",
                        bench.name, bench.median_ns, base.median_ns, delta_pct
                    );
                    if threshold_pct.is_some_and(|p| delta_pct > p)
                        && scenario_unchanged(&bench.name)
                    {
                        violations.push(format!(
                            "{}: {:+.1} % past the {:.1} % threshold",
                            bench.name,
                            delta_pct,
                            threshold_pct.unwrap_or_default()
                        ));
                    }
                }
                None => println!("  {:<44} (not in baseline)", bench.name),
            }
        }
        for row in &report.fleet_rows {
            match baseline.fleet_rows.iter().find(|b| b.name == row.name) {
                None => println!("  {:<44} (not in baseline)", row.name),
                Some(base) if base.scenario_hash != row.scenario_hash => println!(
                    "  {:<44} scenario edited ({} -> {}); metrics not comparable",
                    row.name, base.scenario_hash, row.scenario_hash
                ),
                Some(base) if base == row => {
                    println!("  {:<44} deterministic metrics unchanged", row.name);
                }
                Some(_) => {
                    println!(
                        "  {:<44} ENGINE REGRESSION: same scenario hash, different metrics",
                        row.name
                    );
                    // Deterministic outputs moving under an unchanged
                    // scenario is a correctness break, not noise — it gates
                    // at every threshold.
                    if threshold_pct.is_some() {
                        violations.push(format!(
                            "{}: deterministic metrics changed under an unchanged scenario hash",
                            row.name
                        ));
                    }
                }
            }
        }
        for row in &report.e2e {
            match baseline.e2e.iter().find(|b| b.name == row.name) {
                None => println!("  {:<44} (not in baseline)", row.name),
                Some(base) if base.scenario_hash != row.scenario_hash => println!(
                    "  {:<44} scenario edited ({} -> {}); wall-clock not comparable",
                    row.name, base.scenario_hash, row.scenario_hash
                ),
                Some(base) => {
                    let delta_pct = 100.0 * (row.min_s - base.min_s) / base.min_s;
                    println!(
                        "  {:<44} min {:>7.3} s vs {:>7.3} s  ({:+.1} %)",
                        row.name, row.min_s, base.min_s, delta_pct
                    );
                    if threshold_pct.is_some_and(|p| delta_pct > p) {
                        violations.push(format!(
                            "{}: {:+.1} % past the {:.1} % threshold",
                            row.name,
                            delta_pct,
                            threshold_pct.unwrap_or_default()
                        ));
                    }
                }
            }
        }
        for row in &report.live {
            match baseline.live.iter().find(|b| b.name == row.name) {
                None => println!("  {:<44} (not in baseline)", row.name),
                Some(base) if base.scenario_hash != row.scenario_hash => println!(
                    "  {:<44} scenario edited ({} -> {}); live metrics not comparable",
                    row.name, base.scenario_hash, row.scenario_hash
                ),
                Some(base) => {
                    let delta_pct = 100.0 * (row.p99_plan_latency_ms - base.p99_plan_latency_ms)
                        / base.p99_plan_latency_ms;
                    println!(
                        "  {:<44} p99 plan {:>7.1} ms vs {:>7.1} ms  ({:+.1} %)",
                        row.name, row.p99_plan_latency_ms, base.p99_plan_latency_ms, delta_pct
                    );
                    if threshold_pct.is_some_and(|p| delta_pct > p) {
                        violations.push(format!(
                            "{}: {:+.1} % past the {:.1} % threshold",
                            row.name,
                            delta_pct,
                            threshold_pct.unwrap_or_default()
                        ));
                    }
                }
            }
        }
        if let Some(p) = threshold_pct {
            if violations.is_empty() {
                println!("regression gate passed ({p:.1} % threshold)");
            } else {
                for violation in &violations {
                    eprintln!("regression: {violation}");
                }
                fail(&format!(
                    "{} case(s) regressed past the {p:.1} % threshold",
                    violations.len()
                ));
            }
        }
    }
}
