//! Regenerates every table and figure of the DaDu-Corki evaluation section.
//!
//! Usage:
//!
//! ```text
//! experiments [--full | --smoke] [--json <path>] [--servers <n>]
//!             [--routing <policy>] [--scenario <file.json>] [--shards <k>]
//!             [--threads <t|auto>] [--robots <n>] [--frames <n>]
//!             [--telemetry] [name ...]
//! ```
//!
//! Experiment names: `fig2`, `table1`, `table2`, `fig11`, `fig12`, `fig13`,
//! `fig14`, `table3`, `table4`, `resources`, `fig9`, `ablation`, `approx`,
//! `fig15`, `bottleneck`, `fleet`, `serve`. With no names, everything except
//! `serve` runs; the historical `only` keyword before names is still
//! accepted.
//!
//! Both `fleet` and `serve` carry the always-on in-path telemetry recorder
//! (`corki_telemetry`): per-stage latency histograms over the shared
//! six-stage taxonomy (encode, uplink queue, pool queue, batch service,
//! downlink, control step) plus bounded per-robot timelines.  The reports
//! are always written to `--json` output (`fleet_telemetry`, and inside
//! every `serve` report); `--telemetry` additionally renders the per-stage
//! p50/p99/p99.9 tables on stdout.
//!
//! `serve` is the live counterpart of `fleet`: it lowers the `--scenario`
//! cells into real processes — one robot client per robot, one inference
//! worker per server, a coordinator hosting the simulator's router and
//! batch scheduler — communicating over a shared-memory segment, and prints
//! the same sweep-row shape plus the measured IPC transit breakdown
//! (`corki_serve`).  It must be selected explicitly, always needs
//! `--scenario`, and honours `--robots <n>` / `--frames <n>` clamps (and
//! `--smoke`, which clamps to 8 robots x 24 frames) so committed scenarios
//! can be shrunk to a CI footprint.  The binary also hosts the hidden
//! `__live-robot` / `__live-worker` child roles the live coordinator
//! re-executes itself with.
//!
//! The fleet sweep is described by a declarative `ScenarioSpec`
//! (`corki::scenario`) either way:
//!
//! * `--scenario <file.json>` runs a spec file (e.g. one of the committed
//!   examples under `crates/bench/scenarios/`) — robot groups, server pool,
//!   routing and sweep axes all come from the file; the flag selects the
//!   `fleet` experiment by itself when no names are given.  Combined with
//!   `--smoke`, the expanded cells are scaled down to a CI footprint (at
//!   most 64 robots and 30 frames each) while keeping the pool, routing and
//!   shard knob — so a committed 10k-robot scenario smoke-tests the exact
//!   code paths of the full run;
//! * `--shards <k>` overrides the engine shard count of every fleet cell
//!   (results are shard-count invariant by contract; the knob only changes
//!   how the work is executed);
//! * `--threads <t|auto>` overrides the worker-thread count driving the
//!   shards (`auto` = available cores).  Thread counts are capped by the
//!   cell's shard count — surplus threads would never receive a shard —
//!   and results are thread-count invariant by the same contract;
//! * without it, the legacy flags build the spec: `--servers <n>` pins the
//!   pool to exactly `n` servers and `--routing <policy>` (round-robin |
//!   least-queue-depth | device-affinity, or the aliases rr/lqd/affinity)
//!   picks the routing policy.  Without these flags the full-scale fleet
//!   sweep additionally walks the heterogeneous axes (1 vs 2 servers,
//!   all-offloaded vs a Jetson board in every second robot).

use corki::experiments::{self, ExperimentScale};
use corki::fleet::{
    measured_adaptive_lengths, robots_within_budget, DetailedSweepCell, FleetExperiment,
    FleetScale, FleetSweepRow,
};
use corki::scenario::{ScenarioSpec, ThreadSpec};
use corki::RoutingPolicy;
use corki_system::FrameKind;
use std::collections::BTreeMap;

/// Parses and runs one hidden live-fleet child role (`__live-robot` /
/// `__live-worker`), returning the process exit code.  The coordinator
/// re-executes this very binary with these argument shapes; they are not
/// part of the public CLI.
fn live_child_role(args: &[String]) -> i32 {
    let role = args[1].as_str();
    let mut shm = None;
    let mut robot = None;
    let mut server = None;
    let mut config = None;
    let mut robots = None;
    let mut servers = None;
    let mut it = args[2..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shm" => shm = it.next().cloned(),
            "--robot" => robot = it.next().and_then(|n| n.parse::<usize>().ok()),
            "--server" => server = it.next().and_then(|n| n.parse::<usize>().ok()),
            "--config" => config = it.next().cloned(),
            "--robots" => robots = it.next().and_then(|n| n.parse::<usize>().ok()),
            "--servers" => servers = it.next().and_then(|n| n.parse::<usize>().ok()),
            _ => {}
        }
    }
    let result = match role {
        "__live-robot" => match (&shm, robot, &config) {
            (Some(shm), Some(robot), Some(config)) => corki_serve::run_robot(shm, robot, config),
            _ => Err(corki_serve::LiveError::Protocol(
                "__live-robot needs --shm, --robot and --config".into(),
            )),
        },
        _ => match (&shm, server, robots, servers) {
            (Some(shm), Some(server), Some(robots), Some(servers)) => {
                corki_serve::run_worker(shm, server, robots, servers)
            }
            _ => Err(corki_serve::LiveError::Protocol(
                "__live-worker needs --shm, --server, --robots and --servers".into(),
            )),
        },
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("{role}: {e}");
            1
        }
    }
}

/// Renders one telemetry report as a per-stage latency table plus a
/// one-line timeline summary, indented under its cell's sweep row.
/// Quantiles are log2-bucket ceilings, so they are conservative within one
/// power of two of the exact nearest-rank value.
fn print_telemetry(report: &corki_telemetry::TelemetryReport) {
    println!(
        "    {:<14} {:>9} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "samples", "dropped", "mean[ms]", "p50[ms]", "p99[ms]", "p99.9[ms]"
    );
    for stage in &report.stages {
        println!(
            "    {:<14} {:>9} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            stage.stage,
            stage.samples,
            stage.dropped,
            stage.mean_ns / 1e6,
            stage.p50_ns as f64 / 1e6,
            stage.p99_ns as f64 / 1e6,
            stage.p999_ns as f64 / 1e6,
        );
    }
    let events: usize = report.timelines.iter().map(|t| t.events.len()).sum();
    let dropped: u64 = report.timelines.iter().map(|t| t.dropped).sum();
    println!(
        "    timelines: {} robot(s), {} event(s) kept, {} beyond capacity",
        report.timelines.len(),
        events,
        dropped,
    );
}

fn main() {
    // The live coordinator re-executes this binary as its robot and worker
    // processes; those hidden roles bypass the experiment CLI entirely.
    let raw_args: Vec<String> = std::env::args().collect();
    if raw_args.len() > 1 && (raw_args[1] == "__live-robot" || raw_args[1] == "__live-worker") {
        std::process::exit(live_child_role(&raw_args));
    }
    // Flags may appear anywhere, including after `only`; strip them first so
    // only experiment names remain as positionals.
    let mut scale = ExperimentScale::default();
    let mut fleet_scale = FleetScale::default();
    let mut smoke = false;
    let mut json_path = None;
    let mut servers_override: Option<usize> = None;
    let mut routing_override: Option<RoutingPolicy> = None;
    let mut shards_override: Option<usize> = None;
    let mut threads_override: Option<ThreadSpec> = None;
    let mut scenario_path: Option<String> = None;
    let mut robots_clamp: Option<usize> = None;
    let mut frames_clamp: Option<usize> = None;
    let mut telemetry_tables = false;
    let mut positionals: Vec<String> = Vec::new();
    let mut raw = raw_args.into_iter().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--full" => {
                scale = ExperimentScale::full();
                fleet_scale = FleetScale::default();
                smoke = false;
            }
            "--smoke" => {
                scale = ExperimentScale::smoke();
                fleet_scale = FleetScale::smoke();
                smoke = true;
            }
            "--json" => match raw.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("error: --json requires a path argument");
                    std::process::exit(2);
                }
            },
            "--servers" => match raw.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => servers_override = Some(n),
                _ => {
                    eprintln!("error: --servers requires a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--routing" => match raw.next().map(|p| p.parse::<RoutingPolicy>()) {
                Some(Ok(policy)) => routing_override = Some(policy),
                Some(Err(e)) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("error: --routing requires a policy argument");
                    std::process::exit(2);
                }
            },
            "--scenario" => match raw.next() {
                Some(path) => scenario_path = Some(path),
                None => {
                    eprintln!("error: --scenario requires a path argument");
                    std::process::exit(2);
                }
            },
            "--robots" => match raw.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => robots_clamp = Some(n),
                _ => {
                    eprintln!("error: --robots requires a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--frames" => match raw.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => frames_clamp = Some(n),
                _ => {
                    eprintln!("error: --frames requires a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--shards" => match raw.next().map(|n| n.parse::<usize>()) {
                Some(Ok(k)) if k >= 1 => shards_override = Some(k),
                _ => {
                    eprintln!("error: --shards requires a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--threads" => match raw.next().as_deref() {
                Some("auto") => threads_override = Some(ThreadSpec::Auto),
                Some(raw_threads) => match raw_threads.parse::<usize>() {
                    Ok(t) if t >= 1 => threads_override = Some(ThreadSpec::Fixed(t)),
                    _ => {
                        eprintln!(
                            "error: --threads requires a positive integer or `auto` argument"
                        );
                        std::process::exit(2);
                    }
                },
                None => {
                    eprintln!("error: --threads requires a positive integer or `auto` argument");
                    std::process::exit(2);
                }
            },
            "--telemetry" => telemetry_tables = true,
            _ => positionals.push(arg),
        }
    }
    // Positional arguments select experiments (`experiments fleet …`); the
    // historical `only` keyword is tolerated and ignored.
    let mut selected: Vec<String> = positionals.iter().filter(|a| *a != "only").cloned().collect();
    if scenario_path.is_some() {
        if servers_override.is_some() || routing_override.is_some() {
            eprintln!("error: --scenario describes the whole fleet experiment; it cannot be combined with --servers/--routing");
            std::process::exit(2);
        }
        // The flag only means something to the fleet sweep and its live
        // counterpart: select the simulator by default, and refuse a
        // selection that would never consult it.
        if selected.is_empty() {
            selected.push("fleet".to_owned());
        } else if !selected.iter().any(|name| name == "fleet" || name == "serve") {
            eprintln!("error: --scenario only applies to the fleet/serve experiments; add `fleet` or `serve` to the selected names");
            std::process::exit(2);
        }
    }
    let serve_selected = selected.iter().any(|name| name == "serve");
    if serve_selected && scenario_path.is_none() {
        eprintln!("error: the serve experiment needs a --scenario file to lower into a live run");
        std::process::exit(2);
    }
    if (robots_clamp.is_some() || frames_clamp.is_some()) && !serve_selected {
        eprintln!("error: --robots/--frames clamp the live serve experiment; add `serve` to the selected names");
        std::process::exit(2);
    }
    // Keep in sync with the wants() sites below and the doc comment above.
    const KNOWN: [&str; 17] = [
        "fig2",
        "table1",
        "table2",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "table3",
        "table4",
        "resources",
        "fig9",
        "ablation",
        "approx",
        "fig15",
        "bottleneck",
        "fleet",
        "serve",
    ];
    for name in &selected {
        if !KNOWN.contains(&name.as_str()) {
            eprintln!("error: unknown experiment name `{name}` (known: {})", KNOWN.join(", "));
            std::process::exit(2);
        }
    }
    let wants = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    let mut json = BTreeMap::new();
    println!("DaDu-Corki paper reproduction — experiment harness");
    println!("scale: {} jobs, {} frames, seed {}\n", scale.jobs, scale.frames, scale.seed);

    if wants("fig2") {
        println!("== Fig. 2: per-frame latency & energy breakdown of RoboFlamingo (V100 + i7-6770HQ + Wi-Fi) ==");
        let rows = experiments::fig2_breakdown();
        let total_ms: f64 = rows.iter().map(|r| r.1).sum();
        let total_j: f64 = rows.iter().map(|r| r.2).sum();
        for (stage, ms, joules) in &rows {
            println!(
                "  {:<20} {:>8.1} ms ({:>4.1} %)   {:>7.2} J ({:>4.1} %)",
                stage,
                ms,
                100.0 * ms / total_ms,
                joules,
                100.0 * joules / total_j
            );
        }
        println!("  {:<20} {:>8.1} ms            {:>7.2} J\n", "total", total_ms, total_j);
        json.insert("fig2".to_owned(), serde_json::to_value(&rows).unwrap());
    }

    let mut seen_table = None;
    if wants("table1") || wants("fig11") {
        println!("== Table 1: accuracy on seen tasks (success rate per chain position, avg job length) ==");
        let seen = experiments::accuracy_table(false, &scale);
        println!(
            "  {:<16} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>6}",
            "variant", "1", "2", "3", "4", "5", "AvgLen"
        );
        for row in &seen {
            println!("  {}", row.to_table_row());
        }
        println!();
        json.insert("table1".to_owned(), serde_json::to_value(&seen).unwrap());
        seen_table = Some(seen);
    }

    if wants("fig11") {
        if let Some(seen) = &seen_table {
            println!(
                "== Fig. 11: trajectory comparison metrics (reference vs expert ground truth) =="
            );
            println!(
                "  {:<16} {:>12} {:>10} {:>10} {:>10}",
                "variant", "RMSE [m]", "maxX [m]", "maxY [m]", "maxZ [m]"
            );
            for (variant, rmse, max_xyz) in experiments::trajectory_error_series(seen) {
                println!(
                    "  {:<16} {:>12.4} {:>10.4} {:>10.4} {:>10.4}",
                    variant, rmse, max_xyz[0], max_xyz[1], max_xyz[2]
                );
            }
            println!();
        }
    }

    if wants("table2") {
        println!("== Table 2: accuracy on unseen tasks ==");
        let unseen = experiments::accuracy_table(true, &scale);
        println!(
            "  {:<16} {:>7} {:>7} {:>7} {:>7} {:>7}   {:>6}",
            "variant", "1", "2", "3", "4", "5", "AvgLen"
        );
        for row in &unseen {
            println!("  {}", row.to_table_row());
        }
        println!();
        json.insert("table2".to_owned(), serde_json::to_value(&unseen).unwrap());
    }

    if wants("fig12") {
        println!("== Fig. 12: X/Y/Z trajectory of one randomly picked sequence (first and last 5 steps shown) ==");
        let traces = experiments::fig12_traces(&scale);
        for (variant, t) in &traces {
            let n = t.reference.len();
            let show: Vec<usize> = (0..n).filter(|i| *i < 5 || *i + 5 >= n).collect();
            println!("  {variant}: {n} steps");
            for i in show {
                println!(
                    "    step {:>3}  gt=({:+.3},{:+.3},{:+.3})  ref=({:+.3},{:+.3},{:+.3})",
                    i,
                    t.ground_truth.x[i],
                    t.ground_truth.y[i],
                    t.ground_truth.z[i],
                    t.reference.x[i],
                    t.reference.y[i],
                    t.reference.z[i],
                );
            }
        }
        println!();
        json.insert("fig12".to_owned(), serde_json::to_value(&traces).unwrap());
    }

    if wants("fig13") || wants("fig14") {
        println!("== Fig. 13: runtime latency and energy per variant ==");
        let rows = experiments::pipeline_comparison(&scale);
        let baseline = rows[0].clone();
        println!(
            "  {:<14} {:>12} {:>10} {:>10} {:>12} {:>12}",
            "variant", "latency[ms]", "rate[Hz]", "energy[J]", "speedup", "energy red."
        );
        for row in &rows {
            println!(
                "  {:<14} {:>12.1} {:>10.1} {:>10.2} {:>11.1}x {:>11.1}x",
                row.variant,
                row.mean_frame_latency_ms,
                row.frame_rate_hz,
                row.mean_frame_energy_j,
                row.speedup_over(&baseline),
                row.energy_reduction_over(&baseline),
            );
        }
        println!();
        if wants("fig14") {
            println!(
                "== Fig. 14: per-frame latency trace (first 30 frames) and long-tail statistics =="
            );
            let fig14_variants: Vec<String> = [
                corki::Variant::RoboFlamingo,
                corki::Variant::CorkiFixed(5),
                corki::Variant::CorkiAdaptive,
            ]
            .iter()
            .map(corki::Variant::name)
            .collect();
            for row in &rows {
                if !fig14_variants.contains(&row.variant) {
                    continue;
                }
                let preview: Vec<String> = row
                    .frame_traces
                    .iter()
                    .take(30)
                    .map(|f| {
                        let marker = if f.kind == FrameKind::Inference { "^" } else { "." };
                        format!("{marker}{:.0}", f.latency_ms)
                    })
                    .collect();
                println!("  {:<14} {}", row.variant, preview.join(" "));
                println!(
                    "  {:<14} mean {:>7.1} ms   p99 {:>7.1} ms   max {:>7.1} ms   rel. variation {:>5.2}",
                    "",
                    row.stats.mean_ms,
                    row.stats.p99_ms,
                    row.stats.max_ms,
                    row.stats.relative_variation
                );
            }
            println!();
        }
        json.insert("fig13".to_owned(), serde_json::to_value(&rows).unwrap());
    }

    if wants("table3") {
        println!(
            "== Table 3: performance under different GPU/CPU inference baselines (Corki-ADAP) =="
        );
        println!("  {:<18} {:>22} {:>10}", "device", "norm. inference lat.", "speedup");
        for (device, norm, speedup) in experiments::device_table(&scale) {
            println!("  {:<18} {:>21.1}x {:>9.1}x", device, norm, speedup);
        }
        println!();
    }

    if wants("table4") {
        println!("== Table 4: performance under different data representations (Corki-ADAP) ==");
        println!("  {:<18} {:>22} {:>10}", "representation", "norm. inference lat.", "speedup");
        for (repr, norm, speedup) in experiments::precision_table(&scale) {
            println!("  {:<18} {:>21.1}x {:>9.1}x", repr, norm, speedup);
        }
        println!();
    }

    if wants("resources") {
        println!("== §6.1: FPGA resource consumption on the ZC706 ==");
        let report = experiments::resource_report();
        let (dsp, ff, lut, bram) = report.utilization_percent();
        let total = report.total();
        println!("  DSP  {:>6} used  ({:>5.1} % of {})", total.dsp, dsp, report.device.dsp);
        println!("  FF   {:>6} used  ({:>5.1} % of {})", total.ff, ff, report.device.ff);
        println!("  LUT  {:>6} used  ({:>5.1} % of {})", total.lut, lut, report.device.lut);
        println!("  BRAM {:>6} used  ({:>5.1} % of {})", total.bram36, bram, report.device.bram36);
        println!(
            "  off-chip DRAM traffic during control: {}\n",
            if report.requires_dram() { "yes" } else { "none" }
        );
    }

    if wants("fig9") {
        println!("== Fig. 9: mass-matrix change when a single joint moves by 6°/17°/29° ==");
        println!("  {:<8} {:>10} {:>16} {:>16}", "joint", "angle", "max |dM|", "max rel. [%]");
        for row in experiments::fig9_sensitivity() {
            println!(
                "  joint {:<2} {:>9.0}° {:>16.3} {:>16.1}",
                row.joint + 1,
                row.delta_rad.to_degrees(),
                row.max_absolute_change,
                row.max_relative_change_percent
            );
        }
        println!();
    }

    if wants("ablation") {
        println!("== §4.2 ablation: accelerator latency per design point ==");
        let rows = experiments::accelerator_ablation();
        let base = rows[0].1;
        for (name, latency) in &rows {
            println!(
                "  {:<28} {:>8.3} ms   (-{:>4.1} % vs unoptimised)",
                name,
                latency,
                100.0 * (1.0 - latency / base)
            );
        }
        println!();
    }

    if wants("approx") || wants("fig15") {
        println!("== §4.3 / Fig. 15: approximate computing ==");
        let (skip, sweep) = experiments::approximation_study();
        println!("  matrix updates skipped at the 40 % threshold: {:.1} %", skip * 100.0);
        println!(
            "  {:<12} {:>12} {:>10} {:>18}",
            "threshold", "skipped [%]", "speedup", "traj. error [cm]"
        );
        for point in &sweep {
            println!(
                "  {:<12.0} {:>12.1} {:>9.2}x {:>18.3}",
                point.threshold * 100.0,
                point.skip_fraction * 100.0,
                point.speedup,
                point.trajectory_error_cm
            );
        }
        println!();
    }

    if wants("bottleneck") {
        println!("== §2.2 bottleneck analysis ==");
        let (cpu_hz, control_share, accel_hz) = experiments::bottleneck_analysis();
        println!("  control loop on the robot CPU (zero inference latency): {cpu_hz:.1} Hz");
        println!("  control share of that loop: {:.1} %", control_share * 100.0);
        println!("  control rate on the Corki accelerator: {accel_hz:.0} Hz\n");
    }

    if wants("fleet") {
        println!("== Fleet serving: robots × variant × scheduler × pool × composition sweep ==");
        let (detailed, latency_budget_ms): (Vec<DetailedSweepCell>, f64) = if let Some(path) =
            &scenario_path
        {
            // A declarative scenario file fully describes the experiment.
            let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read scenario {path}: {e}");
                std::process::exit(2);
            });
            let spec = ScenarioSpec::from_json(&json).unwrap_or_else(|e| {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            });
            let mut cells = spec.expand().unwrap_or_else(|e| {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            });
            if smoke {
                // CI footprint: keep the pool/routing/shard shape of the
                // committed scenario, shrink the fleet and the horizon.
                cells = corki::fleet::smoke_scale_cells(cells, 64, 30);
                println!("(smoke: cells scaled down to at most 64 robots x 30 frames)");
            }
            if let Some(shards) = shards_override {
                for cell in &mut cells {
                    cell.shards = shards;
                }
            }
            if let Some(threads) = threads_override {
                // Cap at the cell's shard count — surplus worker threads
                // would never receive a shard to drain.
                for cell in &mut cells {
                    cell.threads = threads.resolve(cell.shards).min(cell.shards);
                }
            }
            let shards_label = cells.first().map_or(1, |cell| cell.shards);
            let threads_label = cells.first().map_or(1, |cell| cell.threads);
            println!(
                "scenario `{}`: {} cell(s), {} frames/robot, seed {}, {} routing, {} warm-up, {} shard(s), {} thread(s)",
                spec.name,
                cells.len(),
                spec.frames_per_robot,
                spec.seed,
                spec.routing,
                spec.warmup_ms,
                shards_label,
                threads_label
            );
            (corki::fleet::scenario_sweep_detailed(&cells), spec.latency_budget_ms)
        } else {
            // Legacy flags: build the same experiment shim as before (it
            // lowers to a ScenarioSpec internally, so both paths run the
            // identical machinery).  Smoke runs keep the fast single-server
            // homogeneous sweep; full runs walk the heterogeneous
            // pool/composition axes too.
            let mut experiment = if smoke {
                FleetExperiment::paper_defaults(fleet_scale)
            } else {
                FleetExperiment::heterogeneous(fleet_scale)
            };
            if let Some(servers) = servers_override {
                experiment.server_counts = vec![servers];
            }
            if let Some(routing) = routing_override {
                experiment.routing = routing;
            }
            if !smoke {
                // Feed the serving sweep the executed lengths that
                // Corki-ADAP actually produced in the simulator rollouts.
                experiment.adaptive_lengths = Some(measured_adaptive_lengths(3, scale.seed));
            }
            println!(
                "scale: fleets of {:?} robots, {} frames/robot, seed {}, pools of {:?} servers, \
                 {} routing, {:.0} ms warm-up",
                experiment.scale.robot_counts,
                experiment.scale.frames_per_robot,
                experiment.scale.seed,
                experiment.server_counts,
                experiment.routing,
                experiment.scale.warmup_ms
            );
            // The shim lowers to a spec anyway; threading the shard and
            // thread knobs through it keeps one expansion path (and gives
            // the legacy flags the same detailed, telemetry-carrying sweep
            // as scenario files).
            let mut spec = experiment.to_scenario();
            if let Some(shards) = shards_override {
                spec.shards = shards;
            }
            if let Some(threads) = threads_override {
                spec.threads = ThreadSpec::Fixed(threads.resolve(spec.shards).min(spec.shards));
            }
            let cells =
                spec.expand().expect("FleetExperiment axis lists always lower to a valid scenario");
            (corki::fleet::scenario_sweep_detailed(&cells), experiment.latency_budget_ms)
        };
        let rows: Vec<FleetSweepRow> = detailed.iter().map(|cell| cell.row.clone()).collect();
        println!(
            "  {:<12} {:<13} {:<26} {:>4} {:>4} {:>10} {:>9} {:>20} {:>20} {:>6} {:>6}",
            "variant",
            "scheduler",
            "composition",
            "N",
            "srv",
            "thr[st/s]",
            "Hz/robot",
            "plan mean/p99 [ms]",
            "queue mean/p99 [ms]",
            "util",
            "batch"
        );
        for row in &rows {
            println!(
                "  {:<12} {:<13} {:<26} {:>4} {:>4} {:>10.1} {:>9.1} {:>9.1} /{:>9.1} {:>9.1} /{:>9.1} {:>6.2} {:>6.2}",
                row.variant,
                row.scheduler,
                row.composition,
                row.robots,
                row.servers,
                row.throughput_steps_per_s,
                row.per_robot_rate_hz,
                row.mean_plan_latency_ms,
                row.p99_plan_latency_ms,
                row.mean_queue_delay_ms,
                row.p99_queue_delay_ms,
                row.server_utilization,
                row.mean_batch_size,
            );
        }
        // Fault-injected cells get a second table with the robustness
        // counters; fault-free sweeps keep the historical output shape.
        let any_faults = rows.iter().any(|row| {
            row.timed_out_requests > 0
                || row.retries > 0
                || row.dropped_requests > 0
                || row.fallback_inferences > 0
                || row.mean_recovery_ms > 0.0
        });
        if any_faults {
            println!("\n  fault injection (per cell, warm-up included):");
            println!(
                "  {:<12} {:<13} {:<26} {:>8} {:>7} {:>7} {:>9} {:>13} {:>9}",
                "variant",
                "scheduler",
                "composition",
                "timeout",
                "retry",
                "drop",
                "fallback",
                "recovery[ms]",
                "SLO-viol"
            );
            for row in &rows {
                println!(
                    "  {:<12} {:<13} {:<26} {:>8} {:>7} {:>7} {:>9} {:>13.1} {:>8.1}%",
                    row.variant,
                    row.scheduler,
                    row.composition,
                    row.timed_out_requests,
                    row.retries,
                    row.dropped_requests,
                    row.fallback_inferences,
                    row.mean_recovery_ms,
                    row.slo_violation_fraction * 100.0,
                );
            }
        }
        let budget = robots_within_budget(&rows, latency_budget_ms);
        println!(
            "\n  robots-per-pool within a {:.0} ms p99 plan-latency budget (warm-up-trimmed):",
            latency_budget_ms
        );
        println!(
            "  {:<12} {:<13} {:<26} {:>4} {:>11}",
            "variant", "scheduler", "composition", "srv", "max robots"
        );
        for row in &budget {
            println!(
                "  {:<12} {:<13} {:<26} {:>4} {:>11}",
                row.variant, row.scheduler, row.composition, row.servers, row.max_robots
            );
        }
        if telemetry_tables {
            println!("\n  in-path telemetry (always-on recorder, warm-up included):");
            for cell in &detailed {
                println!(
                    "  {} / {} / {} ({} robots, {} srv):",
                    cell.row.variant,
                    cell.row.scheduler,
                    cell.row.composition,
                    cell.row.robots,
                    cell.row.servers
                );
                print_telemetry(&cell.telemetry);
            }
        }
        println!();
        json.insert("fleet".to_owned(), serde_json::to_value(&rows).unwrap());
        json.insert("fleet_budget".to_owned(), serde_json::to_value(&budget).unwrap());
        let telemetry: Vec<_> = detailed.iter().map(|cell| &cell.telemetry).collect();
        json.insert("fleet_telemetry".to_owned(), serde_json::to_value(&telemetry).unwrap());
    }

    if serve_selected {
        println!("== Live fleet serving: scenario cells lowered onto real processes over shared memory ==");
        let path = scenario_path.as_ref().expect("serve always carries --scenario");
        let raw_spec = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read scenario {path}: {e}");
            std::process::exit(2);
        });
        let spec = ScenarioSpec::from_json(&raw_spec).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        });
        let mut cells = spec.expand().unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        });
        if smoke {
            cells = corki::fleet::smoke_scale_cells(cells, 8, 24);
            println!("(smoke: live cells scaled down to at most 8 robots x 24 frames)");
        }
        if robots_clamp.is_some() || frames_clamp.is_some() {
            cells = corki::fleet::smoke_scale_cells(
                cells,
                robots_clamp.unwrap_or(usize::MAX),
                frames_clamp.unwrap_or(usize::MAX),
            );
        }
        let exe = std::env::current_exe().unwrap_or_else(|e| {
            eprintln!("error: cannot locate the experiments binary for child roles: {e}");
            std::process::exit(1);
        });
        let frames_label =
            cells.first().map_or(spec.frames_per_robot, |c| c.config.frames_per_robot);
        println!(
            "scenario `{}`: {} cell(s), {} frames/robot, seed {}, {} routing, {} warm-up",
            spec.name,
            cells.len(),
            frames_label,
            spec.seed,
            spec.routing,
            spec.warmup_ms,
        );
        let mut reports = Vec::new();
        for cell in &cells {
            match corki_serve::run_live(cell, &exe) {
                Ok(report) => reports.push(report),
                Err(e) => {
                    eprintln!(
                        "error: live run of `{}` ({} x{}, {} srv) failed: {e}",
                        cell.scenario, cell.variant_label, cell.robots, cell.servers
                    );
                    std::process::exit(1);
                }
            }
        }
        println!(
            "  {:<12} {:<13} {:<26} {:>4} {:>4} {:>10} {:>9} {:>20} {:>20} {:>6} {:>6}",
            "variant",
            "scheduler",
            "composition",
            "N",
            "srv",
            "thr[st/s]",
            "Hz/robot",
            "plan mean/p99 [ms]",
            "queue mean/p99 [ms]",
            "util",
            "batch"
        );
        for report in &reports {
            let row = &report.row;
            println!(
                "  {:<12} {:<13} {:<26} {:>4} {:>4} {:>10.1} {:>9.1} {:>9.1} /{:>9.1} {:>9.1} /{:>9.1} {:>6.2} {:>6.2}",
                row.variant,
                row.scheduler,
                row.composition,
                row.robots,
                row.servers,
                row.throughput_steps_per_s,
                row.per_robot_rate_hz,
                row.mean_plan_latency_ms,
                row.p99_plan_latency_ms,
                row.mean_queue_delay_ms,
                row.p99_queue_delay_ms,
                row.server_utilization,
                row.mean_batch_size,
            );
        }
        println!("\n  measured shared-memory transit per offloaded plan (mean / p99, µs):");
        for report in &reports {
            let t = &report.transit;
            let us = |ns: f64| ns / 1_000.0;
            println!(
                "  {:<12} request {:>7.1} /{:>8.1}   dispatch {:>7.1} /{:>8.1}   completion {:>7.1} /{:>8.1}   response {:>7.1} /{:>8.1}   round-trip {:>7.1}",
                report.row.variant,
                us(t.request.mean_ns),
                us(t.request.p99_ns),
                us(t.dispatch.mean_ns),
                us(t.dispatch.p99_ns),
                us(t.completion.mean_ns),
                us(t.completion.p99_ns),
                us(t.response.mean_ns),
                us(t.response.p99_ns),
                us(t.round_trip.mean_ns),
            );
            println!(
                "  {:<12} wall {:>6.2} s   {} robots done, {} frames, {} offloaded plans   link wait {:>6.2} ms   stage total {:>7.2} ms   IPC residual {:>6.2} ms",
                "",
                report.wall_s,
                report.robots_completed,
                report.total_frames,
                report.offloaded_plans,
                report.mean_link_wait_ms,
                report.mean_stage_total_ms,
                report.ipc_overhead_ms,
            );
        }
        if telemetry_tables {
            println!("\n  in-path telemetry (drained live from the shared segment):");
            for report in &reports {
                println!(
                    "  {} ({} robots, {} srv, {} drain(s)):",
                    report.row.variant,
                    report.row.robots,
                    report.row.servers,
                    report.telemetry_drains
                );
                print_telemetry(&report.telemetry);
            }
        }
        println!();
        json.insert("serve".to_owned(), serde_json::to_value(&reports).unwrap());
    }

    if let Some(path) = json_path {
        let blob = serde_json::to_string_pretty(&json).expect("results are serialisable");
        match std::fs::write(&path, blob) {
            Ok(()) => println!("(wrote JSON results to {path})"),
            Err(e) => {
                eprintln!("error: cannot write JSON results to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
