//! The registry-free micro-bench runner behind the `bench` binary.
//!
//! Times the hot paths of the reproduction (policy inference, trajectory
//! fitting, the TS-CTC control kernel, the full pipeline simulation and the
//! multi-robot fleet-serving runtime), the first three always side by side
//! with the pre-optimisation reference implementations from
//! [`crate::reference`], and emits a canonical JSON report (`BENCH_*.json`)
//! so every future PR has a baseline to compare against.

use crate::reference::{
    bench_controller, bench_rng, reference_fit_waypoints, reference_task_space_torque, RefCorkiHead,
};
use corki::scenario::{scenario_fingerprint, ConcreteScenario, ScenarioSpec};
use corki_math::Vec3;
use corki_policy::{
    BaselineFramePolicy, CorkiTrajectoryPolicy, ManipulationPolicy, Observation, PlanRequest,
};
use corki_robot::panda::{panda_model, PANDA_HOME};
use corki_robot::{JointState, TaskReference};
use corki_system::fleet::FleetSimulator;
use corki_system::{PipelineConfig, PipelineSimulator, Variant};
use corki_trajectory::{EePose, GripperState, Trajectory, CONTROL_STEP};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The schema version stamped into every report; bump when the JSON layout
/// changes incompatibly.
///
/// Version history: 1 — benches + comparisons; 2 — adds the `fleet_rows`
/// section (deterministic fleet-serving metrics, warm-up-trimmed p99s);
/// 3 — fleet rows carry the canonical variant(-mix) label and the fleet
/// cases are defined by the committed scenario files under
/// `crates/bench/scenarios/`; 4 — fleet rows carry a `scenario_hash`
/// provenance fingerprint of the expanded cells (so `--compare` can tell
/// "engine regressed" from "scenario edited"), and scenarios with
/// `shards > 1` time both the single-shard and the sharded engine plus a
/// sharding-speedup comparison; 5 — fleet rows carry the fault-injection
/// columns (SLO-violation fraction, timed-out/retry/dropped/fallback
/// counters, mean recovery time) and the suite includes the committed
/// fault scenarios (server crashes, degraded uplinks, churn); 6 — threaded
/// scenarios time a worker-thread sweep (`/threads{t}` cases plus a
/// `/threading` comparison), the report carries an `e2e` section of
/// hyperfine-style wall-clock rows (min/mean seconds over N full
/// `experiments fleet --scenario` runs; full mode only), and the
/// `des_queue` group pins K=1 sharded-queue parity with the plain event
/// queue; 7 — adds the `ipc_transit` group (shared-memory SPSC ring
/// push+pop, seqlock publish+read, cross-thread ring round-trip, with a
/// `scheduling_overhead` comparison of the cross-thread RTT against the
/// same-thread hop cost), the committed live scenario joins the fleet
/// suite, the report carries a `live` section of live fleet-serving rows
/// (full mode only: the sibling `experiments serve` binary lowers the
/// committed live scenario onto real processes over shared memory and the
/// row records its throughput, plan/queue latencies and measured IPC
/// transit), and `--only` accepts comma-separated prefixes; 8 — adds the
/// `telemetry` section (deterministic per-stage rows from the always-on
/// in-path recorder: sample/dropped counts, exact means and log2-bucket
/// p50/p99/p99.9 quantiles for each of the six serving stages of every
/// committed fleet scenario, fingerprint-matched to their `fleet_serving`
/// rows) plus the `telemetry/record` and `telemetry/shm_record` micro
/// cases pinning the recorder's in-path cost in both of its homes, with a
/// `telemetry/shm_overhead` comparison of the shared-memory atomics
/// against plain memory.
pub const SCHEMA_VERSION: u32 = 8;

/// Timing-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Warm-up duration per benchmark (also calibrates iterations/sample).
    pub warmup: Duration,
    /// Number of timed samples; the report records their median.
    pub samples: usize,
    /// Target wall-clock duration of one sample.
    pub target_sample: Duration,
}

impl RunnerConfig {
    /// The configuration behind committed baselines: many short samples so
    /// the median shrugs off scheduler noise and stolen time on shared
    /// hosts, rather than few long samples that smear it into every
    /// measurement.
    pub fn full() -> Self {
        RunnerConfig {
            warmup: Duration::from_millis(40),
            samples: 41,
            target_sample: Duration::from_millis(3),
        }
    }

    /// A tiny-iteration-count configuration for CI smoke runs.
    pub fn quick() -> Self {
        RunnerConfig {
            warmup: Duration::from_millis(5),
            samples: 3,
            target_sample: Duration::from_millis(2),
        }
    }
}

/// One benchmark's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BenchResult {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Median nanoseconds per operation across the samples.
    pub median_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations folded into each sample.
    pub iters_per_sample: u64,
}

/// A fast-vs-reference pairing recorded alongside the raw measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Comparison {
    /// The hot path being compared.
    pub name: String,
    /// Median ns/op of the pre-optimisation allocating path.
    pub reference_ns: f64,
    /// Median ns/op of the zero-allocation fast path.
    pub fast_ns: f64,
    /// `reference_ns / fast_ns`.
    pub speedup: f64,
}

/// One deterministic fleet-serving metric row recorded alongside the timing
/// medians: unlike `median_ns`, these numbers are simulation outputs and are
/// byte-stable across machines and runs, so `--compare` and the committed
/// `BENCH_fleet.json` can track serving regressions exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FleetServingRow {
    /// Configuration name (`fleet_serving/<scenario>`).
    pub name: String,
    /// Robots in the fleet.
    pub robots: usize,
    /// Inference servers in the pool.
    pub servers: usize,
    /// Canonical variant(-mix) label of the fleet (`Corki-5`,
    /// `Corki-3+Corki-9`, …).
    pub variant: String,
    /// Scheduler name.
    pub scheduler: String,
    /// Routing policy name.
    pub routing: String,
    /// Content fingerprint of the expanded scenario cell (16 lowercase hex
    /// chars, shards-normalised): `--compare` uses it to distinguish an
    /// engine regression (same hash, different metrics) from an edited
    /// scenario (different hash).
    pub scenario_hash: String,
    /// Device composition label (`offloaded`, or the mixed on-robot mix).
    pub composition: String,
    /// Warm-up window trimmed from the latency percentiles (ms).
    pub warmup_ms: f64,
    /// Executed control steps per second across the fleet.
    pub throughput_steps_per_s: f64,
    /// 99th-percentile end-to-end plan latency (ms, warm-up-trimmed).
    pub p99_plan_latency_ms: f64,
    /// 99th-percentile server queueing delay (ms, warm-up-trimmed).
    pub p99_queue_delay_ms: f64,
    /// Fraction of the pool's capacity spent busy.
    pub server_utilization: f64,
    /// Fraction of warm-up-trimmed plans over the scenario's latency budget.
    pub slo_violation_fraction: f64,
    /// Requests whose reply missed the fault plan's timeout.
    pub timed_out_requests: usize,
    /// Re-uploads after a timeout (bounded by the plan's retry policy).
    pub retries: usize,
    /// Plans abandoned after exhausting retries with no fallback model.
    pub dropped_requests: usize,
    /// Plans served by the degraded-mode on-robot fallback model.
    pub fallback_inferences: usize,
    /// Mean time from a crashed server's recovery to its next completed
    /// batch (ms; 0 when no crash recovered in-run).
    pub mean_recovery_ms: f64,
}

/// One end-to-end wall-clock measurement: the full `experiments fleet
/// --scenario <file>` process (spawn, parse, expand, simulate, print) timed
/// hyperfine-style over several runs.  Unlike the in-process `median_ns`
/// benches these include process start-up and I/O, so they answer "what
/// does a user actually wait for"; only the **minimum** is robust across
/// machines, the mean is recorded for context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct E2eWallClockRow {
    /// Row name (`e2e/<scenario>`).
    pub name: String,
    /// Content fingerprint of the expanded scenario cells (16 lowercase hex
    /// chars, shards/threads-normalised) — lets `--compare` pair rows with
    /// their baseline by content.
    pub scenario_hash: String,
    /// Number of timed process runs folded into the row.
    pub runs: usize,
    /// Fastest run (seconds) — the robust statistic.
    pub min_s: f64,
    /// Mean across the runs (seconds).
    pub mean_s: f64,
}

/// One live fleet-serving measurement: the committed live scenario lowered
/// onto real processes over a shared-memory segment by `experiments serve`
/// (full mode only).  The latency columns are dominated by modelled sleeps
/// and agree with the DES oracle within host-scheduling tolerance; the
/// transit columns are live-only measurements of the shared-memory hops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LiveServingRow {
    /// Row name (`live_e2e/<scenario>`).
    pub name: String,
    /// Content fingerprint of the executed cell (16 lowercase hex chars,
    /// shards/threads-normalised) — pairs the live row with its baseline
    /// and with the simulator's `fleet_serving` row for the same cell.
    pub scenario_hash: String,
    /// Robots in the live fleet (one client process each).
    pub robots: usize,
    /// Inference servers (one worker process each).
    pub servers: usize,
    /// Executed control steps per second across the fleet.
    pub throughput_steps_per_s: f64,
    /// Mean end-to-end plan latency (ms, warm-up-trimmed).
    pub mean_plan_latency_ms: f64,
    /// 99th-percentile end-to-end plan latency (ms, warm-up-trimmed).
    pub p99_plan_latency_ms: f64,
    /// 99th-percentile server queueing delay (ms, warm-up-trimmed).
    pub p99_queue_delay_ms: f64,
    /// Median measured per-plan shared-memory round trip (request +
    /// dispatch + completion + response hops), nanoseconds.
    pub transit_round_trip_p50_ns: f64,
    /// 99th-percentile measured per-plan round trip, nanoseconds.
    pub transit_round_trip_p99_ns: f64,
    /// Lithos-style residual: mean offloaded e2e latency minus the summed
    /// modelled stage totals (ms) — the overhead the live transport adds.
    pub ipc_overhead_ms: f64,
    /// Wall-clock duration of the serving phase, seconds.
    pub wall_s: f64,
}

/// One deterministic per-stage telemetry row from the always-on in-path
/// recorder: extracted from the same DES runs as the `fleet_serving`
/// metric rows, so like them these numbers are simulation outputs —
/// byte-stable across machines — and `--compare` can track a drift in any
/// serving stage's latency distribution exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TelemetryStageRow {
    /// Row name (`telemetry/<scenario>/<stage>`).
    pub name: String,
    /// Content fingerprint of the expanded cell (16 lowercase hex chars) —
    /// pairs the row with its `fleet_serving` sibling and its baseline.
    pub scenario_hash: String,
    /// Stage label (`encode`, `uplink_queue`, `pool_queue`,
    /// `batch_service`, `downlink`, `control_step`).
    pub stage: String,
    /// Values recorded into the stage histogram.
    pub samples: u64,
    /// Values beyond the histogram range (counted, never recorded).
    pub dropped: u64,
    /// Exact mean of the recorded values, ns.
    pub mean_ns: f64,
    /// Median, ns (log2-bucket ceiling: conservative within one power of
    /// two of the exact nearest-rank value).
    pub p50_ns: u64,
    /// 99th percentile, ns (log2-bucket ceiling).
    pub p99_ns: u64,
    /// 99.9th percentile, ns (log2-bucket ceiling).
    pub p999_ns: u64,
}

/// The canonical report emitted as `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct BenchReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Human-readable provenance string.
    pub generator: String,
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Raw per-benchmark medians.
    pub benches: Vec<BenchResult>,
    /// Fast-vs-reference speedups derived from `benches`.
    pub comparisons: Vec<Comparison>,
    /// Deterministic fleet-serving metrics (identical in every mode).
    pub fleet_rows: Vec<FleetServingRow>,
    /// Deterministic per-stage telemetry rows from the same DES runs as
    /// `fleet_rows` (identical in every mode).
    pub telemetry: Vec<TelemetryStageRow>,
    /// End-to-end wall-clock rows (full mode only; empty when the
    /// `experiments` binary is not built alongside the runner).
    pub e2e: Vec<E2eWallClockRow>,
    /// Live fleet-serving rows over shared memory (full mode only; empty
    /// when the `experiments` binary is not built alongside the runner).
    pub live: Vec<LiveServingRow>,
}

impl BenchReport {
    /// Serialises the report as pretty-printed canonical JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serialisable")
    }

    /// Parses and schema-validates a report.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the JSON does not parse into
    /// the report schema or violates its invariants.
    pub fn from_json(json: &str) -> Result<BenchReport, String> {
        let report: BenchReport =
            serde_json::from_str(json).map_err(|e| format!("not a bench report: {e}"))?;
        report.validate()?;
        Ok(report)
    }

    /// Checks the report invariants (version, non-empty suite, positive
    /// medians, consistent comparisons).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "schema version {} (runner understands {SCHEMA_VERSION})",
                self.schema_version
            ));
        }
        if self.benches.is_empty() {
            return Err("empty benchmark suite".to_owned());
        }
        for bench in &self.benches {
            let positive = bench.median_ns.is_finite() && bench.median_ns > 0.0;
            if !positive || bench.samples == 0 || bench.iters_per_sample == 0 {
                return Err(format!("degenerate measurement for `{}`", bench.name));
            }
        }
        for cmp in &self.comparisons {
            let all_positive = [cmp.reference_ns, cmp.fast_ns, cmp.speedup]
                .iter()
                .all(|v| v.is_finite() && *v > 0.0);
            if !all_positive {
                return Err(format!("degenerate comparison for `{}`", cmp.name));
            }
            let expected = cmp.reference_ns / cmp.fast_ns;
            if (cmp.speedup - expected).abs() > 1e-6 * expected {
                return Err(format!("inconsistent speedup for `{}`", cmp.name));
            }
        }
        for row in &self.fleet_rows {
            let finite_latencies = [row.p99_plan_latency_ms, row.p99_queue_delay_ms, row.warmup_ms]
                .iter()
                .all(|v| v.is_finite() && *v >= 0.0);
            let plausible = row.throughput_steps_per_s.is_finite()
                && row.throughput_steps_per_s > 0.0
                && row.server_utilization.is_finite()
                && (0.0..=1.0 + 1e-9).contains(&row.server_utilization)
                && row.robots > 0
                && row.servers > 0;
            if !finite_latencies || !plausible {
                return Err(format!("degenerate fleet metrics for `{}`", row.name));
            }
            let hash_ok = row.scenario_hash.len() == 16
                && row
                    .scenario_hash
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
            if !hash_ok {
                return Err(format!("malformed scenario hash for `{}`", row.name));
            }
            let faults_ok = row.slo_violation_fraction.is_finite()
                && (0.0..=1.0).contains(&row.slo_violation_fraction)
                && row.mean_recovery_ms.is_finite()
                && row.mean_recovery_ms >= 0.0;
            if !faults_ok {
                return Err(format!("degenerate fault metrics for `{}`", row.name));
            }
        }
        for row in &self.telemetry {
            let quantiles_ok = row.mean_ns.is_finite()
                && row.mean_ns >= 0.0
                && row.p50_ns <= row.p99_ns
                && row.p99_ns <= row.p999_ns;
            if !quantiles_ok {
                return Err(format!("degenerate telemetry row `{}`", row.name));
            }
            let hash_ok = row.scenario_hash.len() == 16
                && row
                    .scenario_hash
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
            if !hash_ok {
                return Err(format!("malformed scenario hash for `{}`", row.name));
            }
        }
        for row in &self.e2e {
            let timings_ok = row.runs >= 1
                && row.min_s.is_finite()
                && row.min_s > 0.0
                && row.mean_s.is_finite()
                && row.mean_s >= row.min_s;
            if !timings_ok {
                return Err(format!("degenerate e2e wall-clock row `{}`", row.name));
            }
            let hash_ok = row.scenario_hash.len() == 16
                && row
                    .scenario_hash
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
            if !hash_ok {
                return Err(format!("malformed scenario hash for `{}`", row.name));
            }
        }
        for row in &self.live {
            let finite_latencies = [
                row.mean_plan_latency_ms,
                row.p99_plan_latency_ms,
                row.p99_queue_delay_ms,
                row.transit_round_trip_p50_ns,
                row.transit_round_trip_p99_ns,
            ]
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0);
            let plausible = row.throughput_steps_per_s.is_finite()
                && row.throughput_steps_per_s > 0.0
                && row.wall_s.is_finite()
                && row.wall_s > 0.0
                && row.ipc_overhead_ms.is_finite()
                && row.robots > 0
                && row.servers > 0;
            if !finite_latencies || !plausible {
                return Err(format!("degenerate live serving row `{}`", row.name));
            }
            let hash_ok = row.scenario_hash.len() == 16
                && row
                    .scenario_hash
                    .bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
            if !hash_ok {
                return Err(format!("malformed scenario hash for `{}`", row.name));
            }
        }
        Ok(())
    }

    /// Formats the report as an aligned console table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("micro-bench report ({} mode)\n", self.mode));
        for bench in &self.benches {
            out.push_str(&format!("  {:<44} {:>14.1} ns/op\n", bench.name, bench.median_ns));
        }
        for cmp in &self.comparisons {
            out.push_str(&format!(
                "  {:<44} {:>12.2}x  ({:.0} ns -> {:.0} ns)\n",
                format!("speedup: {}", cmp.name),
                cmp.speedup,
                cmp.reference_ns,
                cmp.fast_ns
            ));
        }
        for row in &self.fleet_rows {
            out.push_str(&format!(
                "  {:<44} {:>7.1} st/s  p99 plan {:>7.1} ms  p99 queue {:>7.1} ms  util {:>4.2}\n",
                format!("metrics: {}", row.name),
                row.throughput_steps_per_s,
                row.p99_plan_latency_ms,
                row.p99_queue_delay_ms,
                row.server_utilization
            ));
        }
        for row in &self.telemetry {
            out.push_str(&format!(
                "  {:<44} {:>8} samples  p50/p99/p99.9 {:>9.3}/{:>9.3}/{:>9.3} ms\n",
                format!("telemetry: {}", row.name),
                row.samples,
                row.p50_ns as f64 / 1e6,
                row.p99_ns as f64 / 1e6,
                row.p999_ns as f64 / 1e6,
            ));
        }
        for row in &self.e2e {
            out.push_str(&format!(
                "  {:<44} min {:>7.3} s  mean {:>7.3} s  ({} runs)\n",
                format!("wall-clock: {}", row.name),
                row.min_s,
                row.mean_s,
                row.runs
            ));
        }
        for row in &self.live {
            out.push_str(&format!(
                "  {:<44} {:>7.1} st/s  p99 plan {:>7.1} ms  transit p50 {:>8.1} us  wall {:>6.2} s\n",
                format!("live: {}", row.name),
                row.throughput_steps_per_s,
                row.p99_plan_latency_ms,
                row.transit_round_trip_p50_ns / 1_000.0,
                row.wall_s
            ));
        }
        out
    }
}

/// One named routine in the suite.
struct BenchCase<'a> {
    name: String,
    routine: Box<dyn FnMut() + 'a>,
}

/// Whether a benchmark name survives the `--only` filter: `None` keeps
/// everything, otherwise a comma-separated list of name prefixes.
fn filter_keeps(filter: Option<&str>, name: &str) -> bool {
    filter.is_none_or(|f| f.split(',').any(|prefix| name.starts_with(prefix.trim())))
}

/// Whether a report section (`e2e`, `live_e2e`, `ipc_transit`, …) should
/// run at all under the filter — matched prefix-against-prefix in both
/// directions so `--only live` and `--only live_e2e/live_fifo` both keep
/// the live section.
fn filter_wants_section(filter: Option<&str>, section: &str) -> bool {
    filter.is_none_or(|f| {
        f.split(',').any(|prefix| {
            let prefix = prefix.trim();
            section.starts_with(prefix) || prefix.starts_with(section)
        })
    })
}

/// Shared-memory fixtures behind the `ipc_transit` bench group: a loopback
/// ring and a seqlock slot exercised on one thread, plus an echo thread
/// bouncing messages back over a request/response ring pair for the
/// cross-thread round trip.  The segment is leaked (a few kilobytes, once
/// per suite run) so the handles and the echo thread can borrow it
/// `'static`; the echo thread parks while idle — instead of stealing the
/// timing loops' cycles — and is stopped and joined on drop.
struct IpcTransitFixture {
    local_ring: corki_ipc::SpscRing<'static>,
    slot: corki_ipc::SeqlockSlot<'static>,
    req: corki_ipc::SpscRing<'static>,
    resp: corki_ipc::SpscRing<'static>,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    echo: Option<std::thread::JoinHandle<()>>,
}

impl IpcTransitFixture {
    /// Slot payload: one live-protocol message (64 bytes).
    const MSG: usize = 64;

    fn new() -> Self {
        let seg: &'static corki_ipc::ShmSegment = Box::leak(Box::new(
            corki_ipc::ShmSegment::anonymous(16 * 1024).expect("anonymous ipc bench segment"),
        ));
        let local_ring = seg.init_ring(0, 8, Self::MSG);
        let slot = seg.init_seqlock(1024, Self::MSG);
        let req = seg.init_ring(2048, 8, Self::MSG);
        let resp = seg.init_ring(4096, 8, Self::MSG);
        let echo_req = seg.ring(2048).expect("attach echo request ring");
        let echo_resp = seg.ring(4096).expect("attach echo response ring");
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let echo_stop = std::sync::Arc::clone(&stop);
        let echo = std::thread::spawn(move || {
            let mut buf = [0_u8; Self::MSG];
            loop {
                if echo_req.try_pop(&mut buf) {
                    while !echo_resp.try_push(&buf) {
                        std::thread::yield_now();
                    }
                } else if echo_stop.load(std::sync::atomic::Ordering::Relaxed) {
                    return;
                } else {
                    std::thread::park_timeout(Duration::from_micros(200));
                }
            }
        });
        IpcTransitFixture { local_ring, slot, req, resp, stop, echo: Some(echo) }
    }

    /// One cross-thread round trip: push a request, wake the echo thread,
    /// spin-pop the response (yielding, so a single-core host can run the
    /// echo thread at all).
    fn round_trip(&self, msg: &[u8; Self::MSG], out: &mut [u8; Self::MSG]) {
        assert!(self.req.try_push(msg), "echo thread drains every request");
        if let Some(echo) = &self.echo {
            echo.thread().unpark();
        }
        while !self.resp.try_pop(out) {
            std::thread::yield_now();
        }
    }
}

impl Drop for IpcTransitFixture {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(echo) = self.echo.take() {
            echo.thread().unpark();
            let _ = echo.join();
        }
    }
}

/// Warm a routine up and pick the iteration count that fills one sample.
fn calibrate(config: &RunnerConfig, routine: &mut dyn FnMut()) -> u64 {
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    while warmup_start.elapsed() < config.warmup {
        routine();
        warmup_iters += 1;
    }
    let per_iter = warmup_start.elapsed().as_nanos() / u128::from(warmup_iters.max(1));
    (config.target_sample.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64
}

/// Times every case with interleaved sample rounds — all benchmarks see the
/// same thermal/frequency environment instead of later cases paying for the
/// turbo budget the earlier ones spent — and reports per-case medians.
fn measure_interleaved(config: &RunnerConfig, cases: &mut [BenchCase<'_>]) -> Vec<BenchResult> {
    let iters: Vec<u64> =
        cases.iter_mut().map(|case| calibrate(config, &mut case.routine)).collect();
    let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(config.samples); cases.len()];
    for _ in 0..config.samples {
        for (case_index, case) in cases.iter_mut().enumerate() {
            let start = Instant::now();
            for _ in 0..iters[case_index] {
                (case.routine)();
            }
            samples[case_index].push(start.elapsed().as_nanos() as f64 / iters[case_index] as f64);
        }
    }
    cases
        .iter()
        .zip(samples.iter_mut())
        .zip(&iters)
        .map(|((case, case_samples), &iters_per_sample)| {
            case_samples.sort_by(f64::total_cmp);
            BenchResult {
                name: case.name.clone(),
                median_ns: case_samples[case_samples.len() / 2],
                samples: config.samples,
                iters_per_sample,
            }
        })
        .collect()
}

fn bench_observation() -> Observation {
    Observation {
        end_effector: EePose::new(Vec3::new(0.35, 0.0, 0.3), Vec3::ZERO, GripperState::Open),
        object_position: Vec3::new(0.45, -0.1, 0.02),
        goal_position: Vec3::new(0.5, 0.1, 0.02),
        ..Observation::default()
    }
}

fn bench_waypoints(n: usize) -> Vec<EePose> {
    (0..n)
        .map(|i| {
            EePose::new(
                Vec3::new(0.3 + 0.012 * i as f64, -0.015 * i as f64, 0.25 + 0.004 * i as f64),
                Vec3::new(0.0, 0.0, 0.02 * i as f64),
                if i >= n / 2 { GripperState::Closed } else { GripperState::Open },
            )
        })
        .collect()
}

/// Runs the whole micro-bench suite and assembles the report.
pub fn run_suite(config: &RunnerConfig, mode: &str) -> BenchReport {
    run_suite_filtered(config, mode, None)
}

/// [`run_suite`] restricted to benchmarks whose name starts with one of
/// the comma-separated prefixes in `filter` (e.g. `fleet_serving` or
/// `ipc_transit,des_queue`); comparisons whose members were filtered out
/// are dropped.
pub fn run_suite_filtered(config: &RunnerConfig, mode: &str, filter: Option<&str>) -> BenchReport {
    // The echo thread only exists when the ipc_transit group runs at all.
    let ipc = filter_wants_section(filter, "ipc_transit").then(IpcTransitFixture::new);
    let observation = bench_observation();

    // Policy inference: pre-optimisation allocating path vs the live
    // zero-allocation fast path, identical network shapes and identical
    // steady state: Corki-9 executes 9 control steps per plan, so each plan
    // pushes 8 mask embeddings plus the freshly captured frame (Fig. 4).
    const HORIZON: usize = 9;
    let mut reference_head = RefCorkiHead::new(HORIZON, &mut bench_rng());
    let mut policy = CorkiTrajectoryPolicy::new(HORIZON, &mut bench_rng());
    let mut request = PlanRequest::from_observation(observation);
    request.steps_since_last_plan = HORIZON;
    let mut out = Trajectory::hold(&observation.end_effector, 1);
    let mut baseline = BaselineFramePolicy::new(&mut bench_rng());
    let baseline_request = PlanRequest::from_observation(observation);

    // Trajectory fitting: sample-buffer fit vs in-place refit.
    let waypoints = bench_waypoints(10);
    let mut trajectory = Trajectory::fit_waypoints(&waypoints, CONTROL_STEP).expect("valid fit");

    // Control kernel: per-solve refactorisation vs the shared factorisation.
    let robot = panda_model();
    let state = JointState::at_rest(PANDA_HOME.to_vec());
    let fk = robot.forward_kinematics(&state.positions);
    let mut target = fk.end_effector;
    target.translation.x += 0.05;
    let task_reference = TaskReference::hold(target);
    let controller = bench_controller();

    // Full pipeline simulation (Corki-5, 120 frames).
    let mut pipeline_config = PipelineConfig::paper_defaults(Variant::CorkiFixed(5));
    pipeline_config.num_frames = 120;

    // Fleet serving: one timing case per committed scenario file under
    // `crates/bench/scenarios/` — the single-server FIFO/batching shapes,
    // the routed pools and the mixed-variant/mixed-device fleets all come
    // from the same declarative specs the metric rows run.
    let fleet_cases = fleet_scenario_cells();

    let mut cases: Vec<BenchCase<'_>> = vec![
        BenchCase {
            name: "policy_inference/corki_reference_alloc".to_owned(),
            routine: Box::new(|| {
                black_box(reference_head.plan(black_box(&observation), HORIZON - 1));
            }),
        },
        BenchCase {
            name: "policy_inference/corki_fast".to_owned(),
            routine: Box::new(|| {
                policy.plan_into(black_box(&request), &mut out);
            }),
        },
        BenchCase {
            name: "policy_inference/baseline_fast".to_owned(),
            routine: Box::new(|| {
                black_box(baseline.plan(black_box(&baseline_request)));
            }),
        },
        BenchCase {
            name: "trajectory_fit/reference_alloc".to_owned(),
            routine: Box::new(|| {
                black_box(reference_fit_waypoints(black_box(&waypoints), CONTROL_STEP));
            }),
        },
        BenchCase {
            name: "trajectory_fit/refit_fast".to_owned(),
            routine: Box::new(|| {
                trajectory.refit_waypoints(black_box(&waypoints), CONTROL_STEP).expect("valid fit");
            }),
        },
        BenchCase {
            name: "control_kernel/reference_refactor".to_owned(),
            routine: Box::new(|| {
                black_box(reference_task_space_torque(
                    black_box(&robot),
                    &state,
                    &task_reference,
                    1e-6,
                    &controller,
                ));
            }),
        },
        BenchCase {
            name: "control_kernel/ts_ctc_fast".to_owned(),
            routine: Box::new(|| {
                black_box(controller.compute_torque(black_box(&robot), &state, &task_reference));
            }),
        },
        BenchCase {
            name: "pipeline_sim/corki5_120_frames".to_owned(),
            routine: Box::new(|| {
                black_box(PipelineSimulator::new(pipeline_config.clone()).simulate());
            }),
        },
    ];
    for (name, cell) in &fleet_cases {
        if cell.shards > 1 {
            // Sharded scenarios time both engines so the report records the
            // single-thread-vs-sharded speedup as a first-class comparison.
            let shards = cell.shards;
            cases.push(BenchCase {
                name: format!("{name}/shards1"),
                routine: Box::new(move || {
                    black_box(FleetSimulator::new(cell.config.clone()).run());
                }),
            });
            cases.push(BenchCase {
                name: format!("{name}/shards{shards}"),
                routine: Box::new(move || {
                    black_box(FleetSimulator::new(cell.config.clone()).with_shards(shards).run());
                }),
            });
        } else {
            cases.push(BenchCase {
                name: name.clone(),
                routine: Box::new(move || {
                    black_box(FleetSimulator::new(cell.config.clone()).run());
                }),
            });
        }
        if cell.threads > 1 {
            // Threaded scenarios sweep the worker-thread axis.  Thread
            // counts beyond the committed shard count raise the shard count
            // with them (threads are capped by shards), so the sweep stays
            // runnable on any spec.
            for threads in THREAD_SWEEP {
                let shards = cell.shards.max(threads);
                cases.push(BenchCase {
                    name: format!("{name}/threads{threads}"),
                    routine: Box::new(move || {
                        black_box(
                            FleetSimulator::new(cell.config.clone())
                                .with_shards(shards)
                                .with_threads(threads)
                                .run(),
                        );
                    }),
                });
            }
        }
    }

    // K=1 parity: the sharded queue specializes a single shard down to a
    // plain heap (no cached heads, no tournament tree), so steady-state
    // schedule/pop traffic through it must cost the same as the unsharded
    // queue it generalises — the committed `k1_parity` speedup hovering
    // around 1.0 is the proof.
    let mut parity_plain = corki_system::des::EventQueue::new();
    let mut parity_sharded = corki_system::des::ShardedEventQueue::new(1);
    let mut plain_state = 0x9e37_79b9_7f4a_7c15u64;
    let mut sharded_state = plain_state;
    for _ in 0..512 {
        plain_state = lcg(plain_state);
        parity_plain.schedule(1.0 + (plain_state >> 40) as f64 / 64.0, plain_state);
        sharded_state = lcg(sharded_state);
        parity_sharded.schedule(0, 1.0 + (sharded_state >> 40) as f64 / 64.0, sharded_state);
    }
    cases.push(BenchCase {
        name: "des_queue/event_queue".to_owned(),
        routine: Box::new(move || {
            plain_state = lcg(plain_state);
            parity_plain.schedule(
                parity_plain.now_ms() + 1.0 + (plain_state >> 40) as f64 / 64.0,
                plain_state,
            );
            black_box(parity_plain.pop());
        }),
    });
    cases.push(BenchCase {
        name: "des_queue/sharded_k1".to_owned(),
        routine: Box::new(move || {
            sharded_state = lcg(sharded_state);
            parity_sharded.schedule(
                0,
                parity_sharded.now_ms() + 1.0 + (sharded_state >> 40) as f64 / 64.0,
                sharded_state,
            );
            black_box(parity_sharded.pop());
        }),
    });
    // Shared-memory transit: the per-hop costs of the live serving path —
    // one SPSC ring hop and one seqlock publish/snapshot on a single
    // thread, and the cross-thread ring round trip whose ratio against the
    // same-thread hop is the scheduling/wakeup overhead a live process
    // pays on top of the copy itself.
    if let Some(ipc) = ipc.as_ref() {
        let mut ring_buf = [0_u8; IpcTransitFixture::MSG];
        cases.push(BenchCase {
            name: "ipc_transit/ring_push_pop".to_owned(),
            routine: Box::new(move || {
                black_box(ipc.local_ring.try_push(&[0x5A; IpcTransitFixture::MSG]));
                black_box(ipc.local_ring.try_pop(&mut ring_buf));
            }),
        });
        let mut seq_out = [0_u8; IpcTransitFixture::MSG];
        let mut seq_payload = [0_u8; IpcTransitFixture::MSG];
        let mut seq_counter = 0_u64;
        cases.push(BenchCase {
            name: "ipc_transit/seqlock_publish_read".to_owned(),
            routine: Box::new(move || {
                seq_counter = seq_counter.wrapping_add(1);
                seq_payload[..8].copy_from_slice(&seq_counter.to_le_bytes());
                ipc.slot.write(&seq_payload);
                black_box(ipc.slot.read(&mut seq_out));
            }),
        });
        let mut rtt_out = [0_u8; IpcTransitFixture::MSG];
        cases.push(BenchCase {
            name: "ipc_transit/cross_thread_rtt".to_owned(),
            routine: Box::new(move || {
                ipc.round_trip(&[0x7E; IpcTransitFixture::MSG], &mut rtt_out);
                black_box(&rtt_out);
            }),
        });
    }
    // The always-on recorder lives in the serving hot path, so its per-
    // record cost is pinned in both homes: plain memory (the DES engine's
    // `Recorder`) and a shm-layout page of atomics (the live processes'
    // `ShmTelemetry`).  The page is leaked like the ipc fixture's segment —
    // a few kilobytes once per suite run — so the handle can live `'static`
    // inside the timing closure.
    let mut recorder = corki_telemetry::Recorder::new(8);
    let mut record_state = 0x9e37_79b9_7f4a_7c15u64;
    cases.push(BenchCase {
        name: "telemetry/record".to_owned(),
        routine: Box::new(move || {
            record_state = lcg(record_state);
            recorder.record(corki_telemetry::Stage::PoolQueue, black_box(record_state >> 40));
        }),
    });
    let page: &'static [std::sync::atomic::AtomicU64] = Box::leak(
        (0..corki_telemetry::PAGE_WORDS)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice(),
    );
    let shm_recorder = corki_telemetry::ShmTelemetry::new(page);
    let mut shm_state = 0x853c_49e6_748f_ea9bu64;
    cases.push(BenchCase {
        name: "telemetry/shm_record".to_owned(),
        routine: Box::new(move || {
            shm_state = lcg(shm_state);
            shm_recorder.record(corki_telemetry::Stage::PoolQueue, black_box(shm_state >> 40));
        }),
    });
    cases.retain(|case| filter_keeps(filter, &case.name));
    // The deterministic fleet metric rows only matter when the report
    // covers fleet benches at all — a `--only trajectory` run should not
    // pay for fleet simulations it will not record.
    let (fleet_rows, telemetry_rows) = if fleet_cases.iter().any(|(n, _)| filter_keeps(filter, n)) {
        fleet_metric_rows(&fleet_cases)
    } else {
        (Vec::new(), Vec::new())
    };
    // End-to-end wall-clock rows are full-mode only (a quick CI run should
    // not spawn multi-second child processes) and need the sibling
    // `experiments` binary.
    let e2e = if mode == "full" && filter_wants_section(filter, "e2e") {
        e2e_wall_clock_rows(E2E_RUNS)
    } else {
        Vec::new()
    };
    // Live fleet-serving rows are full-mode only too: each one spawns a
    // whole robot/worker/coordinator process fleet over shared memory.
    let live = if mode == "full" && filter_wants_section(filter, "live_e2e") {
        live_serving_rows()
    } else {
        Vec::new()
    };
    let benches = measure_interleaved(config, &mut cases);
    drop(cases);

    let mut comparison_specs: Vec<(String, String, String)> = [
        (
            "policy_inference",
            "policy_inference/corki_reference_alloc",
            "policy_inference/corki_fast",
        ),
        ("trajectory_fit", "trajectory_fit/reference_alloc", "trajectory_fit/refit_fast"),
        ("control_kernel", "control_kernel/reference_refactor", "control_kernel/ts_ctc_fast"),
    ]
    .into_iter()
    .map(|(name, reference, fast)| (name.to_owned(), reference.to_owned(), fast.to_owned()))
    .collect();
    for (name, cell) in &fleet_cases {
        if cell.shards > 1 {
            comparison_specs.push((
                format!("{name}/sharding"),
                format!("{name}/shards1"),
                format!("{name}/shards{}", cell.shards),
            ));
        }
        if cell.threads > 1 {
            comparison_specs.push((
                format!("{name}/threading"),
                format!("{name}/threads1"),
                format!("{name}/threads{}", cell.threads),
            ));
        }
    }
    comparison_specs.push((
        "des_queue/k1_parity".to_owned(),
        "des_queue/sharded_k1".to_owned(),
        "des_queue/event_queue".to_owned(),
    ));
    // Cross-thread RTT over the same-thread hop: how much the wakeup and
    // scheduling cost on top of the shared-memory copy itself (the live
    // path's per-hop floor).
    comparison_specs.push((
        "ipc_transit/scheduling_overhead".to_owned(),
        "ipc_transit/cross_thread_rtt".to_owned(),
        "ipc_transit/ring_push_pop".to_owned(),
    ));
    // What the shared-memory home of the recorder costs over plain memory
    // (fetch_add atomics vs ordinary adds on the same log2-bucket layout).
    comparison_specs.push((
        "telemetry/shm_overhead".to_owned(),
        "telemetry/shm_record".to_owned(),
        "telemetry/record".to_owned(),
    ));
    let comparisons = comparison_specs
        .into_iter()
        .filter_map(|(name, reference, fast)| {
            let find = |n: &str| benches.iter().find(|b| b.name == n).map(|b| b.median_ns);
            let reference_ns = find(&reference)?;
            let fast_ns = find(&fast)?;
            Some(Comparison { name, reference_ns, fast_ns, speedup: reference_ns / fast_ns })
        })
        .collect();

    BenchReport {
        schema_version: SCHEMA_VERSION,
        generator: "corki-bench micro runner".to_owned(),
        mode: mode.to_owned(),
        benches,
        comparisons,
        fleet_rows,
        telemetry: telemetry_rows,
        e2e,
        live,
    }
}

/// The worker-thread axis swept for every threaded scenario.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Timed process runs folded into each e2e wall-clock row.
const E2E_RUNS: usize = 5;

/// The committed scenarios timed end-to-end: the 10k-robot pool (the scale
/// story) and a small routed pool (the latency floor of a short run).
const E2E_SCENARIO_FILES: [&str; 2] = ["fleet_10k_pool.json", "pool2_lqd_8robots_60frames.json"];

/// A splitmix-flavoured LCG step shared by the queue-parity benches.
#[inline]
fn lcg(state: u64) -> u64 {
    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)
}

/// The committed fleet-serving scenario files — the single source of truth
/// for the canonical bench cases recorded in `BENCH_fleet.json`.  Baked in
/// at compile time so the `bench` binary works from any directory; a bench
/// integration test additionally verifies the on-disk files stay canonical.
pub const FLEET_SCENARIO_SOURCES: [&str; 11] = [
    include_str!("../scenarios/fifo_8robots_60frames.json"),
    include_str!("../scenarios/batch4_8robots_60frames.json"),
    include_str!("../scenarios/pool2_lqd_8robots_60frames.json"),
    include_str!("../scenarios/mixed_jetson_v100_8robots_60frames.json"),
    include_str!("../scenarios/mixed_variant_stf_pool2_8robots_60frames.json"),
    include_str!("../scenarios/adap_onrobot_batch_pool2_8robots_60frames.json"),
    include_str!("../scenarios/fleet_10k_pool.json"),
    include_str!("../scenarios/crash_pool2_lqd_8robots_60frames.json"),
    include_str!("../scenarios/degraded_uplink_retry_8robots_60frames.json"),
    include_str!("../scenarios/churn_fallback_8robots_60frames.json"),
    include_str!("../scenarios/live_fifo_8robots_48frames.json"),
];

/// The committed scenarios additionally lowered onto real processes for
/// the `live` report section (full mode only): the DES runs them as
/// ordinary `fleet_serving` rows — the oracle — and `experiments serve`
/// runs them over shared memory, fingerprint-matched by `scenario_hash`.
const LIVE_SCENARIO_FILES: [&str; 1] = ["live_fifo_8robots_48frames.json"];

/// Parses the committed scenarios and expands each into its bench cells
/// (`fleet_serving/<scenario>` per cell; multi-cell scenarios get an index
/// suffix).  Shared by the timing benches and the metric rows so both
/// measure the same fleets.
pub fn fleet_scenario_cells() -> Vec<(String, ConcreteScenario)> {
    FLEET_SCENARIO_SOURCES
        .iter()
        .flat_map(|json| {
            let spec = ScenarioSpec::from_json(json)
                .unwrap_or_else(|e| panic!("committed bench scenario is invalid: {e}"));
            let cells = spec.expand().expect("validated scenarios expand");
            let single = cells.len() == 1;
            cells.into_iter().enumerate().map(move |(index, cell)| {
                let name = if single {
                    format!("fleet_serving/{}", cell.scenario)
                } else {
                    format!("fleet_serving/{}/{index}", cell.scenario)
                };
                (name, cell)
            })
        })
        .collect()
}

/// Runs the canonical fleet cells once and extracts their deterministic
/// serving metrics plus the per-stage telemetry rows the engine's always-on
/// recorder produced alongside (both are simulation outputs: byte-stable
/// across machines, unlike the timing medians).  Takes the cells the timing
/// benches already expanded so all three measure the same fleets by
/// construction.
fn fleet_metric_rows(
    cases: &[(String, ConcreteScenario)],
) -> (Vec<FleetServingRow>, Vec<TelemetryStageRow>) {
    let mut fleet_rows = Vec::with_capacity(cases.len());
    let mut telemetry_rows = Vec::new();
    for (name, cell) in cases {
        let outcome = FleetSimulator::new(cell.config.clone())
            .with_shards(cell.shards)
            .with_threads(cell.threads)
            .run();
        let summary = &outcome.summary;
        let scenario_hash = scenario_fingerprint(std::slice::from_ref(cell));
        fleet_rows.push(FleetServingRow {
            name: name.clone(),
            robots: summary.robots,
            servers: summary.servers,
            variant: cell.variant_label.clone(),
            scheduler: cell.scheduler_label.clone(),
            routing: cell.routing_label.clone(),
            scenario_hash: scenario_hash.clone(),
            composition: cell.composition_label.clone(),
            warmup_ms: summary.warmup_ms,
            throughput_steps_per_s: summary.throughput_steps_per_s,
            p99_plan_latency_ms: summary.p99_plan_latency_ms,
            p99_queue_delay_ms: summary.p99_queue_delay_ms,
            server_utilization: summary.server_utilization,
            slo_violation_fraction: summary.slo_violation_fraction,
            timed_out_requests: summary.timed_out_requests,
            retries: summary.retries,
            dropped_requests: summary.dropped_requests,
            fallback_inferences: summary.fallback_inferences,
            mean_recovery_ms: summary.mean_recovery_ms,
        });
        let stage_prefix = name.replacen("fleet_serving/", "telemetry/", 1);
        for stage in &outcome.telemetry.stages {
            telemetry_rows.push(TelemetryStageRow {
                name: format!("{stage_prefix}/{}", stage.stage),
                scenario_hash: scenario_hash.clone(),
                stage: stage.stage.clone(),
                samples: stage.samples,
                dropped: stage.dropped,
                mean_ns: stage.mean_ns,
                p50_ns: stage.p50_ns,
                p99_ns: stage.p99_ns,
                p999_ns: stage.p999_ns,
            });
        }
    }
    (fleet_rows, telemetry_rows)
}

/// Times `experiments fleet --scenario <file>` end-to-end, hyperfine-style:
/// one warm-up run, then `runs` timed process invocations per committed
/// scenario in [`E2E_SCENARIO_FILES`], recording the minimum (robust) and
/// the mean (context).  Returns no rows when the sibling `experiments`
/// binary is missing (e.g. under `cargo test`, where `current_exe` is a
/// test harness deep in `target/*/deps`).
fn e2e_wall_clock_rows(runs: usize) -> Vec<E2eWallClockRow> {
    let Some(experiments) = sibling_experiments_binary() else {
        return Vec::new();
    };
    let scenario_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    E2E_SCENARIO_FILES
        .iter()
        .filter_map(|file| {
            let path = scenario_dir.join(file);
            let json = std::fs::read_to_string(&path).ok()?;
            let spec = ScenarioSpec::from_json(&json).ok()?;
            let cells = spec.expand().ok()?;
            let time_one = || -> Option<f64> {
                let start = Instant::now();
                let status = std::process::Command::new(&experiments)
                    .arg("fleet")
                    .arg("--scenario")
                    .arg(&path)
                    .stdout(std::process::Stdio::null())
                    .stderr(std::process::Stdio::null())
                    .status()
                    .ok()?;
                status.success().then(|| start.elapsed().as_secs_f64())
            };
            time_one()?; // warm-up (page cache, frequency governor)
            let timings: Vec<f64> = (0..runs).map(|_| time_one()).collect::<Option<_>>()?;
            let min_s = timings.iter().copied().fold(f64::INFINITY, f64::min);
            let mean_s = timings.iter().sum::<f64>() / timings.len() as f64;
            Some(E2eWallClockRow {
                name: format!("e2e/{}", spec.name),
                scenario_hash: scenario_fingerprint(&cells),
                runs,
                min_s,
                mean_s,
            })
        })
        .collect()
}

/// Lowers each committed live scenario onto real processes via the sibling
/// `experiments serve` binary and extracts one [`LiveServingRow`] per cell
/// from its JSON report.  Returns no rows when the binary is missing
/// (e.g. under `cargo test`) or a live run fails — the `live` section is
/// best-effort context, not a gate on the machine's process budget.
fn live_serving_rows() -> Vec<LiveServingRow> {
    let Some(experiments) = sibling_experiments_binary() else {
        return Vec::new();
    };
    let scenario_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    LIVE_SCENARIO_FILES
        .iter()
        .filter_map(|file| {
            let path = scenario_dir.join(file);
            let json_out = std::env::temp_dir()
                .join(format!("corki-live-bench-{}-{file}", std::process::id()));
            let status = std::process::Command::new(&experiments)
                .arg("serve")
                .arg("--scenario")
                .arg(&path)
                .arg("--json")
                .arg(&json_out)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .ok()?;
            let raw = std::fs::read_to_string(&json_out).ok();
            let _ = std::fs::remove_file(&json_out);
            if !status.success() {
                return None;
            }
            let value: serde_json::Value = serde_json::from_str(&raw?).ok()?;
            let reports =
                Vec::<corki_serve::LiveReport>::from_value(value.as_object()?.get("serve")?)
                    .ok()?;
            let single = reports.len() == 1;
            Some(reports.into_iter().enumerate().map(move |(index, report)| {
                let name = if single {
                    format!("live_e2e/{}", report.scenario)
                } else {
                    format!("live_e2e/{}/{index}", report.scenario)
                };
                LiveServingRow {
                    name,
                    scenario_hash: report.fingerprint,
                    robots: report.row.robots,
                    servers: report.row.servers,
                    throughput_steps_per_s: report.row.throughput_steps_per_s,
                    mean_plan_latency_ms: report.row.mean_plan_latency_ms,
                    p99_plan_latency_ms: report.row.p99_plan_latency_ms,
                    p99_queue_delay_ms: report.row.p99_queue_delay_ms,
                    transit_round_trip_p50_ns: report.transit.round_trip.p50_ns,
                    transit_round_trip_p99_ns: report.transit.round_trip.p99_ns,
                    ipc_overhead_ms: report.ipc_overhead_ms,
                    wall_s: report.wall_s,
                }
            }))
        })
        .flatten()
        .collect()
}

/// Locates the `experiments` binary next to the running one, if any.
fn sibling_experiments_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let name = format!("experiments{}", std::env::consts::EXE_SUFFIX);
    let sibling = exe.parent()?.join(&name);
    sibling.is_file().then_some(sibling)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_produces_a_valid_report_that_round_trips() {
        let report = run_suite(&RunnerConfig::quick(), "quick");
        report.validate().expect("fresh report must validate");
        let json = report.to_json();
        let parsed = BenchReport::from_json(&json).expect("round trip");
        assert_eq!(parsed, report);
        assert_eq!(
            report.comparisons.len(),
            8,
            "3 fast-path + sharding + threading + k1-parity + ipc-transit + telemetry comparisons"
        );
        assert!(report.benches.len() >= 16);
        assert!(report.benches.iter().any(|b| b.name.starts_with("fleet_serving/")));
        assert_eq!(report.fleet_rows.len(), FLEET_SCENARIO_SOURCES.len());
        assert!(report.e2e.is_empty(), "e2e wall-clock rows are full-mode only");
        assert!(!report.to_table().is_empty());
        // The sharded 10k scenario times both engines and records a speedup.
        assert!(report.benches.iter().any(|b| b.name == "fleet_serving/fleet_10k_pool/shards1"));
        assert!(report.benches.iter().any(|b| b.name == "fleet_serving/fleet_10k_pool/shards4"));
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.name == "fleet_serving/fleet_10k_pool/sharding"));
        // The threaded 10k scenario sweeps the worker-thread axis.
        for threads in THREAD_SWEEP {
            assert!(report
                .benches
                .iter()
                .any(|b| b.name == format!("fleet_serving/fleet_10k_pool/threads{threads}")));
        }
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.name == "fleet_serving/fleet_10k_pool/threading"));
        // The K=1 parity pair pins zero single-shard overhead.
        assert!(report.benches.iter().any(|b| b.name == "des_queue/event_queue"));
        assert!(report.benches.iter().any(|b| b.name == "des_queue/sharded_k1"));
        assert!(report.comparisons.iter().any(|c| c.name == "des_queue/k1_parity"));
        // The shared-memory transit group and its scheduling comparison.
        assert!(report.benches.iter().any(|b| b.name == "ipc_transit/ring_push_pop"));
        assert!(report.benches.iter().any(|b| b.name == "ipc_transit/seqlock_publish_read"));
        assert!(report.benches.iter().any(|b| b.name == "ipc_transit/cross_thread_rtt"));
        assert!(report.comparisons.iter().any(|c| c.name == "ipc_transit/scheduling_overhead"));
        // The in-path recorder cases and their shared-memory-cost pairing.
        assert!(report.benches.iter().any(|b| b.name == "telemetry/record"));
        assert!(report.benches.iter().any(|b| b.name == "telemetry/shm_record"));
        assert!(report.comparisons.iter().any(|c| c.name == "telemetry/shm_overhead"));
        // Six stage rows per fleet cell, paired by fingerprint.
        assert_eq!(report.telemetry.len(), report.fleet_rows.len() * 6);
        assert!(report
            .telemetry
            .iter()
            .any(|r| r.name == "telemetry/pool2_lqd_8robots_60frames/pool_queue" && r.samples > 0));
        assert!(report.live.is_empty(), "live serving rows are full-mode only");
    }

    #[test]
    fn the_only_filter_accepts_comma_separated_prefixes() {
        let report = run_suite_filtered(
            &RunnerConfig::quick(),
            "quick",
            Some("ipc_transit,des_queue/event"),
        );
        report.validate().expect("filtered report must validate");
        assert_eq!(report.benches.len(), 4, "3 ipc_transit cases + des_queue/event_queue");
        assert!(report
            .benches
            .iter()
            .all(|b| b.name.starts_with("ipc_transit") || b.name == "des_queue/event_queue"));
        assert_eq!(report.comparisons.len(), 1, "only the ipc pair survives whole");
        assert!(report.fleet_rows.is_empty(), "no fleet benches -> no fleet metric rows");
        assert!(report.telemetry.is_empty(), "no fleet benches -> no telemetry rows");
    }

    #[test]
    fn filtered_suite_keeps_only_the_prefix_and_drops_broken_comparisons() {
        let report = run_suite_filtered(&RunnerConfig::quick(), "quick", Some("fleet_serving"));
        report.validate().expect("filtered report must validate");
        // Ten single-shard scenarios, the two engine cases of the sharded
        // 10k scenario, and its four worker-thread sweep cases.
        assert_eq!(report.benches.len(), FLEET_SCENARIO_SOURCES.len() + 1 + THREAD_SWEEP.len());
        assert!(report.benches.iter().all(|b| b.name.starts_with("fleet_serving/")));
        // The fast-path and k1-parity comparisons lose their members to the
        // filter; the sharding and threading comparisons keep both of their
        // benches and survive.
        assert_eq!(report.comparisons.len(), 2);
        assert!(report.comparisons.iter().any(|c| c.name.ends_with("/sharding")));
        assert!(report.comparisons.iter().any(|c| c.name.ends_with("/threading")));
        // The deterministic metric rows ride along in every mode, each
        // fleet cell contributing its six telemetry stage rows.
        assert_eq!(report.fleet_rows.len(), FLEET_SCENARIO_SOURCES.len());
        assert_eq!(report.telemetry.len(), FLEET_SCENARIO_SOURCES.len() * 6);
    }

    #[test]
    fn non_fleet_filters_skip_the_fleet_metric_rows() {
        let report = run_suite_filtered(&RunnerConfig::quick(), "quick", Some("trajectory_fit"));
        report.validate().expect("filtered report must validate");
        assert!(report.benches.iter().all(|b| b.name.starts_with("trajectory_fit")));
        assert!(report.fleet_rows.is_empty(), "no fleet benches -> no fleet metric rows");
    }

    #[test]
    fn fleet_metric_rows_are_deterministic_and_heterogeneous() {
        let (a, telemetry_a) = fleet_metric_rows(&fleet_scenario_cells());
        let (b, telemetry_b) = fleet_metric_rows(&fleet_scenario_cells());
        assert_eq!(a, b, "fleet metrics are simulation outputs and must be byte-stable");
        assert_eq!(telemetry_a, telemetry_b, "telemetry rows must be byte-stable too");
        let mixed = a
            .iter()
            .find(|r| r.name.contains("mixed_jetson_v100"))
            .expect("mixed Jetson+V100 row present");
        assert!(mixed.composition.contains("Jetson"));
        assert!(mixed.warmup_ms > 0.0, "mixed row must report warm-up-trimmed percentiles");
        let pool = a.iter().find(|r| r.name.contains("pool2_lqd")).expect("pool row present");
        assert_eq!(pool.servers, 2);
        assert_eq!(pool.routing, "least-queue-depth");
        // The scenario-only shapes: a mixed-variant fleet on a heterogeneous
        // STF pool, and an adaptive fleet with an on-robot Jetson group
        // behind a batched pool.
        let stf = a
            .iter()
            .find(|r| r.name.contains("mixed_variant_stf"))
            .expect("mixed-variant row present");
        assert_eq!(stf.variant, "Corki-3+Corki-9");
        assert_eq!(stf.scheduler, "stf");
        assert_eq!((stf.servers, stf.routing.as_str()), (2, "device-affinity"));
        let adap = a
            .iter()
            .find(|r| r.name.contains("adap_onrobot"))
            .expect("adaptive on-robot row present");
        assert_eq!(adap.variant, "3xCorki-ADAP+Corki-5");
        assert!(adap.composition.starts_with("mix("), "{}", adap.composition);
        // The 10k-robot sharded scenario rides along as a metric row too.
        let big = a.iter().find(|r| r.name.contains("fleet_10k_pool")).expect("10k row present");
        assert_eq!((big.robots, big.servers), (10_000, 32));
        // Fault-free scenarios report all-zero fault counters.
        assert!(
            (pool.timed_out_requests, pool.retries, pool.fallback_inferences) == (0, 0, 0)
                && pool.dropped_requests == 0
                && pool.mean_recovery_ms == 0.0,
            "fault-free rows must not report fault activity"
        );
        // The committed server-crash scenario exercises the whole fault
        // stack: timeouts fire while the pool is down, the bounded retries
        // fail too, the fallback model serves the stranded plans, and each
        // server's recovery time is finite.
        let crash = a.iter().find(|r| r.name.contains("crash_pool2")).expect("crash row present");
        assert!(crash.timed_out_requests > 0, "crash scenario must time requests out");
        assert!(crash.retries > 0, "crash scenario must retry");
        assert!(crash.fallback_inferences > 0, "crash scenario must fall back on-robot");
        assert_eq!(crash.dropped_requests, 0, "the fallback model catches exhausted retries");
        assert!(
            crash.mean_recovery_ms > 0.0 && crash.mean_recovery_ms.is_finite(),
            "both crashed servers recover in-run"
        );
        // The degraded-uplink scenario loses uploads and retries them; its
        // warm-up window is MSER-5-detected rather than hand-picked.
        let lossy = a
            .iter()
            .find(|r| r.name.contains("degraded_uplink"))
            .expect("degraded-uplink row present");
        assert!(lossy.timed_out_requests > 0 && lossy.retries > 0);
        assert_eq!(lossy.fallback_inferences, 0, "no fallback model configured");
        // The churn scenario joins one robot late, leaves one early, and
        // serves the crash window with the on-robot fallback.
        let churn =
            a.iter().find(|r| r.name.contains("churn_fallback")).expect("churn row present");
        assert!(churn.fallback_inferences > 0);
        // Every row carries a well-formed, content-keyed provenance hash.
        for row in &a {
            assert_eq!(row.scenario_hash.len(), 16, "{}", row.name);
            assert!(row.scenario_hash.bytes().all(|b| b.is_ascii_hexdigit()), "{}", row.name);
        }
        let distinct: std::collections::BTreeSet<&str> =
            a.iter().map(|r| r.scenario_hash.as_str()).collect();
        assert_eq!(distinct.len(), a.len(), "distinct scenarios hash distinctly");
    }

    #[test]
    fn validation_rejects_broken_reports() {
        let mut report = run_suite(&RunnerConfig::quick(), "quick");
        report.comparisons[0].speedup *= 2.0;
        assert!(report.validate().is_err());
        report.comparisons.clear();
        let mut broken_fleet = report.clone();
        broken_fleet.fleet_rows[0].throughput_steps_per_s = f64::NAN;
        assert!(broken_fleet.validate().is_err());
        let mut broken_hash = report.clone();
        broken_hash.fleet_rows[0].scenario_hash = "NOT-A-FNV1A-HASH".to_owned();
        assert!(broken_hash.validate().is_err());
        report.benches.clear();
        assert!(report.validate().is_err());
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    #[test]
    fn validation_bounds_the_live_serving_rows() {
        let mut report = run_suite_filtered(&RunnerConfig::quick(), "quick", Some("des_queue"));
        let good = LiveServingRow {
            name: "live_e2e/live_fifo_8robots_48frames".to_owned(),
            scenario_hash: "0123456789abcdef".to_owned(),
            robots: 8,
            servers: 2,
            throughput_steps_per_s: 109.0,
            mean_plan_latency_ms: 170.0,
            p99_plan_latency_ms: 180.8,
            p99_queue_delay_ms: 0.0,
            transit_round_trip_p50_ns: 650_000.0,
            transit_round_trip_p99_ns: 900_000.0,
            ipc_overhead_ms: 0.8,
            wall_s: 3.5,
        };
        report.live = vec![good.clone()];
        report.validate().expect("well-formed live rows validate");
        let broken = |mutate: fn(&mut LiveServingRow)| {
            let mut row = good.clone();
            mutate(&mut row);
            let mut report = report.clone();
            report.live = vec![row];
            report.validate()
        };
        assert!(broken(|r| r.robots = 0).is_err(), "an empty fleet");
        assert!(broken(|r| r.throughput_steps_per_s = 0.0).is_err(), "zero throughput");
        assert!(broken(|r| r.p99_plan_latency_ms = f64::NAN).is_err(), "non-finite latency");
        assert!(broken(|r| r.wall_s = 0.0).is_err(), "zero wall clock");
        assert!(broken(|r| r.scenario_hash = "XYZ".to_owned()).is_err(), "malformed hash");
    }

    #[test]
    fn validation_bounds_the_e2e_wall_clock_rows() {
        let mut report = run_suite_filtered(&RunnerConfig::quick(), "quick", Some("des_queue"));
        let good = E2eWallClockRow {
            name: "e2e/fleet_10k_pool".to_owned(),
            scenario_hash: "0123456789abcdef".to_owned(),
            runs: 5,
            min_s: 0.25,
            mean_s: 0.30,
        };
        report.e2e = vec![good.clone()];
        report.validate().expect("well-formed e2e rows validate");
        let broken = |mutate: fn(&mut E2eWallClockRow)| {
            let mut row = good.clone();
            mutate(&mut row);
            let mut report = report.clone();
            report.e2e = vec![row];
            report.validate()
        };
        assert!(broken(|r| r.runs = 0).is_err(), "zero runs");
        assert!(broken(|r| r.min_s = 0.0).is_err(), "non-positive minimum");
        assert!(broken(|r| r.mean_s = 0.1).is_err(), "mean below minimum");
        assert!(broken(|r| r.scenario_hash = "XYZ".to_owned()).is_err(), "malformed hash");
    }
}
