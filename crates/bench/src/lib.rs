//! Benchmark support library for the DaDu-Corki reproduction.
//!
//! Two modules back the `bench` binary (the registry-free micro-bench runner
//! that emits the canonical `BENCH_*.json` perf trajectory):
//!
//! * [`micro`] — the timing runner, the JSON report schema and the suite of
//!   hot-path micro-benchmarks (policy inference, trajectory fitting, the
//!   TS-CTC control kernel and the full pipeline simulation);
//! * [`mod@reference`] — faithful re-implementations of the *pre-optimisation*
//!   allocating hot paths (naive sequential-sum matvec, clone-per-step
//!   LSTM/MLP caches, per-solve Cholesky refactorisation), kept so every
//!   report records the speedup of the zero-allocation fast path against the
//!   code it replaced.

pub mod micro;
pub mod reference;
