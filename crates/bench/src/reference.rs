//! Pre-optimisation reference implementations of the hot paths.
//!
//! These reproduce, operation for operation, the allocating code paths the
//! zero-allocation fast path replaced: the naive sequential-sum matvec (one
//! latency-bound accumulator chain per row), the `forward_cached`-style
//! LSTM/MLP forwards that `to_vec()` and clone their intermediates on every
//! step, the per-dimension sample-buffer trajectory fit, and the
//! per-solve-refactorising task-space dynamics. The micro-bench suite times
//! them against the live implementations so every `BENCH_*.json` records the
//! speedup over the code that shipped before the fast path existed.

use corki_math::{CubicPoly, DMat, DVec};
use corki_nn::{Activation, Tensor};
use corki_policy::{Observation, OBSERVATION_DIM, TOKEN_DIM, TOKEN_WINDOW};
use corki_robot::{
    ControllerGains, EndEffectorState, JointState, RobotModel, TaskReference, TaskSpaceController,
    TaskSpaceModel,
};
use corki_trajectory::{EePose, GripperState, Trajectory, CONTROL_STEP};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Hidden size of the LSTM policy head (mirrors the private constant in
/// `corki-policy`).
const HIDDEN_DIM: usize = 48;
/// Close-loop feature width (mirrors the private constant in `corki-policy`).
const CLOSE_LOOP_DIM: usize = 8;

/// The pre-optimisation logistic sigmoid (scalar libm exponential).
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The pre-optimisation matrix-vector product: one sequential accumulator
/// chain per row (`iter().zip().map().sum()`), exactly as `Tensor::matvec`
/// was written before the unrolled kernel.
pub fn naive_matvec(t: &Tensor, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), t.cols(), "naive_matvec: dimension mismatch");
    let mut out = vec![0.0; t.rows()];
    for (r, o) in out.iter_mut().enumerate() {
        let row = &t.data()[r * t.cols()..(r + 1) * t.cols()];
        *o = row.iter().zip(x).map(|(w, xi)| w * xi).sum();
    }
    out
}

/// A fully-connected layer running the naive matvec.
struct RefLinear {
    weight: Tensor,
    bias: Tensor,
}

impl RefLinear {
    fn new(input: usize, output: usize, rng: &mut impl Rng) -> Self {
        RefLinear { weight: Tensor::xavier(output, input, rng), bias: Tensor::zeros(output, 1) }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = naive_matvec(&self.weight, x);
        for (yi, b) in y.iter_mut().zip(self.bias.data()) {
            *yi += b;
        }
        y
    }
}

/// An MLP whose forward pass replicates the pre-optimisation
/// `Mlp::forward` → `forward_cached` chain: the input is `to_vec()`-ed, every
/// layer's input is cached, and every activation vector is cloned.
pub struct RefMlp {
    layers: Vec<RefLinear>,
    activation: Activation,
}

impl RefMlp {
    /// Builds an MLP with the given layer sizes.
    pub fn new(sizes: &[usize], activation: Activation, rng: &mut impl Rng) -> Self {
        let layers = sizes.windows(2).map(|w| RefLinear::new(w[0], w[1], rng)).collect();
        RefMlp { layers, activation }
    }

    /// The allocating forward pass, caches and all.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut layer_caches = Vec::with_capacity(self.layers.len());
        let mut activations = Vec::with_capacity(self.layers.len());
        let mut current = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = layer.forward(&current);
            layer_caches.push(current.clone());
            let is_last = i + 1 == self.layers.len();
            if !is_last {
                // Pre-optimisation hidden activation: scalar libm tanh.
                for v in y.iter_mut() {
                    *v = match self.activation {
                        Activation::Tanh => v.tanh(),
                        _ => sigmoid(*v),
                    };
                }
            }
            activations.push(y.clone());
            current = y;
        }
        std::hint::black_box(&layer_caches);
        std::hint::black_box(&activations);
        current
    }
}

/// An LSTM cell whose forward step replicates the pre-optimisation
/// `forward` → `forward_cached` chain: fresh gate vectors and a cache holding
/// copies of the input and both previous states, every step.
pub struct RefLstm {
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
    hidden: usize,
}

/// The (h, c) state pair of [`RefLstm`].
pub struct RefState {
    /// Hidden state.
    pub h: Vec<f64>,
    /// Cell state.
    pub c: Vec<f64>,
}

impl RefLstm {
    /// Builds a cell with the standard Xavier/forget-bias initialisation.
    pub fn new(input: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        let w_ih = Tensor::xavier(4 * hidden, input, rng);
        let w_hh = Tensor::xavier(4 * hidden, hidden, rng);
        let mut bias = Tensor::zeros(4 * hidden, 1);
        for i in hidden..2 * hidden {
            bias.set(i, 0, 1.0);
        }
        RefLstm { w_ih, w_hh, bias, hidden }
    }

    /// One allocating forward step, cache clones included.
    pub fn forward(&self, x: &[f64], state: &RefState) -> RefState {
        let h = self.hidden;
        let mut pre = naive_matvec(&self.w_ih, x);
        let rec = naive_matvec(&self.w_hh, &state.h);
        for (p, (r, b)) in pre.iter_mut().zip(rec.iter().zip(self.bias.data())) {
            *p += r + b;
        }
        let mut gate_i = vec![0.0; h];
        let mut gate_f = vec![0.0; h];
        let mut gate_g = vec![0.0; h];
        let mut gate_o = vec![0.0; h];
        for k in 0..h {
            gate_i[k] = sigmoid(pre[k]);
            gate_f[k] = sigmoid(pre[h + k]);
            gate_g[k] = pre[2 * h + k].tanh();
            gate_o[k] = sigmoid(pre[3 * h + k]);
        }
        let mut c_new = vec![0.0; h];
        let mut h_new = vec![0.0; h];
        for k in 0..h {
            c_new[k] = gate_f[k] * state.c[k] + gate_i[k] * gate_g[k];
            h_new[k] = gate_o[k] * c_new[k].tanh();
        }
        // The pre-optimisation cache copied the input and both previous
        // states on every step.
        let cache = (
            x.to_vec(),
            state.h.clone(),
            state.c.clone(),
            gate_i,
            gate_f,
            gate_o,
            gate_g,
            c_new.clone(),
        );
        std::hint::black_box(&cache);
        RefState { h: h_new, c: c_new }
    }
}

/// The pre-optimisation Corki policy-head inference: same network shapes as
/// the live `CorkiTrajectoryPolicy`, driven through the allocating reference
/// layers.
pub struct RefCorkiHead {
    encoder: RefMlp,
    lstm: RefLstm,
    waypoint_head: RefMlp,
    gripper_head: RefMlp,
    mask_embedding: Vec<f64>,
    token_window: VecDeque<Vec<f64>>,
    horizon: usize,
    action_scale: f64,
}

impl RefCorkiHead {
    /// Builds the reference head for the given prediction horizon.
    pub fn new(horizon: usize, rng: &mut StdRng) -> Self {
        RefCorkiHead {
            encoder: RefMlp::new(&[OBSERVATION_DIM + 1, 64, TOKEN_DIM], Activation::Tanh, rng),
            lstm: RefLstm::new(TOKEN_DIM, HIDDEN_DIM, rng),
            waypoint_head: RefMlp::new(
                &[HIDDEN_DIM + CLOSE_LOOP_DIM, 96, 6 * horizon],
                Activation::Tanh,
                rng,
            ),
            gripper_head: RefMlp::new(
                &[HIDDEN_DIM + CLOSE_LOOP_DIM, 32, horizon],
                Activation::Tanh,
                rng,
            ),
            mask_embedding: (0..TOKEN_DIM).map(|_| rng.gen_range(-0.1..0.1)).collect(),
            token_window: VecDeque::new(),
            horizon,
            action_scale: 0.02,
        }
    }

    fn push_token(&mut self, token: Vec<f64>) {
        if self.token_window.len() == TOKEN_WINDOW {
            self.token_window.pop_front();
        }
        self.token_window.push_back(token);
    }

    /// One full allocating plan: push `skipped` mask embeddings (the frames
    /// dropped while the previous trajectory executed), encode the fresh
    /// frame, run the LSTM over the window, decode the heads and fit the
    /// output trajectory with per-dimension sample buffers.
    pub fn plan(&mut self, observation: &Observation, skipped: usize) -> Trajectory {
        // Pre-optimisation mask handling: one fresh `to_vec()` per frame.
        for _ in 0..skipped {
            let mask = self.mask_embedding.to_vec();
            self.push_token(mask);
        }
        // Encode (old-style input assembly into a fresh Vec).
        let f = observation.to_features();
        let mut input = Vec::with_capacity(OBSERVATION_DIM + 1);
        input.extend_from_slice(&f);
        input.push(observation.instruction_embedding());
        let token = self.encoder.forward(&input);
        self.push_token(token);

        // LSTM over the window, one fresh state per step.
        let mut state = RefState { h: vec![0.0; HIDDEN_DIM], c: vec![0.0; HIDDEN_DIM] };
        for token in &self.token_window {
            state = self.lstm.forward(token, &state);
        }

        // Decode (fresh concat buffer, allocating head forwards).
        let close_loop_feature = vec![0.0; CLOSE_LOOP_DIM];
        let mut head_input = Vec::with_capacity(HIDDEN_DIM + CLOSE_LOOP_DIM);
        head_input.extend_from_slice(&state.h);
        head_input.extend_from_slice(&close_loop_feature);
        let raw = self.waypoint_head.forward(&head_input);
        let gripper_logits = self.gripper_head.forward(&head_input);
        let mut offsets = Vec::with_capacity(self.horizon);
        let mut cumulative = [0.0; 6];
        for step in 0..self.horizon {
            for d in 0..6 {
                cumulative[d] += raw[step * 6 + d] * self.action_scale;
            }
            offsets.push(cumulative);
        }

        // Assemble waypoints and fit with per-dimension sample buffers.
        let current = &observation.end_effector;
        let base = current.to_array6();
        let mut waypoints = Vec::with_capacity(offsets.len() + 1);
        waypoints.push(*current);
        for (offset, logit) in offsets.iter().zip(&gripper_logits) {
            let mut values = [0.0; 6];
            for d in 0..6 {
                values[d] = base[d] + offset[d];
            }
            let gripper =
                if sigmoid(*logit) >= 0.5 { GripperState::Closed } else { GripperState::Open };
            waypoints.push(EePose::from_array6(values, gripper));
        }
        reference_fit_waypoints(&waypoints, CONTROL_STEP)
    }
}

/// The pre-optimisation trajectory fit: one `Vec<(f64, f64)>` sample buffer
/// per dimension plus a freshly collected gripper schedule.
pub fn reference_fit_waypoints(waypoints: &[EePose], step: f64) -> Trajectory {
    assert!(waypoints.len() >= 2 && step > 0.0, "reference fit needs a valid waypoint sequence");
    let mut dims = [CubicPoly::zero(); 6];
    for (dim, poly) in dims.iter_mut().enumerate() {
        let samples: Vec<(f64, f64)> = waypoints
            .iter()
            .enumerate()
            .map(|(i, w)| (i as f64 * step, w.to_array6()[dim]))
            .collect();
        *poly = CubicPoly::fit_least_squares(&samples);
    }
    let gripper_schedule = waypoints[1..].iter().map(|w| w.gripper).collect();
    Trajectory::from_parts(dims, gripper_schedule, step).expect("valid by construction")
}

/// The pre-optimisation task-space dynamics: every one of the seven mass-
/// matrix solves refactorises the matrix from scratch (`solve_cholesky` per
/// column), exactly as `TaskSpaceDynamics::compute` did before the shared
/// factorisation.
pub fn reference_task_space_torque(
    robot: &RobotModel,
    state: &JointState,
    reference: &TaskReference,
    damping: f64,
    controller: &TaskSpaceController,
) -> Vec<f64> {
    let fk = robot.forward_kinematics(&state.positions);
    let jacobian = robot.jacobian_from_fk(&fk);
    let joint_mass_matrix = robot.mass_matrix(&state.positions);
    let joint_bias = robot.bias_forces(&state.positions, &state.velocities);
    let jdot_qdot = robot.jacobian_dot_qdot(&state.positions, &state.velocities);

    let jt = jacobian.transpose();
    let n = robot.dof();
    let mut minv_jt = DMat::zeros(n, 6);
    for col in 0..6 {
        let rhs: DVec = (0..n).map(|row| jt[(row, col)]).collect();
        let x = joint_mass_matrix.solve_cholesky(&rhs).expect("mass matrix is positive definite");
        for row in 0..n {
            minv_jt[(row, col)] = x[row];
        }
    }
    let mut lambda_inv = jacobian.matrix().mul_mat(&minv_jt);
    for i in 0..6 {
        lambda_inv[(i, i)] += damping;
    }
    let task_mass_matrix = lambda_inv.inverse().expect("damped inertia is invertible");

    let minv_h = joint_mass_matrix
        .solve_cholesky(&DVec::from_slice(&joint_bias))
        .expect("mass matrix is positive definite");
    let j_minv_h = jacobian.matrix().mul_vec(&minv_h);
    let mut residual = DVec::zeros(6);
    for i in 0..6 {
        residual[i] = j_minv_h[i] - jdot_qdot[i];
    }
    let hx_vec = task_mass_matrix.mul_vec(&residual);
    let mut task_bias = [0.0; 6];
    for (i, t) in task_bias.iter_mut().enumerate() {
        *t = hx_vec[i];
    }

    let (linear_velocity, angular_velocity) = jacobian.mul_qdot(&state.velocities);
    let end_effector =
        EndEffectorState { pose: fk.end_effector, linear_velocity, angular_velocity };
    let model = TaskSpaceModel {
        jacobian,
        joint_mass_matrix,
        joint_bias,
        task_mass_matrix,
        task_bias,
        jdot_qdot,
        end_effector: end_effector.clone(),
    };
    controller.compute_torque_with_model(robot, state, reference, &end_effector, &model)
}

/// Default gains used by the control-kernel benchmarks.
pub fn bench_controller() -> TaskSpaceController {
    TaskSpaceController::new(ControllerGains::default())
}

/// Deterministic RNG for building reference networks.
pub fn bench_rng() -> StdRng {
    StdRng::seed_from_u64(0xC0121)
}
