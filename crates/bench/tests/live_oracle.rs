//! The DES is the oracle for the live path: running the committed live
//! scenario over real processes and shared memory must agree with
//! simulating the very same cells.
//!
//! The live robots sleep out exactly the durations the simulator
//! schedules (control pacing, modelled uplink, batched service), so the
//! latency columns are dominated by modelled time and the two paths agree
//! far tighter than the tolerance below on an idle machine.  The
//! tolerance is generous — ±30 % — because CI hosts time-slice the whole
//! robot/worker/coordinator fleet onto one or two cores and every
//! scheduling delay lands on top of the modelled sleeps, always in the
//! slower/later direction.

use corki::scenario::{scenario_fingerprint, ScenarioSpec};
use corki_serve::LiveReport;
use serde::Deserialize;
use std::path::PathBuf;
use std::process::Command;

/// Relative disagreement allowed between the live run and the simulator.
const TOLERANCE: f64 = 0.30;

/// CI-footprint clamps applied to the committed 8-robot scenario: fewer
/// processes and a shorter horizon, the exact same code paths.
const LIVE_ROBOTS: usize = 4;
const LIVE_FRAMES: usize = 24;

fn live_scenario_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("scenarios")
        .join("live_fifo_8robots_48frames.json")
}

fn relative_gap(live: f64, sim: f64) -> f64 {
    (live - sim).abs() / sim.abs().max(1e-9)
}

#[test]
fn live_run_agrees_with_the_des_oracle_within_tolerance() {
    let path = live_scenario_path();
    let json_out =
        std::env::temp_dir().join(format!("corki-live-oracle-{}.json", std::process::id()));

    // Live: lower the clamped scenario onto real processes over shared
    // memory via the experiments binary (which hosts the child roles).
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .arg("serve")
        .arg("--scenario")
        .arg(&path)
        .arg("--robots")
        .arg(LIVE_ROBOTS.to_string())
        .arg("--frames")
        .arg(LIVE_FRAMES.to_string())
        .arg("--json")
        .arg(&json_out)
        .output()
        .expect("experiments binary runs");
    assert!(
        output.status.success(),
        "live run failed:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let raw = std::fs::read_to_string(&json_out).expect("live JSON report written");
    let _ = std::fs::remove_file(&json_out);
    let value: serde_json::Value = serde_json::from_str(&raw).expect("live JSON parses");
    let reports = Vec::<LiveReport>::from_value(
        value.as_object().expect("JSON object").get("serve").expect("serve section"),
    )
    .expect("live reports deserialize");
    assert_eq!(reports.len(), 1, "the live scenario expands to one cell");
    let live = &reports[0];

    // Oracle: simulate the very same clamped cells in-process.
    let spec =
        ScenarioSpec::from_json(&std::fs::read_to_string(&path).expect("committed scenario"))
            .expect("committed scenario parses");
    let cells = corki::fleet::smoke_scale_cells(
        spec.expand().expect("committed scenario expands"),
        LIVE_ROBOTS,
        LIVE_FRAMES,
    );
    assert_eq!(cells.len(), 1);
    let cell = &corki::fleet::scenario_sweep_detailed(&cells)[0];
    let sim = &cell.row;

    // Provenance: the live row must fingerprint-match the simulated cell,
    // so bench history can pair the two by content.
    assert_eq!(live.fingerprint, scenario_fingerprint(&cells));

    // Completeness: every robot finished every frame, and the offloaded
    // plan count is a live-vs-sim exact match (it is structural: frames /
    // plan length, no timing involved).
    assert_eq!(live.robots_completed, LIVE_ROBOTS);
    assert_eq!(live.total_frames, LIVE_ROBOTS * LIVE_FRAMES);
    assert_eq!((live.row.robots, live.row.servers), (sim.robots, sim.servers));

    // Agreement: throughput and the warm-up-trimmed plan latencies.
    assert!(
        relative_gap(live.row.throughput_steps_per_s, sim.throughput_steps_per_s) < TOLERANCE,
        "throughput disagrees: live {} vs DES {}",
        live.row.throughput_steps_per_s,
        sim.throughput_steps_per_s,
    );
    assert!(
        relative_gap(live.row.mean_plan_latency_ms, sim.mean_plan_latency_ms) < TOLERANCE,
        "mean plan latency disagrees: live {} vs DES {}",
        live.row.mean_plan_latency_ms,
        sim.mean_plan_latency_ms,
    );
    assert!(
        relative_gap(live.row.p99_plan_latency_ms, sim.p99_plan_latency_ms) < TOLERANCE,
        "p99 plan latency disagrees: live {} vs DES {}",
        live.row.p99_plan_latency_ms,
        sim.p99_plan_latency_ms,
    );

    // Telemetry: both paths report the same six-stage taxonomy, and each
    // live stage mean lands within the oracle tolerance of its DES
    // counterpart.  Stage means are modelled-time dominated exactly like
    // the plan latencies; an absolute 2 ms floor absorbs the stages whose
    // modelled time is (near) zero, where real scheduling noise is all
    // that remains on the live side.
    const STAGE_FLOOR_NS: f64 = 2_000_000.0;
    assert!(live.telemetry_drains >= 1, "the coordinator must drain telemetry at least once");
    assert_eq!(live.telemetry.stages.len(), cell.telemetry.stages.len());
    for (live_stage, sim_stage) in live.telemetry.stages.iter().zip(&cell.telemetry.stages) {
        assert_eq!(live_stage.stage, sim_stage.stage, "stage taxonomy must match in order");
        assert!(live_stage.samples > 0, "{}: the live run never sampled it", live_stage.stage);
        let gap = (live_stage.mean_ns - sim_stage.mean_ns).abs();
        let allowed = (TOLERANCE * sim_stage.mean_ns).max(STAGE_FLOOR_NS);
        assert!(
            gap < allowed,
            "{} disagrees: live mean {} ns vs DES {} ns (gap {} ns past the {} ns allowance)",
            live_stage.stage,
            live_stage.mean_ns,
            sim_stage.mean_ns,
            gap,
            allowed,
        );
    }

    // The live-only measurements are sane: the transit hops were actually
    // sampled, and the Lithos residual (e2e minus modelled stage totals)
    // is small next to the plan latency itself.
    assert!(live.offloaded_plans > 0);
    assert!(live.transit.round_trip.samples > 0, "transit hops must be measured");
    assert!(live.transit.round_trip.mean_ns > 0.0);
    assert!(
        live.ipc_overhead_ms.abs() < TOLERANCE * sim.mean_plan_latency_ms,
        "IPC residual {} ms is implausibly large next to a {} ms mean plan latency",
        live.ipc_overhead_ms,
        sim.mean_plan_latency_ms,
    );
}
