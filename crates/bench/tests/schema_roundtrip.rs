//! Serde round-trip and schema tests for the committed `BENCH_*.json`
//! reports and the fleet summary JSON.

use corki_bench::micro::BenchReport;
use corki_system::fleet::{FleetConfig, FleetOutcome, FleetSimulator, SchedulerKind};
use corki_system::Variant;
use std::path::PathBuf;

fn workspace_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

/// Loads a committed report, re-serialises it and compares: the canonical
/// JSON layout must be stable so `--compare` keeps working across PRs.
fn assert_report_roundtrips(name: &str) {
    let path = workspace_file(name);
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report = BenchReport::from_json(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
    report.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    // Struct-level round trip is exact …
    let reserialized = report.to_json();
    let reparsed = BenchReport::from_json(&reserialized).expect("re-serialised report parses");
    assert_eq!(reparsed, report, "{name}: serde round trip changed the report");
    // … and the canonical pretty printing reproduces the committed bytes.
    assert_eq!(
        reserialized.trim_end(),
        json.trim_end(),
        "{name}: re-serialisation must reproduce the committed file"
    );
}

#[test]
fn bench_baseline_round_trips_through_the_schema() {
    assert_report_roundtrips("BENCH_baseline.json");
}

#[test]
fn bench_fleet_round_trips_through_the_schema() {
    assert_report_roundtrips("BENCH_fleet.json");
}

#[test]
fn fleet_outcome_json_round_trips() {
    let mut config = FleetConfig::paper_defaults(Variant::CorkiFixed(5), 4, 7);
    config.frames_per_robot = 40;
    config.set_scheduler(SchedulerKind::DynamicBatch { max_batch: 2, timeout_ms: 10.0 });
    config.record_event_log = true;
    let outcome = FleetSimulator::new(config).run();
    let json = serde_json::to_string_pretty(&outcome).expect("outcome serialises");
    let parsed: FleetOutcome = serde_json::from_str(&json).expect("outcome parses back");
    assert_eq!(parsed, outcome, "fleet outcome must survive a serde round trip");
    assert_eq!(parsed.summary.robots, 4);
    assert!(!parsed.event_log.is_empty());
}

/// Every label in the committed `BENCH_fleet.json` rows must parse back
/// through the canonical `FromStr` implementation of its axis type and
/// re-display identically — labels cannot drift from the enum definitions
/// because they *are* the enum definitions.
#[test]
fn bench_fleet_labels_round_trip_through_canonical_parsers() {
    use corki_system::fleet::PoolSchedule;
    use corki_system::scenario::CompositionLabel;
    use corki_system::scenario::VariantMix;
    use corki_system::RoutingPolicy;
    let json = std::fs::read_to_string(workspace_file("BENCH_fleet.json")).expect("read report");
    let report = BenchReport::from_json(&json).expect("BENCH_fleet.json parses");
    assert!(!report.fleet_rows.is_empty());
    for row in &report.fleet_rows {
        // `PoolSchedule` covers uniform pools ("fifo") and mixed pools
        // ("fifo+stf") with one grammar, so every label the engine can
        // print reparses here.
        let scheduler: PoolSchedule =
            row.scheduler.parse().unwrap_or_else(|e| panic!("{}: {e}", row.name));
        assert_eq!(scheduler.to_string(), row.scheduler, "{}", row.name);
        let routing: RoutingPolicy =
            row.routing.parse().unwrap_or_else(|e| panic!("{}: {e}", row.name));
        assert_eq!(routing.to_string(), row.routing, "{}", row.name);
        let composition: CompositionLabel =
            row.composition.parse().unwrap_or_else(|e| panic!("{}: {e}", row.name));
        assert_eq!(composition.to_string(), row.composition, "{}", row.name);
        let variant: VariantMix =
            row.variant.parse().unwrap_or_else(|e| panic!("{}: {e}", row.name));
        assert_eq!(variant.to_string(), row.variant, "{}", row.name);
    }
}

/// The report schema parses strictly: a typo'd or extraneous key fails
/// loudly instead of silently deserialising with defaults.
#[test]
fn typod_report_keys_fail_loudly() {
    let json = std::fs::read_to_string(workspace_file("BENCH_fleet.json")).expect("read report");
    // A misspelled required key reads as that key missing.
    let renamed = json.replacen("\"schema_version\"", "\"schema_versionn\"", 1);
    let err = BenchReport::from_json(&renamed).expect_err("typo'd key must not parse");
    assert!(err.contains("schema_version") || err.contains("unknown field"), "{err}");
    // An extra unknown key is rejected even with every real key present.
    let extended = json.replacen('{', "{\n  \"schema_versionn\": 3,", 1);
    let err = BenchReport::from_json(&extended).expect_err("extra key must not parse");
    assert!(err.contains("unknown field `schema_versionn`"), "{err}");
}
