//! Serde round-trip and schema tests for the committed `BENCH_*.json`
//! reports and the fleet summary JSON.

use corki_bench::micro::BenchReport;
use corki_system::fleet::{FleetConfig, FleetOutcome, FleetSimulator, SchedulerKind};
use corki_system::Variant;
use std::path::PathBuf;

fn workspace_file(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

/// Loads a committed report, re-serialises it and compares: the canonical
/// JSON layout must be stable so `--compare` keeps working across PRs.
fn assert_report_roundtrips(name: &str) {
    let path = workspace_file(name);
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let report = BenchReport::from_json(&json).unwrap_or_else(|e| panic!("{name}: {e}"));
    report.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    // Struct-level round trip is exact …
    let reserialized = report.to_json();
    let reparsed = BenchReport::from_json(&reserialized).expect("re-serialised report parses");
    assert_eq!(reparsed, report, "{name}: serde round trip changed the report");
    // … and the canonical pretty printing reproduces the committed bytes.
    assert_eq!(
        reserialized.trim_end(),
        json.trim_end(),
        "{name}: re-serialisation must reproduce the committed file"
    );
}

#[test]
fn bench_baseline_round_trips_through_the_schema() {
    assert_report_roundtrips("BENCH_baseline.json");
}

#[test]
fn bench_fleet_round_trips_through_the_schema() {
    assert_report_roundtrips("BENCH_fleet.json");
}

#[test]
fn fleet_outcome_json_round_trips() {
    let mut config = FleetConfig::paper_defaults(Variant::CorkiFixed(5), 4, 7);
    config.frames_per_robot = 40;
    config.set_scheduler(SchedulerKind::DynamicBatch { max_batch: 2, timeout_ms: 10.0 });
    config.record_event_log = true;
    let outcome = FleetSimulator::new(config).run();
    let json = serde_json::to_string_pretty(&outcome).expect("outcome serialises");
    let parsed: FleetOutcome = serde_json::from_str(&json).expect("outcome parses back");
    assert_eq!(parsed, outcome, "fleet outcome must survive a serde round trip");
    assert_eq!(parsed.summary.robots, 4);
    assert!(!parsed.event_log.is_empty());
}
