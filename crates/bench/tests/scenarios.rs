//! Guard rails for the committed scenario files under
//! `crates/bench/scenarios/`: every file must parse (strictly), validate,
//! expand and smoke-run, stay in canonical serialization, and be wired into
//! the bench suite — so committed specs can never rot.

use corki::scenario::ScenarioSpec;
use corki_bench::micro::FLEET_SCENARIO_SOURCES;
use corki_system::fleet::FleetSimulator;
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn committed_scenarios() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios directory exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
        .map(|path| {
            let stem = path.file_stem().expect("file stem").to_string_lossy().into_owned();
            let json = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            (stem, json)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no committed scenarios found");
    files
}

#[test]
fn every_committed_scenario_parses_expands_and_smoke_runs() {
    for (stem, json) in committed_scenarios() {
        let spec = ScenarioSpec::from_json(&json).unwrap_or_else(|e| panic!("{stem}.json: {e}"));
        assert_eq!(spec.name, stem, "scenario name must match its file stem");
        let cells = spec.expand().unwrap_or_else(|e| panic!("{stem}.json does not expand: {e}"));
        assert!(!cells.is_empty(), "{stem}.json expands to no cells");
        for cell in &cells {
            let outcome = FleetSimulator::new(cell.config.clone()).run();
            assert_eq!(outcome.summary.robots, cell.robots, "{stem}.json");
            for (index, robot) in outcome.robots.iter().enumerate() {
                // A robot churned out of the run mid-horizon completes fewer
                // frames; everyone else must finish the full horizon.
                let leaves_early = spec
                    .faults
                    .as_ref()
                    .and_then(|faults| faults.churn_of(index))
                    .is_some_and(|churn| churn.leave_at_ms.is_some());
                if leaves_early {
                    assert!(robot.frames <= spec.frames_per_robot, "{stem}.json");
                } else {
                    assert_eq!(robot.frames, spec.frames_per_robot, "{stem}.json");
                }
            }
        }
    }
}

#[test]
fn committed_scenarios_are_canonical_json() {
    for (stem, json) in committed_scenarios() {
        let spec = ScenarioSpec::from_json(&json).unwrap_or_else(|e| panic!("{stem}.json: {e}"));
        assert_eq!(
            spec.to_json().trim_end(),
            json.trim_end(),
            "{stem}.json is not in canonical form; rewrite it with ScenarioSpec::to_json"
        );
    }
}

#[test]
fn every_committed_scenario_is_wired_into_the_bench_suite() {
    let on_disk: Vec<String> = committed_scenarios()
        .into_iter()
        .map(|(_, json)| ScenarioSpec::from_json(&json).expect("valid scenario").name)
        .collect();
    let mut baked: Vec<String> = FLEET_SCENARIO_SOURCES
        .iter()
        .map(|json| ScenarioSpec::from_json(json).expect("baked-in scenario parses").name)
        .collect();
    baked.sort();
    assert_eq!(
        on_disk, baked,
        "crates/bench/scenarios/*.json and micro::FLEET_SCENARIO_SOURCES must list the same \
         scenarios"
    );
}
