//! Benchmarks of the policy layer: the learned LSTM heads (baseline action
//! head and Corki trajectory head) and the oracle policies used by the large
//! evaluation sweeps.

use corki_math::Vec3;
use corki_policy::{
    BaselineFramePolicy, CorkiTrajectoryPolicy, ManipulationPolicy, NoiseModel, Observation,
    OracleTrajectoryPolicy, PlanRequest,
};
use corki_trajectory::{EePose, GripperState};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn request() -> PlanRequest {
    let observation = Observation {
        end_effector: EePose::new(Vec3::new(0.35, 0.0, 0.3), Vec3::ZERO, GripperState::Open),
        object_position: Vec3::new(0.45, -0.1, 0.02),
        ..Observation::default()
    };
    let expert_future = (1..=9)
        .map(|k| {
            EePose::new(
                Vec3::new(0.35 + 0.01 * k as f64, -0.01 * k as f64, 0.3),
                Vec3::ZERO,
                GripperState::Open,
            )
        })
        .collect();
    PlanRequest {
        observation,
        expert_future,
        close_loop_observations: Vec::new(),
        steps_since_last_plan: 1,
    }
}

fn bench_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_inference");
    let req = request();

    group.bench_function("baseline_lstm_head", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = BaselineFramePolicy::new(&mut rng);
        b.iter(|| black_box(policy.plan(black_box(&req))))
    });
    group.bench_function("corki_trajectory_head", |b| {
        let mut rng = StdRng::seed_from_u64(0);
        let mut policy = CorkiTrajectoryPolicy::new(9, &mut rng);
        b.iter(|| black_box(policy.plan(black_box(&req))))
    });
    group.bench_function("oracle_trajectory_policy", |b| {
        let mut policy = OracleTrajectoryPolicy::new(9, NoiseModel::default(), 1);
        b.iter(|| black_box(policy.plan(black_box(&req))))
    });
    group.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
