//! Benchmarks of the end-to-end pipeline simulation (Fig. 13/14 generator)
//! and of a full simulator job rollout (Tables 1/2 generator).

use corki::VariantSetup;
use corki_sim::evaluation::{run_job, EvalConfig};
use corki_system::{PipelineConfig, PipelineSimulator, Variant};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");

    for variant in [Variant::RoboFlamingo, Variant::CorkiFixed(5), Variant::CorkiAdaptive] {
        let name = variant.name();
        let mut config = PipelineConfig::paper_defaults(variant);
        config.num_frames = 300;
        let sim = PipelineSimulator::new(config);
        group.bench_function(format!("simulate_300_frames/{name}"), |b| {
            b.iter(|| black_box(sim.simulate()))
        });
    }

    group.bench_function("one_five_task_job/Corki-5", |b| {
        let setup = VariantSetup::new(Variant::CorkiFixed(5));
        let env = setup.build_environment(1);
        let config = EvalConfig { num_jobs: 1, unseen: false, seed: 1 };
        b.iter(|| {
            let mut policy = setup.build_policy(1);
            black_box(run_job(&env, policy.as_mut(), &config, 0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
