//! Benchmarks of the discrete-event fleet-serving runtime: how fast the
//! engine simulates fleets of different sizes and scheduling disciplines.
//!
//! The canonical shapes come from the committed scenario files under
//! `crates/bench/scenarios/` (the same specs behind `BENCH_fleet.json`);
//! a fleet-size scaling series rides along via a scenario with a
//! `robot_counts` axis.

use corki::scenario::ScenarioBuilder;
use corki::{SchedulerKind, Variant};
use corki_bench::micro::fleet_scenario_cells;
use corki_system::fleet::FleetSimulator;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_serving");

    let scaling = ScenarioBuilder::new("scaling")
        .seed(2024)
        .frames_per_robot(120)
        .group(Variant::CorkiFixed(5), 1)
        .default_servers(1, SchedulerKind::Fifo)
        .robot_counts(vec![1, 8, 16])
        .build()
        .expect("scaling scenario is valid");
    for cell in scaling.expand().expect("scaling scenario expands") {
        let robots = cell.robots;
        let sim = FleetSimulator::new(cell.config);
        group.bench_function(format!("fifo/corki5_{robots}robots_120frames"), |b| {
            b.iter(|| black_box(sim.run()))
        });
    }

    for (name, cell) in fleet_scenario_cells() {
        let case = name.trim_start_matches("fleet_serving/").to_owned();
        let sim = FleetSimulator::new(cell.config);
        group.bench_function(case, |b| b.iter(|| black_box(sim.run())));
    }

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
