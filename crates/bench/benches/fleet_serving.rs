//! Benchmarks of the discrete-event fleet-serving runtime: how fast the
//! engine simulates fleets of different sizes and scheduling disciplines.

use corki::fleet::FleetComposition;
use corki_system::fleet::{FleetConfig, FleetSimulator};
use corki_system::{RoutingPolicy, SchedulerKind, Variant};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_serving");

    for robots in [1usize, 8, 16] {
        let mut config = FleetConfig::paper_defaults(Variant::CorkiFixed(5), robots, 2024);
        config.frames_per_robot = 120;
        let sim = FleetSimulator::new(config);
        group.bench_function(format!("fifo/corki5_{robots}robots_120frames"), |b| {
            b.iter(|| black_box(sim.run()))
        });
    }

    let mut config = FleetConfig::paper_defaults(Variant::CorkiFixed(5), 8, 2024);
    config.frames_per_robot = 120;
    config.set_scheduler(SchedulerKind::DynamicBatch { max_batch: 4, timeout_ms: 15.0 });
    let sim = FleetSimulator::new(config);
    group.bench_function("batch4/corki5_8robots_120frames", |b| b.iter(|| black_box(sim.run())));

    // The heterogeneous shapes: a routed two-server pool and a mixed fleet
    // with a Jetson board in every second robot.
    let mut config = FleetConfig::paper_defaults(Variant::CorkiFixed(5), 8, 2024).with_pool(2);
    config.frames_per_robot = 120;
    config.routing = RoutingPolicy::LeastQueueDepth;
    let sim = FleetSimulator::new(config);
    group.bench_function("pool2_lqd/corki5_8robots_120frames", |b| b.iter(|| black_box(sim.run())));

    let mut config = FleetConfig::paper_defaults(Variant::CorkiFixed(5), 8, 2024);
    config.frames_per_robot = 120;
    FleetComposition::jetson_every_second().apply(&mut config);
    let sim = FleetSimulator::new(config);
    group.bench_function("mixed_jetson_v100/corki5_8robots_120frames", |b| {
        b.iter(|| black_box(sim.run()))
    });

    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
