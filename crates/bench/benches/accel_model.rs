//! Benchmarks of the accelerator analytical model: the §4.2 ablation design
//! points and the ACE decision path (which the paper bounds at "< 100 FLOPs"
//! per control cycle).

use corki_accel::ace::{representative_joint_trace, AceConfig, AceState};
use corki_accel::{AcceleratorConfig, AcceleratorModel, OpCounts};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_accel_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel_model");
    let ops = OpCounts::default();

    for (name, config) in [
        ("unoptimized", AcceleratorConfig::unoptimized()),
        ("data_reuse", AcceleratorConfig::reuse_only()),
        ("reuse_and_pipelining", AcceleratorConfig::default()),
    ] {
        let model = AcceleratorModel::new(config, ops);
        group.bench_function(format!("latency/{name}"), |b| {
            b.iter(|| black_box(model.control_latency_with_skips(black_box(0.51))))
        });
    }

    group.bench_function("ace_decision_per_cycle", |b| {
        let trace = representative_joint_trace(64);
        b.iter(|| {
            let mut ace = AceState::new(AceConfig::default());
            for q in &trace {
                black_box(ace.should_update(black_box(q)));
            }
            black_box(ace.statistics())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_accel_model);
criterion_main!(benches);
