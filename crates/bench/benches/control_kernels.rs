//! Benchmarks of the TS-CTC computing blocks the Corki accelerator targets
//! (forward kinematics, Jacobian, mass matrix, bias forces and the full
//! control cycle) on the host CPU. These are the software counterparts of the
//! per-block latencies the §4.2 ablation reasons about.

use corki_robot::{
    panda, ControllerGains, JointState, TaskReference, TaskSpaceController, TaskSpaceDynamics,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn configuration() -> Vec<f64> {
    panda::PANDA_HOME.iter().enumerate().map(|(i, q)| q + 0.05 * i as f64).collect()
}

fn bench_control_kernels(c: &mut Criterion) {
    let robot = panda::panda_model();
    let q = configuration();
    let qd = vec![0.1; 7];
    let qdd = vec![0.2; 7];
    let mut group = c.benchmark_group("control_kernels");

    group.bench_function("forward_kinematics", |b| {
        b.iter(|| black_box(robot.forward_kinematics(black_box(&q))))
    });
    group.bench_function("jacobian", |b| b.iter(|| black_box(robot.jacobian(black_box(&q)))));
    group.bench_function("mass_matrix_crba", |b| {
        b.iter(|| black_box(robot.mass_matrix(black_box(&q))))
    });
    group.bench_function("inverse_dynamics_rnea", |b| {
        b.iter(|| black_box(robot.inverse_dynamics(black_box(&q), black_box(&qd), black_box(&qdd))))
    });
    group.bench_function("task_space_model", |b| {
        let tsd = TaskSpaceDynamics::default();
        b.iter(|| black_box(tsd.compute(&robot, black_box(&q), black_box(&qd))))
    });
    group.bench_function("full_ts_ctc_cycle", |b| {
        let controller = TaskSpaceController::new(ControllerGains::default());
        let state = JointState::new(q.clone(), qd.clone());
        let fk = robot.forward_kinematics(&q);
        let reference = TaskReference::hold(fk.end_effector);
        b.iter(|| black_box(controller.compute_torque(&robot, black_box(&state), &reference)))
    });
    group.finish();
}

criterion_group!(benches, bench_control_kernels);
criterion_main!(benches);
