//! Benchmarks of the Corki algorithm primitives: fitting the cubic
//! trajectory to predicted waypoints, sampling it for the controller, and the
//! Algorithm 1 adaptive-length decision (which the paper bounds at
//! "< 500 FLOPs").

use corki_math::Vec3;
use corki_trajectory::waypoints::{adaptive_trajectory_length, AdaptiveLengthConfig};
use corki_trajectory::{EePose, GripperState, Trajectory, CONTROL_STEP};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn waypoints(n: usize) -> Vec<EePose> {
    (0..n)
        .map(|i| {
            EePose::new(
                Vec3::new(0.3 + 0.01 * i as f64, 0.002 * (i * i) as f64, 0.25),
                Vec3::new(0.0, 0.0, 0.01 * i as f64),
                if i > n / 2 { GripperState::Closed } else { GripperState::Open },
            )
        })
        .collect()
}

fn bench_trajectory(c: &mut Criterion) {
    let mut group = c.benchmark_group("trajectory");
    let wps = waypoints(10);

    group.bench_function("fit_9_step_trajectory", |b| {
        b.iter(|| black_box(Trajectory::fit_waypoints(black_box(&wps), CONTROL_STEP).unwrap()))
    });

    let trajectory = Trajectory::fit_waypoints(&wps, CONTROL_STEP).unwrap();
    group.bench_function("sample_full_reference", |b| {
        b.iter(|| black_box(trajectory.sample_full(black_box(0.1))))
    });

    group.bench_function("algorithm1_adaptive_length", |b| {
        let start = wps[0];
        let future = &wps[1..];
        let config = AdaptiveLengthConfig::default();
        b.iter(|| black_box(adaptive_trajectory_length(&start, black_box(future), &config)))
    });
    group.finish();
}

criterion_group!(benches, bench_trajectory);
criterion_main!(benches);
