//! Start/abort synchronisation shared by every process of a live run, and
//! the wall-clock sleep helpers the loops are paced with.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use corki_ipc::monotonic_ns;

use crate::proto::state;
use crate::LiveError;

/// How long a child waits for the coordinator to publish the run epoch
/// before giving up.
pub const START_TIMEOUT: Duration = Duration::from_secs(30);

/// A short nap between polls.  The modelled quantities are tens of
/// milliseconds, so a fraction of a millisecond of poll latency is noise —
/// while busy-spinning on the host's single core would steal the timeslice
/// the other ten processes need to make progress at all.
pub const POLL_NAP: Duration = Duration::from_micros(200);

/// Increments the segment's ready counter: this process is attached and
/// waiting for the epoch.
pub fn announce_ready(ready: &AtomicU64) {
    ready.fetch_add(1, Ordering::AcqRel);
}

/// Blocks until the coordinator flips the run state to
/// [`state::RUNNING`], then returns the published epoch.
pub fn wait_for_running(run_state: &AtomicU64, start_ns: &AtomicU64) -> Result<u64, LiveError> {
    let deadline = std::time::Instant::now() + START_TIMEOUT;
    loop {
        match run_state.load(Ordering::Acquire) {
            state::RUNNING => return Ok(start_ns.load(Ordering::Acquire)),
            state::ABORT => return Err(LiveError::Aborted),
            _ => {}
        }
        if std::time::Instant::now() > deadline {
            return Err(LiveError::Protocol("timed out waiting for the run epoch".into()));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Whether the coordinator has raised the abort flag.
pub fn aborted(run_state: &AtomicU64) -> bool {
    run_state.load(Ordering::Acquire) == state::ABORT
}

/// Sleeps until the monotonic clock reaches `target_ns` (no-op if it
/// already has).
pub fn sleep_until_ns(target_ns: u64) {
    let now = monotonic_ns();
    if target_ns > now {
        std::thread::sleep(Duration::from_nanos(target_ns - now));
    }
}

/// Sleeps for `ms` milliseconds of modelled time.
pub fn sleep_ms(ms: f64) {
    if ms > 0.0 {
        std::thread::sleep(Duration::from_nanos(ns_of_ms(ms)));
    }
}

/// Converts modelled milliseconds to integer nanoseconds.
pub fn ns_of_ms(ms: f64) -> u64 {
    (ms * 1_000_000.0).round().max(0.0) as u64
}

/// Milliseconds since the run epoch (clamped at zero for the instants just
/// before the barrier releases).
pub fn rel_ms(now_ns: u64, start_ns: u64) -> f64 {
    now_ns.saturating_sub(start_ns) as f64 / 1_000_000.0
}
