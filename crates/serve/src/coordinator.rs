//! The coordinator of a live run: creates the shared segment, spawns the
//! robot-client and inference-worker processes, hosts the router and the
//! per-server batch schedulers (the same objects the DES engine drives),
//! and aggregates the per-stage and cross-process latency samples into a
//! simulator-shaped report.
//!
//! Cleanup is unconditional: the segment owner unlinks on drop, the child
//! guard kills whatever is still running on any exit path, and stale
//! segments of dead runs are swept on startup.

use std::collections::HashMap;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use corki::fleet::FleetSweepRow;
use corki_ipc::{monotonic_ns, ShmSegment, SpscRing};
use corki_system::fleet::{batch_service_ms, trim_warmup, RobotProfile};
use corki_system::{
    mean, percentile, scenario_fingerprint, BatchScheduler, ConcreteScenario, ControlBackend,
    PendingRequest, Router, ServerSnapshot,
};
use corki_telemetry::{Recorder, ShmTelemetry, Stage, PAGE_WORDS};

use crate::proto::{
    state, DoneMsg, RespMsg, RobotMsg, SegmentLayout, WorkMsg, LIVE_MAGIC, MAGIC_OFF, MSG_SIZE,
    SHUTDOWN_BATCH, START_NS_OFF, STATE_OFF,
};
use crate::report::{LiveReport, StageStats, TransitStats};
use crate::sync::{rel_ms, POLL_NAP};
use crate::LiveError;

/// Most robot processes a live run will spawn: beyond this, a single-host
/// run measures scheduler thrash, not serving behaviour.
pub const MAX_LIVE_ROBOTS: usize = 64;

/// Most inference-worker processes a live run will spawn.
pub const MAX_LIVE_SERVERS: usize = 16;

/// Prefix of every live-run segment name (`corki-live-<pid>`).
const SEGMENT_PREFIX: &str = "corki-live-";

/// Head-start the coordinator gives the epoch so every attached child has
/// left its ready-wait before time zero.
const EPOCH_HEADROOM: Duration = Duration::from_millis(100);

/// How often the serving loop drains the telemetry pages mid-run.  Every
/// page word is a monotonic counter written by exactly one process, so a
/// drain is a plain snapshot — no pause, no coordination — and each drain
/// *replaces* the previous view rather than accumulating into it.
const TELEMETRY_DRAIN_INTERVAL: Duration = Duration::from_millis(100);

/// Checks that a cell is expressible as a live run.  The live path covers
/// the fault-free serving model; fault injection, shared-accelerator
/// arbitration and adaptive warm-up detection remain DES-only.
pub fn ensure_live_supported(cell: &ConcreteScenario) -> Result<(), LiveError> {
    let cfg = &cell.config;
    if cfg.faults.is_some() {
        return Err(LiveError::Unsupported("fault plans are DES-only".into()));
    }
    if cfg.control_backend != ControlBackend::PerRobot {
        return Err(LiveError::Unsupported(
            "shared-accelerator control arbitration is DES-only".into(),
        ));
    }
    if cfg.auto_warmup {
        return Err(LiveError::Unsupported(
            "adaptive (MSER-5) warm-up detection is DES-only; use a fixed warmup_ms".into(),
        ));
    }
    if cfg.robots.len() > MAX_LIVE_ROBOTS {
        return Err(LiveError::Unsupported(format!(
            "live runs spawn one process per robot; {} exceeds the cap of {MAX_LIVE_ROBOTS}",
            cfg.robots.len()
        )));
    }
    if cfg.servers.len() > MAX_LIVE_SERVERS {
        return Err(LiveError::Unsupported(format!(
            "live runs spawn one process per server; {} exceeds the cap of {MAX_LIVE_SERVERS}",
            cfg.servers.len()
        )));
    }
    Ok(())
}

/// Unlinks `/dev/shm/corki-live-*` segments whose owning process is gone
/// (a previous run died before its owner unlink ran).  Returns how many
/// were removed.
pub fn cleanup_stale_segments() -> usize {
    let Ok(entries) = std::fs::read_dir("/dev/shm") else { return 0 };
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(pid) = name.strip_prefix(SEGMENT_PREFIX) else { continue };
        let alive = pid
            .parse::<u32>()
            .is_ok_and(|pid| std::path::Path::new(&format!("/proc/{pid}")).exists());
        if !alive && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Kills every still-running child on drop — the "any exit path" half of
/// the cleanup contract (the segment itself unlinks via its own owner
/// drop).
struct ChildGuard {
    children: Vec<(String, Option<Child>)>,
}

impl ChildGuard {
    fn new() -> Self {
        ChildGuard { children: Vec::new() }
    }

    fn push(&mut self, label: String, child: Child) {
        self.children.push((label, Some(child)));
    }

    /// Non-blocking reap: returns a description — exit status plus captured
    /// stderr — of every child that exited with a failure status.
    fn poll_failures(&mut self) -> Vec<String> {
        let mut failed = Vec::new();
        for (label, slot) in &mut self.children {
            if let Some(child) = slot {
                if let Ok(Some(status)) = child.try_wait() {
                    if !status.success() {
                        failed.push(describe_failure(label, status, child.stderr.take()));
                    }
                    *slot = None;
                }
            }
        }
        failed
    }

    /// Which children are still running.
    fn running(&mut self) -> Vec<String> {
        self.children
            .iter_mut()
            .filter_map(|(label, slot)| {
                let child = slot.as_mut()?;
                matches!(child.try_wait(), Ok(None)).then(|| label.clone())
            })
            .collect()
    }

    /// Waits for every child to exit by `deadline`; returns the failures.
    fn join_all(&mut self, deadline: Instant) -> Vec<String> {
        let mut failures = Vec::new();
        loop {
            failures.extend(self.poll_failures());
            if self.children.iter().all(|(_, slot)| slot.is_none()) {
                return failures;
            }
            if Instant::now() > deadline {
                for label in self.running() {
                    failures.push(format!("{label} did not exit before the deadline"));
                }
                return failures;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// Formats a failed child's exit status, appending whatever it wrote to
/// its captured stderr (trimmed and bounded) so the coordinator's error
/// says *why* the child died, not merely that it did.  Safe to read here:
/// the child has already exited, so the pipe's write end is closed.
fn describe_failure(
    label: &str,
    status: std::process::ExitStatus,
    stderr: Option<std::process::ChildStderr>,
) -> String {
    let mut text = String::new();
    if let Some(mut pipe) = stderr {
        use std::io::Read;
        let _ = pipe.read_to_string(&mut text);
    }
    let text = text.trim();
    if text.is_empty() {
        return format!("{label} exited with {status}");
    }
    const STDERR_CAP: usize = 2048;
    let snippet: String = text.chars().take(STDERR_CAP).collect();
    format!("{label} exited with {status}: {snippet}")
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        for (_, slot) in &mut self.children {
            if let Some(mut child) = slot.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Removes the temp config file on drop.
struct TempConfig(std::path::PathBuf);

impl Drop for TempConfig {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A request the pool has accepted but whose plan the robot has not yet
/// acknowledged; accumulates the measured hop latencies as they happen.
#[derive(Debug, Clone, Copy, Default)]
struct PlanTrace {
    capture_ns: u64,
    publish_ns: u64,
    request_transit_ns: f64,
    dispatch_transit_ns: f64,
    completion_transit_ns: f64,
}

/// A batch currently on a worker.
struct InFlightBatch {
    server: usize,
    requests: Vec<PendingRequest>,
    dispatch_ns: u64,
    service_ns: u64,
}

/// Per-robot completion summary from its `Finished` message.
#[derive(Debug, Clone, Copy)]
struct RobotFin {
    frames: u64,
    finish_ns: u64,
    link_wait_ns: u64,
    upload_ns: u64,
}

/// Runs one concrete scenario cell live: spawns the fleet, serves it over
/// shared memory, and aggregates the report.  `exe` is the binary hosting
/// the hidden `__live-robot`/`__live-worker` roles (normally
/// `std::env::current_exe()`).
pub fn run_live(cell: &ConcreteScenario, exe: &std::path::Path) -> Result<LiveReport, LiveError> {
    ensure_live_supported(cell)?;
    cleanup_stale_segments();

    let cfg = &cell.config;
    let robots = cfg.robots.len();
    let servers = cfg.servers.len();
    let layout = SegmentLayout::new(robots, servers);
    let shm_name = format!("{SEGMENT_PREFIX}{}", std::process::id());
    // A same-pid leftover (crashed previous run of a recycled pid) would
    // make the exclusive create fail; it is stale by construction.
    let _ = ShmSegment::unlink(&shm_name);
    let seg = ShmSegment::create(&shm_name, layout.total_size()).map_err(LiveError::Io)?;

    // Initialise every ring and slot before any child can attach.
    let req_rings: Vec<SpscRing<'_>> = (0..robots)
        .map(|r| seg.init_ring(layout.req_ring(r), crate::proto::REQ_RING_CAPACITY, MSG_SIZE))
        .collect();
    let resp_slots: Vec<_> =
        (0..robots).map(|r| seg.init_seqlock(layout.resp_slot(r), MSG_SIZE)).collect();
    let work_rings: Vec<SpscRing<'_>> = (0..servers)
        .map(|s| seg.init_ring(layout.work_ring(s), crate::proto::WORK_RING_CAPACITY, MSG_SIZE))
        .collect();
    let done_rings: Vec<SpscRing<'_>> = (0..servers)
        .map(|s| seg.init_ring(layout.done_ring(s), crate::proto::WORK_RING_CAPACITY, MSG_SIZE))
        .collect();
    let run_state = seg.atomic_u64(STATE_OFF);
    // Telemetry pages: one per child process, single-writer, freshly
    // zeroed by the segment creation; the coordinator only reads them.
    let robot_telemetry: Vec<ShmTelemetry<'_>> = (0..robots)
        .map(|r| ShmTelemetry::new(seg.atomic_u64_array(layout.robot_telemetry(r), PAGE_WORDS)))
        .collect();
    let server_telemetry: Vec<ShmTelemetry<'_>> = (0..servers)
        .map(|s| ShmTelemetry::new(seg.atomic_u64_array(layout.server_telemetry(s), PAGE_WORDS)))
        .collect();
    seg.atomic_u64(MAGIC_OFF).store(LIVE_MAGIC, std::sync::atomic::Ordering::Release);

    // Hand the children the resolved FleetConfig through a temp file.
    let config_path =
        std::env::temp_dir().join(format!("corki-live-{}-config.json", std::process::id()));
    let config_json = serde_json::to_string(cfg)
        .map_err(|e| LiveError::Protocol(format!("cannot serialise live config: {e}")))?;
    std::fs::write(&config_path, config_json).map_err(LiveError::Io)?;
    let _config_guard = TempConfig(config_path.clone());

    let mut guard = ChildGuard::new();
    let abort = |guard: &mut ChildGuard, err: LiveError| -> LiveError {
        run_state.store(state::ABORT, std::sync::atomic::Ordering::Release);
        let _ = guard; // children are killed by the guard's drop
        err
    };

    for s in 0..servers {
        let child = Command::new(exe)
            .args([
                "__live-worker",
                "--shm",
                &shm_name,
                "--server",
                &s.to_string(),
                "--robots",
                &robots.to_string(),
                "--servers",
                &servers.to_string(),
            ])
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(LiveError::Io)?;
        guard.push(format!("worker {s}"), child);
    }
    for r in 0..robots {
        let child = Command::new(exe)
            .args([
                "__live-robot",
                "--shm",
                &shm_name,
                "--robot",
                &r.to_string(),
                "--config",
                config_path.to_str().expect("temp path is valid UTF-8"),
            ])
            .stdin(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(LiveError::Io)?;
        guard.push(format!("robot {r}"), child);
    }

    // Wait for the whole fleet to attach, then publish the epoch.
    let ready = seg.atomic_u64(crate::proto::READY_OFF);
    let ready_deadline = Instant::now() + crate::sync::START_TIMEOUT;
    while (ready.load(std::sync::atomic::Ordering::Acquire) as usize) < robots + servers {
        if let Some(failure) = guard.poll_failures().into_iter().next() {
            return Err(abort(&mut guard, LiveError::ChildFailed(failure)));
        }
        if Instant::now() > ready_deadline {
            return Err(abort(
                &mut guard,
                LiveError::Protocol("fleet did not attach before the deadline".into()),
            ));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let start_ns = monotonic_ns() + EPOCH_HEADROOM.as_nanos() as u64;
    seg.atomic_u64(START_NS_OFF).store(start_ns, std::sync::atomic::Ordering::Release);
    run_state.store(state::RUNNING, std::sync::atomic::Ordering::Release);

    // ---- The serving loop: the same scheduler/router cores as the DES,
    // driven by wall-clock milliseconds since the epoch. -------------------
    let profiles: Vec<RobotProfile> =
        cfg.robots.iter().map(|robot| RobotProfile::of(robot, cfg)).collect();
    let mut schedulers: Vec<Box<dyn BatchScheduler>> =
        cfg.servers.iter().map(|server| server.scheduler.build()).collect();
    let mut router = Router::new(cfg.routing);
    let mut busy: Vec<Option<u64>> = vec![None; servers];
    let mut busy_ns: Vec<u64> = vec![0; servers];
    let mut in_flight: HashMap<u64, InFlightBatch> = HashMap::new();
    let mut open: Vec<Option<PlanTrace>> = vec![None; robots];
    let mut awaiting: Vec<Option<PlanTrace>> = vec![None; robots];
    let mut fins: Vec<Option<RobotFin>> = vec![None; robots];
    let mut next_batch_id = 0_u64;
    let mut next_seq = 0_u64;

    // Samples.  Latency-style samples carry their completion timestamp
    // (ms since epoch) for warm-up trimming, exactly like the DES.
    let mut plan_samples: Vec<(f64, f64)> = Vec::new();
    let mut queue_samples: Vec<(f64, f64)> = Vec::new();
    let mut offloaded_e2e_ms: Vec<f64> = Vec::new();
    let mut service_ms_samples: Vec<f64> = Vec::new();
    let mut batch_sizes: Vec<usize> = Vec::new();
    let mut transit_request: Vec<f64> = Vec::new();
    let mut transit_dispatch: Vec<f64> = Vec::new();
    let mut transit_completion: Vec<f64> = Vec::new();
    let mut transit_response: Vec<f64> = Vec::new();
    let mut transit_round_trip: Vec<f64> = Vec::new();

    let watchdog =
        Instant::now() + Duration::from_secs(120 + (cfg.frames_per_robot as u64).saturating_mul(1));
    let mut buf = [0_u8; MSG_SIZE];
    let mut batch: Vec<PendingRequest> = Vec::new();

    // Every page word is cumulative, so a drain rebuilds the fleet view
    // from scratch instead of merging into the previous one (merging two
    // drains of the same page would double-count).
    let drain_telemetry = |drains: &mut usize| -> Recorder {
        *drains += 1;
        let mut recorder = Recorder::new(robots);
        for (robot, page) in robot_telemetry.iter().enumerate() {
            for stage in Stage::ALL {
                recorder.merge_stage(stage, &page.snapshot_stage(stage));
            }
            recorder.merge_timeline(robot, &page.snapshot_timeline());
        }
        for page in &server_telemetry {
            recorder.merge_stage(Stage::BatchService, &page.snapshot_stage(Stage::BatchService));
        }
        recorder
    };
    let mut telemetry_drains = 0_usize;
    let mut last_drain = Instant::now();

    let close_plan = |trace: PlanTrace,
                      resp_recv_ns: u64,
                      plan_samples: &mut Vec<(f64, f64)>,
                      offloaded_e2e_ms: &mut Vec<f64>,
                      transit_response: &mut Vec<f64>,
                      transit_round_trip: &mut Vec<f64>| {
        let latency_ms = resp_recv_ns.saturating_sub(trace.capture_ns) as f64 / 1e6;
        plan_samples.push((rel_ms(resp_recv_ns, start_ns), latency_ms));
        offloaded_e2e_ms.push(latency_ms);
        let response_ns = resp_recv_ns.saturating_sub(trace.publish_ns) as f64;
        transit_response.push(response_ns);
        transit_round_trip.push(
            trace.request_transit_ns
                + trace.dispatch_transit_ns
                + trace.completion_transit_ns
                + response_ns,
        );
    };

    loop {
        let mut progressed = false;

        // Robot messages.
        for robot in 0..robots {
            while req_rings[robot].try_pop(&mut buf) {
                progressed = true;
                let recv_ns = monotonic_ns();
                let (from, msg) = RobotMsg::decode(&buf)
                    .map_err(|e| abort(&mut guard, LiveError::Protocol(e)))?;
                if from as usize != robot {
                    return Err(abort(
                        &mut guard,
                        LiveError::Protocol(format!("robot {from} wrote into ring {robot}")),
                    ));
                }
                match msg {
                    RobotMsg::Request {
                        attempt,
                        planned_steps,
                        capture_ns,
                        send_ns,
                        prev_resp_recv_ns,
                    } => {
                        if let Some(trace) = awaiting[robot].take() {
                            if prev_resp_recv_ns > 0 {
                                close_plan(
                                    trace,
                                    prev_resp_recv_ns,
                                    &mut plan_samples,
                                    &mut offloaded_e2e_ms,
                                    &mut transit_response,
                                    &mut transit_round_trip,
                                );
                            }
                        }
                        let wants_trajectory = !profiles[robot].is_baseline;
                        let target = router.try_route_blind(servers).unwrap_or_else(|| {
                            let snapshots: Vec<ServerSnapshot> = (0..servers)
                                .map(|s| ServerSnapshot {
                                    queue_depth: schedulers[s].pending()
                                        + busy[s]
                                            .map(|id| in_flight[&id].requests.len())
                                            .unwrap_or(0),
                                    service_ms: cfg.servers[s].service_ms(wants_trajectory),
                                    up: true,
                                })
                                .collect();
                            router.route(&snapshots)
                        });
                        next_seq += 1;
                        schedulers[target].push(PendingRequest {
                            robot,
                            arrival_ms: rel_ms(recv_ns, start_ns),
                            service_ms: cfg.servers[target].service_ms(wants_trajectory),
                            planned_steps: planned_steps as usize,
                            seq: next_seq,
                            attempt,
                        });
                        open[robot] = Some(PlanTrace {
                            capture_ns,
                            request_transit_ns: recv_ns.saturating_sub(send_ns) as f64,
                            ..PlanTrace::default()
                        });
                    }
                    RobotMsg::LocalPlan { latency_ns, done_ns } => {
                        plan_samples.push((rel_ms(done_ns, start_ns), latency_ns as f64 / 1e6));
                    }
                    RobotMsg::Finished {
                        frames,
                        plans: _,
                        last_resp_recv_ns,
                        finish_ns,
                        link_wait_ns,
                        upload_ns,
                    } => {
                        if let Some(trace) = awaiting[robot].take() {
                            if last_resp_recv_ns > 0 {
                                close_plan(
                                    trace,
                                    last_resp_recv_ns,
                                    &mut plan_samples,
                                    &mut offloaded_e2e_ms,
                                    &mut transit_response,
                                    &mut transit_round_trip,
                                );
                            }
                        }
                        fins[robot] = Some(RobotFin { frames, finish_ns, link_wait_ns, upload_ns });
                    }
                }
            }
        }

        // Worker completions.
        for done_ring in &done_rings {
            while done_ring.try_pop(&mut buf) {
                progressed = true;
                let done_recv_ns = monotonic_ns();
                let done = DoneMsg::decode(&buf);
                let Some(flight) = in_flight.remove(&done.batch_id) else {
                    return Err(abort(
                        &mut guard,
                        LiveError::Protocol(format!("unknown batch {} completed", done.batch_id)),
                    ));
                };
                busy[flight.server] = None;
                busy_ns[flight.server] += done.done_ns.saturating_sub(done.pop_ns);
                let publish_ns = monotonic_ns();
                for request in &flight.requests {
                    let Some(mut trace) = open[request.robot].take() else {
                        return Err(abort(
                            &mut guard,
                            LiveError::Protocol(format!(
                                "robot {} has no open plan for batch {}",
                                request.robot, done.batch_id
                            )),
                        ));
                    };
                    trace.dispatch_transit_ns =
                        done.pop_ns.saturating_sub(flight.dispatch_ns) as f64;
                    trace.completion_transit_ns = done_recv_ns.saturating_sub(done.done_ns) as f64;
                    trace.publish_ns = publish_ns;
                    transit_request.push(trace.request_transit_ns);
                    transit_dispatch.push(trace.dispatch_transit_ns);
                    transit_completion.push(trace.completion_transit_ns);
                    let queue_wait_ms = rel_ms(flight.dispatch_ns, start_ns) - request.arrival_ms;
                    resp_slots[request.robot].write(
                        &RespMsg {
                            attempt: request.attempt,
                            plan_steps: request.planned_steps as u64,
                            queue_wait_ns: crate::sync::ns_of_ms(queue_wait_ms.max(0.0)),
                            service_ns: flight.service_ns,
                            server: flight.server as u64,
                            publish_ns,
                        }
                        .encode(),
                    );
                    awaiting[request.robot] = Some(trace);
                }
            }
        }

        // Dispatch: any idle server with a releasable batch gets one.
        let now_ms = rel_ms(monotonic_ns(), start_ns);
        for server in 0..servers {
            if busy[server].is_some() {
                continue;
            }
            schedulers[server].pop_batch_into(now_ms, &mut batch);
            if batch.is_empty() {
                continue;
            }
            progressed = true;
            let base_ms = batch.iter().map(|r| r.service_ms).fold(0.0, f64::max);
            let service_ms = batch_service_ms(base_ms, batch.len(), cfg.batch_overhead);
            let dispatch_ns = monotonic_ns();
            for request in &batch {
                queue_samples.push((
                    rel_ms(dispatch_ns, start_ns),
                    (rel_ms(dispatch_ns, start_ns) - request.arrival_ms).max(0.0),
                ));
                service_ms_samples.push(service_ms);
            }
            batch_sizes.push(batch.len());
            next_batch_id += 1;
            let work = WorkMsg {
                batch_id: next_batch_id,
                batch_len: batch.len() as u64,
                service_ns: crate::sync::ns_of_ms(service_ms),
                dispatch_ns,
            };
            if !work_rings[server].try_push(&work.encode()) {
                return Err(abort(
                    &mut guard,
                    LiveError::Protocol(format!("work ring of server {server} is full")),
                ));
            }
            busy[server] = Some(next_batch_id);
            in_flight.insert(
                next_batch_id,
                InFlightBatch {
                    server,
                    requests: std::mem::take(&mut batch),
                    dispatch_ns,
                    service_ns: work.service_ns,
                },
            );
        }

        // Done?
        if fins.iter().all(Option::is_some)
            && in_flight.is_empty()
            && schedulers.iter().all(|s| s.pending() == 0)
        {
            break;
        }

        // Mid-run telemetry drain: exercises reading the pages while the
        // fleet is still writing them.  Each drain is a complete snapshot,
        // so the intermediate views are discarded — the final post-join
        // drain below supersedes them all.
        if last_drain.elapsed() >= TELEMETRY_DRAIN_INTERVAL {
            drain_telemetry(&mut telemetry_drains);
            last_drain = Instant::now();
        }

        // Child health: a robot may exit cleanly once its Finished message
        // is in; anything else ending early wedges the run.
        if let Some(failure) = guard.poll_failures().into_iter().next() {
            return Err(abort(&mut guard, LiveError::ChildFailed(failure)));
        }
        if Instant::now() > watchdog {
            return Err(abort(
                &mut guard,
                LiveError::Protocol("live run exceeded its watchdog deadline".into()),
            ));
        }
        if !progressed {
            std::thread::sleep(POLL_NAP);
        }
    }

    // Shut the workers down and reap everything.
    for (server, ring) in work_rings.iter().enumerate() {
        let sentinel =
            WorkMsg { batch_id: SHUTDOWN_BATCH, batch_len: 0, service_ns: 0, dispatch_ns: 0 }
                .encode();
        let deadline = Instant::now() + Duration::from_secs(10);
        while !ring.try_push(&sentinel) {
            if Instant::now() > deadline {
                return Err(abort(
                    &mut guard,
                    LiveError::Protocol(format!("cannot deliver shutdown to server {server}")),
                ));
            }
            std::thread::sleep(POLL_NAP);
        }
    }
    let failures = guard.join_all(Instant::now() + Duration::from_secs(30));
    if let Some(failure) = failures.into_iter().next() {
        return Err(abort(&mut guard, LiveError::ChildFailed(failure)));
    }
    let end_ns = monotonic_ns();
    // The authoritative drain: every child has exited, so the pages are
    // quiescent and this snapshot is exact, superseding the mid-run views.
    let telemetry = drain_telemetry(&mut telemetry_drains);

    // ---- Aggregation: the same estimators as the DES summary. ------------
    let fins: Vec<RobotFin> = fins.into_iter().map(|f| f.expect("all robots finished")).collect();
    let total_frames: u64 = fins.iter().map(|f| f.frames).sum();
    let offloaded_plans: u64 = offloaded_e2e_ms.len() as u64;
    let makespan_ms = fins.iter().map(|f| rel_ms(f.finish_ns, start_ns)).fold(0.0, f64::max);
    let warmup_ms = cfg.warmup_ms;
    let plan_latencies = trim_warmup(&plan_samples, warmup_ms);
    let queue_waits = trim_warmup(&queue_samples, warmup_ms);
    let total_link_wait_ms: f64 = fins.iter().map(|f| f.link_wait_ns as f64 / 1e6).sum();
    let total_upload_ms: f64 = fins.iter().map(|f| f.upload_ns as f64 / 1e6).sum();
    let inferences: usize = batch_sizes.iter().sum();

    let mean_link_wait_ms =
        if offloaded_plans > 0 { total_link_wait_ms / offloaded_plans as f64 } else { 0.0 };
    let mean_stage_total_ms = if offloaded_plans > 0 {
        mean_link_wait_ms
            + total_upload_ms / offloaded_plans as f64
            + mean(&queue_samples.iter().map(|(_, v)| *v).collect::<Vec<f64>>())
            + mean(&service_ms_samples)
    } else {
        0.0
    };
    let ipc_overhead_ms =
        if offloaded_plans > 0 { mean(&offloaded_e2e_ms) - mean_stage_total_ms } else { 0.0 };

    let row = FleetSweepRow {
        robots,
        servers,
        variant: cell.variant_label.clone(),
        scheduler: cell.scheduler_label.clone(),
        routing: cell.routing_label.clone(),
        composition: cell.composition_label.clone(),
        throughput_steps_per_s: if makespan_ms > 0.0 {
            total_frames as f64 / makespan_ms * 1000.0
        } else {
            0.0
        },
        per_robot_rate_hz: if makespan_ms > 0.0 {
            total_frames as f64 / makespan_ms * 1000.0 / robots as f64
        } else {
            0.0
        },
        mean_plan_latency_ms: mean(&plan_latencies),
        p99_plan_latency_ms: percentile(&plan_latencies, 0.99),
        mean_queue_delay_ms: mean(&queue_waits),
        p99_queue_delay_ms: percentile(&queue_waits, 0.99),
        server_utilization: if makespan_ms > 0.0 {
            busy_ns.iter().map(|&ns| ns as f64 / 1e6).sum::<f64>() / (makespan_ms * servers as f64)
        } else {
            0.0
        },
        mean_batch_size: if batch_sizes.is_empty() {
            0.0
        } else {
            inferences as f64 / batch_sizes.len() as f64
        },
        slo_violation_fraction: if plan_latencies.is_empty() {
            0.0
        } else {
            plan_latencies.iter().filter(|&&latency| latency > cfg.slo_budget_ms).count() as f64
                / plan_latencies.len() as f64
        },
        timed_out_requests: 0,
        retries: 0,
        dropped_requests: 0,
        fallback_inferences: 0,
        mean_recovery_ms: 0.0,
    };

    Ok(LiveReport {
        scenario: cell.scenario.clone(),
        fingerprint: scenario_fingerprint(std::slice::from_ref(cell)),
        row,
        wall_s: end_ns.saturating_sub(start_ns) as f64 / 1e9,
        warmup_ms,
        transit: TransitStats {
            request: StageStats::of(&transit_request),
            dispatch: StageStats::of(&transit_dispatch),
            completion: StageStats::of(&transit_completion),
            response: StageStats::of(&transit_response),
            round_trip: StageStats::of(&transit_round_trip),
        },
        mean_link_wait_ms,
        mean_stage_total_ms,
        ipc_overhead_ms,
        robots_completed: fins.iter().filter(|f| f.frames > 0).count(),
        total_frames: total_frames as usize,
        offloaded_plans: offloaded_plans as usize,
        telemetry: telemetry.report(),
        telemetry_drains,
    })
}
