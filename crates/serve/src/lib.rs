//! Live fleet serving over shared memory: the wall-clock counterpart of
//! the deterministic fleet simulator.
//!
//! A live run lowers one committed scenario cell into real processes — one
//! robot client per robot, one inference worker per server, and a
//! coordinator hosting the *same* router and batch-scheduler objects the
//! DES engine drives — all communicating through one mmap'd `/dev/shm`
//! segment of [`corki_ipc`] SPSC rings and seqlock snapshot slots:
//!
//! ```text
//!            DES (oracle)                       live path
//!   ScenarioSpec ──► FleetSimulator    ScenarioSpec ──► coordinator
//!        │   simulated clock, same          │   wall clock, same
//!        │   scheduler/router/profile       │   scheduler/router/profile
//!        ▼                                  ▼
//!    FleetSummary  ◄── agree within ──► LiveReport (FleetSweepRow-shaped
//!                      tolerance          + measured IPC transit)
//! ```
//!
//! Every modelled constant — control step time, upload hiding, batched
//! service time, link arbitration — comes from the clock-agnostic cores in
//! `corki_system::fleet`, so the DES remains a usable oracle: a live run
//! of a fault-free cell must agree with the simulator within the
//! tolerance of a time-shared host.  On top of the modelled quantities,
//! the live path *measures* what simulation cannot: the per-hop
//! shared-memory transit latencies and the end-to-end residual (the
//! Lithos-style `cross-process e2e − Σ per-stage totals` decomposition).
//!
//! The crate contains no `unsafe`: all shared-memory access goes through
//! the bounds-checked safe API of [`corki_ipc`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coordinator;
mod link;
pub mod proto;
mod report;
mod robot;
mod sync;
mod worker;

pub use coordinator::{
    cleanup_stale_segments, ensure_live_supported, run_live, MAX_LIVE_ROBOTS, MAX_LIVE_SERVERS,
};
pub use link::LiveLink;
pub use report::{LiveReport, StageStats, TransitStats};
pub use robot::run_robot;
pub use worker::run_worker;

/// Why a live run could not start or finish.
#[derive(Debug)]
pub enum LiveError {
    /// The cell uses features the live path does not express (faults,
    /// shared-accelerator control, adaptive warm-up, oversized fleets).
    Unsupported(String),
    /// A system call failed (segment mapping, process spawning, …).
    Io(std::io::Error),
    /// A child process exited abnormally.
    ChildFailed(String),
    /// The coordinator raised the abort flag while this process waited.
    Aborted,
    /// The shared-memory protocol was violated or timed out.
    Protocol(String),
}

impl std::fmt::Display for LiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiveError::Unsupported(why) => write!(f, "scenario not live-runnable: {why}"),
            LiveError::Io(err) => write!(f, "live run I/O failure: {err}"),
            LiveError::ChildFailed(who) => write!(f, "live run child failed: {who}"),
            LiveError::Aborted => f.write_str("live run aborted"),
            LiveError::Protocol(why) => write!(f, "live protocol violation: {why}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(err) => Some(err),
            _ => None,
        }
    }
}
