//! What a live run reports: the simulator-shaped summary row plus the
//! cross-process measurements only a live run can make.
//!
//! The IPC-transit methodology follows the Lithos decomposition: the
//! cross-process end-to-end latency of a plan minus the sum of its modelled
//! per-stage totals (link wait + upload + queue + service) is the transit
//! overhead the shared-memory transport itself adds.  The live path also
//! measures each hop directly — request ring, work-ring dispatch, done-ring
//! completion and response-seqlock delivery — so the residual and the sum
//! of hops can be cross-checked.

use corki::fleet::FleetSweepRow;
use corki_telemetry::{mean, percentile, TelemetryReport};
use serde::{Deserialize, Serialize};

/// Distribution summary of one measured transit hop, nanoseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageStats {
    /// Samples measured.
    pub samples: usize,
    /// Mean, ns.
    pub mean_ns: f64,
    /// Median, ns.
    pub p50_ns: f64,
    /// 99th percentile, ns.
    pub p99_ns: f64,
}

impl StageStats {
    /// Summarises raw nanosecond samples (all-zero when none were taken).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return StageStats { samples: 0, mean_ns: 0.0, p50_ns: 0.0, p99_ns: 0.0 };
        }
        StageStats {
            samples: samples.len(),
            mean_ns: mean(samples),
            p50_ns: percentile(samples, 0.50),
            p99_ns: percentile(samples, 0.99),
        }
    }
}

/// The four measured shared-memory hops of one offloaded plan, plus their
/// per-plan sum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitStats {
    /// Robot `try_push` → coordinator `try_pop` of the request ring.
    pub request: StageStats,
    /// Coordinator work-ring push → worker pop.
    pub dispatch: StageStats,
    /// Worker done-ring push → coordinator pop.
    pub completion: StageStats,
    /// Coordinator seqlock publish → robot snapshot.
    pub response: StageStats,
    /// Per-plan sum of the four hops.
    pub round_trip: StageStats,
}

/// The full result of one live cell: the same [`FleetSweepRow`] shape the
/// simulator sweep prints, plus the live-only transit breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiveReport {
    /// Scenario name the cell came from.
    pub scenario: String,
    /// Fingerprint of the executed cell (shards/threads-normalised), for
    /// matching live rows against simulator rows in bench history.
    pub fingerprint: String,
    /// The simulator-shaped summary row (fault counters are structurally
    /// zero: live runs reject fault plans).
    pub row: FleetSweepRow,
    /// Wall-clock duration of the serving phase, seconds.
    pub wall_s: f64,
    /// Warm-up trimmed from the latency statistics, ms.
    pub warmup_ms: f64,
    /// Measured shared-memory hop latencies.
    pub transit: TransitStats,
    /// Mean time each request's plan spent waiting for the shared uplink,
    /// ms (from the robots' own accounting).
    pub mean_link_wait_ms: f64,
    /// Mean modelled per-stage total per offloaded plan: link wait + upload
    /// + queue + batched service, ms.
    pub mean_stage_total_ms: f64,
    /// Mean end-to-end latency minus [`mean_stage_total_ms`]: the transit +
    /// scheduling overhead the live transport adds per plan, ms (the Lithos
    /// residual; compare against `transit.round_trip.mean_ns`).
    ///
    /// [`mean_stage_total_ms`]: Self::mean_stage_total_ms
    pub ipc_overhead_ms: f64,
    /// Robots that completed all their frames.
    pub robots_completed: usize,
    /// Control steps executed fleet-wide.
    pub total_frames: usize,
    /// Plans served by the pool (excludes on-robot plans).
    pub offloaded_plans: usize,
    /// The always-on in-path recorder's view: per-stage p50/p99/p99.9
    /// histograms and per-robot timelines, drained from the shared
    /// segment's telemetry pages — the same six-stage taxonomy (and report
    /// shape) the DES produces, so stages compare one-to-one.
    pub telemetry: TelemetryReport,
    /// How many times the coordinator drained the telemetry pages while
    /// the run was still serving (at least one mid-run drain plus the
    /// final authoritative one).
    pub telemetry_drains: usize,
}
