//! The inference-server worker process of a live run.
//!
//! A worker owns one server of the pool.  The batching decision stays with
//! the coordinator (which runs the same [`BatchScheduler`] objects as the
//! DES engine); the worker's only job is to *be busy* for the modelled
//! service time of each batch it is handed, so queueing, batching and
//! utilization emerge from real cross-process timing.
//!
//! [`BatchScheduler`]: corki_system::BatchScheduler

use std::time::Duration;

use corki_ipc::{monotonic_ns, ShmSegment};
use corki_telemetry::{ShmTelemetry, Stage, PAGE_WORDS};

use crate::proto::{
    DoneMsg, SegmentLayout, WorkMsg, LIVE_MAGIC, MAGIC_OFF, MSG_SIZE, READY_OFF, SHUTDOWN_BATCH,
    START_NS_OFF, STATE_OFF,
};
use crate::sync::{announce_ready, wait_for_running, POLL_NAP};
use crate::LiveError;

/// Entry point of the hidden `__live-worker` role: serves server `server`
/// of a pool of `servers` in a fleet of `robots`, against the shared
/// segment `shm`.
pub fn run_worker(
    shm: &str,
    server: usize,
    robots: usize,
    servers: usize,
) -> Result<(), LiveError> {
    if server >= servers {
        return Err(LiveError::Protocol(format!(
            "server index {server} out of range for a pool of {servers}"
        )));
    }
    let layout = SegmentLayout::new(robots, servers);
    let seg = ShmSegment::open(shm, layout.total_size()).map_err(LiveError::Io)?;
    if seg.atomic_u64(MAGIC_OFF).load(std::sync::atomic::Ordering::Acquire) != LIVE_MAGIC {
        return Err(LiveError::Protocol(format!("segment {shm} carries no live-run magic")));
    }
    let work = seg.ring(layout.work_ring(server)).map_err(LiveError::Io)?;
    let done = seg.ring(layout.done_ring(server)).map_err(LiveError::Io)?;
    // The worker is the only writer of its telemetry page: one
    // batch-service sample per batch, drained live by the coordinator.
    let telemetry =
        ShmTelemetry::new(seg.atomic_u64_array(layout.server_telemetry(server), PAGE_WORDS));
    let run_state = seg.atomic_u64(STATE_OFF);

    announce_ready(seg.atomic_u64(READY_OFF));
    wait_for_running(run_state, seg.atomic_u64(START_NS_OFF))?;

    let mut buf = [0_u8; MSG_SIZE];
    loop {
        if !work.try_pop(&mut buf) {
            if crate::sync::aborted(run_state) {
                return Err(LiveError::Aborted);
            }
            std::thread::sleep(POLL_NAP);
            continue;
        }
        let msg = WorkMsg::decode(&buf);
        if msg.batch_id == SHUTDOWN_BATCH {
            return Ok(());
        }
        let pop_ns = monotonic_ns();
        // The modelled forward pass: the worker is simply busy for the
        // batched service time the coordinator computed with the shared
        // `batch_service_ms` model.
        std::thread::sleep(Duration::from_nanos(msg.service_ns));
        let notice = DoneMsg { batch_id: msg.batch_id, pop_ns, done_ns: monotonic_ns() };
        telemetry.record(Stage::BatchService, notice.done_ns - pop_ns);
        while !done.try_push(&notice.encode()) {
            if crate::sync::aborted(run_state) {
                return Err(LiveError::Aborted);
            }
            std::thread::sleep(POLL_NAP);
        }
    }
}
