//! The robot-client process of a live run.
//!
//! One robot process replays exactly the per-robot timeline of the DES
//! engine — capture, modelled uplink, offloaded inference (or an on-robot
//! one), paced plan execution, hidden background upload — against the wall
//! clock, with every modelled constant taken from the same
//! [`RobotProfile`] the simulator uses.  Where the DES *schedules* an event
//! `d` ms ahead, the live robot *sleeps* `d` ms; where the DES acquires the
//! simulated uplink arbiter, the live robot reserves the shared link clock
//! and sleeps out its grant.

use std::time::{Duration, Instant};

use corki_ipc::{monotonic_ns, ShmSegment};
use corki_system::fleet::{plan_upload_ms, RobotProfile};
use corki_system::FleetConfig;
use corki_telemetry::{EventKind, ShmTelemetry, Stage, PAGE_WORDS};

use crate::proto::{
    RespMsg, RobotMsg, SegmentLayout, LINK_FREE_OFF, LIVE_MAGIC, MAGIC_OFF, MSG_SIZE, READY_OFF,
    START_NS_OFF, STATE_OFF,
};
use crate::sync::{announce_ready, ns_of_ms, sleep_ms, sleep_until_ns, wait_for_running, POLL_NAP};
use crate::{link::LiveLink, LiveError};

/// How long the robot waits for one inference response before declaring
/// the run wedged.  Generous: the host may time-slice a dozen processes
/// on one core.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Entry point of the hidden `__live-robot` role: runs robot `robot` of
/// the fleet described by the JSON [`FleetConfig`] at `config_path`
/// against the shared segment `shm`.
pub fn run_robot(shm: &str, robot: usize, config_path: &str) -> Result<(), LiveError> {
    let raw = std::fs::read_to_string(config_path)
        .map_err(|e| LiveError::Protocol(format!("cannot read live config {config_path}: {e}")))?;
    let cfg: FleetConfig = serde_json::from_str(&raw)
        .map_err(|e| LiveError::Protocol(format!("cannot parse live config: {e}")))?;
    if robot >= cfg.robots.len() {
        return Err(LiveError::Protocol(format!(
            "robot index {robot} out of range for a fleet of {}",
            cfg.robots.len()
        )));
    }
    let layout = SegmentLayout::new(cfg.robots.len(), cfg.servers.len());
    let seg = ShmSegment::open(shm, layout.total_size()).map_err(LiveError::Io)?;
    if seg.atomic_u64(MAGIC_OFF).load(std::sync::atomic::Ordering::Acquire) != LIVE_MAGIC {
        return Err(LiveError::Protocol(format!("segment {shm} carries no live-run magic")));
    }
    let ring = seg.ring(layout.req_ring(robot)).map_err(LiveError::Io)?;
    let resp = seg.seqlock(layout.resp_slot(robot)).map_err(LiveError::Io)?;
    // In-path telemetry: this process is the page's only writer; the
    // coordinator drains it concurrently without stopping the run.
    let telemetry =
        ShmTelemetry::new(seg.atomic_u64_array(layout.robot_telemetry(robot), PAGE_WORDS));
    let link = LiveLink::new(seg.atomic_u64(LINK_FREE_OFF));
    let run_state = seg.atomic_u64(STATE_OFF);
    let profile = RobotProfile::of(&cfg.robots[robot], &cfg);

    announce_ready(seg.atomic_u64(READY_OFF));
    let start_ns = wait_for_running(run_state, seg.atomic_u64(START_NS_OFF))?;
    // Deterministic start stagger, exactly as the DES schedules the first
    // capture of robot r at `r · start_stagger_ms`.
    sleep_until_ns(start_ns + ns_of_ms(robot as f64 * cfg.start_stagger_ms));

    let step_ms = if cfg.execution_step_ms > 0.0 {
        profile.control_ms.max(cfg.execution_step_ms)
    } else {
        profile.control_ms
    };
    let mut frame_index = 0_usize;
    let mut plans = 0_u64;
    let mut attempt = 0_u64;
    let mut link_wait_ns = 0_u64;
    let mut upload_ns_total = 0_u64;
    let mut last_resp_recv_ns = 0_u64;
    // End-to-end fields of the previous offloaded plan, piggybacked onto
    // the next request so the coordinator can close its latency sample.
    let mut prev_resp_recv_ns = 0_u64;
    let mut resp_buf = [0_u8; MSG_SIZE];

    while frame_index < cfg.frames_per_robot {
        let capture_ns = monotonic_ns();
        let full_steps = profile.steps_model.steps_for(plans as usize).max(1);
        let plan_steps = full_steps.min(cfg.frames_per_robot - frame_index);
        let mut upload_paid_ms = 0.0;

        if let Some((service_ms, _energy)) = profile.local {
            // On-robot inference: no uplink, no pool — just the modelled
            // local service time.
            sleep_ms(service_ms);
            let done_ns = monotonic_ns();
            telemetry.event(
                done_ns.saturating_sub(start_ns),
                EventKind::LocalPlan,
                done_ns - capture_ns,
            );
            push_with_retry(
                &ring,
                &RobotMsg::LocalPlan { latency_ns: done_ns - capture_ns, done_ns }
                    .encode(robot as u64),
                run_state,
            )?;
            last_resp_recv_ns = done_ns;
        } else {
            // Foreground upload: reserve the shared link, sleep out the
            // grant (wait + transfer), then hand the request to the pool.
            let upload_ms = plan_upload_ms(
                profile.is_baseline,
                full_steps,
                cfg.communication.per_frame_ms,
                cfg.unhidden_comm_fraction,
            );
            upload_paid_ms = upload_ms;
            let now = monotonic_ns();
            let (grant_start, grant_end) = link.acquire(now, ns_of_ms(upload_ms));
            link_wait_ns += grant_start - now;
            upload_ns_total += grant_end - grant_start;
            telemetry.record(Stage::UplinkQueue, grant_start - now);
            telemetry.record(Stage::Encode, grant_end - grant_start);
            sleep_until_ns(grant_end);
            attempt += 1;
            push_with_retry(
                &ring,
                &RobotMsg::Request {
                    attempt,
                    planned_steps: plan_steps as u64,
                    capture_ns,
                    send_ns: monotonic_ns(),
                    prev_resp_recv_ns,
                }
                .encode(robot as u64),
                run_state,
            )?;
            let response = wait_for_response(&resp, attempt, &mut resp_buf, run_state)?;
            prev_resp_recv_ns = monotonic_ns();
            last_resp_recv_ns = prev_resp_recv_ns;
            // The pool-side waits were measured by the coordinator and the
            // worker; the downlink is the one hop only the robot can close
            // (publish → observed, bounded by the response-poll nap).
            telemetry.record(Stage::PoolQueue, response.queue_wait_ns);
            telemetry
                .record(Stage::Downlink, prev_resp_recv_ns.saturating_sub(response.publish_ns));
            telemetry.event(
                prev_resp_recv_ns.saturating_sub(start_ns),
                EventKind::Plan,
                prev_resp_recv_ns - capture_ns,
            );
        }
        plans += 1;

        // Execute the plan, paced by the slower of control compute and the
        // physical step period.
        for step in 0..plan_steps {
            let step_start_ns = monotonic_ns();
            sleep_ms(step_ms);
            telemetry.record(Stage::ControlStep, monotonic_ns() - step_start_ns);
            frame_index += 1;
            // After the first executed step of a multi-step plan, the next
            // frame streams up in the background: reserve (but do not wait
            // out) the hidden portion of its upload, so it consumes real
            // shared-link bandwidth exactly as in the DES.
            if step == 0 && plan_steps > 1 && cfg.background_uploads && profile.local.is_none() {
                let hidden_ms = (cfg.communication.per_frame_ms - upload_paid_ms).max(0.0);
                if hidden_ms > 0.0 {
                    link.acquire(monotonic_ns(), ns_of_ms(hidden_ms));
                }
            }
            if crate::sync::aborted(run_state) {
                return Err(LiveError::Aborted);
            }
        }
    }

    push_with_retry(
        &ring,
        &RobotMsg::Finished {
            frames: frame_index as u64,
            plans,
            last_resp_recv_ns,
            finish_ns: monotonic_ns(),
            link_wait_ns,
            upload_ns: upload_ns_total,
        }
        .encode(robot as u64),
        run_state,
    )
}

/// Pushes one message, backing off briefly while the ring is full (the
/// coordinator drains every poll, so sustained backpressure means the run
/// is aborting or wedged).
fn push_with_retry(
    ring: &corki_ipc::SpscRing<'_>,
    msg: &[u8; MSG_SIZE],
    run_state: &std::sync::atomic::AtomicU64,
) -> Result<(), LiveError> {
    let deadline = Instant::now() + RESPONSE_TIMEOUT;
    while !ring.try_push(msg) {
        if crate::sync::aborted(run_state) {
            return Err(LiveError::Aborted);
        }
        if Instant::now() > deadline {
            return Err(LiveError::Protocol("request ring stayed full".into()));
        }
        std::thread::sleep(POLL_NAP);
    }
    Ok(())
}

/// Polls the response seqlock until a snapshot answering `attempt`
/// appears.  Stale snapshots (earlier attempts) are skipped; torn reads
/// are retried by the seqlock itself.
fn wait_for_response(
    resp: &corki_ipc::SeqlockSlot<'_>,
    attempt: u64,
    buf: &mut [u8; MSG_SIZE],
    run_state: &std::sync::atomic::AtomicU64,
) -> Result<RespMsg, LiveError> {
    let deadline = Instant::now() + RESPONSE_TIMEOUT;
    loop {
        if resp.try_read(buf).is_some() {
            let msg = RespMsg::decode(buf);
            if msg.attempt == attempt {
                return Ok(msg);
            }
        }
        if crate::sync::aborted(run_state) {
            return Err(LiveError::Aborted);
        }
        if Instant::now() > deadline {
            return Err(LiveError::Protocol(format!("no response to attempt {attempt}")));
        }
        std::thread::sleep(POLL_NAP);
    }
}
