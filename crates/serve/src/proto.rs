//! The shared-memory wire protocol of the live path: fixed 64-byte
//! messages, their codecs, and the layout of the one segment every process
//! of a run maps.
//!
//! Every message is eight little-endian `u64` words — one cache line — so
//! a ring slot transfers in a single copy and a response snapshot fits one
//! seqlock payload.  Codecs are plain `u64::to_le_bytes` shuffles: the
//! segment is shared between processes built from the same binary, but
//! fixing the byte order keeps the format well-defined (and testable)
//! rather than "whatever repr the compiler picked".

use corki_ipc::{SeqlockSlot, SpscRing};

/// Bytes per message: eight words, one cache line.
pub const MSG_SIZE: usize = 64;

/// Words per message.
const WORDS: usize = MSG_SIZE / 8;

/// Identifies a live-run segment header (`"CORKLIVE"`).
pub const LIVE_MAGIC: u64 = 0x434f_524b_4c49_5645;

/// Run states published in the segment header.
pub mod state {
    /// Children attach and report ready.
    pub const INIT: u64 = 0;
    /// The epoch is published; everyone runs.
    pub const RUNNING: u64 = 1;
    /// A participant failed; everyone exits as fast as possible.
    pub const ABORT: u64 = 2;
}

/// `batch_id` of the shutdown sentinel the coordinator pushes into each
/// work ring once the run is complete.
pub const SHUTDOWN_BATCH: u64 = u64::MAX;

/// Slots in each robot → coordinator request ring.  A robot has at most
/// one request in flight plus its final summary, so even a shallow ring
/// never back-pressures in practice.
pub const REQ_RING_CAPACITY: usize = 8;

/// Slots in each coordinator ↔ worker ring.  A server has at most one
/// batch in flight plus the shutdown sentinel.
pub const WORK_RING_CAPACITY: usize = 8;

fn words_of(buf: &[u8; MSG_SIZE]) -> [u64; WORDS] {
    let mut words = [0_u64; WORDS];
    for (index, word) in words.iter_mut().enumerate() {
        *word = u64::from_le_bytes(buf[index * 8..index * 8 + 8].try_into().unwrap());
    }
    words
}

fn bytes_of(words: [u64; WORDS]) -> [u8; MSG_SIZE] {
    let mut buf = [0_u8; MSG_SIZE];
    for (index, word) in words.iter().enumerate() {
        buf[index * 8..index * 8 + 8].copy_from_slice(&word.to_le_bytes());
    }
    buf
}

/// A message a robot client pushes into its request ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RobotMsg {
    /// An inference request: the robot captured a frame, paid the modelled
    /// uplink, and now asks the pool for a plan.
    Request {
        /// Robot-local attempt id (matches the response snapshot).
        attempt: u64,
        /// Control steps the requested plan will execute (after clamping to
        /// the frames the robot has left).
        planned_steps: u64,
        /// When the frame was captured, monotonic ns.
        capture_ns: u64,
        /// When the message was pushed (upload complete), monotonic ns.
        send_ns: u64,
        /// When the *previous* response snapshot was observed by the robot,
        /// monotonic ns (0 on the first request).  Piggybacking this lets
        /// the coordinator close the previous plan's end-to-end latency and
        /// response-transit samples without another channel.
        prev_resp_recv_ns: u64,
    },
    /// An on-robot inference finished locally — no pool involved, but the
    /// plan latency still belongs in the fleet statistics.
    LocalPlan {
        /// Measured capture → plan latency, ns.
        latency_ns: u64,
        /// When the plan became available, monotonic ns.
        done_ns: u64,
    },
    /// The robot executed its last frame and is about to exit.
    Finished {
        /// Frames actually executed.
        frames: u64,
        /// Plans obtained (offloaded + local).
        plans: u64,
        /// Receive timestamp of the final response snapshot, monotonic ns
        /// (0 for a purely local robot).
        last_resp_recv_ns: u64,
        /// When the final frame finished executing, monotonic ns.
        finish_ns: u64,
        /// Total time spent waiting for the shared uplink, ns.
        link_wait_ns: u64,
        /// Total time spent transmitting on the uplink, ns.
        upload_ns: u64,
    },
}

const ROBOT_REQUEST: u64 = 0;
const ROBOT_LOCAL: u64 = 1;
const ROBOT_FINISHED: u64 = 2;

impl RobotMsg {
    /// Encodes the message into one ring slot.
    pub fn encode(&self, robot: u64) -> [u8; MSG_SIZE] {
        let words = match *self {
            RobotMsg::Request {
                attempt,
                planned_steps,
                capture_ns,
                send_ns,
                prev_resp_recv_ns,
            } => [
                ROBOT_REQUEST,
                robot,
                attempt,
                planned_steps,
                capture_ns,
                send_ns,
                prev_resp_recv_ns,
                0,
            ],
            RobotMsg::LocalPlan { latency_ns, done_ns } => {
                [ROBOT_LOCAL, robot, 0, 0, 0, 0, latency_ns, done_ns]
            }
            RobotMsg::Finished {
                frames,
                plans,
                last_resp_recv_ns,
                finish_ns,
                link_wait_ns,
                upload_ns,
            } => [
                ROBOT_FINISHED,
                robot,
                frames,
                plans,
                last_resp_recv_ns,
                finish_ns,
                link_wait_ns,
                upload_ns,
            ],
        };
        bytes_of(words)
    }

    /// Decodes one ring slot into `(robot, message)`.
    pub fn decode(buf: &[u8; MSG_SIZE]) -> Result<(u64, RobotMsg), String> {
        let w = words_of(buf);
        let msg = match w[0] {
            ROBOT_REQUEST => RobotMsg::Request {
                attempt: w[2],
                planned_steps: w[3],
                capture_ns: w[4],
                send_ns: w[5],
                prev_resp_recv_ns: w[6],
            },
            ROBOT_LOCAL => RobotMsg::LocalPlan { latency_ns: w[6], done_ns: w[7] },
            ROBOT_FINISHED => RobotMsg::Finished {
                frames: w[2],
                plans: w[3],
                last_resp_recv_ns: w[4],
                finish_ns: w[5],
                link_wait_ns: w[6],
                upload_ns: w[7],
            },
            kind => return Err(format!("unknown robot message kind {kind}")),
        };
        Ok((w[1], msg))
    }
}

/// A batch the coordinator hands to an inference-server worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkMsg {
    /// Coordinator-assigned batch id ([`SHUTDOWN_BATCH`] ends the worker).
    pub batch_id: u64,
    /// Requests in the batch.
    pub batch_len: u64,
    /// Modelled service time of the whole batch, ns.
    pub service_ns: u64,
    /// When the coordinator pushed the batch, monotonic ns.
    pub dispatch_ns: u64,
}

impl WorkMsg {
    /// Encodes the batch into one ring slot.
    pub fn encode(&self) -> [u8; MSG_SIZE] {
        bytes_of([self.batch_id, self.batch_len, self.service_ns, self.dispatch_ns, 0, 0, 0, 0])
    }

    /// Decodes one ring slot.
    pub fn decode(buf: &[u8; MSG_SIZE]) -> WorkMsg {
        let w = words_of(buf);
        WorkMsg { batch_id: w[0], batch_len: w[1], service_ns: w[2], dispatch_ns: w[3] }
    }
}

/// A worker's completion notice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneMsg {
    /// The batch that finished.
    pub batch_id: u64,
    /// When the worker popped the batch, monotonic ns.
    pub pop_ns: u64,
    /// When the modelled service time elapsed, monotonic ns.
    pub done_ns: u64,
}

impl DoneMsg {
    /// Encodes the notice into one ring slot.
    pub fn encode(&self) -> [u8; MSG_SIZE] {
        bytes_of([self.batch_id, self.pop_ns, self.done_ns, 0, 0, 0, 0, 0])
    }

    /// Decodes one ring slot.
    pub fn decode(buf: &[u8; MSG_SIZE]) -> DoneMsg {
        let w = words_of(buf);
        DoneMsg { batch_id: w[0], pop_ns: w[1], done_ns: w[2] }
    }
}

/// The response snapshot the coordinator publishes into a robot's seqlock
/// slot.  The robot accepts it once `attempt` matches its outstanding
/// request; earlier snapshots are stale and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespMsg {
    /// The attempt this plan answers.
    pub attempt: u64,
    /// Control steps the returned plan covers.
    pub plan_steps: u64,
    /// Time the request queued before dispatch, ns.
    pub queue_wait_ns: u64,
    /// Batched service time the request's batch paid, ns.
    pub service_ns: u64,
    /// Pool index of the serving server.
    pub server: u64,
    /// When the coordinator published this snapshot, monotonic ns.
    pub publish_ns: u64,
}

impl RespMsg {
    /// Encodes the snapshot into one seqlock payload.
    pub fn encode(&self) -> [u8; MSG_SIZE] {
        bytes_of([
            self.attempt,
            self.plan_steps,
            self.queue_wait_ns,
            self.service_ns,
            self.server,
            self.publish_ns,
            0,
            0,
        ])
    }

    /// Decodes one seqlock payload.
    pub fn decode(buf: &[u8; MSG_SIZE]) -> RespMsg {
        let w = words_of(buf);
        RespMsg {
            attempt: w[0],
            plan_steps: w[1],
            queue_wait_ns: w[2],
            service_ns: w[3],
            server: w[4],
            publish_ns: w[5],
        }
    }
}

/// Byte offsets of everything in a live-run segment.
///
/// The header is a handful of bare atomics, each on its own cache line so
/// the hot link-arbiter CAS loop never false-shares with state polling:
///
/// ```text
/// 0    magic                       320  per-robot regions  (request ring + response seqlock each)
/// 64   state (init/running/abort)  ...  per-server regions (work ring + done ring each)
/// 128  start_ns (run epoch)        ...  per-robot telemetry pages
/// 192  link_free_ns (uplink        ...  per-server telemetry pages
///      arbiter clock)
/// 256  ready_count
/// ```
///
/// The telemetry pages sit after every ring/slot region so their addition
/// moved no existing offset; each is one [`corki_telemetry::PAGE_BYTES`]
/// block of monotonic `AtomicU64` counters, written by exactly one
/// process and drained by the coordinator while the run is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentLayout {
    robots: usize,
    servers: usize,
    robot_region: usize,
    server_region: usize,
    req_ring_size: usize,
    work_ring_size: usize,
    resp_slot_size: usize,
}

/// Offset of the magic word.
pub const MAGIC_OFF: usize = 0;
/// Offset of the run-state word (see [`state`]).
pub const STATE_OFF: usize = 64;
/// Offset of the published run epoch, monotonic ns.
pub const START_NS_OFF: usize = 128;
/// Offset of the shared uplink arbiter clock, monotonic ns.
pub const LINK_FREE_OFF: usize = 192;
/// Offset of the attached-children counter.
pub const READY_OFF: usize = 256;

const HEADER_SIZE: usize = 320;

impl SegmentLayout {
    /// Computes the layout of a run with `robots` robot clients and
    /// `servers` inference workers.
    pub fn new(robots: usize, servers: usize) -> Self {
        assert!(robots > 0 && servers > 0, "a live run needs at least one robot and one server");
        let req_ring_size = SpscRing::required_size(REQ_RING_CAPACITY, MSG_SIZE);
        let work_ring_size = SpscRing::required_size(WORK_RING_CAPACITY, MSG_SIZE);
        let resp_slot_size = SeqlockSlot::required_size(MSG_SIZE);
        SegmentLayout {
            robots,
            servers,
            robot_region: req_ring_size + resp_slot_size,
            server_region: 2 * work_ring_size,
            req_ring_size,
            work_ring_size,
            resp_slot_size,
        }
    }

    /// Robot clients in the run.
    pub fn robots(&self) -> usize {
        self.robots
    }

    /// Inference workers in the run.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Total bytes the segment needs.
    pub fn total_size(&self) -> usize {
        self.telemetry_base() + (self.robots + self.servers) * corki_telemetry::PAGE_BYTES
    }

    /// Offset of robot `r`'s request ring (robot pushes, coordinator pops).
    pub fn req_ring(&self, robot: usize) -> usize {
        assert!(robot < self.robots);
        HEADER_SIZE + robot * self.robot_region
    }

    /// Offset of robot `r`'s response seqlock slot (coordinator writes,
    /// robot reads).
    pub fn resp_slot(&self, robot: usize) -> usize {
        self.req_ring(robot) + self.req_ring_size
    }

    /// Offset of server `s`'s work ring (coordinator pushes, worker pops).
    pub fn work_ring(&self, server: usize) -> usize {
        assert!(server < self.servers);
        HEADER_SIZE + self.robots * self.robot_region + server * self.server_region
    }

    /// Offset of server `s`'s done ring (worker pushes, coordinator pops).
    pub fn done_ring(&self, server: usize) -> usize {
        self.work_ring(server) + self.work_ring_size
    }

    /// Where the telemetry pages start: after every ring/slot region.
    fn telemetry_base(&self) -> usize {
        HEADER_SIZE + self.robots * self.robot_region + self.servers * self.server_region
    }

    /// Offset of robot `r`'s telemetry page (robot records, coordinator
    /// drains).
    pub fn robot_telemetry(&self, robot: usize) -> usize {
        assert!(robot < self.robots, "robot {robot} out of range");
        self.telemetry_base() + robot * corki_telemetry::PAGE_BYTES
    }

    /// Offset of server `s`'s telemetry page (worker records, coordinator
    /// drains).
    pub fn server_telemetry(&self, server: usize) -> usize {
        assert!(server < self.servers, "server {server} out of range");
        self.telemetry_base() + (self.robots + server) * corki_telemetry::PAGE_BYTES
    }

    #[allow(dead_code)]
    fn assert_no_overlap(&self) {
        assert_eq!(self.resp_slot(0) + self.resp_slot_size, self.req_ring(0) + self.robot_region);
        assert_eq!(self.done_ring(0) + self.work_ring_size, self.work_ring(0) + self.server_region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robot_messages_round_trip() {
        let cases = [
            RobotMsg::Request {
                attempt: 7,
                planned_steps: 5,
                capture_ns: 1_000,
                send_ns: 2_000,
                prev_resp_recv_ns: 900,
            },
            RobotMsg::LocalPlan { latency_ns: 123, done_ns: 456 },
            RobotMsg::Finished {
                frames: 48,
                plans: 10,
                last_resp_recv_ns: 5,
                finish_ns: 6,
                link_wait_ns: 7,
                upload_ns: 8,
            },
        ];
        for msg in cases {
            let buf = msg.encode(3);
            assert_eq!(RobotMsg::decode(&buf), Ok((3, msg)));
        }
        let mut bad = [0_u8; MSG_SIZE];
        bad[0] = 99;
        assert!(RobotMsg::decode(&bad).is_err(), "unknown kinds must be rejected");
    }

    #[test]
    fn work_done_resp_messages_round_trip() {
        let work = WorkMsg { batch_id: 9, batch_len: 4, service_ns: 30_000_000, dispatch_ns: 77 };
        assert_eq!(WorkMsg::decode(&work.encode()), work);
        let done = DoneMsg { batch_id: 9, pop_ns: 80, done_ns: 30_000_080 };
        assert_eq!(DoneMsg::decode(&done.encode()), done);
        let resp = RespMsg {
            attempt: 2,
            plan_steps: 5,
            queue_wait_ns: 11,
            service_ns: 22,
            server: 1,
            publish_ns: 33,
        };
        assert_eq!(RespMsg::decode(&resp.encode()), resp);
    }

    #[test]
    fn layout_regions_are_disjoint_and_within_bounds() {
        let layout = SegmentLayout::new(8, 2);
        let mut regions: Vec<(usize, usize)> = vec![(0, HEADER_SIZE)];
        for r in 0..8 {
            regions.push((layout.req_ring(r), layout.req_ring_size));
            regions.push((layout.resp_slot(r), layout.resp_slot_size));
        }
        for s in 0..2 {
            regions.push((layout.work_ring(s), layout.work_ring_size));
            regions.push((layout.done_ring(s), layout.work_ring_size));
        }
        for r in 0..8 {
            regions.push((layout.robot_telemetry(r), corki_telemetry::PAGE_BYTES));
        }
        for s in 0..2 {
            regions.push((layout.server_telemetry(s), corki_telemetry::PAGE_BYTES));
        }
        regions.sort();
        for pair in regions.windows(2) {
            assert!(pair[0].0 + pair[0].1 <= pair[1].0, "regions {pair:?} overlap");
        }
        let (last_off, last_size) = *regions.last().unwrap();
        assert_eq!(last_off + last_size, layout.total_size(), "layout must be dense");
        for (off, _) in regions {
            assert_eq!(off % 64, 0, "every region must be cache-line aligned");
        }
    }
}
