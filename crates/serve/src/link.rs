//! The live counterpart of the DES uplink arbiter: a single shared
//! `AtomicU64` holding the monotonic-ns timestamp at which the uplink next
//! becomes free.
//!
//! The DES models the shared camera-frame uplink as a FIFO resource
//! ([`corki_accel::Arbiter`]): a transfer starting at `now` begins at
//! `max(now, free)` and occupies the link until `start + duration`.  The
//! live path replicates exactly that algebra with a compare-and-swap loop —
//! each robot process reserves its slice of link time, then *sleeps* until
//! the reservation ends, so concurrent robots serialise on the modelled
//! link just as simulated robots do on the simulated one.

use std::sync::atomic::{AtomicU64, Ordering};

/// Handle to the shared uplink clock of a live run.
#[derive(Debug)]
pub struct LiveLink<'a> {
    free_ns: &'a AtomicU64,
}

impl<'a> LiveLink<'a> {
    /// Wraps the segment's link-clock atomic.
    pub fn new(free_ns: &'a AtomicU64) -> Self {
        LiveLink { free_ns }
    }

    /// Reserves `duration_ns` of link time starting no earlier than
    /// `now_ns`; returns `(start_ns, end_ns)` of the granted slice.  The
    /// caller sleeps until `end_ns` for a foreground transfer, or walks
    /// away for a fire-and-forget background one (the reservation still
    /// delays later acquirers, which is the point: hidden uploads consume
    /// real bandwidth).
    pub fn acquire(&self, now_ns: u64, duration_ns: u64) -> (u64, u64) {
        loop {
            let free = self.free_ns.load(Ordering::Acquire);
            let start = now_ns.max(free);
            let end = start + duration_ns;
            if self
                .free_ns
                .compare_exchange_weak(free, end, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return (start, end);
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_fifo_and_non_overlapping() {
        let clock = AtomicU64::new(0);
        let link = LiveLink::new(&clock);
        let (s1, e1) = link.acquire(100, 50);
        assert_eq!((s1, e1), (100, 150), "an idle link grants immediately");
        let (s2, e2) = link.acquire(120, 30);
        assert_eq!((s2, e2), (150, 180), "a busy link queues the transfer");
        let (s3, _) = link.acquire(500, 10);
        assert_eq!(s3, 500, "an idle link never delays");
    }

    #[test]
    fn concurrent_acquirers_never_overlap() {
        let clock = AtomicU64::new(0);
        let total = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let link = LiveLink::new(&clock);
                    for _ in 0..1000 {
                        let (start, end) = link.acquire(0, 7);
                        assert_eq!(end - start, 7);
                        total.fetch_add(end - start, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            clock.load(Ordering::Relaxed),
            total.load(Ordering::Relaxed),
            "the link clock must advance by exactly the granted time (no overlap, no gaps)"
        );
    }
}
