//! Proof that the in-path recorder is allocation-free: a counting global
//! allocator wraps the system allocator, and a burst of `record()` and
//! timeline `event()` calls — against both the plain-memory recorder and
//! the shared-memory page view — must leave the allocation counter
//! untouched. This is the property that makes "always-on" honest: the
//! hot serving path never pays an allocator visit for telemetry.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use corki_telemetry::{EventKind, Recorder, ShmTelemetry, Stage, PAGE_WORDS};

/// Counts every allocation and reallocation routed through the global
/// allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocation_count() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn recorder_record_performs_zero_allocations() {
    // Construction allocates (the timeline vector); recording must not.
    let mut recorder = Recorder::new(8);
    let before = allocation_count();
    for i in 0..4096_u64 {
        for stage in Stage::ALL {
            recorder.record(stage, i * 1_000);
        }
        recorder.record_ms(Stage::ControlStep, 33.3);
        recorder.event(
            (i % 8) as usize,
            i * 1_000_000,
            if i % 2 == 0 { EventKind::Plan } else { EventKind::LocalPlan },
            i * 500,
        );
    }
    let after = allocation_count();
    assert_eq!(after - before, 0, "in-path record()/event() must not touch the allocator");
}

#[test]
fn shm_record_performs_zero_allocations() {
    let words: Vec<AtomicU64> = (0..PAGE_WORDS).map(|_| AtomicU64::new(0)).collect();
    let page = ShmTelemetry::new(&words);
    let before = allocation_count();
    for i in 0..4096_u64 {
        for stage in Stage::ALL {
            page.record(stage, i * 1_000);
        }
        page.event(i * 1_000_000, EventKind::Plan, i * 500);
    }
    let after = allocation_count();
    assert_eq!(after - before, 0, "shared-memory record()/event() must not touch the allocator");
}
