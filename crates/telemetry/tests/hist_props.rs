//! Property tests for the telemetry histograms: merge is a commutative
//! monoid (so per-robot/per-worker/per-shard recordings fold into one
//! fleet view in any order), and the log2-bucketed quantile never strays
//! more than one bucket from the exact nearest-rank estimate.

use corki_telemetry::{bucket_of, percentile, Histogram, BUCKETS};
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> Histogram {
    let mut hist = Histogram::new();
    for &ns in samples {
        hist.record(ns);
    }
    hist
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..u64::MAX, 64),
        b in proptest::collection::vec(0u64..u64::MAX, 64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX, 48),
        b in proptest::collection::vec(0u64..u64::MAX, 48),
        c in proptest::collection::vec(0u64..u64::MAX, 48),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ∪ b) ∪ c
        let mut left = ha;
        left.merge(&hb);
        left.merge(&hc);
        // a ∪ (b ∪ c)
        let mut bc = hb;
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(left, right);
        // And merging equals recording the concatenation directly.
        let mut all: Vec<u64> = a;
        all.extend(b);
        all.extend(c);
        prop_assert_eq!(left, hist_of(&all));
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact_nearest_rank(
        // In-range samples only: dropped values are by design absent from
        // the histogram quantile, and the bucket range covers every
        // latency a run can produce.
        samples in proptest::collection::vec(0u64..(1u64 << 47), 96),
        q in 0.0f64..1.0,
    ) {
        let hist = hist_of(&samples);
        let as_f64: Vec<f64> = samples.iter().map(|&ns| ns as f64).collect();
        let exact = percentile(&as_f64, q) as u64;
        let bucketed = hist.quantile_ns(q);
        let exact_bucket = bucket_of(exact).expect("exact rank is in range");
        let hist_bucket = bucket_of(bucketed).expect("bucket ceiling is in range");
        prop_assert!(
            hist_bucket.abs_diff(exact_bucket) <= 1,
            "histogram quantile {bucketed} (bucket {hist_bucket}) strayed from exact \
             nearest-rank {exact} (bucket {exact_bucket}) at q={q}"
        );
        // The bucketed estimate is the ceiling of its bucket, so it never
        // underestimates the exact rank's bucket floor.
        prop_assert!(bucketed >= exact || hist_bucket == exact_bucket);
    }

    #[test]
    fn count_sum_and_dropped_are_exact(
        samples in proptest::collection::vec(0u64..(1u64 << 50), 96),
    ) {
        let hist = hist_of(&samples);
        let in_range: Vec<u64> =
            samples.iter().copied().filter(|&ns| bucket_of(ns).is_some()).collect();
        prop_assert_eq!(hist.count(), in_range.len() as u64);
        prop_assert_eq!(hist.dropped(), (samples.len() - in_range.len()) as u64);
        prop_assert_eq!(hist.sum_ns(), in_range.iter().sum::<u64>());
        let _ = BUCKETS;
    }
}
