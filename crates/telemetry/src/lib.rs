//! Always-on in-path performance recorder for the Corki fleet runtimes.
//!
//! Both drivers of a scenario — the deterministic DES engine and the live
//! shared-memory path — instrument the *same* six-stage taxonomy of a
//! served plan:
//!
//! 1. **encode** — frame upload transfer time on the shared uplink,
//! 2. **uplink queue** — wait for the shared-link arbiter grant,
//! 3. **pool queue** — wait in the pool scheduler before dispatch,
//! 4. **batch service** — the batched forward pass on a server,
//! 5. **downlink** — plan publish until the robot observes it,
//! 6. **control step** — one executed step of the returned plan.
//!
//! Each stage feeds a fixed-size log2-bucketed [`Histogram`]: recording is
//! allocation-free and O(1), merging is associative and commutative (so
//! per-robot, per-worker and per-shard recordings fold into one fleet-wide
//! view in any order), and values too large for the bucket range land in an
//! explicit dropped counter instead of silently saturating the top bucket.
//! A bounded per-robot [`Timeline`] keeps the first few plan events of each
//! robot so a single robot's experience stays inspectable at fleet scale.
//!
//! The same layout exists in two homes: [`Recorder`] owns plain memory for
//! the single-process DES, and [`ShmTelemetry`] views a page of
//! `AtomicU64` words inside the mmap'd live segment, written lock-free by
//! robot/worker processes and drained by the coordinator mid-run (every
//! word is a monotonic counter, so a racy snapshot is merely *slightly
//! stale*, never torn). Rendering both into one [`TelemetryReport`] is what
//! makes the live-vs-DES per-stage agreement check possible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;
mod shm;
mod stats;

pub use report::{RobotTimeline, StageSummary, TelemetryReport, TimelineEventRow};
pub use shm::{ShmTelemetry, PAGE_BYTES, PAGE_WORDS, STAGE_WORDS, TIMELINE_WORDS};
pub use stats::{mean, ns_of_ms, percentile, quantile_index};

/// Number of log2 buckets per stage histogram. Bucket 0 holds exact
/// zeros; bucket `b ≥ 1` holds `[2^(b-1), 2^b)` nanoseconds, so the top
/// bucket ends at 2^47 ns ≈ 39 hours — far beyond any latency a run can
/// produce without being wedged. Larger values are *dropped* (counted,
/// not recorded).
pub const BUCKETS: usize = 48;

/// Capacity of one per-robot timeline: the first `TIMELINE_CAP` plan
/// events are kept, later ones only counted. Append-only first-N keeps
/// the shared-memory variant tearing-free without a ring discipline.
pub const TIMELINE_CAP: usize = 32;

/// How many robots keep a timeline in a [`Recorder`]. Matches the live
/// path's per-segment robot cap; a 10k-robot DES run keeps timelines for
/// the first 64 robots and drops (counts) nothing — robots beyond the cap
/// simply have no timeline.
pub const MAX_TIMELINES: usize = 64;

/// One stage of the served-plan taxonomy shared by the DES and the live
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Frame upload transfer time on the shared uplink.
    Encode,
    /// Wait for the shared-link arbiter grant.
    UplinkQueue,
    /// Wait in the pool scheduler before batch dispatch.
    PoolQueue,
    /// Batched forward pass on an inference server.
    BatchService,
    /// Plan publish until the robot observes it (the DES models this as
    /// instantaneous and records zeros).
    Downlink,
    /// One executed control step of the returned plan.
    ControlStep,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 6;

    /// Every stage, in canonical report order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Encode,
        Stage::UplinkQueue,
        Stage::PoolQueue,
        Stage::BatchService,
        Stage::Downlink,
        Stage::ControlStep,
    ];

    /// Stable index of the stage inside per-stage arrays and shm pages.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The snake_case label used in reports, JSON and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Encode => "encode",
            Stage::UplinkQueue => "uplink_queue",
            Stage::PoolQueue => "pool_queue",
            Stage::BatchService => "batch_service",
            Stage::Downlink => "downlink",
            Stage::ControlStep => "control_step",
        }
    }
}

/// Bucket index of a nanosecond value, or `None` when the value exceeds
/// the histogram range and must be dropped.
pub fn bucket_of(ns: u64) -> Option<usize> {
    // bit_width: 0 → bucket 0, [2^(b-1), 2^b) → bucket b.
    let bucket = (u64::BITS - ns.leading_zeros()) as usize;
    (bucket < BUCKETS).then_some(bucket)
}

/// Largest value a bucket can hold — the conservative (upper-bound)
/// representative used for quantiles.
pub fn bucket_ceil_ns(bucket: usize) -> u64 {
    debug_assert!(bucket < BUCKETS);
    if bucket == 0 {
        0
    } else {
        (1_u64 << bucket) - 1
    }
}

/// A fixed-size log2-bucketed latency histogram over nanoseconds.
///
/// `record` is allocation-free and O(1); `merge` is associative and
/// commutative; the exact sum of recorded values is kept alongside the
/// buckets so means stay exact even though quantiles are bucketed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    sum_ns: u64,
    dropped: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { counts: [0; BUCKETS], sum_ns: 0, dropped: 0 }
    }

    /// Rebuilds a histogram from raw words — the drain path out of a
    /// shared-memory telemetry page.
    pub fn from_raw(counts: [u64; BUCKETS], sum_ns: u64, dropped: u64) -> Self {
        Histogram { counts, sum_ns, dropped }
    }

    /// Records one value, or counts it as dropped when it exceeds the
    /// bucket range.
    pub fn record(&mut self, ns: u64) {
        match bucket_of(ns) {
            Some(bucket) => {
                self.counts[bucket] += 1;
                self.sum_ns += ns;
            }
            None => self.dropped += 1,
        }
    }

    /// Folds another histogram into this one. Associative and
    /// commutative: bucket counts, sums and dropped counters all add.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum_ns += other.sum_ns;
        self.dropped += other.dropped;
    }

    /// Number of recorded (non-dropped) samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of samples outside the bucket range.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exact sum of all recorded values.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Exact mean of the recorded values (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / count as f64
        }
    }

    /// Nearest-rank quantile, resolved to the upper bound of the bucket
    /// holding that rank — within one log2 bucket of the exact
    /// nearest-rank value by construction, and conservative (never an
    /// underestimate of the bucket the sample landed in).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let index = quantile_index(total as usize, q) as u64;
        let mut seen = 0_u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen > index {
                return bucket_ceil_ns(bucket);
            }
        }
        bucket_ceil_ns(BUCKETS - 1)
    }
}

/// What a timeline event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An offloaded plan completed end-to-end (value: e2e latency).
    Plan,
    /// An on-robot plan completed (value: local inference latency).
    LocalPlan,
}

impl EventKind {
    /// Wire code of the kind inside shm pages (0 is reserved as "empty").
    pub fn code(self) -> u64 {
        match self {
            EventKind::Plan => 1,
            EventKind::LocalPlan => 2,
        }
    }

    /// Decodes a wire code back into a kind.
    pub fn from_code(code: u64) -> Option<EventKind> {
        match code {
            1 => Some(EventKind::Plan),
            2 => Some(EventKind::LocalPlan),
            _ => None,
        }
    }

    /// The snake_case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Plan => "plan",
            EventKind::LocalPlan => "local_plan",
        }
    }
}

/// One entry of a per-robot timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// When the event happened (ns since the run start / process clock).
    pub at_ns: u64,
    /// What the event marks.
    pub kind: EventKind,
    /// The latency the event carries.
    pub value_ns: u64,
}

/// A bounded, append-only per-robot event timeline: the first
/// [`TIMELINE_CAP`] events are kept verbatim, later ones are counted as
/// dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    events: [TimelineEvent; TIMELINE_CAP],
    len: usize,
    dropped: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new()
    }
}

impl Timeline {
    /// An empty timeline.
    pub const fn new() -> Self {
        const EMPTY: TimelineEvent = TimelineEvent { at_ns: 0, kind: EventKind::Plan, value_ns: 0 };
        Timeline { events: [EMPTY; TIMELINE_CAP], len: 0, dropped: 0 }
    }

    /// Rebuilds a timeline from drained events plus a dropped count (the
    /// drain path out of a shared-memory page). Events beyond the
    /// capacity are folded into the dropped counter.
    pub fn from_parts(events: &[TimelineEvent], dropped: u64) -> Self {
        let mut timeline = Timeline::new();
        timeline.dropped = dropped;
        for event in events {
            timeline.push(event.at_ns, event.kind, event.value_ns);
        }
        timeline
    }

    /// Appends one event, or counts it as dropped once full.
    pub fn push(&mut self, at_ns: u64, kind: EventKind, value_ns: u64) {
        if self.len < TIMELINE_CAP {
            self.events[self.len] = TimelineEvent { at_ns, kind, value_ns };
            self.len += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events[..self.len]
    }

    /// Number of events that arrived after the timeline filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Folds another timeline in: keeps events while room remains (merge
    /// order decides which survive), counts the rest as dropped.
    pub fn merge(&mut self, other: &Timeline) {
        self.dropped += other.dropped;
        for event in other.events() {
            self.push(event.at_ns, event.kind, event.value_ns);
        }
    }
}

/// The plain-memory recorder used by the single-process DES driver: one
/// histogram per stage plus bounded timelines for the first
/// [`MAX_TIMELINES`] robots.
#[derive(Clone, Debug)]
pub struct Recorder {
    stages: [Histogram; Stage::COUNT],
    timelines: Vec<Timeline>,
}

impl Recorder {
    /// A recorder for a fleet of `robots` robots (timelines are kept for
    /// the first [`MAX_TIMELINES`] of them).
    pub fn new(robots: usize) -> Self {
        Recorder {
            stages: [Histogram::new(); Stage::COUNT],
            timelines: vec![Timeline::new(); robots.min(MAX_TIMELINES)],
        }
    }

    /// Records one nanosecond sample into a stage. Allocation-free.
    pub fn record(&mut self, stage: Stage, ns: u64) {
        self.stages[stage.index()].record(ns);
    }

    /// Records one millisecond sample (the DES clock unit) into a stage.
    pub fn record_ms(&mut self, stage: Stage, ms: f64) {
        self.record(stage, ns_of_ms(ms));
    }

    /// Appends a timeline event for `robot` (silently skipped for robots
    /// beyond the timeline cap — their plans still feed the histograms).
    pub fn event(&mut self, robot: usize, at_ns: u64, kind: EventKind, value_ns: u64) {
        if let Some(timeline) = self.timelines.get_mut(robot) {
            timeline.push(at_ns, kind, value_ns);
        }
    }

    /// The histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Folds a drained stage histogram in (the coordinator's merge path).
    pub fn merge_stage(&mut self, stage: Stage, histogram: &Histogram) {
        self.stages[stage.index()].merge(histogram);
    }

    /// Folds a drained per-robot timeline in, replacing the robot's
    /// (necessarily empty on the coordinator side) local timeline.
    pub fn merge_timeline(&mut self, robot: usize, timeline: &Timeline) {
        if let Some(mine) = self.timelines.get_mut(robot) {
            mine.merge(timeline);
        }
    }

    /// Folds a whole other recorder in. Associative and commutative on
    /// the stage histograms; timelines keep first-comers per robot.
    pub fn merge(&mut self, other: &Recorder) {
        for stage in Stage::ALL {
            self.merge_stage(stage, other.stage(stage));
        }
        for (robot, timeline) in other.timelines.iter().enumerate() {
            self.merge_timeline(robot, timeline);
        }
    }

    /// Renders the recorder into the serializable report shared by
    /// `experiments fleet` and `experiments serve`.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport::of(&self.stages, &self.timelines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_edges() {
        assert_eq!(bucket_of(0), Some(0));
        assert_eq!(bucket_of(1), Some(1));
        assert_eq!(bucket_of(2), Some(2));
        assert_eq!(bucket_of(3), Some(2));
        assert_eq!(bucket_of((1 << 46) - 1), Some(46));
        assert_eq!(bucket_of(1 << 46), Some(47));
        assert_eq!(bucket_of((1 << 47) - 1), Some(47));
        assert_eq!(bucket_of(1 << 47), None, "out-of-range values are dropped, not saturated");
        assert_eq!(bucket_of(u64::MAX), None);
    }

    #[test]
    fn record_and_quantiles() {
        let mut hist = Histogram::new();
        assert_eq!(hist.quantile_ns(0.5), 0, "empty histogram quantile is 0");
        for ns in [100, 200, 400, 800, 100_000] {
            hist.record(ns);
        }
        hist.record(u64::MAX);
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.dropped(), 1);
        assert_eq!(hist.sum_ns(), 101_500);
        assert!((hist.mean_ns() - 20_300.0).abs() < 1e-9);
        // p50 of [100, 200, 400, 800, 100000] is 400 → bucket 9 ceil 511.
        assert_eq!(hist.quantile_ns(0.5), 511);
        // p100 lands in the bucket of 100000 (bucket 17, ceil 131071).
        assert_eq!(hist.quantile_ns(1.0), (1 << 17) - 1);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        a.record(u64::MAX);
        b.record(10_000);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.dropped(), 1);
        assert_eq!(merged.sum_ns(), 10_010);
    }

    #[test]
    fn timeline_caps_and_counts() {
        let mut timeline = Timeline::new();
        for i in 0..(TIMELINE_CAP as u64 + 5) {
            timeline.push(i, EventKind::Plan, i * 2);
        }
        assert_eq!(timeline.events().len(), TIMELINE_CAP);
        assert_eq!(timeline.dropped(), 5);
        assert_eq!(
            timeline.events()[3],
            TimelineEvent { at_ns: 3, kind: EventKind::Plan, value_ns: 6 }
        );
    }

    #[test]
    fn recorder_report_has_all_stages_in_order() {
        let mut recorder = Recorder::new(2);
        recorder.record(Stage::Encode, 1_000);
        recorder.record_ms(Stage::ControlStep, 33.0);
        recorder.event(0, 5_000_000, EventKind::Plan, 40_000_000);
        recorder.event(9, 1, EventKind::Plan, 1); // beyond the fleet: ignored
        let report = recorder.report();
        let labels: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "encode",
                "uplink_queue",
                "pool_queue",
                "batch_service",
                "downlink",
                "control_step"
            ]
        );
        assert_eq!(report.stages[0].samples, 1);
        assert_eq!(report.timelines.len(), 2);
        assert_eq!(report.timelines[0].events.len(), 1);
        assert_eq!(report.timelines[0].events[0].kind, "plan");
        assert!((report.timelines[0].events[0].value_ms - 40.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_merge_is_stagewise() {
        let mut a = Recorder::new(1);
        let mut b = Recorder::new(1);
        a.record(Stage::PoolQueue, 100);
        b.record(Stage::PoolQueue, 200);
        b.event(0, 7, EventKind::LocalPlan, 9);
        a.merge(&b);
        assert_eq!(a.stage(Stage::PoolQueue).count(), 2);
        assert_eq!(a.report().timelines[0].events.len(), 1);
    }
}
