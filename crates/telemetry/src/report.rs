//! The serializable rendering of a recorder — the one report shape shared
//! by `experiments fleet` (DES) and `experiments serve` (live), which is
//! what makes per-stage live-vs-DES agreement checkable.

use serde::{Deserialize, Serialize};

use crate::{Histogram, Stage, Timeline};

/// One stage's histogram, rendered. Quantiles are log2-bucket upper
/// bounds (within one bucket of exact nearest-rank); the mean is exact.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct StageSummary {
    /// Stage label (see [`Stage::label`]).
    pub stage: String,
    /// Recorded samples.
    pub samples: u64,
    /// Samples outside the bucket range — counted, never silently
    /// saturated into the top bucket.
    pub dropped: u64,
    /// Exact mean of the recorded samples, in nanoseconds.
    pub mean_ns: f64,
    /// Bucketed nearest-rank p50, in nanoseconds.
    pub p50_ns: u64,
    /// Bucketed nearest-rank p99, in nanoseconds.
    pub p99_ns: u64,
    /// Bucketed nearest-rank p99.9, in nanoseconds.
    pub p999_ns: u64,
}

impl StageSummary {
    /// Renders one stage histogram.
    pub fn of(stage: Stage, histogram: &Histogram) -> Self {
        StageSummary {
            stage: stage.label().to_owned(),
            samples: histogram.count(),
            dropped: histogram.dropped(),
            mean_ns: histogram.mean_ns(),
            p50_ns: histogram.quantile_ns(0.50),
            p99_ns: histogram.quantile_ns(0.99),
            p999_ns: histogram.quantile_ns(0.999),
        }
    }
}

/// One rendered timeline event (milliseconds for human readability; the
/// raw recorder keeps nanoseconds).
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct TimelineEventRow {
    /// When the event happened, ms since the run/process start.
    pub at_ms: f64,
    /// Event kind label (`plan` or `local_plan`).
    pub kind: String,
    /// The latency the event carries, in ms.
    pub value_ms: f64,
}

/// One robot's rendered timeline.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct RobotTimeline {
    /// Robot index within the fleet.
    pub robot: usize,
    /// Events that arrived after the timeline filled.
    pub dropped: u64,
    /// The recorded events, oldest first.
    pub events: Vec<TimelineEventRow>,
}

/// The full telemetry report of one run: all six stages in canonical
/// order plus the bounded per-robot timelines.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Default)]
#[serde(deny_unknown_fields)]
pub struct TelemetryReport {
    /// Per-stage summaries, in [`Stage::ALL`] order.
    pub stages: Vec<StageSummary>,
    /// Per-robot timelines (first robots of the fleet only).
    pub timelines: Vec<RobotTimeline>,
}

impl TelemetryReport {
    /// Renders stage histograms plus timelines into a report.
    pub fn of(stages: &[Histogram; Stage::COUNT], timelines: &[Timeline]) -> Self {
        TelemetryReport {
            stages: Stage::ALL
                .iter()
                .map(|&stage| StageSummary::of(stage, &stages[stage.index()]))
                .collect(),
            timelines: timelines
                .iter()
                .enumerate()
                .map(|(robot, timeline)| RobotTimeline {
                    robot,
                    dropped: timeline.dropped(),
                    events: timeline
                        .events()
                        .iter()
                        .map(|event| TimelineEventRow {
                            at_ms: event.at_ns as f64 / 1e6,
                            kind: event.kind.label().to_owned(),
                            value_ms: event.value_ns as f64 / 1e6,
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Looks a stage summary up by its label.
    pub fn stage(&self, label: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|summary| summary.stage == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Recorder};

    #[test]
    fn report_round_trips_through_json() {
        let mut recorder = Recorder::new(1);
        recorder.record(Stage::BatchService, 42_000_000);
        recorder.event(0, 1_000_000, EventKind::Plan, 42_000_000);
        let report = recorder.report();
        let json = serde_json::to_string(&report).expect("report serializes");
        let back: TelemetryReport = serde_json::from_str(&json).expect("report parses");
        assert_eq!(back, report);
        assert_eq!(back.stage("batch_service").expect("stage present").samples, 1);
        assert!(back.stage("nonesuch").is_none());
    }
}
