//! The shared-memory home of a recorder: one telemetry *page* of
//! `AtomicU64` words per live robot/worker process.
//!
//! The page is written lock-free by exactly one process (single-writer
//! discipline, `fetch_add`/`store` with relaxed ordering) and drained by
//! the coordinator *while the run is live*: every histogram word is a
//! monotonic counter, so a concurrent snapshot is at worst slightly stale
//! — it can never tear a bucket or double-count. Timeline entries are
//! append-only with a release-published length, so a drain that observes
//! length `n` also observes all `n` entries.
//!
//! The module is deliberately ignorant of *where* the words live: the
//! live path hands it a slice inside the mmap'd `/dev/shm` segment (via
//! `corki-ipc`), the tests and benches hand it a plain boxed slice. All
//! `unsafe` stays in `corki-ipc`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{
    bucket_of, EventKind, Histogram, Stage, Timeline, TimelineEvent, BUCKETS, TIMELINE_CAP,
};

/// Words of one stage histogram inside a page: the buckets, the exact
/// sum, and the dropped counter.
pub const STAGE_WORDS: usize = BUCKETS + 2;

/// Words of the timeline region: length, dropped counter, and three words
/// (at, kind, value) per event slot.
pub const TIMELINE_WORDS: usize = 2 + 3 * TIMELINE_CAP;

/// Words of one whole telemetry page.
pub const PAGE_WORDS: usize = Stage::COUNT * STAGE_WORDS + TIMELINE_WORDS;

/// Bytes of one telemetry page inside a segment, rounded up to the cache
/// line so consecutive pages of different writer processes never share a
/// line.
pub const PAGE_BYTES: usize = (PAGE_WORDS * 8).div_ceil(64) * 64;

/// Word offsets inside a page.
const SUM_WORD: usize = BUCKETS;
const DROPPED_WORD: usize = BUCKETS + 1;
const TIMELINE_BASE: usize = Stage::COUNT * STAGE_WORDS;
const TIMELINE_LEN_WORD: usize = TIMELINE_BASE;
const TIMELINE_DROPPED_WORD: usize = TIMELINE_BASE + 1;
const TIMELINE_EVENTS_WORD: usize = TIMELINE_BASE + 2;

/// A view of one telemetry page: [`PAGE_WORDS`] atomic words, recorded
/// into by one process and snapshot by the coordinator.
pub struct ShmTelemetry<'a> {
    words: &'a [AtomicU64],
}

impl<'a> ShmTelemetry<'a> {
    /// Wraps a page. The slice must hold at least [`PAGE_WORDS`] words
    /// (a freshly created segment page is all-zero, i.e. empty).
    pub fn new(words: &'a [AtomicU64]) -> Self {
        assert!(
            words.len() >= PAGE_WORDS,
            "telemetry page needs {PAGE_WORDS} words, got {}",
            words.len()
        );
        ShmTelemetry { words }
    }

    fn stage_base(stage: Stage) -> usize {
        stage.index() * STAGE_WORDS
    }

    /// Records one value into a stage histogram. Lock-free,
    /// allocation-free: one or two relaxed `fetch_add`s.
    pub fn record(&self, stage: Stage, ns: u64) {
        let base = Self::stage_base(stage);
        match bucket_of(ns) {
            Some(bucket) => {
                self.words[base + bucket].fetch_add(1, Ordering::Relaxed);
                self.words[base + SUM_WORD].fetch_add(ns, Ordering::Relaxed);
            }
            None => {
                self.words[base + DROPPED_WORD].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Appends one timeline event, or counts it as dropped once the page
    /// is full. Single-writer: the length word is only ever advanced by
    /// the owning process, with a release store so a concurrent drain
    /// that sees the new length also sees the entry words.
    pub fn event(&self, at_ns: u64, kind: EventKind, value_ns: u64) {
        let len = self.words[TIMELINE_LEN_WORD].load(Ordering::Relaxed) as usize;
        if len >= TIMELINE_CAP {
            self.words[TIMELINE_DROPPED_WORD].fetch_add(1, Ordering::Relaxed);
            return;
        }
        let entry = TIMELINE_EVENTS_WORD + 3 * len;
        self.words[entry].store(at_ns, Ordering::Relaxed);
        self.words[entry + 1].store(kind.code(), Ordering::Relaxed);
        self.words[entry + 2].store(value_ns, Ordering::Relaxed);
        self.words[TIMELINE_LEN_WORD].store(len as u64 + 1, Ordering::Release);
    }

    /// Snapshots one stage histogram. Safe concurrently with a writer:
    /// monotonic counters mean the result is a valid (possibly slightly
    /// stale) histogram, with at most the very latest sample's count and
    /// sum split across two drains.
    pub fn snapshot_stage(&self, stage: Stage) -> Histogram {
        let base = Self::stage_base(stage);
        let mut counts = [0_u64; BUCKETS];
        for (bucket, count) in counts.iter_mut().enumerate() {
            *count = self.words[base + bucket].load(Ordering::Relaxed);
        }
        Histogram::from_raw(
            counts,
            self.words[base + SUM_WORD].load(Ordering::Relaxed),
            self.words[base + DROPPED_WORD].load(Ordering::Relaxed),
        )
    }

    /// Snapshots the timeline: acquire-loads the published length, then
    /// reads exactly that many (immutable once published) entries.
    pub fn snapshot_timeline(&self) -> Timeline {
        let len =
            (self.words[TIMELINE_LEN_WORD].load(Ordering::Acquire) as usize).min(TIMELINE_CAP);
        let mut events =
            [TimelineEvent { at_ns: 0, kind: EventKind::Plan, value_ns: 0 }; TIMELINE_CAP];
        let mut kept = 0;
        for slot in 0..len {
            let entry = TIMELINE_EVENTS_WORD + 3 * slot;
            // Unknown kind codes (impossible under the single-writer
            // protocol, conceivable from a corrupt segment) are skipped
            // rather than invented.
            if let Some(kind) = EventKind::from_code(self.words[entry + 1].load(Ordering::Relaxed))
            {
                events[kept] = TimelineEvent {
                    at_ns: self.words[entry].load(Ordering::Relaxed),
                    kind,
                    value_ns: self.words[entry + 2].load(Ordering::Relaxed),
                };
                kept += 1;
            }
        }
        Timeline::from_parts(
            &events[..kept],
            self.words[TIMELINE_DROPPED_WORD].load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> Vec<AtomicU64> {
        (0..PAGE_WORDS).map(|_| AtomicU64::new(0)).collect()
    }

    #[test]
    fn page_constants_line_up() {
        assert_eq!(STAGE_WORDS, 50);
        assert_eq!(PAGE_WORDS, 6 * 50 + 2 + 96);
        assert_eq!(PAGE_BYTES % 64, 0);
        const { assert!(PAGE_BYTES >= PAGE_WORDS * 8) };
    }

    #[test]
    fn shm_record_matches_plain_histogram() {
        let words = page();
        let shm = ShmTelemetry::new(&words);
        let mut plain = Histogram::new();
        for ns in [0, 1, 999, 40_000_000, u64::MAX] {
            shm.record(Stage::BatchService, ns);
            plain.record(ns);
        }
        assert_eq!(shm.snapshot_stage(Stage::BatchService), plain);
        // Other stages stay untouched.
        assert_eq!(shm.snapshot_stage(Stage::Encode), Histogram::new());
    }

    #[test]
    fn shm_timeline_round_trips_and_caps() {
        let words = page();
        let shm = ShmTelemetry::new(&words);
        for i in 0..(TIMELINE_CAP as u64 + 3) {
            shm.event(i, if i % 2 == 0 { EventKind::Plan } else { EventKind::LocalPlan }, i * 10);
        }
        let timeline = shm.snapshot_timeline();
        assert_eq!(timeline.events().len(), TIMELINE_CAP);
        assert_eq!(timeline.dropped(), 3);
        assert_eq!(timeline.events()[1].kind, EventKind::LocalPlan);
        assert_eq!(timeline.events()[1].value_ns, 10);
    }

    #[test]
    #[should_panic(expected = "telemetry page needs")]
    fn short_page_is_rejected() {
        let words: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(0)).collect();
        let _ = ShmTelemetry::new(&words);
    }
}
