//! The one nearest-rank quantile estimator shared by every reporting
//! surface: pipeline summaries, fleet summaries, live transit stats and
//! the telemetry histograms all resolve ranks through [`quantile_index`].

/// Mean of a sample set.
///
/// Hardened for the serialisation path: an empty sample set yields `0.0`
/// (never `NaN` from `0/0`), so summaries built from trimmed or degenerate
/// runs always survive a JSON round trip.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Index of the nearest-rank quantile `q` in a sorted sample of `len`
/// elements — the one estimator shared by pipeline, fleet and histogram
/// statistics. `q` outside `[0, 1]` (or `NaN`) is clamped.
///
/// # Panics
///
/// Panics (in debug builds, via underflow) for `len = 0`; callers handle
/// the empty case first.
pub fn quantile_index(len: usize, q: f64) -> usize {
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    (((len as f64 - 1.0) * q).round() as usize).min(len - 1)
}

/// Nearest-rank quantile `q` of a sample set.
///
/// Edge cases are pinned so no `NaN`/`inf` can leak into serialized
/// reports: `n = 0` yields `0.0`, `n = 1` yields the single sample for any
/// `q`, and `q` outside `[0, 1]` (or `NaN`) is clamped.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    // Selection, not a full sort: the nearest-rank estimator needs exactly
    // one order statistic, and the k-th order statistic is the same value
    // whether found by sorting or partitioning — O(n) instead of
    // O(n log n) on the fleet-scale sample vectors.
    let mut scratch = values.to_vec();
    let index = quantile_index(scratch.len(), q);
    let (_, kth, _) = scratch.select_nth_unstable_by(index, |a, b| a.total_cmp(b));
    *kth
}

/// Milliseconds (the DES clock unit) to nanoseconds (the telemetry and
/// live-clock unit), saturating negatives to zero — the same rounding the
/// live path uses to convert modelled constants.
pub fn ns_of_ms(ms: f64) -> u64 {
    (ms * 1e6).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn percentile_edge_cases_are_pinned() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], f64::NAN), 7.0);
        assert_eq!(percentile(&[7.0], 2.0), 7.0);
        let values = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&values, 0.5), 3.0);
        assert_eq!(percentile(&values, 1.0), 5.0);
    }

    #[test]
    fn quantile_index_matches_sorted_percentile() {
        let mut values: Vec<f64> = (0..100).map(|i| (i * 37 % 100) as f64).collect();
        let by_selection = percentile(&values, 0.99);
        values.sort_by(f64::total_cmp);
        assert_eq!(by_selection, values[quantile_index(values.len(), 0.99)]);
    }

    #[test]
    fn ns_of_ms_rounds_and_floors() {
        assert_eq!(ns_of_ms(1.0), 1_000_000);
        assert_eq!(ns_of_ms(0.5), 500_000);
        assert_eq!(ns_of_ms(-3.0), 0);
    }
}
