//! Unit quaternions for representing orientations.

use crate::{Mat3, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A unit quaternion `w + xi + yj + zk` representing a rotation in SO(3).
///
/// Quaternions are used by the simulator to interpolate end-effector
/// orientations smoothly (slerp) and to avoid accumulating the numerical
/// drift of chained rotation matrices.
///
/// ```
/// use corki_math::{UnitQuaternion, Vec3};
/// let q = UnitQuaternion::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2);
/// let v = q.rotate(Vec3::X);
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitQuaternion {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x component.
    pub x: f64,
    /// Vector part, y component.
    pub y: f64,
    /// Vector part, z component.
    pub z: f64,
}

impl Default for UnitQuaternion {
    fn default() -> Self {
        UnitQuaternion::identity()
    }
}

impl UnitQuaternion {
    /// The identity rotation.
    pub const fn identity() -> Self {
        UnitQuaternion { w: 1.0, x: 0.0, y: 0.0, z: 0.0 }
    }

    /// Builds a quaternion from raw components, normalising them.
    ///
    /// # Panics
    ///
    /// Panics if all components are (nearly) zero.
    pub fn new_normalized(w: f64, x: f64, y: f64, z: f64) -> Self {
        let n = (w * w + x * x + y * y + z * z).sqrt();
        assert!(n > 1e-12, "cannot normalise a zero quaternion");
        UnitQuaternion { w: w / n, x: x / n, y: y / n, z: z / n }
    }

    /// Rotation of `angle` radians about `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is (nearly) zero.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let a = axis.normalize();
        let (s, c) = (angle * 0.5).sin_cos();
        UnitQuaternion { w: c, x: a.x * s, y: a.y * s, z: a.z * s }
    }

    /// Builds a quaternion from intrinsic XYZ (roll, pitch, yaw) Euler angles.
    pub fn from_euler_xyz(roll: f64, pitch: f64, yaw: f64) -> Self {
        UnitQuaternion::from_rotation_matrix(&Mat3::from_euler_xyz(roll, pitch, yaw))
    }

    /// Builds a quaternion from a rotation matrix (Shepperd's method).
    pub fn from_rotation_matrix(r: &Mat3) -> Self {
        let m = &r.m;
        let trace = r.trace();
        if trace > 0.0 {
            let s = (trace + 1.0).sqrt() * 2.0;
            UnitQuaternion::new_normalized(
                0.25 * s,
                (m[2][1] - m[1][2]) / s,
                (m[0][2] - m[2][0]) / s,
                (m[1][0] - m[0][1]) / s,
            )
        } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
            let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
            UnitQuaternion::new_normalized(
                (m[2][1] - m[1][2]) / s,
                0.25 * s,
                (m[0][1] + m[1][0]) / s,
                (m[0][2] + m[2][0]) / s,
            )
        } else if m[1][1] > m[2][2] {
            let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
            UnitQuaternion::new_normalized(
                (m[0][2] - m[2][0]) / s,
                (m[0][1] + m[1][0]) / s,
                0.25 * s,
                (m[1][2] + m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
            UnitQuaternion::new_normalized(
                (m[1][0] - m[0][1]) / s,
                (m[0][2] + m[2][0]) / s,
                (m[1][2] + m[2][1]) / s,
                0.25 * s,
            )
        }
    }

    /// Converts to a rotation matrix.
    pub fn to_rotation_matrix(&self) -> Mat3 {
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        Mat3::from_rows(
            [1.0 - 2.0 * (y * y + z * z), 2.0 * (x * y - w * z), 2.0 * (x * z + w * y)],
            [2.0 * (x * y + w * z), 1.0 - 2.0 * (x * x + z * z), 2.0 * (y * z - w * x)],
            [2.0 * (x * z - w * y), 2.0 * (y * z + w * x), 1.0 - 2.0 * (x * x + y * y)],
        )
    }

    /// Extracts XYZ (roll, pitch, yaw) Euler angles.
    pub fn to_euler_xyz(&self) -> (f64, f64, f64) {
        self.to_rotation_matrix().to_euler_xyz()
    }

    /// The conjugate (inverse rotation for a unit quaternion).
    pub fn conjugate(&self) -> UnitQuaternion {
        UnitQuaternion { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Rotates a vector.
    pub fn rotate(&self, v: Vec3) -> Vec3 {
        self.to_rotation_matrix() * v
    }

    /// The quaternion dot product with `other`.
    pub fn dot(&self, other: &UnitQuaternion) -> f64 {
        self.w * other.w + self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// The geodesic angle (radians) between two orientations, in `[0, pi]`.
    pub fn angle_to(&self, other: &UnitQuaternion) -> f64 {
        let d = self.dot(other).abs().min(1.0);
        2.0 * d.acos()
    }

    /// Spherical linear interpolation from `self` (t = 0) to `other` (t = 1).
    pub fn slerp(&self, other: &UnitQuaternion, t: f64) -> UnitQuaternion {
        let mut cos_half = self.dot(other);
        // Take the short path.
        let mut o = *other;
        if cos_half < 0.0 {
            o = UnitQuaternion { w: -o.w, x: -o.x, y: -o.y, z: -o.z };
            cos_half = -cos_half;
        }
        if cos_half > 1.0 - 1e-9 {
            // Nearly identical: linear interpolation avoids division by ~0.
            return UnitQuaternion::new_normalized(
                self.w + t * (o.w - self.w),
                self.x + t * (o.x - self.x),
                self.y + t * (o.y - self.y),
                self.z + t * (o.z - self.z),
            );
        }
        let half_angle = cos_half.acos();
        let sin_half = half_angle.sin();
        let wa = ((1.0 - t) * half_angle).sin() / sin_half;
        let wb = (t * half_angle).sin() / sin_half;
        UnitQuaternion::new_normalized(
            wa * self.w + wb * o.w,
            wa * self.x + wb * o.x,
            wa * self.y + wb * o.y,
            wa * self.z + wb * o.z,
        )
    }

    /// Norm of the underlying 4-vector (should always be ≈ 1).
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }
}

impl Mul for UnitQuaternion {
    type Output = UnitQuaternion;
    fn mul(self, rhs: UnitQuaternion) -> UnitQuaternion {
        UnitQuaternion::new_normalized(
            self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        )
    }
}

impl std::fmt::Display for UnitQuaternion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q({:.6} + {:.6}i + {:.6}j + {:.6}k)", self.w, self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotation_is_noop() {
        let q = UnitQuaternion::identity();
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert!((q.rotate(v) - v).norm() < 1e-12);
    }

    #[test]
    fn axis_angle_matches_matrix() {
        let q = UnitQuaternion::from_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.9);
        let m = Mat3::rotation_axis_angle(Vec3::new(1.0, 1.0, 0.0), 0.9);
        assert!((q.to_rotation_matrix() - m).max_abs() < 1e-12);
    }

    #[test]
    fn matrix_roundtrip() {
        for (r, p, y) in [(0.1, -0.4, 2.0), (1.5, 0.2, -0.7), (0.0, 0.0, 0.0)] {
            let m = Mat3::from_euler_xyz(r, p, y);
            let q = UnitQuaternion::from_rotation_matrix(&m);
            assert!((q.to_rotation_matrix() - m).max_abs() < 1e-9);
        }
    }

    #[test]
    fn conjugate_inverts() {
        let q = UnitQuaternion::from_euler_xyz(0.2, 0.4, -0.5);
        let composed = q * q.conjugate();
        assert!(composed.angle_to(&UnitQuaternion::identity()) < 1e-9);
    }

    #[test]
    fn slerp_endpoints_and_midpoint() {
        let a = UnitQuaternion::identity();
        let b = UnitQuaternion::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(a.slerp(&b, 0.0).angle_to(&a) < 1e-9);
        assert!(a.slerp(&b, 1.0).angle_to(&b) < 1e-9);
        let mid = a.slerp(&b, 0.5);
        let expected = UnitQuaternion::from_axis_angle(Vec3::Z, FRAC_PI_2 / 2.0);
        assert!(mid.angle_to(&expected) < 1e-9);
    }

    #[test]
    fn angle_to_is_symmetric() {
        let a = UnitQuaternion::from_euler_xyz(0.3, 0.1, -0.2);
        let b = UnitQuaternion::from_euler_xyz(-1.0, 0.4, 0.9);
        assert!((a.angle_to(&b) - b.angle_to(&a)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn composition_matches_matrix_composition(
            r1 in -PI..PI, p1 in -1.5..1.5, y1 in -PI..PI,
            r2 in -PI..PI, p2 in -1.5..1.5, y2 in -PI..PI) {
            let qa = UnitQuaternion::from_euler_xyz(r1, p1, y1);
            let qb = UnitQuaternion::from_euler_xyz(r2, p2, y2);
            let lhs = (qa * qb).to_rotation_matrix();
            let rhs = qa.to_rotation_matrix() * qb.to_rotation_matrix();
            prop_assert!((lhs - rhs).max_abs() < 1e-9);
        }

        #[test]
        fn quaternion_stays_unit(r in -PI..PI, p in -1.5..1.5, y in -PI..PI) {
            let q = UnitQuaternion::from_euler_xyz(r, p, y);
            prop_assert!((q.norm() - 1.0).abs() < 1e-12);
        }
    }
}
