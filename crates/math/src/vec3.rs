//! 3-dimensional vectors.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-dimensional column vector of `f64`.
///
/// Used throughout the workspace for positions, linear/angular velocities and
/// Euler-angle triples.
///
/// ```
/// use corki_math::Vec3;
/// let a = Vec3::new(1.0, 2.0, 3.0);
/// let b = Vec3::new(4.0, 5.0, 6.0);
/// assert_eq!(a.dot(b), 32.0);
/// assert_eq!(a.cross(b), Vec3::new(-3.0, 6.0, -3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along X.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Creates a vector from a 3-element slice.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != 3`.
    pub fn from_slice(s: &[f64]) -> Self {
        assert_eq!(s.len(), 3, "Vec3::from_slice expects exactly 3 elements");
        Vec3::new(s[0], s[1], s[2])
    }

    /// Returns the components as an array `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns a unit vector in the same direction, or `None` if the norm is
    /// (nearly) zero.
    pub fn try_normalize(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Returns a unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (nearly) zero.
    pub fn normalize(self) -> Vec3 {
        self.try_normalize().expect("cannot normalize a zero-length Vec3")
    }

    /// Component-wise multiplication.
    pub fn component_mul(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Linear interpolation: `self * (1 - t) + other * t`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self * (1.0 - t) + other * t
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Maximum absolute component.
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Returns `true` if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index {i} out of range"),
        }
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl std::fmt::Display for Vec3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn cross_product_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn normalize_and_zero() {
        let v = Vec3::new(3.0, 0.0, 4.0);
        assert!((v.normalize().norm() - 1.0).abs() < 1e-12);
        assert!(Vec3::ZERO.try_normalize().is_none());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        v[1] = 7.0;
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 7.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn conversions() {
        let v = Vec3::from([1.0, 2.0, 3.0]);
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::from_slice(&a), v);
    }

    fn arb_vec3() -> impl Strategy<Value = Vec3> {
        (-1e3..1e3, -1e3..1e3, -1e3..1e3).prop_map(|(x, y, z)| Vec3::new(x, y, z))
    }

    proptest! {
        #[test]
        fn dot_is_commutative(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-9);
        }

        #[test]
        fn cross_is_anticommutative(a in arb_vec3(), b in arb_vec3()) {
            let lhs = a.cross(b);
            let rhs = -(b.cross(a));
            prop_assert!((lhs - rhs).norm() < 1e-9);
        }

        #[test]
        fn triangle_inequality(a in arb_vec3(), b in arb_vec3()) {
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }

        #[test]
        fn lagrange_identity(a in arb_vec3(), b in arb_vec3()) {
            // |a x b|^2 = |a|^2 |b|^2 - (a.b)^2
            let lhs = a.cross(b).norm_squared();
            let rhs = a.norm_squared() * b.norm_squared() - a.dot(b).powi(2);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
        }
    }
}
