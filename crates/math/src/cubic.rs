//! Cubic polynomials, the trajectory primitive of the Corki algorithm.
//!
//! The Corki policy head outputs one cubic function per controlled dimension
//! (Equation 4 of the paper): `r(t) = a t³ + b t² + c t + d`. The cubic form
//! is chosen because its first and second derivatives are continuous, so the
//! reference velocity and acceleration required by the task-space computed
//! torque controller are available analytically.

use serde::{Deserialize, Serialize};

/// A cubic polynomial `a·t³ + b·t² + c·t + d`.
///
/// ```
/// use corki_math::CubicPoly;
/// let p = CubicPoly::new(1.0, -2.0, 0.5, 3.0);
/// assert_eq!(p.eval(0.0), 3.0);
/// assert!((p.derivative().eval(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CubicPoly {
    /// Cubic coefficient.
    pub a: f64,
    /// Quadratic coefficient.
    pub b: f64,
    /// Linear coefficient.
    pub c: f64,
    /// Constant coefficient.
    pub d: f64,
}

impl CubicPoly {
    /// Creates a cubic polynomial from its coefficients (highest order first).
    pub const fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        CubicPoly { a, b, c, d }
    }

    /// The zero polynomial.
    pub const fn zero() -> Self {
        CubicPoly::new(0.0, 0.0, 0.0, 0.0)
    }

    /// A constant polynomial.
    pub const fn constant(d: f64) -> Self {
        CubicPoly::new(0.0, 0.0, 0.0, d)
    }

    /// Evaluates the polynomial at `t` (Horner's rule).
    pub fn eval(&self, t: f64) -> f64 {
        ((self.a * t + self.b) * t + self.c) * t + self.d
    }

    /// Evaluates the first derivative at `t`.
    pub fn eval_derivative(&self, t: f64) -> f64 {
        (3.0 * self.a * t + 2.0 * self.b) * t + self.c
    }

    /// Evaluates the second derivative at `t`.
    pub fn eval_second_derivative(&self, t: f64) -> f64 {
        6.0 * self.a * t + 2.0 * self.b
    }

    /// Returns the derivative as a new (degenerate) cubic with `a = 0`.
    pub fn derivative(&self) -> CubicPoly {
        CubicPoly::new(0.0, 3.0 * self.a, 2.0 * self.b, self.c)
    }

    /// Fits the unique cubic satisfying boundary conditions on position and
    /// velocity at `t = 0` and `t = duration`.
    ///
    /// This is the classical cubic-spline segment used in robot trajectory
    /// planning and is how expert demonstrations are converted to trajectory
    /// ground truth in `corki-sim`.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is not strictly positive.
    pub fn from_boundary_conditions(
        start_pos: f64,
        start_vel: f64,
        end_pos: f64,
        end_vel: f64,
        duration: f64,
    ) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        let t = duration;
        let d = start_pos;
        let c = start_vel;
        // Solve for a, b from the end conditions.
        let dp = end_pos - d - c * t;
        let dv = end_vel - c;
        let b = (3.0 * dp - dv * t) / (t * t);
        let a = (dv * t - 2.0 * dp) / (t * t * t);
        CubicPoly::new(a, b, c, d)
    }

    /// Least-squares fit of a cubic to `(t, value)` samples.
    ///
    /// Used by the Corki trajectory head supervision path: the ground-truth
    /// trajectory is sampled at the camera rate and a cubic is fitted to it.
    /// With fewer than four samples the fit degrades gracefully (falls back to
    /// lower-order forms); with zero samples the zero polynomial is returned.
    pub fn fit_least_squares(samples: &[(f64, f64)]) -> Self {
        Self::fit_least_squares_iter(samples.iter().copied())
    }

    /// Least-squares cubic fit streamed from an iterator of `(t, value)`
    /// samples — the allocation-free twin of
    /// [`CubicPoly::fit_least_squares`]: the normal equations are accumulated
    /// in a single pass over stack arrays, so callers (e.g. the per-dimension
    /// trajectory fit) never materialise a sample buffer. Bit-identical to
    /// the slice-based fit (same accumulation order).
    pub fn fit_least_squares_iter(samples: impl IntoIterator<Item = (f64, f64)>) -> Self {
        // Build the 4x4 normal equations sum(t^i+j) x = sum(t^i y) for the
        // basis [t^3, t^2, t, 1]. For degenerate sample sets fall back by
        // ridge-regularising the diagonal slightly.
        let mut ata = [[0.0f64; 4]; 4];
        let mut atb = [0.0f64; 4];
        let mut count = 0usize;
        let mut first_value = 0.0;
        for (t, y) in samples {
            if count == 0 {
                first_value = y;
            }
            count += 1;
            let basis = [t * t * t, t * t, t, 1.0];
            for i in 0..4 {
                atb[i] += basis[i] * y;
                for j in 0..4 {
                    ata[i][j] += basis[i] * basis[j];
                }
            }
        }
        match count {
            0 => CubicPoly::zero(),
            1 => CubicPoly::constant(first_value),
            _ => {
                // Tiny ridge term keeps the system solvable when samples are
                // not distinct enough to determine all four coefficients.
                for (i, row) in ata.iter_mut().enumerate() {
                    row[i] += 1e-9;
                }
                let coeffs = solve4(ata, atb);
                CubicPoly::new(coeffs[0], coeffs[1], coeffs[2], coeffs[3])
            }
        }
    }

    /// Integral of the squared second derivative over `[0, duration]`; a
    /// standard smoothness (bending-energy) measure used in tests and in the
    /// adaptive-length heuristics.
    pub fn bending_energy(&self, duration: f64) -> f64 {
        // ∫ (6a t + 2b)^2 dt = 12 a² t³ + 12 a b t² + 4 b² t
        12.0 * self.a * self.a * duration.powi(3)
            + 12.0 * self.a * self.b * duration.powi(2)
            + 4.0 * self.b * self.b * duration
    }
}

/// Solves a 4×4 linear system with Gaussian elimination and partial pivoting.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> [f64; 4] {
    for k in 0..4 {
        // Pivot.
        let mut max_row = k;
        for i in (k + 1)..4 {
            if a[i][k].abs() > a[max_row][k].abs() {
                max_row = i;
            }
        }
        a.swap(k, max_row);
        b.swap(k, max_row);
        let pivot = a[k][k];
        if pivot.abs() < 1e-15 {
            continue;
        }
        let pivot_row = a[k];
        for i in (k + 1)..4 {
            let f = a[i][k] / pivot;
            for (aij, pkj) in a[i][k..4].iter_mut().zip(&pivot_row[k..4]) {
                *aij -= f * pkj;
            }
            b[i] -= f * b[k];
        }
    }
    let mut x = [0.0f64; 4];
    for i in (0..4).rev() {
        let mut acc = b[i];
        for j in (i + 1)..4 {
            acc -= a[i][j] * x[j];
        }
        x[i] = if a[i][i].abs() < 1e-15 { 0.0 } else { acc / a[i][i] };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eval_and_derivatives() {
        let p = CubicPoly::new(2.0, -1.0, 3.0, 0.5);
        let t: f64 = 1.5;
        let expected = 2.0 * t.powi(3) - t.powi(2) + 3.0 * t + 0.5;
        assert!((p.eval(t) - expected).abs() < 1e-12);
        let d_expected = 6.0 * t.powi(2) - 2.0 * t + 3.0;
        assert!((p.eval_derivative(t) - d_expected).abs() < 1e-12);
        assert!((p.eval_second_derivative(t) - (12.0 * t - 2.0)).abs() < 1e-12);
        assert!((p.derivative().eval(t) - d_expected).abs() < 1e-12);
    }

    #[test]
    fn boundary_condition_fit_hits_endpoints() {
        let p = CubicPoly::from_boundary_conditions(1.0, 0.5, -2.0, 0.0, 0.3);
        assert!((p.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((p.eval_derivative(0.0) - 0.5).abs() < 1e-12);
        assert!((p.eval(0.3) - -2.0).abs() < 1e-10);
        assert!(p.eval_derivative(0.3).abs() < 1e-10);
    }

    #[test]
    #[should_panic]
    fn zero_duration_panics() {
        let _ = CubicPoly::from_boundary_conditions(0.0, 0.0, 1.0, 0.0, 0.0);
    }

    #[test]
    fn least_squares_recovers_exact_cubic() {
        let truth = CubicPoly::new(0.7, -0.2, 1.3, -0.5);
        let samples: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let t = i as f64 * 0.033;
                (t, truth.eval(t))
            })
            .collect();
        let fit = CubicPoly::fit_least_squares(&samples);
        for i in 0..10 {
            let t = i as f64 * 0.033;
            assert!((fit.eval(t) - truth.eval(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn iterator_fit_is_bit_identical_to_slice_fit() {
        let truth = CubicPoly::new(0.3, -0.6, 0.9, 0.1);
        for n in [0usize, 1, 2, 5, 9] {
            let samples: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let t = i as f64 * 0.04;
                    (t, truth.eval(t) + (i as f64).cos() * 0.01)
                })
                .collect();
            let from_slice = CubicPoly::fit_least_squares(&samples);
            let from_iter = CubicPoly::fit_least_squares_iter(samples.iter().copied());
            assert_eq!(from_slice, from_iter, "n = {n}");
        }
    }

    #[test]
    fn least_squares_degenerate_inputs() {
        assert_eq!(CubicPoly::fit_least_squares(&[]), CubicPoly::zero());
        let single = CubicPoly::fit_least_squares(&[(0.5, 2.0)]);
        assert!((single.eval(0.123) - 2.0).abs() < 1e-12);
        // Two samples: fit should at least pass near both.
        let two = CubicPoly::fit_least_squares(&[(0.0, 1.0), (1.0, 3.0)]);
        assert!((two.eval(0.0) - 1.0).abs() < 1e-3);
        assert!((two.eval(1.0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn bending_energy_zero_for_linear() {
        let p = CubicPoly::new(0.0, 0.0, 2.0, 1.0);
        assert_eq!(p.bending_energy(1.0), 0.0);
        let q = CubicPoly::new(1.0, 0.0, 0.0, 0.0);
        assert!(q.bending_energy(1.0) > 0.0);
    }

    proptest! {
        #[test]
        fn boundary_fit_always_interpolates(
            p0 in -5.0..5.0, v0 in -2.0..2.0, p1 in -5.0..5.0, v1 in -2.0..2.0,
            dur in 0.05..2.0) {
            let p = CubicPoly::from_boundary_conditions(p0, v0, p1, v1, dur);
            prop_assert!((p.eval(0.0) - p0).abs() < 1e-9);
            prop_assert!((p.eval_derivative(0.0) - v0).abs() < 1e-9);
            prop_assert!((p.eval(dur) - p1).abs() < 1e-7);
            prop_assert!((p.eval_derivative(dur) - v1).abs() < 1e-7);
        }

        #[test]
        fn least_squares_error_never_exceeds_range(
            a in -1.0..1.0, b in -1.0..1.0, c in -1.0..1.0, d in -1.0..1.0) {
            let truth = CubicPoly::new(a, b, c, d);
            let samples: Vec<(f64, f64)> = (0..8)
                .map(|i| { let t = i as f64 * 0.05; (t, truth.eval(t)) })
                .collect();
            let fit = CubicPoly::fit_least_squares(&samples);
            for &(t, y) in &samples {
                prop_assert!((fit.eval(t) - y).abs() < 1e-4);
            }
        }
    }
}
