//! Rigid-body transforms in SE(3).

use crate::{Mat3, UnitQuaternion, Vec3};
use serde::{Deserialize, Serialize};
use std::ops::Mul;

/// A rigid-body transform (rotation + translation) in SE(3).
///
/// `SE3` maps points expressed in a *child* frame into the *parent* frame:
/// `p_parent = R * p_child + t`.
///
/// ```
/// use corki_math::{SE3, Mat3, Vec3};
/// let a = SE3::new(Mat3::rotation_z(0.3), Vec3::new(1.0, 0.0, 0.0));
/// let b = SE3::new(Mat3::rotation_z(-0.3), Vec3::new(0.0, 2.0, 0.0));
/// let c = a * b;
/// let p = c.transform_point(Vec3::ZERO);
/// assert!((p - a.transform_point(b.transform_point(Vec3::ZERO))).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SE3 {
    /// Rotation part.
    pub rotation: Mat3,
    /// Translation part.
    pub translation: Vec3,
}

impl Default for SE3 {
    fn default() -> Self {
        SE3::identity()
    }
}

impl SE3 {
    /// The identity transform.
    pub fn identity() -> Self {
        SE3 { rotation: Mat3::identity(), translation: Vec3::ZERO }
    }

    /// Creates a transform from a rotation matrix and a translation.
    pub fn new(rotation: Mat3, translation: Vec3) -> Self {
        SE3 { rotation, translation }
    }

    /// A pure translation.
    pub fn from_translation(t: Vec3) -> Self {
        SE3::new(Mat3::identity(), t)
    }

    /// A pure rotation.
    pub fn from_rotation(r: Mat3) -> Self {
        SE3::new(r, Vec3::ZERO)
    }

    /// Builds a transform from a unit quaternion and translation.
    pub fn from_quat_translation(q: UnitQuaternion, t: Vec3) -> Self {
        SE3::new(q.to_rotation_matrix(), t)
    }

    /// Builds a transform following the modified Denavit-Hartenberg (Craig)
    /// convention used by the Franka Emika Panda datasheet:
    /// parameters `(a, d, alpha, theta)`.
    pub fn from_mdh(a: f64, d: f64, alpha: f64, theta: f64) -> Self {
        let (st, ct) = theta.sin_cos();
        let (sa, ca) = alpha.sin_cos();
        let rotation =
            Mat3::from_rows([ct, -st, 0.0], [st * ca, ct * ca, -sa], [st * sa, ct * sa, ca]);
        let translation = Vec3::new(a, -sa * d, ca * d);
        SE3::new(rotation, translation)
    }

    /// The inverse transform.
    pub fn inverse(&self) -> SE3 {
        let rt = self.rotation.transpose();
        SE3::new(rt, -(rt * self.translation))
    }

    /// Transforms a point from the child frame into the parent frame.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Rotates a direction (ignores translation).
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        self.rotation * v
    }

    /// The orientation as a unit quaternion.
    pub fn quaternion(&self) -> UnitQuaternion {
        UnitQuaternion::from_rotation_matrix(&self.rotation)
    }

    /// The orientation as XYZ (roll, pitch, yaw) Euler angles.
    pub fn euler_xyz(&self) -> (f64, f64, f64) {
        self.rotation.to_euler_xyz()
    }

    /// Interpolates between two transforms (slerp on rotation, lerp on
    /// translation); `t` in `[0, 1]`.
    pub fn interpolate(&self, other: &SE3, t: f64) -> SE3 {
        let q = self.quaternion().slerp(&other.quaternion(), t);
        let p = self.translation.lerp(other.translation, t);
        SE3::from_quat_translation(q, p)
    }

    /// Distance metric combining translation distance and rotation angle:
    /// `|t_a - t_b| + w * angle(R_a, R_b)`.
    pub fn distance(&self, other: &SE3, rotation_weight: f64) -> f64 {
        let dt = self.translation.distance(other.translation);
        let dr = self.quaternion().angle_to(&other.quaternion());
        dt + rotation_weight * dr
    }

    /// Re-orthonormalises the rotation part (to combat floating-point drift).
    pub fn renormalize(&self) -> SE3 {
        SE3::new(self.rotation.orthonormalize(), self.translation)
    }
}

impl Mul for SE3 {
    type Output = SE3;
    fn mul(self, rhs: SE3) -> SE3 {
        SE3::new(self.rotation * rhs.rotation, self.rotation * rhs.translation + self.translation)
    }
}

impl std::fmt::Display for SE3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, p, y) = self.euler_xyz();
        write!(f, "SE3(t = {}, rpy = ({:.4}, {:.4}, {:.4}))", self.translation, r, p, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_is_neutral() {
        let t = SE3::new(Mat3::rotation_y(0.4), Vec3::new(1.0, 2.0, 3.0));
        let p = Vec3::new(-1.0, 0.5, 2.0);
        assert!(((t * SE3::identity()).transform_point(p) - t.transform_point(p)).norm() < 1e-12);
        assert!(((SE3::identity() * t).transform_point(p) - t.transform_point(p)).norm() < 1e-12);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let t = SE3::new(Mat3::from_euler_xyz(0.1, 0.2, 0.3), Vec3::new(0.4, -0.5, 0.6));
        let composed = t * t.inverse();
        assert!((composed.rotation - Mat3::identity()).max_abs() < 1e-12);
        assert!(composed.translation.norm() < 1e-12);
    }

    #[test]
    fn composition_is_associative() {
        let a = SE3::new(Mat3::rotation_x(0.3), Vec3::new(1.0, 0.0, 0.0));
        let b = SE3::new(Mat3::rotation_y(-0.8), Vec3::new(0.0, 1.0, 0.0));
        let c = SE3::new(Mat3::rotation_z(1.4), Vec3::new(0.0, 0.0, 1.0));
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        assert!((lhs.rotation - rhs.rotation).max_abs() < 1e-12);
        assert!((lhs.translation - rhs.translation).norm() < 1e-12);
    }

    #[test]
    fn mdh_zero_parameters_is_identity() {
        let t = SE3::from_mdh(0.0, 0.0, 0.0, 0.0);
        assert!((t.rotation - Mat3::identity()).max_abs() < 1e-12);
        assert!(t.translation.norm() < 1e-12);
    }

    #[test]
    fn mdh_pure_theta_is_z_rotation() {
        let theta = 0.7;
        let t = SE3::from_mdh(0.0, 0.0, 0.0, theta);
        assert!((t.rotation - Mat3::rotation_z(theta)).max_abs() < 1e-12);
    }

    #[test]
    fn mdh_translation_components() {
        // With alpha = 0 the d offset is along +Z and a along +X.
        let t = SE3::from_mdh(0.3, 0.5, 0.0, 0.0);
        assert!((t.translation - Vec3::new(0.3, 0.0, 0.5)).norm() < 1e-12);
    }

    #[test]
    fn interpolate_endpoints() {
        let a = SE3::new(Mat3::rotation_z(0.0), Vec3::ZERO);
        let b = SE3::new(Mat3::rotation_z(1.0), Vec3::new(1.0, 2.0, 3.0));
        assert!(a.interpolate(&b, 0.0).distance(&a, 1.0) < 1e-9);
        assert!(a.interpolate(&b, 1.0).distance(&b, 1.0) < 1e-9);
    }

    proptest! {
        #[test]
        fn transform_point_roundtrip(
            r in -PI..PI, p in -1.5..1.5, y in -PI..PI,
            tx in -2.0..2.0, ty in -2.0..2.0, tz in -2.0..2.0,
            px in -5.0..5.0, py in -5.0..5.0, pz in -5.0..5.0) {
            let t = SE3::new(Mat3::from_euler_xyz(r, p, y), Vec3::new(tx, ty, tz));
            let point = Vec3::new(px, py, pz);
            let roundtrip = t.inverse().transform_point(t.transform_point(point));
            prop_assert!((roundtrip - point).norm() < 1e-9);
        }

        #[test]
        fn distance_is_zero_only_for_same_pose(
            r in -PI..PI, tx in -2.0..2.0) {
            let t = SE3::new(Mat3::rotation_z(r), Vec3::new(tx, 0.0, 0.0));
            prop_assert!(t.distance(&t, 0.5) < 1e-9);
        }
    }
}
