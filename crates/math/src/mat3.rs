//! 3×3 matrices.

use crate::Vec3;
use serde::{Deserialize, Serialize};
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A 3×3 matrix of `f64`, stored row-major.
///
/// Primarily used for rotation matrices and rigid-body inertia tensors.
///
/// ```
/// use corki_math::{Mat3, Vec3};
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Row-major entries `m[row][col]`.
    pub m: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl Mat3 {
    /// The zero matrix.
    pub const fn zero() -> Self {
        Mat3 { m: [[0.0; 3]; 3] }
    }

    /// The identity matrix.
    pub const fn identity() -> Self {
        Mat3 { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] }
    }

    /// Builds a matrix from rows.
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// Builds a matrix from three column vectors.
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 { m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]] }
    }

    /// Builds a diagonal matrix.
    pub fn diagonal(d: Vec3) -> Self {
        Mat3 { m: [[d.x, 0.0, 0.0], [0.0, d.y, 0.0], [0.0, 0.0, d.z]] }
    }

    /// Rotation about the X axis by `theta` radians.
    pub fn rotation_x(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c])
    }

    /// Rotation about the Y axis by `theta` radians.
    pub fn rotation_y(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c])
    }

    /// Rotation about the Z axis by `theta` radians.
    pub fn rotation_z(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0])
    }

    /// Rotation about an arbitrary unit axis by `theta` radians (Rodrigues).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is (nearly) zero.
    pub fn rotation_axis_angle(axis: Vec3, theta: f64) -> Self {
        let a = axis.normalize();
        let k = Mat3::skew(a);
        let (s, c) = theta.sin_cos();
        Mat3::identity() + k * s + (k * k) * (1.0 - c)
    }

    /// Rotation from intrinsic roll-pitch-yaw (XYZ) Euler angles, matching the
    /// `(α, β, γ)` end-effector orientation convention used by the paper.
    pub fn from_euler_xyz(roll: f64, pitch: f64, yaw: f64) -> Self {
        Mat3::rotation_z(yaw) * Mat3::rotation_y(pitch) * Mat3::rotation_x(roll)
    }

    /// Extracts XYZ (roll, pitch, yaw) Euler angles from a rotation matrix.
    ///
    /// The inverse of [`Mat3::from_euler_xyz`] away from the pitch singularity.
    pub fn to_euler_xyz(&self) -> (f64, f64, f64) {
        // R = Rz(yaw) Ry(pitch) Rx(roll)
        let pitch = (-self.m[2][0]).asin();
        if pitch.cos().abs() > 1e-9 {
            let roll = self.m[2][1].atan2(self.m[2][2]);
            let yaw = self.m[1][0].atan2(self.m[0][0]);
            (roll, pitch, yaw)
        } else {
            // Gimbal lock: set roll = 0 and fold everything into yaw.
            let roll = 0.0;
            let yaw = (-self.m[0][1]).atan2(self.m[1][1]);
            (roll, pitch, yaw)
        }
    }

    /// The skew-symmetric (cross-product) matrix of `v`, i.e. `skew(v) * w == v.cross(w)`.
    pub fn skew(v: Vec3) -> Self {
        Mat3::from_rows([0.0, -v.z, v.y], [v.z, 0.0, -v.x], [-v.y, v.x, 0.0])
    }

    /// The outer product `a * bᵀ`.
    pub fn outer(a: Vec3, b: Vec3) -> Self {
        Mat3::from_rows(
            [a.x * b.x, a.x * b.y, a.x * b.z],
            [a.y * b.x, a.y * b.y, a.y * b.z],
            [a.z * b.x, a.z * b.y, a.z * b.z],
        )
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Matrix determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix trace.
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Inverse, or `None` when the matrix is singular.
    pub fn try_inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-14 {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / det;
        let cof = |a: f64, b: f64, c: f64, d: f64| a * d - b * c;
        Some(Mat3::from_rows(
            [
                cof(m[1][1], m[1][2], m[2][1], m[2][2]) * inv_det,
                -cof(m[0][1], m[0][2], m[2][1], m[2][2]) * inv_det,
                cof(m[0][1], m[0][2], m[1][1], m[1][2]) * inv_det,
            ],
            [
                -cof(m[1][0], m[1][2], m[2][0], m[2][2]) * inv_det,
                cof(m[0][0], m[0][2], m[2][0], m[2][2]) * inv_det,
                -cof(m[0][0], m[0][2], m[1][0], m[1][2]) * inv_det,
            ],
            [
                cof(m[1][0], m[1][1], m[2][0], m[2][1]) * inv_det,
                -cof(m[0][0], m[0][1], m[2][0], m[2][1]) * inv_det,
                cof(m[0][0], m[0][1], m[1][0], m[1][1]) * inv_det,
            ],
        ))
    }

    /// Returns row `i` as a vector.
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.m[i][0], self.m[i][1], self.m[i][2])
    }

    /// Returns column `j` as a vector.
    pub fn col(&self, j: usize) -> Vec3 {
        Vec3::new(self.m[0][j], self.m[1][j], self.m[2][j])
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.m.iter().flat_map(|r| r.iter()).map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.m.iter().flat_map(|r| r.iter()).fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Returns `true` when this matrix is a valid rotation (orthonormal with
    /// determinant +1) within tolerance `tol`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let should_be_identity = *self * self.transpose();
        let mut err: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                err = err.max((should_be_identity.m[i][j] - expected).abs());
            }
        }
        err < tol && (self.determinant() - 1.0).abs() < tol
    }

    /// Re-orthonormalises a near-rotation matrix using Gram-Schmidt.
    ///
    /// Useful after long chains of floating-point rotation compositions.
    pub fn orthonormalize(&self) -> Mat3 {
        let c0 = self.col(0).normalize();
        let c1_raw = self.col(1);
        let c1 = (c1_raw - c0 * c0.dot(c1_raw)).normalize();
        let c2 = c0.cross(c1);
        Mat3::from_cols(c0, c1, c2)
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] + rhs.m[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = self.m[i][j] - rhs.m[i][j];
            }
        }
        out
    }
}

impl Neg for Mat3 {
    type Output = Mat3;
    fn neg(self) -> Mat3 {
        self * -1.0
    }
}

impl Mul<f64> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: f64) -> Mat3 {
        let mut out = self;
        for row in out.m.iter_mut() {
            for x in row.iter_mut() {
                *x *= rhs;
            }
        }
        out
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        let mut out = Mat3::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = (0..3).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.m[i][j]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.m[i][j]
    }
}

impl std::fmt::Display for Mat3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..3 {
            writeln!(f, "[{:9.4} {:9.4} {:9.4}]", self.m[i][0], self.m[i][1], self.m[i][2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_is_neutral() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]);
        assert_eq!(m * Mat3::identity(), m);
        assert_eq!(Mat3::identity() * m, m);
    }

    #[test]
    fn rotations_are_rotations() {
        for theta in [-1.0, 0.0, 0.7, FRAC_PI_2, PI] {
            assert!(Mat3::rotation_x(theta).is_rotation(1e-12));
            assert!(Mat3::rotation_y(theta).is_rotation(1e-12));
            assert!(Mat3::rotation_z(theta).is_rotation(1e-12));
        }
    }

    #[test]
    fn axis_angle_matches_basic_rotations() {
        let theta = 0.83;
        let diff = Mat3::rotation_axis_angle(Vec3::Z, theta) - Mat3::rotation_z(theta);
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn skew_reproduces_cross_product() {
        let a = Vec3::new(1.0, -2.0, 0.5);
        let b = Vec3::new(0.3, 4.0, -1.0);
        assert!((Mat3::skew(a) * b - a.cross(b)).norm() < 1e-12);
    }

    #[test]
    fn inverse_of_rotation_is_transpose() {
        let r = Mat3::from_euler_xyz(0.2, -0.4, 1.1);
        let inv = r.try_inverse().unwrap();
        assert!((inv - r.transpose()).max_abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]);
        assert!(m.try_inverse().is_none());
    }

    #[test]
    fn euler_roundtrip() {
        let angles = [(-0.3, 0.5, 1.2), (0.0, 0.0, 0.0), (1.0, -1.2, -2.9)];
        for (r, p, y) in angles {
            let m = Mat3::from_euler_xyz(r, p, y);
            let (r2, p2, y2) = m.to_euler_xyz();
            let m2 = Mat3::from_euler_xyz(r2, p2, y2);
            assert!((m - m2).max_abs() < 1e-9, "roundtrip failed for {r} {p} {y}");
        }
    }

    #[test]
    fn orthonormalize_fixes_drift() {
        let mut r = Mat3::rotation_x(0.3);
        // Introduce drift.
        r.m[0][0] += 1e-4;
        let fixed = r.orthonormalize();
        assert!(fixed.is_rotation(1e-9));
    }

    fn arb_angle() -> impl Strategy<Value = f64> {
        -PI..PI
    }

    proptest! {
        #[test]
        fn rotation_preserves_norm(r in arb_angle(), p in arb_angle(), y in arb_angle(),
                                   vx in -10.0..10.0, vy in -10.0..10.0, vz in -10.0..10.0) {
            let m = Mat3::from_euler_xyz(r, p, y);
            let v = Vec3::new(vx, vy, vz);
            prop_assert!(((m * v).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn det_of_product_is_product_of_dets(a in arb_angle(), b in arb_angle()) {
            let m1 = Mat3::rotation_x(a) * Mat3::diagonal(Vec3::new(2.0, 1.0, 0.5));
            let m2 = Mat3::rotation_y(b) * Mat3::diagonal(Vec3::new(1.5, 3.0, 1.0));
            let lhs = (m1 * m2).determinant();
            let rhs = m1.determinant() * m2.determinant();
            prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
        }
    }
}
