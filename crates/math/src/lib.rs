//! Fixed-size linear and spatial algebra for the DaDu-Corki reproduction.
//!
//! This crate provides the small, dependency-free math substrate used by the
//! rigid-body dynamics (`corki-robot`), trajectory (`corki-trajectory`) and
//! accelerator-model crates:
//!
//! * 3-vectors, 3×3 matrices, unit quaternions and SE(3) rigid transforms,
//! * 6-D spatial (Plücker) vectors and 6×6 spatial matrices in the style of
//!   Featherstone's *Rigid Body Dynamics Algorithms*,
//! * small dynamically-sized matrices with LU and Cholesky solvers (used for
//!   the 7×7 joint-space mass matrix and the 6×6 task-space mass matrix),
//! * cubic polynomials, the trajectory primitive of the Corki algorithm.
//!
//! # Example
//!
//! ```
//! use corki_math::{Vec3, Mat3, SE3};
//!
//! let rotation = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
//! let pose = SE3::new(rotation, Vec3::new(1.0, 0.0, 0.0));
//! let p = pose.transform_point(Vec3::new(1.0, 0.0, 0.0));
//! assert!((p - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cubic;
mod dmat;
mod mat3;
mod quat;
mod se3;
mod spatial;
mod vec3;

pub use cubic::CubicPoly;
pub use dmat::{CholeskyError, DMat, DVec, LuError, LuFactors};
pub use mat3::Mat3;
pub use quat::UnitQuaternion;
pub use se3::SE3;
pub use spatial::{SpatialForce, SpatialInertia, SpatialMat, SpatialMotion, SpatialTransform};
pub use vec3::Vec3;

/// Returns `true` when `a` and `b` are within `tol` of each other.
///
/// Uses a mixed absolute/relative criterion so that both values close to zero
/// and large values compare sensibly.
///
/// ```
/// assert!(corki_math::approx_eq(1.0, 1.0 + 1e-13, 1e-9));
/// assert!(!corki_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let largest = a.abs().max(b.abs());
    diff <= tol * largest
}

/// Clamps `x` into the inclusive range `[lo, hi]`.
///
/// # Panics
///
/// Panics if `lo > hi`.
///
/// ```
/// assert_eq!(corki_math::clamp(3.0, 0.0, 1.0), 1.0);
/// ```
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo <= hi, "clamp: lo must not exceed hi");
    x.max(lo).min(hi)
}

/// Wraps an angle in radians into `(-pi, pi]`.
///
/// ```
/// use std::f64::consts::PI;
/// let wrapped = corki_math::wrap_angle(3.0 * PI);
/// assert!((wrapped - PI).abs() < 1e-12);
/// ```
pub fn wrap_angle(theta: f64) -> f64 {
    let two_pi = 2.0 * std::f64::consts::PI;
    let mut t = theta % two_pi;
    if t <= -std::f64::consts::PI {
        t += two_pi;
    } else if t > std::f64::consts::PI {
        t -= two_pi;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-6));
        assert!(!approx_eq(1.0, 2.0, 1e-3));
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(-1.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
        assert_eq!(clamp(2.0, 0.0, 1.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn clamp_invalid_range_panics() {
        clamp(0.0, 1.0, 0.0);
    }

    #[test]
    fn wrap_angle_range() {
        for k in -10..=10 {
            let theta = 0.3 + k as f64 * 2.0 * PI;
            let w = wrap_angle(theta);
            assert!(w > -PI && w <= PI);
            assert!((w - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_angle_boundary() {
        assert!((wrap_angle(PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-PI) - PI).abs() < 1e-12);
    }
}
