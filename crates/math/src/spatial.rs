//! 6-D spatial (Plücker) algebra in the style of Featherstone's
//! *Rigid Body Dynamics Algorithms*.
//!
//! Spatial vectors combine the angular and linear components of rigid-body
//! motion (velocity, acceleration) and force (moment, force) into single 6-D
//! quantities, which makes the recursive Newton-Euler algorithm (RNEA) and the
//! composite rigid-body algorithm (CRBA) in `corki-robot` short and uniform —
//! exactly the structure the Corki accelerator exploits (pose → velocity →
//! acceleration → force → torque units).

use crate::{Mat3, Vec3, SE3};
use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// A spatial *motion* vector: angular part on top, linear part below.
///
/// Used for velocities, accelerations and joint motion subspaces.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpatialMotion {
    /// Angular component (ω).
    pub ang: Vec3,
    /// Linear component (v), measured at the frame origin.
    pub lin: Vec3,
}

/// A spatial *force* vector: moment part on top, linear force below.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpatialForce {
    /// Moment component (n), about the frame origin.
    pub moment: Vec3,
    /// Linear force component (f).
    pub force: Vec3,
}

impl SpatialMotion {
    /// The zero motion vector.
    pub const ZERO: SpatialMotion = SpatialMotion { ang: Vec3::ZERO, lin: Vec3::ZERO };

    /// Creates a motion vector from angular and linear parts.
    pub const fn new(ang: Vec3, lin: Vec3) -> Self {
        SpatialMotion { ang, lin }
    }

    /// The motion subspace of a revolute joint about the local Z axis.
    pub fn revolute_z() -> Self {
        SpatialMotion::new(Vec3::Z, Vec3::ZERO)
    }

    /// The motion subspace of a prismatic joint along the local Z axis.
    pub fn prismatic_z() -> Self {
        SpatialMotion::new(Vec3::ZERO, Vec3::Z)
    }

    /// Spatial cross product with another motion vector (`crm` in
    /// Featherstone's notation): `self × other`.
    pub fn cross_motion(&self, other: &SpatialMotion) -> SpatialMotion {
        SpatialMotion::new(
            self.ang.cross(other.ang),
            self.ang.cross(other.lin) + self.lin.cross(other.ang),
        )
    }

    /// Spatial cross product with a force vector (`crf`): `self ×* force`.
    pub fn cross_force(&self, f: &SpatialForce) -> SpatialForce {
        SpatialForce::new(
            self.ang.cross(f.moment) + self.lin.cross(f.force),
            self.ang.cross(f.force),
        )
    }

    /// Inner product with a force vector (power / projection onto a joint
    /// axis): `selfᵀ · f`.
    pub fn dot_force(&self, f: &SpatialForce) -> f64 {
        self.ang.dot(f.moment) + self.lin.dot(f.force)
    }

    /// Euclidean norm of the stacked 6-vector.
    pub fn norm(&self) -> f64 {
        (self.ang.norm_squared() + self.lin.norm_squared()).sqrt()
    }

    /// Returns the stacked `[ωx, ωy, ωz, vx, vy, vz]` array.
    pub fn to_array(&self) -> [f64; 6] {
        [self.ang.x, self.ang.y, self.ang.z, self.lin.x, self.lin.y, self.lin.z]
    }
}

impl SpatialForce {
    /// The zero force vector.
    pub const ZERO: SpatialForce = SpatialForce { moment: Vec3::ZERO, force: Vec3::ZERO };

    /// Creates a force vector from moment and linear force parts.
    pub const fn new(moment: Vec3, force: Vec3) -> Self {
        SpatialForce { moment, force }
    }

    /// Euclidean norm of the stacked 6-vector.
    pub fn norm(&self) -> f64 {
        (self.moment.norm_squared() + self.force.norm_squared()).sqrt()
    }

    /// Returns the stacked `[nx, ny, nz, fx, fy, fz]` array.
    pub fn to_array(&self) -> [f64; 6] {
        [self.moment.x, self.moment.y, self.moment.z, self.force.x, self.force.y, self.force.z]
    }
}

macro_rules! impl_spatial_ops {
    ($t:ty, $a:ident, $b:ident) => {
        impl Add for $t {
            type Output = $t;
            fn add(self, rhs: $t) -> $t {
                <$t>::new(self.$a + rhs.$a, self.$b + rhs.$b)
            }
        }
        impl AddAssign for $t {
            fn add_assign(&mut self, rhs: $t) {
                *self = *self + rhs;
            }
        }
        impl Sub for $t {
            type Output = $t;
            fn sub(self, rhs: $t) -> $t {
                <$t>::new(self.$a - rhs.$a, self.$b - rhs.$b)
            }
        }
        impl Neg for $t {
            type Output = $t;
            fn neg(self) -> $t {
                <$t>::new(-self.$a, -self.$b)
            }
        }
        impl Mul<f64> for $t {
            type Output = $t;
            fn mul(self, rhs: f64) -> $t {
                <$t>::new(self.$a * rhs, self.$b * rhs)
            }
        }
    };
}

impl_spatial_ops!(SpatialMotion, ang, lin);
impl_spatial_ops!(SpatialForce, moment, force);

/// A Plücker coordinate transform `^B X_A` between two frames.
///
/// Maps spatial motion vectors expressed in frame *A* into frame *B*.
/// Parameterised by the rotation `rot` taking A-coordinates to B-coordinates
/// and the position `trans` of B's origin expressed in A.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialTransform {
    /// Rotation from A coordinates to B coordinates.
    pub rot: Mat3,
    /// Position of frame B's origin, expressed in frame A.
    pub trans: Vec3,
}

impl Default for SpatialTransform {
    fn default() -> Self {
        SpatialTransform::identity()
    }
}

impl SpatialTransform {
    /// The identity transform.
    pub fn identity() -> Self {
        SpatialTransform { rot: Mat3::identity(), trans: Vec3::ZERO }
    }

    /// Builds `^child X_parent` from the pose of the child frame expressed in
    /// the parent frame (`p_parent = R p_child + t`).
    pub fn from_pose(pose_of_child_in_parent: &SE3) -> Self {
        SpatialTransform {
            rot: pose_of_child_in_parent.rotation.transpose(),
            trans: pose_of_child_in_parent.translation,
        }
    }

    /// The corresponding child pose in the parent frame (inverse of
    /// [`SpatialTransform::from_pose`]).
    pub fn to_pose(&self) -> SE3 {
        SE3::new(self.rot.transpose(), self.trans)
    }

    /// Transforms a motion vector from frame A into frame B.
    pub fn apply_motion(&self, m: &SpatialMotion) -> SpatialMotion {
        SpatialMotion::new(self.rot * m.ang, self.rot * (m.lin - self.trans.cross(m.ang)))
    }

    /// Transforms a force vector from frame A into frame B.
    pub fn apply_force(&self, f: &SpatialForce) -> SpatialForce {
        SpatialForce::new(self.rot * (f.moment - self.trans.cross(f.force)), self.rot * f.force)
    }

    /// Transforms a motion vector from frame B back into frame A.
    pub fn inv_apply_motion(&self, m: &SpatialMotion) -> SpatialMotion {
        let ang = self.rot.transpose() * m.ang;
        let lin = self.rot.transpose() * m.lin + self.trans.cross(ang);
        SpatialMotion::new(ang, lin)
    }

    /// Transforms a force vector from frame B back into frame A.
    pub fn inv_apply_force(&self, f: &SpatialForce) -> SpatialForce {
        let force = self.rot.transpose() * f.force;
        let moment = self.rot.transpose() * f.moment + self.trans.cross(force);
        SpatialForce::new(moment, force)
    }

    /// The inverse transform `^A X_B`.
    pub fn inverse(&self) -> SpatialTransform {
        SpatialTransform { rot: self.rot.transpose(), trans: -(self.rot * self.trans) }
    }

    /// Composition: if `self` is `^C X_B` and `rhs` is `^B X_A`, the result is
    /// `^C X_A`.
    pub fn compose(&self, rhs: &SpatialTransform) -> SpatialTransform {
        SpatialTransform {
            rot: self.rot * rhs.rot,
            trans: rhs.trans + rhs.rot.transpose() * self.trans,
        }
    }
}

/// A rigid-body spatial inertia expressed in a particular frame, parameterised
/// by mass, centre-of-mass offset and rotational inertia about the centre of
/// mass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialInertia {
    /// Body mass in kilograms.
    pub mass: f64,
    /// Centre of mass expressed in the body frame.
    pub com: Vec3,
    /// Rotational inertia about the centre of mass, in the body frame.
    pub inertia_com: Mat3,
}

impl Default for SpatialInertia {
    fn default() -> Self {
        SpatialInertia::zero()
    }
}

impl SpatialInertia {
    /// The zero inertia (massless body).
    pub fn zero() -> Self {
        SpatialInertia { mass: 0.0, com: Vec3::ZERO, inertia_com: Mat3::zero() }
    }

    /// Creates an inertia from mass, centre of mass and rotational inertia
    /// about the centre of mass.
    ///
    /// # Panics
    ///
    /// Panics if `mass` is negative.
    pub fn new(mass: f64, com: Vec3, inertia_com: Mat3) -> Self {
        assert!(mass >= 0.0, "mass must be non-negative");
        SpatialInertia { mass, com, inertia_com }
    }

    /// A solid-sphere approximation, useful in tests.
    pub fn solid_sphere(mass: f64, radius: f64, com: Vec3) -> Self {
        let i = 0.4 * mass * radius * radius;
        SpatialInertia::new(mass, com, Mat3::diagonal(Vec3::splat(i)))
    }

    /// Applies the inertia to a motion vector, producing the corresponding
    /// momentum/force vector `I · m` (both expressed in the same frame).
    pub fn apply(&self, m: &SpatialMotion) -> SpatialForce {
        // Linear momentum: p = m (v + ω × c)
        let p = (m.lin + m.ang.cross(self.com)) * self.mass;
        // Angular momentum about the frame origin:
        // L = I_C ω + c × p
        let l = self.inertia_com * m.ang + self.com.cross(p);
        SpatialForce::new(l, p)
    }

    /// Combines two inertias expressed in the same frame (composite body).
    pub fn combine(&self, other: &SpatialInertia) -> SpatialInertia {
        let mass = self.mass + other.mass;
        if mass < 1e-12 {
            return SpatialInertia::zero();
        }
        let com = (self.com * self.mass + other.com * other.mass) / mass;
        // Parallel-axis both inertias to the new common centre of mass.
        let shift = |inertia: &Mat3, m: f64, c: Vec3| -> Mat3 {
            let d = c - com;
            let d2 = d.norm_squared();
            *inertia + (Mat3::identity() * d2 - Mat3::outer(d, d)) * m
        };
        let inertia_com = shift(&self.inertia_com, self.mass, self.com)
            + shift(&other.inertia_com, other.mass, other.com);
        SpatialInertia { mass, com, inertia_com }
    }

    /// Re-expresses this inertia (attached to a child body) in the parent
    /// frame, given the pose of the child frame in the parent frame.
    pub fn expressed_in_parent(&self, pose_of_child_in_parent: &SE3) -> SpatialInertia {
        let r = pose_of_child_in_parent.rotation;
        SpatialInertia {
            mass: self.mass,
            com: pose_of_child_in_parent.transform_point(self.com),
            inertia_com: r * self.inertia_com * r.transpose(),
        }
    }

    /// The full 6×6 spatial-inertia matrix (moment rows on top), mostly used
    /// in tests and for the task-space mass-matrix computation.
    pub fn to_matrix(&self) -> SpatialMat {
        let cx = Mat3::skew(self.com);
        let upper_left = self.inertia_com + cx * cx.transpose() * self.mass;
        let upper_right = cx * self.mass;
        let lower_left = cx.transpose() * self.mass;
        let lower_right = Mat3::identity() * self.mass;
        SpatialMat::from_blocks(upper_left, upper_right, lower_left, lower_right)
    }
}

/// A dense 6×6 matrix, stored row-major; the block structure follows the
/// spatial-vector layout (angular/moment block first).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialMat {
    /// Row-major entries.
    pub m: [[f64; 6]; 6],
}

impl Default for SpatialMat {
    fn default() -> Self {
        SpatialMat::zero()
    }
}

impl SpatialMat {
    /// The zero matrix.
    pub const fn zero() -> Self {
        SpatialMat { m: [[0.0; 6]; 6] }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut out = SpatialMat::zero();
        for i in 0..6 {
            out.m[i][i] = 1.0;
        }
        out
    }

    /// Builds a 6×6 matrix from four 3×3 blocks.
    pub fn from_blocks(ul: Mat3, ur: Mat3, ll: Mat3, lr: Mat3) -> Self {
        let mut out = SpatialMat::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[i][j] = ul.m[i][j];
                out.m[i][j + 3] = ur.m[i][j];
                out.m[i + 3][j] = ll.m[i][j];
                out.m[i + 3][j + 3] = lr.m[i][j];
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> SpatialMat {
        let mut out = SpatialMat::zero();
        for i in 0..6 {
            for j in 0..6 {
                out.m[i][j] = self.m[j][i];
            }
        }
        out
    }

    /// Matrix-vector product with a motion vector, producing a force vector
    /// (the natural typing for a spatial inertia).
    pub fn mul_motion(&self, v: &SpatialMotion) -> SpatialForce {
        let x = v.to_array();
        let mut y = [0.0; 6];
        for (yi, row) in y.iter_mut().zip(&self.m) {
            *yi = row.iter().zip(&x).map(|(mij, xj)| mij * xj).sum();
        }
        SpatialForce::new(Vec3::new(y[0], y[1], y[2]), Vec3::new(y[3], y[4], y[5]))
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.m.iter().flat_map(|r| r.iter()).fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }
}

impl Add for SpatialMat {
    type Output = SpatialMat;
    fn add(self, rhs: SpatialMat) -> SpatialMat {
        let mut out = SpatialMat::zero();
        for i in 0..6 {
            for j in 0..6 {
                out.m[i][j] = self.m[i][j] + rhs.m[i][j];
            }
        }
        out
    }
}

impl Mul for SpatialMat {
    type Output = SpatialMat;
    fn mul(self, rhs: SpatialMat) -> SpatialMat {
        let mut out = SpatialMat::zero();
        for i in 0..6 {
            for j in 0..6 {
                out.m[i][j] = (0..6).map(|k| self.m[i][k] * rhs.m[k][j]).sum();
            }
        }
        out
    }
}

impl Index<(usize, usize)> for SpatialMat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.m[i][j]
    }
}

impl IndexMut<(usize, usize)> for SpatialMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.m[i][j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    fn example_transform() -> SpatialTransform {
        let pose = SE3::new(Mat3::from_euler_xyz(0.2, -0.3, 0.5), Vec3::new(0.1, 0.4, -0.2));
        SpatialTransform::from_pose(&pose)
    }

    #[test]
    fn transform_inverse_roundtrip_motion() {
        let x = example_transform();
        let m = SpatialMotion::new(Vec3::new(0.3, -1.0, 0.7), Vec3::new(1.0, 0.2, -0.5));
        let roundtrip = x.inv_apply_motion(&x.apply_motion(&m));
        assert!((roundtrip.ang - m.ang).norm() < 1e-12);
        assert!((roundtrip.lin - m.lin).norm() < 1e-12);
    }

    #[test]
    fn transform_inverse_roundtrip_force() {
        let x = example_transform();
        let f = SpatialForce::new(Vec3::new(0.3, -1.0, 0.7), Vec3::new(1.0, 0.2, -0.5));
        let roundtrip = x.inv_apply_force(&x.apply_force(&f));
        assert!((roundtrip.moment - f.moment).norm() < 1e-12);
        assert!((roundtrip.force - f.force).norm() < 1e-12);
    }

    #[test]
    fn inverse_equals_inv_apply() {
        let x = example_transform();
        let m = SpatialMotion::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(-0.2, 0.1, 0.4));
        let a = x.inverse().apply_motion(&m);
        let b = x.inv_apply_motion(&m);
        assert!((a.ang - b.ang).norm() < 1e-12);
        assert!((a.lin - b.lin).norm() < 1e-12);
    }

    #[test]
    fn power_is_invariant_under_change_of_frame() {
        // mᵀ f is a physical scalar (power) and must not depend on the frame.
        let x = example_transform();
        let m = SpatialMotion::new(Vec3::new(0.5, 0.2, -0.1), Vec3::new(0.3, -0.4, 0.9));
        let f = SpatialForce::new(Vec3::new(-1.0, 0.3, 0.2), Vec3::new(2.0, 0.0, -0.5));
        let power_a = m.dot_force(&f);
        let power_b = x.apply_motion(&m).dot_force(&x.apply_force(&f));
        assert!((power_a - power_b).abs() < 1e-12);
    }

    #[test]
    fn composition_matches_sequential_application() {
        let pose1 = SE3::new(Mat3::rotation_x(0.4), Vec3::new(0.1, 0.0, 0.3));
        let pose2 = SE3::new(Mat3::rotation_z(-0.9), Vec3::new(0.0, 0.2, 0.0));
        let x1 = SpatialTransform::from_pose(&pose1); // frame1 <- frame0
        let x2 = SpatialTransform::from_pose(&pose2); // frame2 <- frame1
        let m = SpatialMotion::new(Vec3::new(0.3, 0.6, -0.2), Vec3::new(1.0, -1.0, 0.5));
        let sequential = x2.apply_motion(&x1.apply_motion(&m));
        let composed = x2.compose(&x1).apply_motion(&m);
        assert!((sequential.ang - composed.ang).norm() < 1e-12);
        assert!((sequential.lin - composed.lin).norm() < 1e-12);
    }

    #[test]
    fn from_pose_to_pose_roundtrip() {
        let pose = SE3::new(Mat3::from_euler_xyz(0.3, 0.2, -0.6), Vec3::new(1.0, -2.0, 0.5));
        let x = SpatialTransform::from_pose(&pose);
        let back = x.to_pose();
        assert!((back.rotation - pose.rotation).max_abs() < 1e-12);
        assert!((back.translation - pose.translation).norm() < 1e-12);
    }

    #[test]
    fn inertia_apply_matches_matrix_form() {
        let inertia = SpatialInertia::new(
            2.5,
            Vec3::new(0.1, -0.05, 0.2),
            Mat3::diagonal(Vec3::new(0.02, 0.03, 0.015)),
        );
        let m = SpatialMotion::new(Vec3::new(0.4, 0.7, -0.3), Vec3::new(0.2, -0.1, 0.6));
        let f1 = inertia.apply(&m);
        let f2 = inertia.to_matrix().mul_motion(&m);
        assert!((f1.moment - f2.moment).norm() < 1e-10);
        assert!((f1.force - f2.force).norm() < 1e-10);
    }

    #[test]
    fn inertia_matrix_is_symmetric() {
        let inertia = SpatialInertia::new(
            1.7,
            Vec3::new(-0.2, 0.3, 0.05),
            Mat3::diagonal(Vec3::new(0.05, 0.02, 0.04)),
        );
        let m = inertia.to_matrix();
        let diff_t = {
            let t = m.transpose();
            let mut max = 0.0_f64;
            for i in 0..6 {
                for j in 0..6 {
                    max = max.max((m.m[i][j] - t.m[i][j]).abs());
                }
            }
            max
        };
        assert!(diff_t < 1e-12);
    }

    #[test]
    fn combining_inertia_preserves_mass_and_momentum() {
        let a = SpatialInertia::solid_sphere(1.0, 0.1, Vec3::new(0.3, 0.0, 0.0));
        let b = SpatialInertia::solid_sphere(2.0, 0.2, Vec3::new(-0.1, 0.2, 0.0));
        let c = a.combine(&b);
        assert!((c.mass - 3.0).abs() < 1e-12);
        // Applying the combined inertia must equal the sum of the parts.
        let m = SpatialMotion::new(Vec3::new(0.2, -0.4, 0.6), Vec3::new(0.5, 0.1, -0.3));
        let f_sum = a.apply(&m) + b.apply(&m);
        let f_combined = c.apply(&m);
        assert!((f_sum.moment - f_combined.moment).norm() < 1e-9);
        assert!((f_sum.force - f_combined.force).norm() < 1e-9);
    }

    #[test]
    fn kinetic_energy_is_positive() {
        let inertia = SpatialInertia::solid_sphere(2.0, 0.15, Vec3::new(0.1, 0.1, 0.0));
        let m = SpatialMotion::new(Vec3::new(1.0, -2.0, 0.5), Vec3::new(0.3, 0.0, -1.0));
        let ke = 0.5 * m.dot_force(&inertia.apply(&m));
        assert!(ke > 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_mass_panics() {
        let _ = SpatialInertia::new(-1.0, Vec3::ZERO, Mat3::identity());
    }

    fn arb_motion() -> impl Strategy<Value = SpatialMotion> {
        (-3.0..3.0, -3.0..3.0, -3.0..3.0, -3.0..3.0, -3.0..3.0, -3.0..3.0).prop_map(
            |(a, b, c, d, e, f)| SpatialMotion::new(Vec3::new(a, b, c), Vec3::new(d, e, f)),
        )
    }

    proptest! {
        #[test]
        fn cross_motion_with_self_is_zero(m in arb_motion()) {
            let c = m.cross_motion(&m);
            prop_assert!(c.norm() < 1e-9);
        }

        #[test]
        fn spatial_cross_products_respect_power_balance(
            v in arb_motion(), m in arb_motion(),
            r in -PI..PI, tx in -1.0..1.0) {
            // Jacobi-like identity check under a change of frame:
            // X (v × m) == (X v) × (X m)
            let pose = SE3::new(Mat3::rotation_y(r), Vec3::new(tx, 0.2, -0.1));
            let x = SpatialTransform::from_pose(&pose);
            let lhs = x.apply_motion(&v.cross_motion(&m));
            let rhs = x.apply_motion(&v).cross_motion(&x.apply_motion(&m));
            prop_assert!((lhs.ang - rhs.ang).norm() < 1e-9);
            prop_assert!((lhs.lin - rhs.lin).norm() < 1e-9);
        }
    }
}
