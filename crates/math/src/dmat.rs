//! Small dynamically-sized matrices and vectors.
//!
//! These back the joint-space mass matrix (7×7 for the Franka Panda), the
//! 6×n geometric Jacobian and the 6×6 task-space mass matrix used by the
//! TS-CTC controller. The sizes involved are tiny, so a simple row-major
//! `Vec<f64>` representation with straightforward O(n³) factorisations is both
//! adequate and easy to audit.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Error returned when an LU factorisation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is singular (a pivot was numerically zero).
    Singular,
    /// The matrix is not square.
    NotSquare,
    /// A dimension mismatch between the matrix and the right-hand side.
    DimensionMismatch,
}

impl fmt::Display for LuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LuError::Singular => write!(f, "matrix is singular"),
            LuError::NotSquare => write!(f, "matrix is not square"),
            LuError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LuError {}

/// Error returned when a Cholesky factorisation fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not positive definite.
    NotPositiveDefinite,
    /// The matrix is not square.
    NotSquare,
    /// A dimension mismatch between the matrix and the right-hand side.
    DimensionMismatch,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for CholeskyError {}

/// A dynamically-sized column vector of `f64`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DVec {
    data: Vec<f64>,
}

impl DVec {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        DVec { data: vec![0.0; n] }
    }

    /// Creates a vector from a `Vec<f64>`.
    pub fn from_vec(data: Vec<f64>) -> Self {
        DVec { data }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(s: &[f64]) -> Self {
        DVec { data: s.to_vec() }
    }

    /// Length of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the underlying slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// A mutable view of the underlying slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Dot product.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn dot(&self, other: &DVec) -> f64 {
        assert_eq!(self.len(), other.len(), "DVec::dot length mismatch");
        self.data.iter().zip(other.data.iter()).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Returns a new vector scaled by `s`.
    pub fn scale(&self, s: f64) -> DVec {
        DVec::from_vec(self.data.iter().map(|x| x * s).collect())
    }

    /// Scales the vector in place — the allocation-free variant of
    /// [`DVec::scale`].
    pub fn scale_mut(&mut self, s: f64) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// In-place `self += a · x` (BLAS `axpy`) — replaces the
    /// `scale`-then-`Add` pattern without allocating two temporaries.
    ///
    /// # Panics
    ///
    /// Panics when the lengths differ.
    pub fn axpy(&mut self, a: f64, x: &DVec) {
        assert_eq!(self.len(), x.len(), "DVec::axpy length mismatch");
        for (s, xi) in self.data.iter_mut().zip(x.data.iter()) {
            *s += a * xi;
        }
    }

    /// Maximum absolute element, or 0 for an empty vector.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }
}

impl Index<usize> for DVec {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for DVec {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &DVec {
    type Output = DVec;
    fn add(self, rhs: &DVec) -> DVec {
        assert_eq!(self.len(), rhs.len(), "DVec addition length mismatch");
        DVec::from_vec(self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a + b).collect())
    }
}

impl Sub for &DVec {
    type Output = DVec;
    fn sub(self, rhs: &DVec) -> DVec {
        assert_eq!(self.len(), rhs.len(), "DVec subtraction length mismatch");
        DVec::from_vec(self.data.iter().zip(rhs.data.iter()).map(|(a, b)| a - b).collect())
    }
}

impl std::ops::AddAssign<&DVec> for DVec {
    fn add_assign(&mut self, rhs: &DVec) {
        assert_eq!(self.len(), rhs.len(), "DVec addition length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl std::ops::SubAssign<&DVec> for DVec {
    fn sub_assign(&mut self, rhs: &DVec) {
        assert_eq!(self.len(), rhs.len(), "DVec subtraction length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl From<Vec<f64>> for DVec {
    fn from(v: Vec<f64>) -> Self {
        DVec::from_vec(v)
    }
}

impl FromIterator<f64> for DVec {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        DVec::from_vec(iter.into_iter().collect())
    }
}

/// A dynamically-sized row-major matrix of `f64`.
///
/// ```
/// use corki_math::{DMat, DVec};
/// let m = DMat::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
/// let b = DVec::from_slice(&[1.0, 2.0]);
/// let x = m.solve_cholesky(&b).unwrap();
/// let back = m.mul_vec(&x);
/// assert!((back[0] - 1.0).abs() < 1e-12 && (back[1] - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates a zero matrix with the given dimensions.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == ncols), "all rows must have the same length");
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        DMat { rows: nrows, cols: ncols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &DVec) -> DVec {
        assert_eq!(v.len(), self.cols, "mul_vec dimension mismatch");
        let mut out = DVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Matrix-matrix product.
    ///
    /// # Panics
    ///
    /// Panics when `self.cols() != rhs.rows()`.
    pub fn mul_mat(&self, rhs: &DMat) -> DMat {
        assert_eq!(self.cols, rhs.rows, "mul_mat dimension mismatch");
        let mut out = DMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Symmetric check within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    /// Maximum absolute element-wise difference with `other`.
    ///
    /// # Panics
    ///
    /// Panics when the dimensions differ.
    pub fn max_abs_diff(&self, other: &DMat) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff dimension mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff dimension mismatch");
        self.data.iter().zip(other.data.iter()).fold(0.0_f64, |acc, (a, b)| acc.max((a - b).abs()))
    }

    /// Solves `self * x = b` using LU decomposition with partial pivoting.
    ///
    /// Callers that solve against the same matrix repeatedly should factor
    /// once with [`DMat::lu_factor`] and reuse [`LuFactors::solve_into`].
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`], [`LuError::DimensionMismatch`] or
    /// [`LuError::Singular`] when applicable.
    pub fn solve_lu(&self, b: &DVec) -> Result<DVec, LuError> {
        if !self.is_square() {
            return Err(LuError::NotSquare);
        }
        if b.len() != self.rows {
            return Err(LuError::DimensionMismatch);
        }
        let factors = self.lu_factor()?;
        let mut x = DVec::default();
        factors.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// LU-factorises the matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`] or [`LuError::Singular`].
    pub fn lu_factor(&self) -> Result<LuFactors, LuError> {
        let mut factors = LuFactors::default();
        self.lu_factor_into(&mut factors)?;
        Ok(factors)
    }

    /// LU-factorises the matrix into an existing [`LuFactors`], reusing its
    /// storage — the in-place variant behind [`DMat::lu_factor`] for callers
    /// that refactor every control cycle.
    ///
    /// # Errors
    ///
    /// Returns [`LuError::NotSquare`] or [`LuError::Singular`].
    pub fn lu_factor_into(&self, factors: &mut LuFactors) -> Result<(), LuError> {
        if !self.is_square() {
            return Err(LuError::NotSquare);
        }
        let n = self.rows;
        factors.n = n;
        factors.lu.clear();
        factors.lu.extend_from_slice(&self.data);
        factors.perm.clear();
        factors.perm.extend(0..n);
        let a = &mut factors.lu;
        let perm = &mut factors.perm;

        for k in 0..n {
            // Partial pivoting.
            let mut pivot_row = k;
            let mut pivot_val = a[perm[k] * n + k].abs();
            for (idx, &p) in perm.iter().enumerate().skip(k + 1) {
                let val = a[p * n + k].abs();
                if val > pivot_val {
                    pivot_val = val;
                    pivot_row = idx;
                }
            }
            if pivot_val < 1e-13 {
                return Err(LuError::Singular);
            }
            perm.swap(k, pivot_row);
            let pk = perm[k];
            for &pi in perm.iter().skip(k + 1) {
                let factor = a[pi * n + k] / a[pk * n + k];
                a[pi * n + k] = factor;
                for j in (k + 1)..n {
                    a[pi * n + j] -= factor * a[pk * n + j];
                }
            }
        }
        Ok(())
    }

    /// Inverse via LU decomposition (one factorisation shared by all
    /// columns).
    ///
    /// # Errors
    ///
    /// Returns an [`LuError`] when the matrix is singular or not square.
    pub fn inverse(&self) -> Result<DMat, LuError> {
        if !self.is_square() {
            return Err(LuError::NotSquare);
        }
        let n = self.rows;
        let factors = self.lu_factor()?;
        let mut out = DMat::zeros(n, n);
        let mut e = DVec::zeros(n);
        let mut col = DVec::default();
        for j in 0..n {
            e.data.fill(0.0);
            e[j] = 1.0;
            factors.solve_into(&e, &mut col)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Solves `self * x = b` via Cholesky decomposition, requiring the matrix
    /// to be symmetric positive definite (e.g. a mass matrix).
    ///
    /// Callers that solve against the same matrix repeatedly should factor
    /// once with [`DMat::cholesky_factor`] (or
    /// [`DMat::cholesky_factor_into`]) and reuse
    /// [`DMat::cholesky_solve_with_factor`].
    ///
    /// # Errors
    ///
    /// Returns a [`CholeskyError`] if the matrix is not square, the dimensions
    /// mismatch, or it is not positive definite.
    pub fn solve_cholesky(&self, b: &DVec) -> Result<DVec, CholeskyError> {
        let l = self.cholesky_factor()?;
        if b.len() != self.rows {
            return Err(CholeskyError::DimensionMismatch);
        }
        let mut x = DVec::default();
        l.cholesky_solve_with_factor(b, &mut x)?;
        Ok(x)
    }

    /// Solves `L Lᵀ x = b` where `self` is a lower-triangular Cholesky factor
    /// previously produced by [`DMat::cholesky_factor`], writing the solution
    /// into `x` (resized in place, no allocation at steady state).
    ///
    /// # Errors
    ///
    /// Returns a [`CholeskyError`] if the factor is not square or the
    /// dimensions mismatch.
    pub fn cholesky_solve_with_factor(&self, b: &DVec, x: &mut DVec) -> Result<(), CholeskyError> {
        if !self.is_square() {
            return Err(CholeskyError::NotSquare);
        }
        if b.len() != self.rows {
            return Err(CholeskyError::DimensionMismatch);
        }
        let n = self.rows;
        x.data.clear();
        x.data.resize(n, 0.0);
        // Forward substitution L y = b (y stored in x).
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self[(i, j)] * x[j];
            }
            x[i] = acc / self[(i, i)];
        }
        // Back substitution Lᵀ x = y, in place: x[i] only reads y[i] and the
        // already-final x[j] with j > i.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self[(j, i)] * x[j];
            }
            x[i] = acc / self[(i, i)];
        }
        Ok(())
    }

    /// Lower-triangular Cholesky factor `L` with `self = L Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns a [`CholeskyError`] if the matrix is not square or not
    /// positive definite.
    pub fn cholesky_factor(&self) -> Result<DMat, CholeskyError> {
        let mut l = DMat::default();
        self.cholesky_factor_into(&mut l)?;
        Ok(l)
    }

    /// Cholesky-factorises into an existing matrix, reusing its storage —
    /// the in-place variant behind [`DMat::cholesky_factor`] for callers that
    /// refactor every control cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`CholeskyError`] if the matrix is not square or not
    /// positive definite.
    pub fn cholesky_factor_into(&self, l: &mut DMat) -> Result<(), CholeskyError> {
        if !self.is_square() {
            return Err(CholeskyError::NotSquare);
        }
        let n = self.rows;
        l.rows = n;
        l.cols = n;
        l.data.clear();
        l.data.resize(n * n, 0.0);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(CholeskyError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(())
    }
}

/// Packed LU factors (with the partial-pivoting row permutation) of a square
/// [`DMat`], produced by [`DMat::lu_factor`]. One factorisation serves any
/// number of right-hand sides via [`LuFactors::solve_into`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LuFactors {
    lu: Vec<f64>,
    perm: Vec<usize>,
    n: usize,
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factors, writing the solution into
    /// `x` (resized in place, no allocation at steady state).
    ///
    /// # Errors
    ///
    /// Returns [`LuError::DimensionMismatch`] when `b` has the wrong length.
    pub fn solve_into(&self, b: &DVec, x: &mut DVec) -> Result<(), LuError> {
        let n = self.n;
        if b.len() != n {
            return Err(LuError::DimensionMismatch);
        }
        x.data.clear();
        x.data.resize(n, 0.0);
        // Forward substitution (L has unit diagonal), applying the
        // permutation; the intermediate y lives in x.
        for i in 0..n {
            let pi = self.perm[i];
            let mut acc = b[pi];
            for j in 0..i {
                acc -= self.lu[pi * n + j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U, in place over the same buffer.
        for i in (0..n).rev() {
            let pi = self.perm[i];
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[pi * n + j] * x[j];
            }
            x[i] = acc / self.lu[pi * n + i];
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "DMat index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "DMat index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &DMat {
    type Output = DMat;
    fn add(self, rhs: &DMat) -> DMat {
        assert_eq!(self.rows, rhs.rows, "DMat addition dimension mismatch");
        assert_eq!(self.cols, rhs.cols, "DMat addition dimension mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o += r;
        }
        out
    }
}

impl Sub for &DMat {
    type Output = DMat;
    fn sub(self, rhs: &DMat) -> DMat {
        assert_eq!(self.rows, rhs.rows, "DMat subtraction dimension mismatch");
        assert_eq!(self.cols, rhs.cols, "DMat subtraction dimension mismatch");
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= r;
        }
        out
    }
}

impl Mul<&DMat> for &DMat {
    type Output = DMat;
    fn mul(self, rhs: &DMat) -> DMat {
        self.mul_mat(rhs)
    }
}

impl fmt::Display for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                write!(f, " {:9.4}", self[(i, j)])?;
            }
            writeln!(f, " ]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve() {
        let m = DMat::identity(4);
        let b = DVec::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let x = m.solve_lu(&b).unwrap();
        assert_eq!(x.as_slice(), b.as_slice());
    }

    #[test]
    fn lu_solve_known_system() {
        let m =
            DMat::from_rows(&[vec![2.0, 1.0, -1.0], vec![-3.0, -1.0, 2.0], vec![-2.0, 1.0, 2.0]]);
        let b = DVec::from_slice(&[8.0, -11.0, -3.0]);
        let x = m.solve_lu(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] - -1.0).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let m = DMat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = DVec::from_slice(&[1.0, 2.0]);
        assert_eq!(m.solve_lu(&b), Err(LuError::Singular));
    }

    #[test]
    fn non_square_is_rejected() {
        let m = DMat::zeros(2, 3);
        let b = DVec::zeros(2);
        assert_eq!(m.solve_lu(&b), Err(LuError::NotSquare));
        assert_eq!(m.solve_cholesky(&b), Err(CholeskyError::NotSquare));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let m = DMat::identity(3);
        let b = DVec::zeros(2);
        assert_eq!(m.solve_lu(&b), Err(LuError::DimensionMismatch));
    }

    #[test]
    fn cholesky_solve_spd() {
        let m = DMat::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ]);
        let b = DVec::from_slice(&[1.0, 2.0, 3.0]);
        let x = m.solve_cholesky(&b).unwrap();
        let back = m.mul_vec(&x);
        for i in 0..3 {
            assert!((back[i] - b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let m = DMat::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(m.cholesky_factor().unwrap_err(), CholeskyError::NotPositiveDefinite);
    }

    #[test]
    fn inverse_roundtrip() {
        let m = DMat::from_rows(&[vec![3.0, 0.5, 1.0], vec![0.5, 2.0, 0.0], vec![1.0, 0.0, 4.0]]);
        let inv = m.inverse().unwrap();
        let eye = m.mul_mat(&inv);
        assert!(eye.max_abs_diff(&DMat::identity(3)) < 1e-10);
    }

    #[test]
    fn transpose_involution() {
        let m = DMat::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_against_known_result() {
        let a = DMat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = DMat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.mul_mat(&b);
        assert_eq!(c, DMat::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn dvec_operations() {
        let a = DVec::from_slice(&[1.0, 2.0, 2.0]);
        let b = DVec::from_slice(&[3.0, 0.0, 4.0]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.norm(), 3.0);
        assert_eq!((&a + &b).as_slice(), &[4.0, 2.0, 6.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, 2.0, -2.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 4.0]);
        assert_eq!(b.max_abs(), 4.0);
    }

    #[test]
    fn in_place_dvec_ops_match_allocating_ones() {
        let a = DVec::from_slice(&[1.0, 2.0, 2.0]);
        let b = DVec::from_slice(&[3.0, 0.0, 4.0]);
        let mut c = a.clone();
        c.scale_mut(2.0);
        assert_eq!(c, a.scale(2.0));
        let mut d = a.clone();
        d.axpy(0.5, &b);
        assert_eq!(d, &a + &b.scale(0.5));
        let mut e = a.clone();
        e += &b;
        assert_eq!(e, &a + &b);
        e -= &b;
        assert_eq!(e.as_slice(), a.as_slice());
    }

    #[test]
    fn factored_solves_are_bit_identical_to_direct_solves() {
        let m = DMat::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ]);
        let bs = [[1.0, 2.0, 3.0], [-0.5, 4.0, 0.25], [10.0, -3.0, 7.0]];
        let l = m.cholesky_factor().unwrap();
        let lu = m.lu_factor().unwrap();
        let mut x = DVec::default();
        for b in bs {
            let rhs = DVec::from_slice(&b);
            l.cholesky_solve_with_factor(&rhs, &mut x).unwrap();
            assert_eq!(x, m.solve_cholesky(&rhs).unwrap());
            lu.solve_into(&rhs, &mut x).unwrap();
            assert_eq!(x, m.solve_lu(&rhs).unwrap());
        }
        assert_eq!(lu.dim(), 3);
        // Reusing the factor buffers must not change the results.
        let mut l2 = DMat::default();
        m.cholesky_factor_into(&mut l2).unwrap();
        assert_eq!(l2, l);
        let mut lu2 = LuFactors::default();
        m.lu_factor_into(&mut lu2).unwrap();
        assert_eq!(lu2, lu);
    }

    #[test]
    fn factored_solve_rejects_wrong_lengths() {
        let m = DMat::identity(3);
        let l = m.cholesky_factor().unwrap();
        let lu = m.lu_factor().unwrap();
        let mut x = DVec::default();
        let short = DVec::zeros(2);
        assert_eq!(
            l.cholesky_solve_with_factor(&short, &mut x),
            Err(CholeskyError::DimensionMismatch)
        );
        assert_eq!(lu.solve_into(&short, &mut x), Err(LuError::DimensionMismatch));
    }

    fn arb_spd(n: usize) -> impl Strategy<Value = DMat> {
        proptest::collection::vec(-1.0..1.0f64, n * n).prop_map(move |vals| {
            // A = B Bᵀ + n·I is symmetric positive definite.
            let b = DMat::from_fn(n, n, |i, j| vals[i * n + j]);
            let mut a = b.mul_mat(&b.transpose());
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            a
        })
    }

    proptest! {
        #[test]
        fn lu_and_cholesky_agree_on_spd(m in arb_spd(5),
                                        b in proptest::collection::vec(-10.0..10.0f64, 5)) {
            let rhs = DVec::from_vec(b);
            let x1 = m.solve_lu(&rhs).unwrap();
            let x2 = m.solve_cholesky(&rhs).unwrap();
            for i in 0..5 {
                prop_assert!((x1[i] - x2[i]).abs() < 1e-6);
            }
        }

        #[test]
        fn solve_then_multiply_recovers_rhs(m in arb_spd(4),
                                            b in proptest::collection::vec(-5.0..5.0f64, 4)) {
            let rhs = DVec::from_vec(b);
            let x = m.solve_lu(&rhs).unwrap();
            let back = m.mul_vec(&x);
            for i in 0..4 {
                prop_assert!((back[i] - rhs[i]).abs() < 1e-7);
            }
        }

        #[test]
        fn cholesky_factor_reconstructs(m in arb_spd(4)) {
            let l = m.cholesky_factor().unwrap();
            let reconstructed = l.mul_mat(&l.transpose());
            prop_assert!(reconstructed.max_abs_diff(&m) < 1e-9);
        }
    }
}
