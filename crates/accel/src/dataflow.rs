//! The dataflow-accelerator latency model (Fig. 8).

use crate::ops::{OpCounts, QuantityKind};
use serde::{Deserialize, Serialize};

/// Configuration of the accelerator model: which of the paper's optimisations
/// are enabled plus the calibration constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Enable the data-reuse strategy across the key blocks (§4.2).
    pub data_reuse: bool,
    /// Enable link-level pipelining of the dataflow units (§4.2).
    pub pipelining: bool,
    /// Accelerator clock in MHz (the ZC706 fabric design runs at 100 MHz).
    pub clock_mhz: f64,
    /// Calibrated effective cycles per multiply-accumulate, capturing the
    /// latency of double-precision floating-point operators, loop initiation
    /// intervals and control overhead of the HLS implementation.  The default
    /// is calibrated so that the fully-optimised design reproduces the
    /// paper's measured ≈29× control speed-up over the robot's CPU.
    pub cycles_per_op: f64,
    /// Fraction of the customised-circuit work (Jacobian, mass matrix, bias
    /// force, torque) that overlaps with the dataflow pipeline when
    /// pipelining is enabled: those circuits consume per-link results as they
    /// stream out of the FIFOs.
    pub custom_circuit_overlap: f64,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            data_reuse: true,
            pipelining: true,
            clock_mhz: 100.0,
            cycles_per_op: 34.0,
            custom_circuit_overlap: 0.75,
        }
    }
}

impl AcceleratorConfig {
    /// The unoptimised design point of the §4.2 ablation (no reuse, no
    /// pipelining).
    pub fn unoptimized() -> Self {
        AcceleratorConfig { data_reuse: false, pipelining: false, ..Default::default() }
    }

    /// The reuse-only design point of the ablation.
    pub fn reuse_only() -> Self {
        AcceleratorConfig { data_reuse: true, pipelining: false, ..Default::default() }
    }
}

/// The latency of one TS-CTC control computation, broken down by where the
/// cycles go.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlLatencyBreakdown {
    /// Cycles spent in the pose/velocity/acceleration/force dataflow units.
    pub dataflow_cycles: f64,
    /// Cycles spent in the customised circuits (Jacobian, Jacobianᵀ,
    /// task-space mass matrix, bias force, joint torque) that are *not*
    /// hidden under the dataflow pipeline.
    pub custom_circuit_cycles: f64,
    /// Total cycles of the control computation.
    pub total_cycles: f64,
    /// Wall-clock latency in milliseconds at the configured clock.
    pub latency_ms: f64,
}

/// The Corki accelerator latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorModel {
    config: AcceleratorConfig,
    ops: OpCounts,
}

impl Default for AcceleratorModel {
    fn default() -> Self {
        AcceleratorModel::new(AcceleratorConfig::default(), OpCounts::default())
    }
}

impl AcceleratorModel {
    /// Creates a model for the given configuration and robot size.
    pub fn new(config: AcceleratorConfig, ops: OpCounts) -> Self {
        AcceleratorModel { config, ops }
    }

    /// The configuration of this model.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The operation counts of this model.
    pub fn ops(&self) -> &OpCounts {
        &self.ops
    }

    /// Latency of one control computation with every matrix recomputed.
    pub fn control_latency(&self) -> ControlLatencyBreakdown {
        self.control_latency_with_skips(0.0)
    }

    /// Latency of one control computation when a fraction `skip_fraction` of
    /// the configuration-dependent matrix updates (Jacobian, Jacobianᵀ and the
    /// task-space mass matrix) is skipped by the ACE units and the previous
    /// cycle's values are reused (§4.3). The bias force is never skipped: it
    /// depends on the joint velocities, which change every cycle.
    ///
    /// # Panics
    ///
    /// Panics if `skip_fraction` is outside `[0, 1]`.
    pub fn control_latency_with_skips(&self, skip_fraction: f64) -> ControlLatencyBreakdown {
        assert!((0.0..=1.0).contains(&skip_fraction), "skip_fraction must be in [0, 1]");
        let keep = 1.0 - skip_fraction;
        let dataflow_quantities = [
            QuantityKind::Pose,
            QuantityKind::Velocity,
            QuantityKind::Acceleration,
            QuantityKind::Force,
        ];
        let skippable =
            [QuantityKind::Jacobian, QuantityKind::JacobianTranspose, QuantityKind::TaskMassMatrix];

        // Operations in the streaming dataflow portion.
        let dataflow_ops: f64 = if self.config.pipelining {
            // Pipeline fill (one link through pose/velocity/acceleration)
            // plus one slot per link at the slowest unit's rate.
            let fill = (self.ops.ops_per_link(QuantityKind::Pose)
                + self.ops.ops_per_link(QuantityKind::Velocity)
                + self.ops.ops_per_link(QuantityKind::Acceleration)) as f64;
            let slowest =
                dataflow_quantities.iter().map(|q| self.ops.ops_per_link(*q)).max().unwrap_or(0)
                    as f64;
            fill + slowest * self.ops.num_links as f64
        } else {
            dataflow_quantities.iter().map(|q| self.ops.ops(*q) as f64).sum()
        };

        // Operations in the customised circuits. Without data reuse every key
        // block recomputes its prerequisites, so the skippable/derived work is
        // the difference between the no-reuse and reuse totals plus the
        // derived quantities themselves.
        let always_recomputed = self.ops.ops(QuantityKind::TaskBiasForce) as f64
            + self.ops.ops(QuantityKind::JointTorque) as f64;
        let skippable_ops = skippable.iter().map(|q| self.ops.ops(*q) as f64).sum::<f64>() * keep;
        let derived_ops: f64 = if self.config.data_reuse {
            skippable_ops + always_recomputed
        } else {
            let redundant = (self.ops.total_without_reuse() - self.ops.total_with_reuse()) as f64;
            skippable_ops + always_recomputed + redundant
        };
        // Pipelining also hides most of the customised-circuit work behind
        // the streaming dataflow.
        let visible_derived = if self.config.pipelining {
            derived_ops * (1.0 - self.config.custom_circuit_overlap)
        } else {
            derived_ops
        };

        let dataflow_cycles = dataflow_ops * self.config.cycles_per_op;
        let custom_circuit_cycles = visible_derived * self.config.cycles_per_op;
        let total_cycles = dataflow_cycles + custom_circuit_cycles;
        ControlLatencyBreakdown {
            dataflow_cycles,
            custom_circuit_cycles,
            total_cycles,
            latency_ms: total_cycles / (self.config.clock_mhz * 1e3),
        }
    }

    /// The control frequency (Hz) achievable with the given skip fraction.
    pub fn control_frequency_hz(&self, skip_fraction: f64) -> f64 {
        1e3 / self.control_latency_with_skips(skip_fraction).latency_ms
    }

    /// Latency speed-up of this design over another design point.
    pub fn speedup_over(&self, other: &AcceleratorModel) -> f64 {
        other.control_latency().latency_ms / self.control_latency().latency_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(config: AcceleratorConfig) -> AcceleratorModel {
        AcceleratorModel::new(config, OpCounts::default())
    }

    #[test]
    fn ablation_matches_the_papers_shape() {
        let unopt = model(AcceleratorConfig::unoptimized());
        let reuse = model(AcceleratorConfig::reuse_only());
        let full = model(AcceleratorConfig::default());

        let l0 = unopt.control_latency().latency_ms;
        let l1 = reuse.control_latency().latency_ms;
        let l2 = full.control_latency().latency_ms;
        assert!(l0 > l1 && l1 > l2, "each optimisation must reduce latency");

        // Paper: reuse −54.0 %, pipelining a further −69.6 %, total −86.0 %.
        let reuse_reduction = 1.0 - l1 / l0;
        let pipeline_reduction = 1.0 - l2 / l1;
        let total_reduction = 1.0 - l2 / l0;
        assert!((0.40..0.65).contains(&reuse_reduction), "reuse: {reuse_reduction:.3}");
        assert!((0.55..0.80).contains(&pipeline_reduction), "pipeline: {pipeline_reduction:.3}");
        assert!((0.78..0.92).contains(&total_reduction), "total: {total_reduction:.3}");
    }

    #[test]
    fn full_design_meets_the_100hz_control_target() {
        let full = model(AcceleratorConfig::default());
        let freq = full.control_frequency_hz(0.0);
        assert!(freq > 100.0, "accelerator must exceed 100 Hz, got {freq:.1}");
    }

    #[test]
    fn skipping_matrix_updates_reduces_latency_monotonically() {
        let full = model(AcceleratorConfig::default());
        let mut previous = f64::MAX;
        for i in 0..=10 {
            let skip = i as f64 / 10.0;
            let latency = full.control_latency_with_skips(skip).latency_ms;
            assert!(latency <= previous + 1e-12, "latency must not increase with skipping");
            previous = latency;
        }
        // Skipping ~51 % of updates (the paper's observation at the 40 %
        // threshold) must give a tangible speed-up.
        let speedup =
            full.control_latency().latency_ms / full.control_latency_with_skips(0.51).latency_ms;
        assert!(speedup > 1.1 && speedup < 2.0, "speed-up {speedup:.2} out of range");
    }

    #[test]
    #[should_panic]
    fn invalid_skip_fraction_panics() {
        let full = model(AcceleratorConfig::default());
        let _ = full.control_latency_with_skips(1.5);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let full = model(AcceleratorConfig::default());
        let b = full.control_latency();
        assert!((b.dataflow_cycles + b.custom_circuit_cycles - b.total_cycles).abs() < 1e-9);
        assert!(b.latency_ms > 0.0);
    }

    #[test]
    fn speedup_over_unoptimized_is_consistent() {
        let unopt = model(AcceleratorConfig::unoptimized());
        let full = model(AcceleratorConfig::default());
        let speedup = full.speedup_over(&unopt);
        assert!(speedup > 4.0, "expected a large speed-up, got {speedup:.2}");
        assert!((full.speedup_over(&full) - 1.0).abs() < 1e-12);
    }
}
