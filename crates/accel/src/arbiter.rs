//! Time-domain arbitration of a shared, serially reusable resource.
//!
//! A fleet of robots contends for shared hardware: the Wi-Fi uplink carries
//! one frame at a time, and a shared TS-CTC accelerator computes one control
//! step at a time.  [`Arbiter`] models such a resource as a single server
//! with non-preemptive FIFO service: a grant starts at the later of the
//! request time and the instant the resource frees up.  It is the hook the
//! system layer uses to attach contention to any latency produced by the
//! device models in this crate.

use serde::{Deserialize, Serialize};

/// The outcome of one arbitration request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grant {
    /// When the resource starts serving the request (ms).
    pub start_ms: f64,
    /// When the resource is released again (ms).
    pub end_ms: f64,
    /// Time the request spent waiting for the resource (ms).
    pub wait_ms: f64,
}

/// A serially reusable resource granted in request order.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Arbiter {
    free_at_ms: f64,
    busy_ms: f64,
    grants: u64,
}

impl Arbiter {
    /// A resource that is free from time zero.
    pub fn new() -> Self {
        Arbiter::default()
    }

    /// Requests the resource at `now_ms` for `duration_ms`.
    ///
    /// Callers must issue requests in non-decreasing `now_ms` order (the
    /// discrete-event loop guarantees this); the grant then models a FIFO
    /// queue in front of the resource.
    ///
    /// # Panics
    ///
    /// Panics if `duration_ms` is negative or NaN.
    pub fn acquire(&mut self, now_ms: f64, duration_ms: f64) -> Grant {
        assert!(duration_ms >= 0.0, "durations must be non-negative, got {duration_ms}");
        let start_ms = if self.free_at_ms > now_ms { self.free_at_ms } else { now_ms };
        let end_ms = start_ms + duration_ms;
        self.free_at_ms = end_ms;
        self.busy_ms += duration_ms;
        self.grants += 1;
        Grant { start_ms, end_ms, wait_ms: start_ms - now_ms }
    }

    /// The earliest time at which a new request would start service.
    pub fn free_at_ms(&self) -> f64 {
        self.free_at_ms
    }

    /// Total time the resource has been granted for (ms).
    pub fn busy_ms(&self) -> f64 {
        self.busy_ms
    }

    /// Number of grants issued so far.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Utilisation of the resource over an observation window of
    /// `horizon_ms` (0 when the window is empty).
    pub fn utilization(&self, horizon_ms: f64) -> f64 {
        if horizon_ms <= 0.0 {
            0.0
        } else {
            self.busy_ms / horizon_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_requests_start_immediately() {
        let mut arbiter = Arbiter::new();
        let grant = arbiter.acquire(10.0, 5.0);
        assert_eq!(grant.start_ms, 10.0);
        assert_eq!(grant.end_ms, 15.0);
        assert_eq!(grant.wait_ms, 0.0);
        // The resource sat idle until 10.0, then a later request at 20.0
        // again starts immediately.
        let grant = arbiter.acquire(20.0, 2.0);
        assert_eq!(grant.wait_ms, 0.0);
        assert_eq!(arbiter.busy_ms(), 7.0);
        assert_eq!(arbiter.grants(), 2);
    }

    #[test]
    fn contended_requests_queue_fifo() {
        let mut arbiter = Arbiter::new();
        arbiter.acquire(0.0, 10.0);
        let second = arbiter.acquire(2.0, 10.0);
        assert_eq!(second.start_ms, 10.0);
        assert_eq!(second.wait_ms, 8.0);
        let third = arbiter.acquire(2.0, 1.0);
        assert_eq!(third.start_ms, 20.0);
        assert_eq!(third.end_ms, 21.0);
    }

    #[test]
    fn zero_duration_grants_are_exact() {
        // The N=1 pipeline relies on uncontended grants adding exactly zero
        // wait, so the arbitration hook must not perturb the float stream.
        let mut arbiter = Arbiter::new();
        let grant = arbiter.acquire(3.25, 0.0);
        assert_eq!(grant.wait_ms, 0.0);
        assert_eq!(grant.end_ms, 3.25);
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let mut arbiter = Arbiter::new();
        arbiter.acquire(0.0, 25.0);
        assert!((arbiter.utilization(100.0) - 0.25).abs() < 1e-12);
        assert_eq!(arbiter.utilization(0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_durations_are_rejected() {
        Arbiter::new().acquire(0.0, -1.0);
    }
}
