//! A calibrated analytical model of the Corki TS-CTC accelerator
//! (paper §4.2-§4.3, Fig. 8).
//!
//! The accelerator turns a predicted trajectory into joint torques in real
//! time.  Its three architectural ideas — and the knobs this crate models —
//! are:
//!
//! 1. **Data reuse** across the five key computing blocks (forward
//!    kinematics, Jacobian, Jacobian transpose, task-space mass matrix,
//!    task-space bias force): shared per-link quantities (pose, velocity,
//!    acceleration, force) are computed once instead of per consuming block
//!    (paper: −54.0 % latency).
//! 2. **Link-level pipelining** of the pose → velocity → acceleration → force
//!    dataflow units connected by FIFOs and a line buffer (paper: a further
//!    −69.6 %, −86.0 % total against the unoptimised implementation).
//! 3. **Application-specific approximate computing (ACE)**: per-joint impact
//!    factors decide when the mass matrix / Jacobian can be reused from the
//!    previous control cycle instead of recomputed (paper: >51 % of updates
//!    skipped with no accuracy loss at the 40 % threshold).
//!
//! Absolute latencies are calibrated to the paper's measurements (≈45 ms
//! per control computation on the robot's Intel i7-6770HQ, up to 29× faster
//! on the ZC706 accelerator); the *relative* effects of the three ideas are
//! produced structurally by the model so that the ablation (Fig. 15, §4.2)
//! can be regenerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ace;
pub mod arbiter;
mod cpu;
mod dataflow;
mod ops;
mod resources;

pub use ace::{AceConfig, AceState, AceStatistics, JointImpactFactors};
pub use arbiter::{Arbiter, Grant};
pub use cpu::{CpuControlModel, CpuKind};
pub use dataflow::{AcceleratorConfig, AcceleratorModel, ControlLatencyBreakdown};
pub use ops::{BlockKind, OpCounts, QuantityKind};
pub use resources::{FpgaDevice, ResourceReport, ResourceUsage};
