//! The CPU baseline for the control computation (paper §2.2 and §6.3):
//! running TS-CTC on the robot's on-board processor.

use serde::{Deserialize, Serialize};

/// The CPUs the paper measures the control algorithm on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuKind {
    /// The Intel Core i7-6770HQ that ships inside the Franka control box —
    /// the processor used by the baseline and by Corki-SW.
    IntelI7_6770HQ,
    /// A desktop Intel Core i7-13700, which the paper notes still cannot meet
    /// the real-time control requirement.
    IntelI7_13700,
}

/// An analytical latency/energy model of the control computation on a CPU,
/// calibrated to the paper's measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuControlModel {
    /// Which CPU this models.
    pub kind: CpuKind,
    /// Latency of one full TS-CTC control computation (milliseconds).
    pub control_latency_ms: f64,
    /// Average package power while running the control computation (watts).
    pub power_w: f64,
}

impl CpuControlModel {
    /// The robot's on-board Intel i7-6770HQ.
    ///
    /// Calibration: §2.2 states that with zero LLM inference latency the
    /// control loop would still only reach 22.1 Hz, and that control
    /// operations account for 39.7 % of that loop (the rest being
    /// communication), i.e. ≈18 ms per control computation.
    pub fn i7_6770hq() -> Self {
        CpuControlModel {
            kind: CpuKind::IntelI7_6770HQ,
            control_latency_ms: (1000.0 / 22.1) * 0.397,
            power_w: 35.0,
        }
    }

    /// A modern desktop Intel i7-13700: roughly twice the single-thread
    /// throughput, yet the paper notes the resulting control loop still
    /// cannot meet the real-time requirement once sensing and communication
    /// are included.
    pub fn i7_13700() -> Self {
        CpuControlModel {
            kind: CpuKind::IntelI7_13700,
            control_latency_ms: (1000.0 / 22.1) * 0.397 / 2.0,
            power_w: 65.0,
        }
    }

    /// The communication share of the CPU control loop (per cycle,
    /// milliseconds): sensor/actuator traffic that accompanies every control
    /// computation on the baseline platform (§2.2: 60.3 % of the loop).
    pub fn loop_communication_ms() -> f64 {
        (1000.0 / 22.1) * (1.0 - 0.397)
    }

    /// The frequency of the full control loop (control + per-cycle
    /// communication) on this CPU.
    pub fn control_loop_frequency_hz(&self) -> f64 {
        1000.0 / (self.control_latency_ms + Self::loop_communication_ms())
    }

    /// The control frequency this CPU can sustain (Hz).
    pub fn control_frequency_hz(&self) -> f64 {
        1000.0 / self.control_latency_ms
    }

    /// Whether the CPU meets a given control-rate requirement.
    pub fn meets_rate(&self, required_hz: f64) -> bool {
        self.control_frequency_hz() >= required_hz
    }

    /// Energy of one control computation in joules.
    pub fn control_energy_j(&self) -> f64 {
        self.power_w * self.control_latency_ms / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::AcceleratorModel;

    #[test]
    fn onboard_cpu_control_loop_matches_the_papers_22hz() {
        let cpu = CpuControlModel::i7_6770hq();
        assert!((cpu.control_loop_frequency_hz() - 22.1).abs() < 0.1);
        // The bare control computation cannot reach the preferred 100 Hz.
        assert!(!cpu.meets_rate(100.0));
    }

    #[test]
    fn even_a_modern_desktop_cpu_misses_the_real_time_target() {
        // §2.2: "we also tried ... an Intel Core i7-13700 CPU and the
        // corresponding frequency still can not meet real-time requirements."
        let cpu = CpuControlModel::i7_13700();
        assert!(cpu.control_frequency_hz() > CpuControlModel::i7_6770hq().control_frequency_hz());
        assert!(cpu.control_loop_frequency_hz() < 30.0);
    }

    #[test]
    fn accelerator_speedup_over_cpu_matches_the_paper() {
        // §6.3: "Corki hardware successfully accelerates the control process
        // by up to 29.0×".
        let cpu = CpuControlModel::i7_6770hq();
        let accel = AcceleratorModel::default();
        let speedup = cpu.control_latency_ms / accel.control_latency().latency_ms;
        assert!(
            (20.0..40.0).contains(&speedup),
            "accelerator speed-up over the CPU is {speedup:.1}×, expected ≈29×"
        );
    }

    #[test]
    fn energy_per_control_cycle_is_positive_and_small() {
        let cpu = CpuControlModel::i7_6770hq();
        let e = cpu.control_energy_j();
        assert!(e > 0.1 && e < 5.0, "energy {e} J out of range");
    }
}
