//! FPGA resource model of the Corki accelerator on the Xilinx ZC706
//! (Zynq-7045) evaluation board (paper §6.1).

use serde::{Deserialize, Serialize};

/// The resource capacity of an FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: &'static str,
    /// Number of DSP48 slices.
    pub dsp: u32,
    /// Number of flip-flops.
    pub ff: u32,
    /// Number of look-up tables.
    pub lut: u32,
    /// Number of 36 Kb block RAMs.
    pub bram36: u32,
}

impl FpgaDevice {
    /// The Xilinx ZC706 evaluation board (XC7Z045) used by the paper.
    pub fn zc706() -> Self {
        FpgaDevice { name: "ZC706 (XC7Z045)", dsp: 900, ff: 437_200, lut: 218_600, bram36: 545 }
    }
}

/// Absolute resource usage of one hardware unit.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// DSP slices.
    pub dsp: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Look-up tables.
    pub lut: u32,
    /// 36 Kb block RAMs.
    pub bram36: u32,
}

impl ResourceUsage {
    /// Sums two usages.
    pub fn add(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            dsp: self.dsp + other.dsp,
            ff: self.ff + other.ff,
            lut: self.lut + other.lut,
            bram36: self.bram36 + other.bram36,
        }
    }
}

/// The per-unit resource breakdown and utilisation report of the accelerator.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ResourceReport {
    /// Target device.
    pub device: FpgaDevice,
    /// Per-unit usage, `(unit name, usage)`.
    pub units: Vec<(String, ResourceUsage)>,
}

impl ResourceReport {
    /// The resource estimate of the Corki accelerator: the four dataflow
    /// units, the three customised circuits, the ACE units, the on-chip
    /// buffers (three FIFOs, one line buffer, the Jacobian-transpose copy and
    /// a small scratchpad) and the micro-controller.
    ///
    /// Unit budgets are sized so that the totals match the utilisation the
    /// paper reports for the ZC706: 13.6 % DSP, 7.8 % FF, 16.9 % LUT and
    /// 6.6 % BRAM.
    pub fn corki_on_zc706() -> Self {
        let units = vec![
            ("pose unit".to_owned(), ResourceUsage { dsp: 18, ff: 4_600, lut: 5_200, bram36: 0 }),
            (
                "velocity unit".to_owned(),
                ResourceUsage { dsp: 14, ff: 3_800, lut: 4_300, bram36: 0 },
            ),
            (
                "acceleration unit".to_owned(),
                ResourceUsage { dsp: 16, ff: 4_200, lut: 4_800, bram36: 0 },
            ),
            ("force unit".to_owned(), ResourceUsage { dsp: 20, ff: 4_900, lut: 5_500, bram36: 0 }),
            (
                "task-space mass matrix unit".to_owned(),
                ResourceUsage { dsp: 26, ff: 6_300, lut: 7_400, bram36: 2 },
            ),
            (
                "task-space bias force unit".to_owned(),
                ResourceUsage { dsp: 16, ff: 3_900, lut: 4_500, bram36: 1 },
            ),
            (
                "joint torque unit".to_owned(),
                ResourceUsage { dsp: 8, ff: 2_100, lut: 2_400, bram36: 0 },
            ),
            ("ACE units".to_owned(), ResourceUsage { dsp: 4, ff: 1_300, lut: 1_500, bram36: 0 }),
            (
                "FIFOs + line buffer".to_owned(),
                ResourceUsage { dsp: 0, ff: 1_200, lut: 800, bram36: 18 },
            ),
            (
                "Jacobian-transpose copy + scratchpad".to_owned(),
                ResourceUsage { dsp: 0, ff: 700, lut: 350, bram36: 13 },
            ),
            (
                "input/output buffers".to_owned(),
                ResourceUsage { dsp: 0, ff: 500, lut: 300, bram36: 2 },
            ),
            ("micro-controller".to_owned(), ResourceUsage { dsp: 0, ff: 700, lut: 600, bram36: 0 }),
        ];
        ResourceReport { device: FpgaDevice::zc706(), units }
    }

    /// Total usage across all units.
    pub fn total(&self) -> ResourceUsage {
        self.units.iter().fold(ResourceUsage::default(), |acc, (_, u)| acc.add(u))
    }

    /// Utilisation percentages `(dsp, ff, lut, bram)` of the target device.
    pub fn utilization_percent(&self) -> (f64, f64, f64, f64) {
        let t = self.total();
        (
            100.0 * t.dsp as f64 / self.device.dsp as f64,
            100.0 * t.ff as f64 / self.device.ff as f64,
            100.0 * t.lut as f64 / self.device.lut as f64,
            100.0 * t.bram36 as f64 / self.device.bram36 as f64,
        )
    }

    /// Whether the design needs any off-chip DRAM bandwidth during a control
    /// computation (it does not: all intermediate data fits in the FIFOs,
    /// line buffer and scratchpad).
    pub fn requires_dram(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_matches_the_paper_within_tolerance() {
        let report = ResourceReport::corki_on_zc706();
        let (dsp, ff, lut, bram) = report.utilization_percent();
        // Paper §6.1: 13.6 % DSP, 7.8 % FF, 16.9 % LUT, 6.6 % BRAM.
        assert!((dsp - 13.6).abs() < 1.0, "DSP {dsp:.1}%");
        assert!((ff - 7.8).abs() < 1.0, "FF {ff:.1}%");
        assert!((lut - 16.9).abs() < 1.5, "LUT {lut:.1}%");
        assert!((bram - 6.6).abs() < 1.0, "BRAM {bram:.1}%");
    }

    #[test]
    fn totals_are_the_sum_of_units() {
        let report = ResourceReport::corki_on_zc706();
        let manual = report.units.iter().fold(ResourceUsage::default(), |acc, (_, u)| acc.add(u));
        assert_eq!(manual, report.total());
        assert!(!report.requires_dram());
    }

    #[test]
    fn design_fits_comfortably_on_the_device() {
        let report = ResourceReport::corki_on_zc706();
        let t = report.total();
        let d = report.device;
        assert!(t.dsp < d.dsp / 2);
        assert!(t.ff < d.ff / 2);
        assert!(t.lut < d.lut / 2);
        assert!(t.bram36 < d.bram36 / 2);
    }
}
