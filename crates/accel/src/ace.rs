//! Application-specific approximate computing (ACE, paper §4.3).
//!
//! Robotic control runs at a high rate, but between consecutive control
//! cycles each joint barely moves, and the influence of a small joint motion
//! on the control matrices is very uneven across joints (Fig. 9/10: the
//! shoulder/elbow joints dominate, the first and last joints barely matter).
//! The ACE unit therefore computes, from the per-joint angular change since
//! the last full update, the probability that each matrix needs recomputing;
//! below a threshold the previous values are reused.

use crate::dataflow::AcceleratorModel;
use corki_robot::RobotModel;
use serde::{Deserialize, Serialize};

/// Per-joint impact factors: how strongly a unit change of each joint angle
/// perturbs the control matrices (the maximum absolute change of any
/// mass-matrix entry per radian).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointImpactFactors {
    factors: Vec<f64>,
}

impl JointImpactFactors {
    /// Impact factors measured on the Franka Panda model by perturbing each
    /// joint around the home configuration (the Fig. 9 experiment). These are
    /// the defaults used by the ACE unit when no robot model is at hand.
    pub fn panda_defaults() -> Self {
        JointImpactFactors { factors: vec![0.08, 0.95, 0.55, 0.70, 0.18, 0.12, 0.03] }
    }

    /// Measures impact factors from a robot model by perturbing each joint by
    /// `delta` radians around configuration `q` and recording the maximum
    /// absolute change of any joint-space mass-matrix entry, normalised per
    /// radian.
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` does not match the robot's DoF or `delta` is not
    /// positive.
    pub fn measure(robot: &RobotModel, q: &[f64], delta: f64) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        assert_eq!(q.len(), robot.dof(), "configuration size mismatch");
        let reference = robot.mass_matrix(q);
        let factors = (0..robot.dof())
            .map(|j| {
                let mut perturbed = q.to_vec();
                perturbed[j] += delta;
                let m = robot.mass_matrix(&perturbed);
                m.max_abs_diff(&reference) / delta
            })
            .collect();
        JointImpactFactors { factors }
    }

    /// The per-joint factors.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// Number of joints covered.
    pub fn dof(&self) -> usize {
        self.factors.len()
    }

    /// The update "probability" (a normalised urgency score in `[0, 1]`) for
    /// the given per-joint angular changes since the last full update.
    ///
    /// # Panics
    ///
    /// Panics if `delta_theta.len()` differs from the number of joints.
    pub fn update_probability(&self, delta_theta: &[f64]) -> f64 {
        assert_eq!(delta_theta.len(), self.factors.len(), "joint count mismatch");
        // A weighted angular displacement of ~0.1 rad of the most influential
        // joint corresponds to certainty that an update is needed (Fig. 9: a
        // 6° ≈ 0.1 rad motion of joint 2 already changes the mass matrix by
        // ~15 %).
        let max_factor = self.factors.iter().fold(f64::MIN_POSITIVE, |acc, f| acc.max(*f));
        let score: f64 = delta_theta.iter().zip(&self.factors).map(|(dt, f)| dt.abs() * f).sum();
        (score / (0.1 * max_factor)).min(1.0)
    }
}

/// Configuration of the ACE decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AceConfig {
    /// Per-joint impact factors.
    pub impact_factors: JointImpactFactors,
    /// Update threshold in `[0, 1]`: probabilities below it reuse the
    /// previous matrices. The paper selects 40 %.
    pub threshold: f64,
}

impl Default for AceConfig {
    fn default() -> Self {
        AceConfig { impact_factors: JointImpactFactors::panda_defaults(), threshold: 0.40 }
    }
}

/// Running statistics of the ACE unit over a control trace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AceStatistics {
    /// Control cycles observed.
    pub cycles: usize,
    /// Cycles in which the matrix update was skipped.
    pub skipped: usize,
}

impl AceStatistics {
    /// Fraction of updates skipped.
    pub fn skip_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.skipped as f64 / self.cycles as f64
        }
    }
}

/// The stateful ACE unit: tracks the joint configuration at the last full
/// update and decides, per control cycle, whether to recompute the matrices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AceState {
    config: AceConfig,
    last_update: Option<Vec<f64>>,
    stats: AceStatistics,
}

impl AceState {
    /// Creates a fresh ACE unit.
    pub fn new(config: AceConfig) -> Self {
        AceState { config, last_update: None, stats: AceStatistics::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AceConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn statistics(&self) -> AceStatistics {
        self.stats
    }

    /// Decides whether the matrices must be recomputed for the control cycle
    /// at joint configuration `q`. Returns `true` when a full update is
    /// performed.
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` does not match the impact-factor joint count.
    pub fn should_update(&mut self, q: &[f64]) -> bool {
        self.stats.cycles += 1;
        let Some(reference) = &self.last_update else {
            // First cycle: always compute.
            self.last_update = Some(q.to_vec());
            return true;
        };
        let delta: Vec<f64> = q.iter().zip(reference).map(|(a, b)| a - b).collect();
        let probability = self.config.impact_factors.update_probability(&delta);
        if probability >= self.config.threshold {
            self.last_update = Some(q.to_vec());
            true
        } else {
            self.stats.skipped += 1;
            false
        }
    }

    /// Runs the ACE decision over a whole joint trajectory (one configuration
    /// per control cycle) and returns the skip statistics.
    pub fn run_trace(&mut self, trace: &[Vec<f64>]) -> AceStatistics {
        for q in trace {
            let _ = self.should_update(q);
        }
        self.stats
    }
}

/// One row of the Fig. 9 sensitivity study: the maximum absolute and relative
/// change of the joint-space mass matrix when one joint moves by a given
/// angle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MassMatrixSensitivity {
    /// Index of the perturbed joint (0-based).
    pub joint: usize,
    /// Applied angular change in radians.
    pub delta_rad: f64,
    /// Maximum absolute change of any mass-matrix element.
    pub max_absolute_change: f64,
    /// Maximum relative change (in percent) of any element, measured against
    /// elements of non-negligible magnitude.
    pub max_relative_change_percent: f64,
}

/// Reproduces the Fig. 9 experiment: perturb every joint by each of the given
/// angles (radians) from configuration `q` and record the mass-matrix change.
pub fn mass_matrix_sensitivity(
    robot: &RobotModel,
    q: &[f64],
    deltas: &[f64],
) -> Vec<MassMatrixSensitivity> {
    let reference = robot.mass_matrix(q);
    let mut rows = Vec::new();
    for joint in 0..robot.dof() {
        for &delta_rad in deltas {
            let mut perturbed = q.to_vec();
            perturbed[joint] += delta_rad;
            let m = robot.mass_matrix(&perturbed);
            let mut max_abs: f64 = 0.0;
            let mut max_rel: f64 = 0.0;
            for i in 0..m.rows() {
                for j in 0..m.cols() {
                    let diff = (m[(i, j)] - reference[(i, j)]).abs();
                    max_abs = max_abs.max(diff);
                    if reference[(i, j)].abs() > 0.05 {
                        max_rel = max_rel.max(100.0 * diff / reference[(i, j)].abs());
                    }
                }
            }
            rows.push(MassMatrixSensitivity {
                joint,
                delta_rad,
                max_absolute_change: max_abs,
                max_relative_change_percent: max_rel,
            });
        }
    }
    rows
}

/// One point of the Fig. 15 sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSweepPoint {
    /// ACE threshold in `[0, 1]`.
    pub threshold: f64,
    /// Fraction of matrix updates skipped on the evaluated trace.
    pub skip_fraction: f64,
    /// Control-latency speed-up relative to never skipping.
    pub speedup: f64,
    /// Modelled trajectory error in centimetres (the paper measures ~0.50 cm
    /// with no approximation, rising to ~0.59 cm at an 80 % threshold).
    pub trajectory_error_cm: f64,
}

/// Sweeps the ACE threshold over a joint-trajectory trace, reproducing the
/// speed-up / error trade-off of Fig. 15.
pub fn sweep_thresholds(
    model: &AcceleratorModel,
    impact_factors: &JointImpactFactors,
    trace: &[Vec<f64>],
    thresholds: &[f64],
) -> Vec<ThresholdSweepPoint> {
    let base_latency = model.control_latency().latency_ms;
    thresholds
        .iter()
        .map(|&threshold| {
            let mut ace =
                AceState::new(AceConfig { impact_factors: impact_factors.clone(), threshold });
            let stats = ace.run_trace(trace);
            let skip_fraction = stats.skip_fraction();
            let latency = model.control_latency_with_skips(skip_fraction).latency_ms;
            // Error model calibrated to Fig. 15b: skipping matrix updates adds
            // a small tracking error on top of the ~0.5 cm baseline because
            // slightly stale matrices mis-shape the commanded wrench.
            let trajectory_error_cm = 0.50 + 0.11 * skip_fraction;
            ThresholdSweepPoint {
                threshold,
                skip_fraction,
                speedup: base_latency / latency,
                trajectory_error_cm,
            }
        })
        .collect()
}

/// A synthetic but representative joint trace for ACE evaluation: a smooth
/// reach motion sampled at the control rate, in which every joint moves a few
/// tenths of a radian over a couple of seconds.
pub fn representative_joint_trace(steps: usize) -> Vec<Vec<f64>> {
    let home = corki_robot::panda::PANDA_HOME;
    (0..steps)
        .map(|i| {
            let phase = i as f64 / steps.max(1) as f64;
            home.iter()
                .enumerate()
                .map(|(j, q)| {
                    let amplitude = 0.25 / (1.0 + j as f64 * 0.4);
                    q + amplitude * (std::f64::consts::PI * phase).sin()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::AcceleratorConfig;
    use crate::ops::OpCounts;
    use corki_robot::panda::{panda_model, PANDA_HOME};

    #[test]
    fn measured_impact_factors_match_the_papers_ordering() {
        // Fig. 9: joints 1 and 7 barely matter, the middle joints dominate.
        let robot = panda_model();
        let factors = JointImpactFactors::measure(&robot, &PANDA_HOME, 0.1);
        let f = factors.factors();
        assert_eq!(f.len(), 7);
        let strongest = f.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert!(
            (1..=3).contains(&strongest),
            "a middle joint should dominate, got joint {}",
            strongest + 1
        );
        assert!(f[0] < f[strongest] * 0.5, "joint 1 should matter much less");
        assert!(f[6] < f[strongest] * 0.3, "joint 7 should matter the least");
    }

    #[test]
    fn sensitivity_study_reproduces_fig9_shape() {
        let robot = panda_model();
        let deltas = [0.1, 0.3, 0.5]; // ≈ 6°, 17°, 29°
        let rows = mass_matrix_sensitivity(&robot, &PANDA_HOME, &deltas);
        assert_eq!(rows.len(), 21);
        // Changes grow with the applied angle for every joint.
        for joint in 0..7 {
            let per_joint: Vec<&MassMatrixSensitivity> =
                rows.iter().filter(|r| r.joint == joint).collect();
            assert!(per_joint[0].max_absolute_change <= per_joint[2].max_absolute_change + 1e-12);
        }
        // Joint 2 at 29° produces a much larger change than joint 7.
        let j2 = rows.iter().find(|r| r.joint == 1 && (r.delta_rad - 0.5).abs() < 1e-12).unwrap();
        let j7 = rows.iter().find(|r| r.joint == 6 && (r.delta_rad - 0.5).abs() < 1e-12).unwrap();
        assert!(j2.max_absolute_change > 5.0 * j7.max_absolute_change);
    }

    #[test]
    fn update_probability_is_monotone_and_bounded() {
        let factors = JointImpactFactors::panda_defaults();
        let small = factors.update_probability(&[0.001; 7]);
        let large = factors.update_probability(&[0.1; 7]);
        assert!(small < large);
        assert!((0.0..=1.0).contains(&small));
        assert!((0.0..=1.0).contains(&large));
        assert_eq!(factors.update_probability(&[0.0; 7]), 0.0);
    }

    #[test]
    fn ace_skips_a_majority_of_updates_at_the_design_threshold() {
        // Paper §4.3: over 51 % of matrix updates can be avoided at the 40 %
        // threshold on a representative motion.
        let mut ace = AceState::new(AceConfig::default());
        let trace = representative_joint_trace(200);
        let stats = ace.run_trace(&trace);
        assert!(
            stats.skip_fraction() > 0.5,
            "expected >50 % skips, got {:.2}",
            stats.skip_fraction()
        );
        assert!(stats.skip_fraction() < 0.99, "some updates must still happen");
    }

    #[test]
    fn first_cycle_always_updates() {
        let mut ace = AceState::new(AceConfig::default());
        assert!(ace.should_update(&[0.0; 7]));
        assert_eq!(ace.statistics().cycles, 1);
        assert_eq!(ace.statistics().skipped, 0);
    }

    #[test]
    fn threshold_sweep_reproduces_fig15_trends() {
        let model = AcceleratorModel::new(AcceleratorConfig::default(), OpCounts::default());
        let factors = JointImpactFactors::panda_defaults();
        let trace = representative_joint_trace(300);
        let thresholds: Vec<f64> = (0..=8).map(|i| i as f64 * 0.1).collect();
        let sweep = sweep_thresholds(&model, &factors, &trace, &thresholds);
        assert_eq!(sweep.len(), 9);
        // Speed-up and error both grow (weakly) with the threshold.
        for pair in sweep.windows(2) {
            assert!(pair[1].speedup >= pair[0].speedup - 1e-9);
            assert!(pair[1].trajectory_error_cm >= pair[0].trajectory_error_cm - 1e-9);
        }
        // Fig. 15 ranges: speed-up roughly 1.0-1.4×, error roughly 0.50-0.60 cm.
        let last = sweep.last().unwrap();
        assert!(last.speedup > 1.1 && last.speedup < 1.9, "speedup {}", last.speedup);
        assert!(last.trajectory_error_cm < 0.62);
        assert!(sweep[0].trajectory_error_cm >= 0.50);
    }

    #[test]
    #[should_panic]
    fn mismatched_joint_count_panics() {
        let factors = JointImpactFactors::panda_defaults();
        let _ = factors.update_probability(&[0.0; 3]);
    }
}
