//! Operation counts of the TS-CTC computing blocks.
//!
//! The counts are parameterised by the number of links so the model scales to
//! other arms; the default numbers correspond to the 7-DoF Panda (9 bodies
//! including flange and hand) and are derived by counting multiply-accumulate
//! operations in the `corki-robot` implementation of each block.

use serde::{Deserialize, Serialize};

/// The shared per-link quantities flowing through the dataflow accelerator
/// (Fig. 8, blue blocks) plus the derived per-robot quantities produced by
/// the customised circuits (yellow blocks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantityKind {
    /// Link poses (forward-kinematics chain).
    Pose,
    /// Link spatial velocities.
    Velocity,
    /// Link spatial accelerations.
    Acceleration,
    /// Link spatial forces.
    Force,
    /// Geometric Jacobian columns.
    Jacobian,
    /// The separately-stored Jacobian transpose copy.
    JacobianTranspose,
    /// The task-space mass matrix `Mx(θ)` (composite inertias + 6×6 solve).
    TaskMassMatrix,
    /// The task-space bias force `hx(θ, θ̇)`.
    TaskBiasForce,
    /// The final joint-torque combination `τ = Jᵀ(Mx ẍ + hx)`.
    JointTorque,
}

impl QuantityKind {
    /// Every quantity, in dataflow order.
    pub const ALL: [QuantityKind; 9] = [
        QuantityKind::Pose,
        QuantityKind::Velocity,
        QuantityKind::Acceleration,
        QuantityKind::Force,
        QuantityKind::Jacobian,
        QuantityKind::JacobianTranspose,
        QuantityKind::TaskMassMatrix,
        QuantityKind::TaskBiasForce,
        QuantityKind::JointTorque,
    ];
}

/// The five "key computing blocks" of Fig. 6/7 plus the final torque unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Forward kinematics.
    ForwardKinematics,
    /// Geometric Jacobian.
    Jacobian,
    /// Jacobian transpose.
    JacobianTranspose,
    /// Task-space mass matrix.
    TaskMassMatrix,
    /// Task-space bias force.
    TaskBiasForce,
    /// Joint torque combination.
    JointTorque,
}

impl BlockKind {
    /// Every block.
    pub const ALL: [BlockKind; 6] = [
        BlockKind::ForwardKinematics,
        BlockKind::Jacobian,
        BlockKind::JacobianTranspose,
        BlockKind::TaskMassMatrix,
        BlockKind::TaskBiasForce,
        BlockKind::JointTorque,
    ];

    /// The quantities a block needs to produce its output when it cannot
    /// reuse anything computed by the other blocks (Fig. 7's arrows, walked
    /// transitively).
    pub fn required_quantities(self) -> &'static [QuantityKind] {
        use QuantityKind::*;
        match self {
            BlockKind::ForwardKinematics => &[Pose],
            BlockKind::Jacobian => &[Pose, Jacobian],
            BlockKind::JacobianTranspose => &[Pose, Jacobian, JacobianTranspose],
            BlockKind::TaskMassMatrix => &[Pose, Jacobian, TaskMassMatrix],
            BlockKind::TaskBiasForce => &[
                Pose,
                Velocity,
                Acceleration,
                Force,
                Jacobian,
                JacobianTranspose,
                TaskMassMatrix,
                TaskBiasForce,
            ],
            BlockKind::JointTorque => &[JointTorque],
        }
    }
}

/// Floating-point operation counts of each quantity for a given robot size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Number of rigid bodies in the chain (9 for the Panda with hand).
    pub num_links: usize,
    /// Number of actuated joints (7 for the Panda).
    pub dof: usize,
}

impl Default for OpCounts {
    fn default() -> Self {
        OpCounts { num_links: 9, dof: 7 }
    }
}

impl OpCounts {
    /// Creates operation counts for a robot with the given chain size.
    pub fn new(num_links: usize, dof: usize) -> Self {
        OpCounts { num_links, dof }
    }

    /// Multiply-accumulate count of one quantity over the whole chain.
    pub fn ops(&self, quantity: QuantityKind) -> usize {
        let n = self.num_links;
        let d = self.dof;
        match quantity {
            // Per-link homogeneous-transform compose + point transform.
            QuantityKind::Pose => n * 62,
            // Spatial velocity propagation per link.
            QuantityKind::Velocity => n * 44,
            // Spatial acceleration propagation (adds the cross-product bias).
            QuantityKind::Acceleration => n * 56,
            // Inertia application + force cross-product per link.
            QuantityKind::Force => n * 74,
            // One 6-vector column per joint (cross product + copy).
            QuantityKind::Jacobian => d * 30,
            // The dedicated transpose copy (moves only).
            QuantityKind::JacobianTranspose => d * 6,
            // Composite inertias, J M⁻¹ Jᵀ and the damped 6×6 inversion.
            QuantityKind::TaskMassMatrix => n * 96 + d * d * 22 + 6 * 6 * 6 * 2,
            // J M⁻¹ h, J̇ θ̇ and the 6×6 multiply.
            QuantityKind::TaskBiasForce => d * d * 14 + 6 * d * 8 + 6 * 6 * 4,
            // Mx·a + hx and τ = Jᵀ F.
            QuantityKind::JointTorque => 6 * 6 * 2 + 6 * d * 2 + 6 * 8,
        }
    }

    /// Per-link operation count of a dataflow quantity (pose, velocity,
    /// acceleration, force); other quantities return their full count.
    pub fn ops_per_link(&self, quantity: QuantityKind) -> usize {
        match quantity {
            QuantityKind::Pose
            | QuantityKind::Velocity
            | QuantityKind::Acceleration
            | QuantityKind::Force => self.ops(quantity) / self.num_links.max(1),
            other => self.ops(other),
        }
    }

    /// Total operations of one control cycle when every quantity is computed
    /// exactly once (the data-reuse design point).
    pub fn total_with_reuse(&self) -> usize {
        QuantityKind::ALL.iter().map(|q| self.ops(*q)).sum()
    }

    /// Total operations when every key block independently recomputes its
    /// prerequisites (the unoptimised design point).
    pub fn total_without_reuse(&self) -> usize {
        BlockKind::ALL
            .iter()
            .flat_map(|b| b.required_quantities().iter())
            .map(|q| self.ops(*q))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counts_scale_with_robot_size() {
        let small = OpCounts::new(4, 3);
        let big = OpCounts::new(9, 7);
        for q in QuantityKind::ALL {
            assert!(big.ops(q) >= small.ops(q), "{q:?} should grow with size");
        }
    }

    #[test]
    fn reuse_eliminates_a_big_fraction_of_work() {
        let ops = OpCounts::default();
        let with = ops.total_with_reuse();
        let without = ops.total_without_reuse();
        assert!(without > with);
        let reduction = 1.0 - with as f64 / without as f64;
        // The paper reports 54.0 % latency reduction from the data-reuse
        // strategy; the op-count model should land in the same region.
        assert!(
            (0.40..0.65).contains(&reduction),
            "reuse reduction {reduction:.3} outside the expected band"
        );
    }

    #[test]
    fn per_link_counts_divide_evenly() {
        let ops = OpCounts::default();
        assert_eq!(ops.ops_per_link(QuantityKind::Pose) * 9, ops.ops(QuantityKind::Pose));
        assert_eq!(
            ops.ops_per_link(QuantityKind::TaskMassMatrix),
            ops.ops(QuantityKind::TaskMassMatrix)
        );
    }

    #[test]
    fn bias_force_is_the_most_demanding_dependency_chain() {
        // Sanity check of Fig. 7: the bias-force block consumes the longest
        // chain of prerequisites.
        let longest = BlockKind::ALL.iter().max_by_key(|b| b.required_quantities().len()).unwrap();
        assert_eq!(*longest, BlockKind::TaskBiasForce);
    }
}
