//! The 34 language-conditioned task instances of the benchmark, grouped into
//! the five categories the paper names (paper §5.1: "moving an object,
//! turning a switch on and off, pushing and pulling a drawer, rotating an
//! object, and lifting an object").

use crate::scene::{BlockColor, Scene, SceneObject};
use corki_math::Vec3;
use serde::{Deserialize, Serialize};

/// The five task categories of the benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskCategory {
    /// Pushing blocks across the table and moving the slider.
    Move,
    /// Toggling the lever switch (light bulb) and the push-button LED.
    Switch,
    /// Opening/closing the drawer and pushing blocks into it.
    Drawer,
    /// Rotating blocks in place.
    Rotate,
    /// Lifting, placing and stacking blocks.
    Lift,
}

impl TaskCategory {
    /// All five categories.
    pub const ALL: [TaskCategory; 5] = [
        TaskCategory::Move,
        TaskCategory::Switch,
        TaskCategory::Drawer,
        TaskCategory::Rotate,
        TaskCategory::Lift,
    ];

    /// Stable index in `[0, 5)`.
    pub fn index(self) -> usize {
        match self {
            TaskCategory::Move => 0,
            TaskCategory::Switch => 1,
            TaskCategory::Drawer => 2,
            TaskCategory::Rotate => 3,
            TaskCategory::Lift => 4,
        }
    }
}

/// Horizontal push/slide direction on the table (along the robot's y-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Towards negative y.
    Left,
    /// Towards positive y.
    Right,
}

impl Direction {
    /// Signed unit step along y.
    pub fn sign(self) -> f64 {
        match self {
            Direction::Left => -1.0,
            Direction::Right => 1.0,
        }
    }
}

/// The parametrised task templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskTemplate {
    /// Push a block a few centimetres to the left or right.
    PushBlock {
        /// Which block to push.
        color: BlockColor,
        /// Which way to push it.
        direction: Direction,
    },
    /// Move the sliding door all the way to one side.
    MoveSlider {
        /// Target side.
        direction: Direction,
    },
    /// Flip the lever switch up (light bulb on).
    TurnOnLightbulb,
    /// Flip the lever switch down (light bulb off).
    TurnOffLightbulb,
    /// Press the button until the LED is on.
    TurnOnLed,
    /// Press the button until the LED is off.
    TurnOffLed,
    /// Pull the drawer open.
    OpenDrawer,
    /// Push the drawer shut.
    CloseDrawer,
    /// Carry a block into the open drawer.
    PushBlockIntoDrawer {
        /// Which block to move.
        color: BlockColor,
    },
    /// Rotate a block about the vertical axis by at least ~25°.
    RotateBlock {
        /// Which block to rotate.
        color: BlockColor,
        /// `true` rotates clockwise (negative yaw), `false` counter-clockwise.
        clockwise: bool,
    },
    /// Lift a block clear off the table.
    LiftBlockFromTable {
        /// Which block to lift.
        color: BlockColor,
    },
    /// Lift a block that starts in the slider area.
    LiftBlockFromSlider {
        /// Which block to lift.
        color: BlockColor,
    },
    /// Place a block onto the slider shelf.
    PlaceBlockInSlider {
        /// Which block to place.
        color: BlockColor,
    },
    /// Stack the red block on top of the blue block.
    StackBlocks,
    /// Take the red block off the blue block and put it on the table.
    UnstackBlocks,
}

/// A concrete task instance: template plus its position in the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskInstance {
    /// Index in the 34-task catalogue.
    pub id: usize,
    /// The parametrised template.
    pub template: TaskTemplate,
    /// The category the paper groups this task under.
    pub category: TaskCategory,
}

impl TaskInstance {
    /// A short human-readable name, e.g. `push_red_block_left`.
    pub fn name(&self) -> String {
        fn color_name(c: BlockColor) -> &'static str {
            match c {
                BlockColor::Red => "red",
                BlockColor::Blue => "blue",
                BlockColor::Pink => "pink",
            }
        }
        match self.template {
            TaskTemplate::PushBlock { color, direction } => format!(
                "push_{}_block_{}",
                color_name(color),
                if direction == Direction::Left { "left" } else { "right" }
            ),
            TaskTemplate::MoveSlider { direction } => format!(
                "move_slider_{}",
                if direction == Direction::Left { "left" } else { "right" }
            ),
            TaskTemplate::TurnOnLightbulb => "turn_on_lightbulb".into(),
            TaskTemplate::TurnOffLightbulb => "turn_off_lightbulb".into(),
            TaskTemplate::TurnOnLed => "turn_on_led".into(),
            TaskTemplate::TurnOffLed => "turn_off_led".into(),
            TaskTemplate::OpenDrawer => "open_drawer".into(),
            TaskTemplate::CloseDrawer => "close_drawer".into(),
            TaskTemplate::PushBlockIntoDrawer { color } => {
                format!("push_{}_block_into_drawer", color_name(color))
            }
            TaskTemplate::RotateBlock { color, clockwise } => format!(
                "rotate_{}_block_{}",
                color_name(color),
                if clockwise { "right" } else { "left" }
            ),
            TaskTemplate::LiftBlockFromTable { color } => {
                format!("lift_{}_block_table", color_name(color))
            }
            TaskTemplate::LiftBlockFromSlider { color } => {
                format!("lift_{}_block_slider", color_name(color))
            }
            TaskTemplate::PlaceBlockInSlider { color } => {
                format!("place_{}_block_in_slider", color_name(color))
            }
            TaskTemplate::StackBlocks => "stack_blocks".into(),
            TaskTemplate::UnstackBlocks => "unstack_blocks".into(),
        }
    }

    /// The object this task manipulates (used to build observations).
    pub fn target_object(&self) -> SceneObject {
        match self.template {
            TaskTemplate::PushBlock { color, .. }
            | TaskTemplate::PushBlockIntoDrawer { color }
            | TaskTemplate::RotateBlock { color, .. }
            | TaskTemplate::LiftBlockFromTable { color }
            | TaskTemplate::LiftBlockFromSlider { color }
            | TaskTemplate::PlaceBlockInSlider { color } => SceneObject::Block(color),
            TaskTemplate::MoveSlider { .. } => SceneObject::Slider,
            TaskTemplate::TurnOnLightbulb | TaskTemplate::TurnOffLightbulb => SceneObject::Switch,
            TaskTemplate::TurnOnLed | TaskTemplate::TurnOffLed => SceneObject::Button,
            TaskTemplate::OpenDrawer | TaskTemplate::CloseDrawer => SceneObject::Drawer,
            TaskTemplate::StackBlocks | TaskTemplate::UnstackBlocks => {
                SceneObject::Block(BlockColor::Red)
            }
        }
    }

    /// Adjusts the scene so the task is actually feasible (e.g. the light must
    /// be off before it can be turned on; a block must sit in the slider area
    /// before it can be lifted from there). Mirrors CALVIN's episode reset.
    pub fn prepare(&self, scene: &mut Scene) {
        match self.template {
            TaskTemplate::TurnOnLightbulb => scene.switch_on = false,
            TaskTemplate::TurnOffLightbulb => scene.switch_on = true,
            TaskTemplate::TurnOnLed => scene.led_on = false,
            TaskTemplate::TurnOffLed => scene.led_on = true,
            TaskTemplate::OpenDrawer => scene.drawer_extension = 0.0,
            TaskTemplate::CloseDrawer => scene.drawer_extension = 1.0,
            TaskTemplate::PushBlockIntoDrawer { .. } => scene.drawer_extension = 1.0,
            TaskTemplate::MoveSlider { direction } => {
                scene.slider_position = match direction {
                    Direction::Left => 0.9,
                    Direction::Right => 0.1,
                };
            }
            TaskTemplate::LiftBlockFromSlider { color } => {
                let shelf = scene.slider_handle() + Vec3::new(-0.05, 0.0, 0.0);
                let z = scene.config.table_height + 0.08 + scene.config.block_size / 2.0;
                self.move_block(scene, color, Vec3::new(shelf.x, shelf.y, z));
            }
            TaskTemplate::StackBlocks => {
                // Ensure red and blue are apart so stacking is non-trivial.
                let blue = scene.block(BlockColor::Blue).position;
                let mut red = scene.block(BlockColor::Red).position;
                if (red - blue).norm() < 0.08 {
                    red.y -= 0.1;
                    self.move_block(scene, BlockColor::Red, red);
                }
            }
            TaskTemplate::UnstackBlocks => {
                // Start with red stacked on blue.
                let blue = scene.block(BlockColor::Blue).position;
                let top = blue + Vec3::new(0.0, 0.0, scene.config.block_size);
                self.move_block(scene, BlockColor::Red, top);
            }
            TaskTemplate::PlaceBlockInSlider { color } => {
                // Make sure the block does not already sit on the shelf.
                let shelf = scene.slider_handle() + Vec3::new(-0.05, 0.0, 0.0);
                let p = scene.block(color).position;
                let horizontal =
                    (Vec3::new(p.x, p.y, 0.0) - Vec3::new(shelf.x, shelf.y, 0.0)).norm();
                if horizontal < 0.12 {
                    let z = scene.config.table_height + scene.config.block_size / 2.0;
                    self.move_block(scene, color, Vec3::new(0.42, -0.15, z));
                }
            }
            TaskTemplate::PushBlock { .. }
            | TaskTemplate::RotateBlock { .. }
            | TaskTemplate::LiftBlockFromTable { .. } => {}
        }
    }

    fn move_block(&self, scene: &mut Scene, color: BlockColor, position: Vec3) {
        if position.z > scene.config.table_height + scene.config.block_size {
            // Elevated targets (e.g. the slider shelf) support the block.
            scene.force_release_at(color, position);
        } else {
            scene.place_block(color, position);
        }
    }

    /// Where the manipulated object should end up (used as the goal in the
    /// policy observation and by the expert planner).
    pub fn goal_position(&self, scene: &Scene) -> Vec3 {
        match self.template {
            TaskTemplate::PushBlock { color, direction } => {
                scene.block(color).position + Vec3::new(0.0, 0.08 * direction.sign(), 0.0)
            }
            TaskTemplate::MoveSlider { direction } => {
                let mut handle = scene.config.slider_handle_left;
                handle.y += match direction {
                    Direction::Left => 0.0,
                    Direction::Right => scene.config.slider_travel,
                };
                handle
            }
            TaskTemplate::TurnOnLightbulb => {
                scene.config.switch_position + Vec3::new(0.0, 0.0, 0.03)
            }
            TaskTemplate::TurnOffLightbulb => {
                scene.config.switch_position - Vec3::new(0.0, 0.0, 0.03)
            }
            TaskTemplate::TurnOnLed | TaskTemplate::TurnOffLed => {
                scene.config.button_position - Vec3::new(0.0, 0.0, 0.01)
            }
            TaskTemplate::OpenDrawer => {
                scene.config.drawer_handle_closed + Vec3::new(0.0, scene.config.drawer_travel, 0.0)
            }
            TaskTemplate::CloseDrawer => scene.config.drawer_handle_closed,
            TaskTemplate::PushBlockIntoDrawer { .. } => Self::drawer_interior(scene),
            TaskTemplate::RotateBlock { color, .. } => scene.block(color).position,
            TaskTemplate::LiftBlockFromTable { color }
            | TaskTemplate::LiftBlockFromSlider { color } => {
                scene.block(color).position + Vec3::new(0.0, 0.0, 0.12)
            }
            TaskTemplate::PlaceBlockInSlider { .. } => {
                scene.slider_handle() + Vec3::new(-0.05, 0.0, 0.08)
            }
            TaskTemplate::StackBlocks => {
                scene.block(BlockColor::Blue).position
                    + Vec3::new(0.0, 0.0, scene.config.block_size)
            }
            TaskTemplate::UnstackBlocks => {
                scene.block(BlockColor::Blue).position + Vec3::new(0.0, -0.12, 0.0)
            }
        }
    }

    fn drawer_interior(scene: &Scene) -> Vec3 {
        scene.drawer_handle() + Vec3::new(0.05, -0.04, 0.02)
    }

    /// Whether the task is complete, judged against the scene at episode start.
    pub fn is_success(&self, scene: &Scene, initial: &Scene) -> bool {
        let cfg = &scene.config;
        match self.template {
            TaskTemplate::PushBlock { color, direction } => {
                let moved = scene.block(color).position.y - initial.block(color).position.y;
                !scene.block(color).grasped && moved * direction.sign() > 0.05
            }
            TaskTemplate::MoveSlider { direction } => match direction {
                Direction::Left => scene.slider_position < 0.2,
                Direction::Right => scene.slider_position > 0.8,
            },
            TaskTemplate::TurnOnLightbulb => scene.switch_on,
            TaskTemplate::TurnOffLightbulb => !scene.switch_on,
            TaskTemplate::TurnOnLed => scene.led_on,
            TaskTemplate::TurnOffLed => !scene.led_on,
            TaskTemplate::OpenDrawer => scene.drawer_extension > 0.6,
            TaskTemplate::CloseDrawer => scene.drawer_extension < 0.15,
            TaskTemplate::PushBlockIntoDrawer { color } => {
                let interior = Self::drawer_interior(scene);
                let p = scene.block(color).position;
                !scene.block(color).grasped
                    && (Vec3::new(p.x, p.y, 0.0) - Vec3::new(interior.x, interior.y, 0.0)).norm()
                        < 0.07
            }
            TaskTemplate::RotateBlock { color, clockwise } => {
                let delta =
                    corki_math::wrap_angle(scene.block(color).yaw - initial.block(color).yaw);
                if clockwise {
                    delta < -0.4
                } else {
                    delta > 0.4
                }
            }
            TaskTemplate::LiftBlockFromTable { color }
            | TaskTemplate::LiftBlockFromSlider { color } => {
                scene.block(color).position.z > initial.block(color).position.z + 0.06
            }
            TaskTemplate::PlaceBlockInSlider { color } => {
                let shelf = scene.slider_handle() + Vec3::new(-0.05, 0.0, 0.0);
                let p = scene.block(color).position;
                !scene.block(color).grasped
                    && (Vec3::new(p.x, p.y, 0.0) - Vec3::new(shelf.x, shelf.y, 0.0)).norm() < 0.07
            }
            TaskTemplate::StackBlocks => {
                let red = scene.block(BlockColor::Red).position;
                let blue = scene.block(BlockColor::Blue).position;
                let horizontal = Vec3::new(red.x - blue.x, red.y - blue.y, 0.0).norm();
                !scene.block(BlockColor::Red).grasped
                    && horizontal < 0.05
                    && red.z > blue.z + cfg.block_size * 0.5
            }
            TaskTemplate::UnstackBlocks => {
                let red = scene.block(BlockColor::Red).position;
                let blue = scene.block(BlockColor::Blue).position;
                let horizontal = Vec3::new(red.x - blue.x, red.y - blue.y, 0.0).norm();
                !scene.block(BlockColor::Red).grasped && horizontal > 0.08
            }
        }
    }
}

/// The full 34-task catalogue, matching the task count of CALVIN and the five
/// categories named in the paper.
pub fn task_catalog() -> Vec<TaskInstance> {
    use BlockColor::*;
    use Direction::*;
    let templates: Vec<(TaskTemplate, TaskCategory)> = vec![
        // Move (8)
        (TaskTemplate::PushBlock { color: Red, direction: Left }, TaskCategory::Move),
        (TaskTemplate::PushBlock { color: Red, direction: Right }, TaskCategory::Move),
        (TaskTemplate::PushBlock { color: Blue, direction: Left }, TaskCategory::Move),
        (TaskTemplate::PushBlock { color: Blue, direction: Right }, TaskCategory::Move),
        (TaskTemplate::PushBlock { color: Pink, direction: Left }, TaskCategory::Move),
        (TaskTemplate::PushBlock { color: Pink, direction: Right }, TaskCategory::Move),
        (TaskTemplate::MoveSlider { direction: Left }, TaskCategory::Move),
        (TaskTemplate::MoveSlider { direction: Right }, TaskCategory::Move),
        // Switch (4)
        (TaskTemplate::TurnOnLightbulb, TaskCategory::Switch),
        (TaskTemplate::TurnOffLightbulb, TaskCategory::Switch),
        (TaskTemplate::TurnOnLed, TaskCategory::Switch),
        (TaskTemplate::TurnOffLed, TaskCategory::Switch),
        // Drawer (5)
        (TaskTemplate::OpenDrawer, TaskCategory::Drawer),
        (TaskTemplate::CloseDrawer, TaskCategory::Drawer),
        (TaskTemplate::PushBlockIntoDrawer { color: Red }, TaskCategory::Drawer),
        (TaskTemplate::PushBlockIntoDrawer { color: Blue }, TaskCategory::Drawer),
        (TaskTemplate::PushBlockIntoDrawer { color: Pink }, TaskCategory::Drawer),
        // Rotate (6)
        (TaskTemplate::RotateBlock { color: Red, clockwise: true }, TaskCategory::Rotate),
        (TaskTemplate::RotateBlock { color: Red, clockwise: false }, TaskCategory::Rotate),
        (TaskTemplate::RotateBlock { color: Blue, clockwise: true }, TaskCategory::Rotate),
        (TaskTemplate::RotateBlock { color: Blue, clockwise: false }, TaskCategory::Rotate),
        (TaskTemplate::RotateBlock { color: Pink, clockwise: true }, TaskCategory::Rotate),
        (TaskTemplate::RotateBlock { color: Pink, clockwise: false }, TaskCategory::Rotate),
        // Lift (11)
        (TaskTemplate::LiftBlockFromTable { color: Red }, TaskCategory::Lift),
        (TaskTemplate::LiftBlockFromTable { color: Blue }, TaskCategory::Lift),
        (TaskTemplate::LiftBlockFromTable { color: Pink }, TaskCategory::Lift),
        (TaskTemplate::LiftBlockFromSlider { color: Red }, TaskCategory::Lift),
        (TaskTemplate::LiftBlockFromSlider { color: Blue }, TaskCategory::Lift),
        (TaskTemplate::LiftBlockFromSlider { color: Pink }, TaskCategory::Lift),
        (TaskTemplate::PlaceBlockInSlider { color: Red }, TaskCategory::Lift),
        (TaskTemplate::PlaceBlockInSlider { color: Blue }, TaskCategory::Lift),
        (TaskTemplate::PlaceBlockInSlider { color: Pink }, TaskCategory::Lift),
        (TaskTemplate::StackBlocks, TaskCategory::Lift),
        (TaskTemplate::UnstackBlocks, TaskCategory::Lift),
    ];
    templates
        .into_iter()
        .enumerate()
        .map(|(id, (template, category))| TaskInstance { id, template, category })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_has_34_tasks_over_5_categories() {
        let catalog = task_catalog();
        assert_eq!(catalog.len(), 34);
        for category in TaskCategory::ALL {
            assert!(
                catalog.iter().any(|t| t.category == category),
                "category {category:?} missing"
            );
        }
        // Ids are dense and unique.
        for (i, t) in catalog.iter().enumerate() {
            assert_eq!(t.id, i);
        }
        // Names are unique.
        let mut names: Vec<String> = catalog.iter().map(TaskInstance::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 34);
    }

    #[test]
    fn prepare_makes_tasks_feasible() {
        for task in task_catalog() {
            let mut scene = Scene::randomized(11, false);
            task.prepare(&mut scene);
            let initial = scene.clone();
            assert!(
                !task.is_success(&scene, &initial),
                "task {} is already satisfied after prepare",
                task.name()
            );
        }
    }

    #[test]
    fn switch_tasks_success_predicates() {
        let catalog = task_catalog();
        let turn_on = catalog.iter().find(|t| t.template == TaskTemplate::TurnOnLightbulb).unwrap();
        let mut scene = Scene::default();
        turn_on.prepare(&mut scene);
        let initial = scene.clone();
        assert!(!turn_on.is_success(&scene, &initial));
        scene.switch_on = true;
        assert!(turn_on.is_success(&scene, &initial));
    }

    #[test]
    fn lift_success_requires_height_gain() {
        let catalog = task_catalog();
        let lift = catalog
            .iter()
            .find(|t| {
                matches!(t.template, TaskTemplate::LiftBlockFromTable { color: BlockColor::Red })
            })
            .unwrap();
        let mut scene = Scene::default();
        lift.prepare(&mut scene);
        let initial = scene.clone();
        assert!(!lift.is_success(&scene, &initial));
        // Grasp and raise the red block through the public API.
        use corki_trajectory::{EePose, GripperState};
        let at = scene.block(BlockColor::Red).position;
        let open = EePose::new(at, corki_math::Vec3::ZERO, GripperState::Open);
        let closed = EePose::new(at, corki_math::Vec3::ZERO, GripperState::Closed);
        scene.step(&closed, &open);
        let lifted = EePose::new(
            at + Vec3::new(0.0, 0.0, 0.1),
            corki_math::Vec3::ZERO,
            GripperState::Closed,
        );
        scene.step(&lifted, &closed);
        assert!(lift.is_success(&scene, &initial));
    }

    #[test]
    fn target_objects_and_goals_are_reachable_positions() {
        let catalog = task_catalog();
        for task in &catalog {
            let mut scene = Scene::randomized(3, false);
            task.prepare(&mut scene);
            let goal = task.goal_position(&scene);
            assert!(goal.x > 0.1 && goal.x < 0.9, "{}: goal x {}", task.name(), goal.x);
            assert!(goal.y.abs() < 0.6, "{}: goal y {}", task.name(), goal.y);
            assert!(goal.z > -0.2 && goal.z < 0.6, "{}: goal z {}", task.name(), goal.z);
            let _ = scene.object_position(task.target_object());
        }
    }
}
