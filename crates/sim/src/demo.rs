//! Expert demonstration generation for training the learned policies
//! (the stand-in for CALVIN's 22 994 tele-operated demonstrations).

use crate::env::{home_pose, Environment};
use crate::expert::ExpertPlanner;
use crate::scene::Scene;
use crate::tasks::task_catalog;
use corki_policy::training::Demonstration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `count` expert demonstrations across the task catalogue.
///
/// Each demonstration executes the scripted expert in a freshly randomised
/// scene and records, at every control step, both the policy observation and
/// the ground-truth end-effector waypoint — exactly the supervision the
/// training losses of Equations 3/5 need.
pub fn generate_demonstrations(count: usize, seed: u64) -> Vec<Demonstration> {
    let catalog = task_catalog();
    let planner = ExpertPlanner::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut demos = Vec::with_capacity(count);

    for i in 0..count {
        let task = catalog[rng.gen_range(0..catalog.len())];
        let mut scene = Scene::randomized(seed.wrapping_add(i as u64).wrapping_mul(31), false);
        task.prepare(&mut scene);
        let initial = scene.clone();

        let start = home_pose();
        let plan = planner.plan(&scene, &task, &start);
        let mut observations = Vec::with_capacity(plan.len() + 1);
        let mut waypoints = Vec::with_capacity(plan.len() + 1);
        let mut current = start;
        observations.push(Environment::observation(&scene, &task, &current, false));
        waypoints.push(current);
        for wp in &plan {
            scene.step(wp, &current);
            current = *wp;
            observations.push(Environment::observation(&scene, &task, &current, false));
            waypoints.push(current);
            if task.is_success(&scene, &initial) {
                break;
            }
        }
        if waypoints.len() >= 2 {
            demos.push(Demonstration::new(observations, waypoints));
        }
    }
    demos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demonstrations_are_generated_and_aligned() {
        let demos = generate_demonstrations(8, 42);
        assert_eq!(demos.len(), 8);
        for demo in &demos {
            assert!(demo.len() >= 2);
            assert_eq!(demo.observations.len(), demo.waypoints.len());
            // The observation's end-effector must match the waypoint.
            for (obs, wp) in demo.observations.iter().zip(&demo.waypoints) {
                assert!(obs.end_effector.position_distance(wp) < 1e-12);
            }
        }
    }

    #[test]
    fn demonstrations_are_deterministic_in_the_seed() {
        let a = generate_demonstrations(3, 7);
        let b = generate_demonstrations(3, 7);
        assert_eq!(a, b);
        let c = generate_demonstrations(3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn demonstration_motion_respects_expert_step_limit() {
        let planner = ExpertPlanner::default();
        for demo in generate_demonstrations(5, 3) {
            for pair in demo.waypoints.windows(2) {
                assert!(pair[0].position_distance(&pair[1]) <= planner.max_step + 1e-9);
            }
        }
    }
}
