//! A CALVIN-like tabletop manipulation benchmark used to evaluate the Corki
//! execution models (paper §5.1).
//!
//! The real evaluation uses the CALVIN benchmark: a Franka Panda in front of a
//! table with three coloured blocks, a sliding door, a drawer, a switch
//! (lever), a push-button LED and a light bulb; 34 language-conditioned tasks
//! grouped into five categories; 1 000 test *jobs* of five chained tasks; and
//! a *seen*/*unseen* split.  This crate reproduces that structure:
//!
//! * [`Scene`] — the tabletop state (blocks, drawer, slider, switch, LED,
//!   bulb) with a kinematic interaction model (grasping, carrying,
//!   articulation),
//! * [`TaskTemplate`] / [`task_catalog`] — the 34 task instances over the five
//!   categories of the paper (move, switch, drawer, rotate, lift),
//! * [`ExpertPlanner`] — scripted expert trajectories used both as training
//!   demonstrations and as the oracle ground truth,
//! * [`Environment`] — episode rollout engine closing the loop policy →
//!   trajectory → execution → scene update → success predicate, with either a
//!   fast kinematic tracking model or the full TS-CTC + rigid-body dynamics
//!   backend from `corki-robot`,
//! * [`evaluation`] — long-horizon jobs (five chained tasks), the
//!   success-rate/average-length metrics of Tables 1-2 and the trajectory
//!   error metrics of Fig. 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod demo;
mod env;
pub mod evaluation;
mod expert;
mod scene;
mod tasks;

pub use demo::generate_demonstrations;
pub use env::{Environment, EnvironmentConfig, EpisodeOutcome, ExecutionBackend, StepsPolicy};
pub use expert::ExpertPlanner;
pub use scene::{BlockColor, Scene, SceneConfig, SceneObject};
pub use tasks::{task_catalog, TaskCategory, TaskInstance, TaskTemplate};
