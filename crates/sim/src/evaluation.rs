//! Long-horizon jobs, success-rate metrics and trajectory-error metrics —
//! the quantities reported in Tables 1/2 and Figures 11/12 of the paper.
//!
//! A *job* chains five consecutive tasks in the same scene; the robot only
//! attempts task *k+1* if it completed task *k*.  The paper reports, for each
//! chain position, the fraction of jobs whose first *k* tasks all succeeded,
//! plus the average number of completed tasks per job ("Avg Len").

use crate::env::{Environment, EpisodeOutcome};
use crate::scene::Scene;
use crate::tasks::{task_catalog, TaskInstance};
use corki_policy::ManipulationPolicy;
use corki_trajectory::metrics::{compare_pose_sequences, AxisTraces, TrajectoryErrorStats};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Number of chained tasks per job (the paper uses five).
pub const JOB_LENGTH: usize = 5;

/// Configuration of an evaluation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Number of jobs (the paper evaluates 1 000 test sequences).
    pub num_jobs: usize,
    /// Whether to use the unseen split (different scene distribution).
    pub unseen: bool,
    /// Base RNG seed; job `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { num_jobs: 100, unseen: false, seed: 0 }
    }
}

/// The result of one job (up to five chained tasks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Number of tasks completed before the first failure (0..=5).
    pub tasks_completed: usize,
    /// Names of the tasks attempted, in order.
    pub task_names: Vec<String>,
    /// Per-episode outcomes (one per attempted task).
    pub episodes: Vec<EpisodeOutcome>,
}

/// Aggregated evaluation results for one policy variant — one row of
/// Table 1/2 plus the Fig. 11 error statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationSummary {
    /// Variant name (e.g. `RoboFlamingo`, `Corki-5`).
    pub variant: String,
    /// Fraction of jobs whose first k tasks succeeded, for k = 1..=5.
    pub success_rates: [f64; JOB_LENGTH],
    /// Average number of tasks completed per job.
    pub average_length: f64,
    /// Number of jobs evaluated.
    pub jobs: usize,
    /// Mean number of policy inferences per control step (the inverse of the
    /// steps-per-inference ratio that drives the latency savings).
    pub inferences_per_step: f64,
    /// Trajectory error of the commanded reference against the expert.
    pub trajectory_error: TrajectoryErrorStats,
}

impl EvaluationSummary {
    /// Formats the summary as a Table 1/2 style row.
    pub fn to_table_row(&self) -> String {
        format!(
            "{:<16} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%   {:.3}",
            self.variant,
            self.success_rates[0] * 100.0,
            self.success_rates[1] * 100.0,
            self.success_rates[2] * 100.0,
            self.success_rates[3] * 100.0,
            self.success_rates[4] * 100.0,
            self.average_length
        )
    }
}

/// Derives the policy seed of one *session* (an evaluation job) from a base
/// sweep seed.
///
/// The base seed is mixed before the session index is added so the policy's
/// noise stream is decorrelated from the scene-randomisation stream (which
/// [`run_job`] seeds with the *unmixed* `seed + job_index`).  Every layer
/// that fans an evaluation sweep out over jobs derives seeds here so
/// results are reproducible and independent of how work is distributed.
/// The system layer's counterpart for fleet robots is
/// `corki_system::fleet::fleet_robot_seed` (same mixing idea, different
/// finalisation — the two streams must stay decorrelated from each other).
pub fn session_seed(base: u64, session: u64) -> u64 {
    (base.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0_121).wrapping_add(session)
}

/// Deterministic chunked parallel map: applies `f(index, &item)` to every
/// item, fanning contiguous chunks out over `threads` scoped OS threads
/// (`1` runs sequentially), and returns the results in item order.
///
/// Because chunking is a pure function of `(len, threads)` and every result
/// is written to its own slot, the output is **identical for every thread
/// count** — the scaffolding behind [`evaluate_parallel`] and the fleet
/// sweeps of the `corki` crate.
pub fn parallel_map<T, R, F>(items: &[T], f: F, threads: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
    if threads <= 1 {
        for (index, (slot, item)) in results.iter_mut().zip(items).enumerate() {
            *slot = Some(f(index, item));
        }
    } else {
        let chunk = items.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let f = &f;
            for (chunk_index, (slots, chunk_items)) in
                results.chunks_mut(chunk).zip(items.chunks(chunk)).enumerate()
            {
                let base = chunk_index * chunk;
                scope.spawn(move || {
                    for (offset, (slot, item)) in slots.iter_mut().zip(chunk_items).enumerate() {
                        *slot = Some(f(base + offset, item));
                    }
                });
            }
        });
    }
    results.into_iter().map(|r| r.expect("every item mapped")).collect()
}

/// Samples the five tasks of job `index` (deterministic in the seed).
pub fn job_tasks(seed: u64, index: usize) -> Vec<TaskInstance> {
    let catalog = task_catalog();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(index as u64).wrapping_mul(0x5851_f42d));
    let mut tasks = catalog;
    tasks.shuffle(&mut rng);
    tasks.truncate(JOB_LENGTH);
    tasks
}

/// Runs one job: five chained tasks in a persistent scene. The chain stops at
/// the first failed task.
pub fn run_job(
    env: &Environment,
    policy: &mut dyn ManipulationPolicy,
    config: &EvalConfig,
    index: usize,
) -> JobResult {
    let tasks = job_tasks(config.seed, index);
    let mut scene = Scene::randomized(config.seed.wrapping_add(index as u64), config.unseen);
    let mut result = JobResult {
        tasks_completed: 0,
        task_names: tasks.iter().map(TaskInstance::name).collect(),
        episodes: Vec::new(),
    };
    for task in &tasks {
        task.prepare(&mut scene);
        let outcome = env.run_episode(&mut scene, task, policy, config.unseen);
        let success = outcome.success;
        result.episodes.push(outcome);
        if !success {
            break;
        }
        result.tasks_completed += 1;
    }
    result
}

/// Runs a full evaluation sweep of `config.num_jobs` jobs and aggregates the
/// Table 1/2 metrics.
pub fn evaluate(
    env: &Environment,
    policy: &mut dyn ManipulationPolicy,
    config: &EvalConfig,
) -> EvaluationSummary {
    let results: Vec<JobResult> =
        (0..config.num_jobs).map(|index| run_job(env, policy, config, index)).collect();
    summarize(policy.name(), &results, config.num_jobs.max(1))
}

/// Runs a full evaluation sweep with one freshly seeded policy per job,
/// fanning the independent jobs out over `threads` OS threads
/// (`std::thread::scope`; pass `1` for a sequential run).
///
/// Because every job builds its own policy via `make_policy(job_index)` (a
/// per-job seeded RNG instead of one RNG stream threaded through all jobs)
/// and the per-job results are aggregated strictly in job-index order, the
/// summary is **bit-identical for every thread count** — a parallel sweep
/// reproduces the sequential one exactly.
pub fn evaluate_parallel<F>(
    env: &Environment,
    make_policy: &F,
    config: &EvalConfig,
    threads: usize,
) -> EvaluationSummary
where
    F: Fn(usize) -> Box<dyn ManipulationPolicy> + Sync,
{
    let jobs: Vec<usize> = (0..config.num_jobs).collect();
    let results = parallel_map(
        &jobs,
        |_, &index| {
            let mut policy = make_policy(index);
            run_job(env, policy.as_mut(), config, index)
        },
        threads,
    );
    summarize(make_policy(0).name(), &results, config.num_jobs.max(1))
}

/// Aggregates per-job results — strictly in job-index order, so sequential
/// and parallel sweeps fold the floating-point statistics identically.
fn summarize(variant: String, results: &[JobResult], jobs: usize) -> EvaluationSummary {
    let mut completed_counts = [0usize; JOB_LENGTH];
    let mut total_completed = 0usize;
    let mut total_steps = 0usize;
    let mut total_inferences = 0usize;
    let mut error_stats = TrajectoryErrorStats::default();

    for result in results {
        for (k, count) in completed_counts.iter_mut().enumerate() {
            if result.tasks_completed > k {
                *count += 1;
            }
        }
        total_completed += result.tasks_completed;
        for episode in &result.episodes {
            total_steps += episode.steps;
            total_inferences += episode.inferences;
            if !episode.reference_poses.is_empty() {
                let stats = compare_pose_sequences(&episode.reference_poses, &episode.expert_poses);
                error_stats = error_stats.merge(&stats);
            }
        }
    }

    let mut success_rates = [0.0; JOB_LENGTH];
    for (rate, count) in success_rates.iter_mut().zip(completed_counts) {
        *rate = count as f64 / jobs as f64;
    }
    EvaluationSummary {
        variant,
        success_rates,
        average_length: total_completed as f64 / jobs as f64,
        jobs,
        inferences_per_step: if total_steps == 0 {
            0.0
        } else {
            total_inferences as f64 / total_steps as f64
        },
        trajectory_error: error_stats,
    }
}

/// Extracts the X/Y/Z traces of one episode for the Fig. 12 style plots:
/// ground truth (expert), commanded reference and achieved pose.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EpisodeTraces {
    /// Ground-truth (expert) trajectory per axis.
    pub ground_truth: AxisTraces,
    /// Commanded reference trajectory per axis.
    pub reference: AxisTraces,
    /// Achieved trajectory per axis.
    pub achieved: AxisTraces,
}

impl EpisodeTraces {
    /// Builds traces from an episode outcome.
    pub fn from_outcome(outcome: &EpisodeOutcome) -> Self {
        EpisodeTraces {
            ground_truth: AxisTraces::from_poses(&outcome.expert_poses),
            reference: AxisTraces::from_poses(&outcome.reference_poses),
            achieved: AxisTraces::from_poses(&outcome.achieved_poses),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{EnvironmentConfig, StepsPolicy};
    use corki_policy::{NoiseModel, OracleFramePolicy, OracleTrajectoryPolicy};

    fn small_noise() -> NoiseModel {
        NoiseModel { position_sigma: 0.002, gripper_error_probability: 0.002, ..Default::default() }
    }

    #[test]
    fn job_tasks_are_deterministic_and_distinct() {
        let a = job_tasks(3, 10);
        let b = job_tasks(3, 10);
        assert_eq!(
            a.iter().map(|t| t.id).collect::<Vec<_>>(),
            b.iter().map(|t| t.id).collect::<Vec<_>>()
        );
        assert_eq!(a.len(), JOB_LENGTH);
        let mut ids: Vec<usize> = a.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), JOB_LENGTH, "job tasks must be distinct");
        let c = job_tasks(3, 11);
        assert_ne!(
            a.iter().map(|t| t.id).collect::<Vec<_>>(),
            c.iter().map(|t| t.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn evaluation_produces_monotonically_decreasing_success_rates() {
        let env = Environment::new(EnvironmentConfig {
            steps_policy: StepsPolicy::Fixed(5),
            ..Default::default()
        });
        let mut policy = OracleTrajectoryPolicy::new(9, small_noise(), 1);
        let config = EvalConfig { num_jobs: 12, unseen: false, seed: 5 };
        let summary = evaluate(&env, &mut policy, &config);
        for k in 1..JOB_LENGTH {
            assert!(
                summary.success_rates[k] <= summary.success_rates[k - 1] + 1e-12,
                "success rates must not increase along the chain: {:?}",
                summary.success_rates
            );
        }
        assert!(summary.average_length <= JOB_LENGTH as f64);
        assert_eq!(summary.jobs, 12);
        assert!(summary.trajectory_error.samples > 0);
        // With 5 steps per inference the inference rate must be well below 1.
        assert!(summary.inferences_per_step < 0.5);
    }

    #[test]
    fn baseline_runs_one_inference_per_step() {
        let env = Environment::new(EnvironmentConfig::default());
        let mut policy = OracleFramePolicy::new(small_noise(), 2);
        let config = EvalConfig { num_jobs: 4, unseen: false, seed: 9 };
        let summary = evaluate(&env, &mut policy, &config);
        assert!((summary.inferences_per_step - 1.0).abs() < 1e-9);
        assert_eq!(summary.variant, "RoboFlamingo");
    }

    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential() {
        let env = Environment::new(EnvironmentConfig {
            steps_policy: StepsPolicy::Fixed(5),
            ..Default::default()
        });
        let make = |job: usize| -> Box<dyn ManipulationPolicy> {
            Box::new(OracleTrajectoryPolicy::new(9, small_noise(), 100 + job as u64))
        };
        let config = EvalConfig { num_jobs: 9, unseen: false, seed: 3 };
        let sequential = evaluate_parallel(&env, &make, &config, 1);
        for threads in [2, 4, 16] {
            let parallel = evaluate_parallel(&env, &make, &config, threads);
            assert_eq!(
                serde_json::to_string(&sequential).unwrap(),
                serde_json::to_string(&parallel).unwrap(),
                "thread count {threads} changed the summary"
            );
        }
    }

    #[test]
    fn table_row_formatting_contains_all_positions() {
        let summary = EvaluationSummary {
            variant: "Corki-5".into(),
            success_rates: [0.9, 0.8, 0.7, 0.6, 0.5],
            average_length: 3.5,
            jobs: 100,
            inferences_per_step: 0.2,
            trajectory_error: TrajectoryErrorStats::default(),
        };
        let row = summary.to_table_row();
        assert!(row.contains("Corki-5"));
        assert!(row.contains("90.0%"));
        assert!(row.contains("50.0%"));
        assert!(row.contains("3.500"));
    }

    #[test]
    fn episode_traces_have_consistent_lengths() {
        let env = Environment::new(EnvironmentConfig::default());
        let mut policy = OracleTrajectoryPolicy::new(5, small_noise(), 7);
        let config = EvalConfig { num_jobs: 1, unseen: false, seed: 1 };
        let result = run_job(&env, &mut policy, &config, 0);
        let traces = EpisodeTraces::from_outcome(&result.episodes[0]);
        assert_eq!(traces.ground_truth.len(), traces.reference.len());
        assert_eq!(traces.reference.len(), traces.achieved.len());
    }
}
