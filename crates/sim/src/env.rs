//! The episode rollout engine: closes the loop policy → plan → execution →
//! scene update → success check, under either execution model of the paper
//! (frame-by-frame baseline or Corki trajectories with early termination /
//! adaptive length).

use crate::expert::ExpertPlanner;
use crate::scene::Scene;
use crate::tasks::TaskInstance;
use corki_policy::{ManipulationPolicy, Observation, PlanRequest, PolicyPlan, TaskDescriptor};
use corki_robot::{
    panda, ArmSimulator, ControllerGains, JointState, SimulatorConfig, TaskReference,
    TaskSpaceController,
};
use corki_trajectory::waypoints::{adaptive_length_for_trajectory, AdaptiveLengthConfig};
use corki_trajectory::{EePose, GripperState, Trajectory, CONTROL_STEP};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How many steps of a predicted trajectory the robot executes before the
/// next inference (the paper's Corki-T / Corki-ADAP variants).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepsPolicy {
    /// Execute the whole predicted trajectory.
    All,
    /// Execute exactly `n` steps (early termination after `n`).
    Fixed(usize),
    /// Let Algorithm 1 decide (Corki-ADAP).
    Adaptive(AdaptiveLengthConfig),
}

/// Which execution backend tracks the reference trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionBackend {
    /// Fast kinematic tracking with a configurable tracking-error model; used
    /// for the large evaluation sweeps.
    Kinematic,
    /// Full TS-CTC control of the rigid-body Panda model from `corki-robot`
    /// (positions only; orientation is held). Slower, used by examples and
    /// integration tests.
    Dynamic,
}

/// Configuration of an episode rollout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentConfig {
    /// Maximum number of control steps per task episode before it is declared
    /// a failure.
    pub max_steps: usize,
    /// How many steps of each predicted trajectory are executed.
    pub steps_policy: StepsPolicy,
    /// Whether mid-trajectory frames are sent back as close-loop features
    /// (paper §3.4).
    pub close_loop_feedback: bool,
    /// Standard deviation (metres) of the execution tracking error of the
    /// kinematic backend. A higher control rate yields a lower value; the
    /// accelerator-backed configuration uses [`EnvironmentConfig::ACCELERATOR_TRACKING_ERROR`].
    pub tracking_error: f64,
    /// Execution backend.
    pub backend: ExecutionBackend,
    /// RNG seed for execution noise and close-loop sampling times.
    pub seed: u64,
}

impl EnvironmentConfig {
    /// Tracking error when control runs at 100 Hz on the Corki accelerator.
    pub const ACCELERATOR_TRACKING_ERROR: f64 = 0.0015;
    /// Tracking error when control runs at ~20 Hz on the robot's CPU
    /// (Corki-SW / the baseline), cf. §2.2: the CPU only reaches 22.1 Hz.
    pub const CPU_TRACKING_ERROR: f64 = 0.0040;
}

impl Default for EnvironmentConfig {
    fn default() -> Self {
        EnvironmentConfig {
            max_steps: 120,
            steps_policy: StepsPolicy::All,
            close_loop_feedback: true,
            tracking_error: Self::ACCELERATOR_TRACKING_ERROR,
            backend: ExecutionBackend::Kinematic,
            seed: 0,
        }
    }
}

/// The outcome of a single task episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeOutcome {
    /// Whether the task's success predicate was satisfied within the step
    /// budget.
    pub success: bool,
    /// Number of control steps executed.
    pub steps: usize,
    /// Number of policy (LLM) inferences performed.
    pub inferences: usize,
    /// Number of control steps executed after each inference.
    pub executed_lengths: Vec<usize>,
    /// The reference pose commanded at every control step.
    pub reference_poses: Vec<EePose>,
    /// The pose actually reached at every control step.
    pub achieved_poses: Vec<EePose>,
    /// The expert's pose at every control step (ground truth for the
    /// trajectory-error metrics of Fig. 11/12).
    pub expert_poses: Vec<EePose>,
}

impl EpisodeOutcome {
    /// Average number of control steps executed per inference.
    pub fn mean_steps_per_inference(&self) -> f64 {
        if self.inferences == 0 {
            0.0
        } else {
            self.steps as f64 / self.inferences as f64
        }
    }
}

/// The rollout engine.
#[derive(Debug, Clone)]
pub struct Environment {
    config: EnvironmentConfig,
    expert: ExpertPlanner,
}

/// The nominal starting pose of the end-effector above the table.
pub(crate) fn home_pose() -> EePose {
    EePose::new(corki_math::Vec3::new(0.35, 0.0, 0.3), corki_math::Vec3::ZERO, GripperState::Open)
}

impl Environment {
    /// Creates a rollout engine.
    pub fn new(config: EnvironmentConfig) -> Self {
        Environment { config, expert: ExpertPlanner::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EnvironmentConfig {
        &self.config
    }

    /// Builds the policy observation for the current scene state.
    pub fn observation(
        scene: &Scene,
        task: &TaskInstance,
        end_effector: &EePose,
        unseen: bool,
    ) -> Observation {
        let object = task.target_object();
        Observation {
            end_effector: *end_effector,
            object_position: scene.object_position(object),
            object_yaw: match object {
                crate::scene::SceneObject::Block(c) => scene.block(c).yaw,
                _ => 0.0,
            },
            goal_position: task.goal_position(scene),
            articulation_state: scene.articulation_state(object),
            object_grasped: scene.grasped_block.is_some(),
            task: TaskDescriptor { task_id: task.id, category_id: task.category.index(), unseen },
        }
    }

    /// Runs one task episode with the given policy, mutating the scene.
    pub fn run_episode(
        &self,
        scene: &mut Scene,
        task: &TaskInstance,
        policy: &mut dyn ManipulationPolicy,
        unseen: bool,
    ) -> EpisodeOutcome {
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ (task.id as u64).wrapping_mul(0x9e37_79b9));
        let initial_scene = scene.clone();
        let mut outcome = EpisodeOutcome {
            success: false,
            steps: 0,
            inferences: 0,
            executed_lengths: Vec::new(),
            reference_poses: Vec::new(),
            achieved_poses: Vec::new(),
            expert_poses: Vec::new(),
        };
        policy.reset();

        let mut dynamic_backend = match self.config.backend {
            ExecutionBackend::Dynamic => Some(DynamicBackend::new()),
            ExecutionBackend::Kinematic => None,
        };
        let mut current = match &dynamic_backend {
            Some(backend) => backend.end_effector(),
            None => home_pose(),
        };
        let mut steps_since_last_plan = 1usize;
        let mut close_loop_observations: Vec<Observation> = Vec::new();

        // The expert plan is computed once from the episode start and consumed
        // step by step; it is re-planned from the current situation only when
        // exhausted (e.g. after a missed grasp), which gives the oracle
        // policies the same "retry" ability a learned policy has.
        let mut expert_plan = self.expert.plan(scene, task, &current);
        let mut expert_cursor = 0usize;

        while outcome.steps < self.config.max_steps {
            if expert_cursor >= expert_plan.len() {
                expert_plan = self.expert.plan(scene, task, &current);
                expert_cursor = 0;
            }
            let expert_future: Vec<EePose> = expert_plan[expert_cursor..].to_vec();
            let observation = Self::observation(scene, task, &current, unseen);
            let request = PlanRequest {
                observation,
                expert_future: expert_future.clone(),
                close_loop_observations: std::mem::take(&mut close_loop_observations),
                steps_since_last_plan,
            };
            let plan = policy.plan(&request);
            outcome.inferences += 1;

            // Decide how many steps of the plan to execute.
            let (references, executed) = match &plan {
                PolicyPlan::SingleStep(action) => (vec![current.apply_delta(action)], 1usize),
                PolicyPlan::Trajectory(trajectory) => {
                    let steps = self.executed_steps(trajectory);
                    let refs =
                        (1..=steps).map(|i| trajectory.sample(i as f64 * CONTROL_STEP)).collect();
                    (refs, steps)
                }
            };
            steps_since_last_plan = executed;

            // Pick a random mid-trajectory step whose frame is sent back as a
            // close-loop feature (paper §4.4: "at random time steps before the
            // trajectory ends, images will be sent back").
            let feedback_step = if self.config.close_loop_feedback && executed > 1 {
                Some(rng.gen_range(0..executed - 1))
            } else {
                None
            };

            let mut actually_executed = 0usize;
            for (i, reference) in references.iter().enumerate() {
                let achieved = match (&mut dynamic_backend, &plan) {
                    (Some(backend), PolicyPlan::Trajectory(trajectory)) => {
                        backend.track_trajectory_step(trajectory, i, reference.gripper)
                    }
                    (Some(backend), PolicyPlan::SingleStep(_)) => backend.track_pose(reference),
                    (None, _) => self.kinematic_track(reference, &mut rng),
                };
                let expert_pose = expert_future
                    .get(i)
                    .copied()
                    .unwrap_or(*expert_future.last().unwrap_or(&current));
                scene.step(&achieved, &current);
                current = achieved;
                outcome.reference_poses.push(*reference);
                outcome.achieved_poses.push(achieved);
                outcome.expert_poses.push(expert_pose);
                outcome.steps += 1;
                actually_executed += 1;

                if Some(i) == feedback_step {
                    close_loop_observations.push(Self::observation(scene, task, &current, unseen));
                }
                if task.is_success(scene, &initial_scene) {
                    outcome.success = true;
                    outcome.executed_lengths.push(actually_executed);
                    return outcome;
                }
                if outcome.steps >= self.config.max_steps {
                    break;
                }
            }
            outcome.executed_lengths.push(actually_executed);
            expert_cursor += actually_executed;
        }
        outcome
    }

    /// Number of steps of a predicted trajectory to execute under the
    /// configured policy.
    fn executed_steps(&self, trajectory: &Trajectory) -> usize {
        match &self.config.steps_policy {
            StepsPolicy::All => trajectory.num_steps(),
            StepsPolicy::Fixed(n) => (*n).clamp(1, trajectory.num_steps()),
            StepsPolicy::Adaptive(cfg) => {
                adaptive_length_for_trajectory(trajectory, cfg).steps.min(trajectory.num_steps())
            }
        }
    }

    /// The kinematic execution model: the robot reaches the reference pose up
    /// to a Gaussian tracking error whose magnitude reflects the control rate.
    fn kinematic_track(&self, reference: &EePose, rng: &mut StdRng) -> EePose {
        let sigma = self.config.tracking_error;
        let noise =
            corki_math::Vec3::new(gaussian(rng, sigma), gaussian(rng, sigma), gaussian(rng, sigma));
        EePose {
            position: reference.position + noise,
            euler: reference.euler,
            gripper: reference.gripper,
        }
    }
}

fn gaussian(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 0.0;
    }
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The dynamic execution backend: a Panda rigid-body simulation tracked by the
/// TS-CTC controller at 100 Hz. Only the Cartesian position is tracked; the
/// orientation reference is held at the arm's current orientation (the
/// tabletop tasks are position-dominated).
#[derive(Debug, Clone)]
struct DynamicBackend {
    sim: ArmSimulator,
    controller: TaskSpaceController,
}

impl DynamicBackend {
    fn new() -> Self {
        let robot = panda::panda_model();
        let mut sim = ArmSimulator::new(robot, SimulatorConfig::default());
        sim.reset(JointState::at_rest(panda::PANDA_HOME.to_vec()));
        DynamicBackend { sim, controller: TaskSpaceController::new(ControllerGains::default()) }
    }

    fn end_effector(&self) -> EePose {
        let fk = self.sim.robot().forward_kinematics(&self.sim.state().positions);
        EePose::from_se3(&fk.end_effector, GripperState::Open)
    }

    /// Tracks one control step (33 ms) of a trajectory with 100 Hz TS-CTC.
    fn track_trajectory_step(
        &mut self,
        trajectory: &Trajectory,
        step_index: usize,
        gripper: GripperState,
    ) -> EePose {
        let t_start = step_index as f64 * CONTROL_STEP;
        let control_dt = 0.01;
        let mut t = 0.0;
        while t < CONTROL_STEP - 1e-9 {
            let sample = trajectory.sample_full(t_start + t);
            let fk = self.sim.robot().forward_kinematics(&self.sim.state().positions);
            let mut target = fk.end_effector;
            target.translation = sample.pose.position;
            let reference = TaskReference {
                pose: target,
                linear_velocity: sample.linear_velocity,
                angular_velocity: corki_math::Vec3::ZERO,
                linear_acceleration: sample.linear_acceleration,
                angular_acceleration: corki_math::Vec3::ZERO,
            };
            let tau =
                self.controller.compute_torque(self.sim.robot(), self.sim.state(), &reference);
            self.sim.step(&tau, control_dt);
            t += control_dt;
        }
        let mut achieved = self.end_effector();
        achieved.gripper = gripper;
        achieved
    }

    /// Tracks a single target pose for one control step (baseline execution).
    fn track_pose(&mut self, reference: &EePose) -> EePose {
        let control_dt = 0.01;
        let fk = self.sim.robot().forward_kinematics(&self.sim.state().positions);
        let mut target = fk.end_effector;
        target.translation = reference.position;
        let task_ref = TaskReference::hold(target);
        let mut t = 0.0;
        while t < CONTROL_STEP - 1e-9 {
            let tau = self.controller.compute_torque(self.sim.robot(), self.sim.state(), &task_ref);
            self.sim.step(&tau, control_dt);
            t += control_dt;
        }
        let mut achieved = self.end_effector();
        achieved.gripper = reference.gripper;
        achieved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::task_catalog;
    use corki_policy::{NoiseModel, OracleFramePolicy, OracleTrajectoryPolicy};

    fn quiet_noise() -> NoiseModel {
        NoiseModel {
            position_sigma: 0.001,
            orientation_sigma: 0.002,
            gripper_error_probability: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn oracle_baseline_solves_simple_tasks_kinematically() {
        let env = Environment::new(EnvironmentConfig::default());
        let catalog = task_catalog();
        let mut solved = 0;
        let mut total = 0;
        for task in catalog.iter().take(12) {
            let mut scene = Scene::randomized(100 + task.id as u64, false);
            task.prepare(&mut scene);
            let mut policy = OracleFramePolicy::new(quiet_noise(), 1);
            let outcome = env.run_episode(&mut scene, task, &mut policy, false);
            total += 1;
            if outcome.success {
                solved += 1;
            }
        }
        assert!(solved * 10 >= total * 8, "oracle baseline solved only {solved}/{total} tasks");
    }

    #[test]
    fn oracle_corki_reduces_inference_count() {
        let env_base = Environment::new(EnvironmentConfig::default());
        let env_corki = Environment::new(EnvironmentConfig {
            steps_policy: StepsPolicy::Fixed(5),
            ..Default::default()
        });
        let task = task_catalog()[0];
        let mut scene_a = Scene::randomized(7, false);
        task.prepare(&mut scene_a);
        let mut scene_b = scene_a.clone();

        let mut frame_policy = OracleFramePolicy::new(quiet_noise(), 2);
        let base = env_base.run_episode(&mut scene_a, &task, &mut frame_policy, false);
        let mut corki_policy = OracleTrajectoryPolicy::new(9, quiet_noise(), 2);
        let corki = env_corki.run_episode(&mut scene_b, &task, &mut corki_policy, false);

        assert!(base.success && corki.success, "both variants should solve the task");
        assert!(
            corki.mean_steps_per_inference() > 3.0,
            "Corki-5 should execute several steps per inference, got {}",
            corki.mean_steps_per_inference()
        );
        assert!(
            corki.inferences < base.inferences,
            "Corki must infer less often: {} vs {}",
            corki.inferences,
            base.inferences
        );
    }

    #[test]
    fn adaptive_policy_executes_variable_lengths() {
        let env = Environment::new(EnvironmentConfig {
            steps_policy: StepsPolicy::Adaptive(AdaptiveLengthConfig::default()),
            ..Default::default()
        });
        // A lift task includes a gripper change, which should trigger early
        // termination at least once.
        let task = task_catalog().into_iter().find(|t| t.name() == "lift_red_block_table").unwrap();
        let mut scene = Scene::randomized(11, false);
        task.prepare(&mut scene);
        let mut policy = OracleTrajectoryPolicy::new(9, quiet_noise(), 5);
        let outcome = env.run_episode(&mut scene, &task, &mut policy, false);
        assert!(outcome.success);
        let lengths = &outcome.executed_lengths;
        assert!(
            lengths.iter().any(|&l| l < 9),
            "adaptive execution should cut at least one trajectory: {lengths:?}"
        );
    }

    #[test]
    fn episode_outcome_traces_are_aligned() {
        let env = Environment::new(EnvironmentConfig::default());
        let task = task_catalog()[8]; // turn_on_lightbulb
        let mut scene = Scene::randomized(3, false);
        task.prepare(&mut scene);
        let mut policy = OracleTrajectoryPolicy::new(5, quiet_noise(), 9);
        let outcome = env.run_episode(&mut scene, &task, &mut policy, false);
        assert_eq!(outcome.reference_poses.len(), outcome.steps);
        assert_eq!(outcome.achieved_poses.len(), outcome.steps);
        assert_eq!(outcome.expert_poses.len(), outcome.steps);
        assert_eq!(outcome.executed_lengths.iter().sum::<usize>(), outcome.steps);
    }

    #[test]
    fn failure_is_reported_when_noise_is_huge() {
        let env = Environment::new(EnvironmentConfig { max_steps: 40, ..Default::default() });
        let task = task_catalog()[0];
        let mut scene = Scene::randomized(5, false);
        task.prepare(&mut scene);
        let mut policy =
            OracleFramePolicy::new(NoiseModel { position_sigma: 0.15, ..Default::default() }, 3);
        let outcome = env.run_episode(&mut scene, &task, &mut policy, false);
        assert_eq!(outcome.steps, 40);
        assert!(!outcome.success);
    }

    #[test]
    fn dynamic_backend_tracks_a_lift_task() {
        let env = Environment::new(EnvironmentConfig {
            backend: ExecutionBackend::Dynamic,
            steps_policy: StepsPolicy::Fixed(5),
            max_steps: 90,
            ..Default::default()
        });
        let task = task_catalog().into_iter().find(|t| t.name() == "turn_on_lightbulb").unwrap();
        let mut scene = Scene::randomized(21, false);
        task.prepare(&mut scene);
        let mut policy = OracleTrajectoryPolicy::new(9, quiet_noise(), 4);
        let outcome = env.run_episode(&mut scene, &task, &mut policy, false);
        // The dynamic arm starts from the Panda home configuration, which is
        // different from the kinematic home pose; reaching the switch may
        // legitimately take longer, but the rollout must stay consistent.
        assert_eq!(outcome.achieved_poses.len(), outcome.steps);
        assert!(outcome.steps > 0);
    }
}
