//! The scripted expert planner.
//!
//! CALVIN's training set consists of tele-operated play data; this crate uses
//! a scripted expert instead.  For every task the expert produces a sequence
//! of end-effector waypoints at the camera rate (30 Hz) built out of simple
//! motion primitives (approach, grasp, carry, actuate).  The expert serves
//! two roles: it generates training demonstrations for the learned policies
//! and it is the ground truth that the oracle policies corrupt.

use crate::scene::Scene;
use crate::tasks::{Direction, TaskInstance, TaskTemplate};
use corki_math::Vec3;
use corki_trajectory::{EePose, GripperState};
use serde::{Deserialize, Serialize};

/// Builds expert waypoint sequences for the benchmark tasks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpertPlanner {
    /// Maximum Cartesian distance covered per control step (metres); 0.02 m
    /// per 33 ms step corresponds to a calm 0.6 m/s tool speed.
    pub max_step: f64,
    /// Maximum yaw change per control step (radians).
    pub max_yaw_step: f64,
    /// Safe height above the table used for transfers.
    pub transfer_height: f64,
}

impl Default for ExpertPlanner {
    fn default() -> Self {
        ExpertPlanner { max_step: 0.02, max_yaw_step: 0.12, transfer_height: 0.18 }
    }
}

/// A small helper accumulating waypoints with bounded per-step motion.
struct MotionBuilder {
    waypoints: Vec<EePose>,
    current: EePose,
    max_step: f64,
    max_yaw_step: f64,
}

impl MotionBuilder {
    fn new(start: EePose, max_step: f64, max_yaw_step: f64) -> Self {
        MotionBuilder { waypoints: Vec::new(), current: start, max_step, max_yaw_step }
    }

    /// Moves in a straight line to `position` with yaw `yaw`, holding the
    /// given gripper state, emitting one waypoint per control step.
    fn move_to(&mut self, position: Vec3, yaw: f64, gripper: GripperState) {
        let distance = (position - self.current.position).norm();
        let yaw_delta = (yaw - self.current.euler.z).abs();
        let steps = ((distance / self.max_step).ceil() as usize)
            .max((yaw_delta / self.max_yaw_step).ceil() as usize)
            .max(1);
        let start_pos = self.current.position;
        let start_yaw = self.current.euler.z;
        for i in 1..=steps {
            let alpha = i as f64 / steps as f64;
            let pose = EePose::new(
                start_pos.lerp(position, alpha),
                Vec3::new(0.0, 0.0, start_yaw + (yaw - start_yaw) * alpha),
                gripper,
            );
            self.waypoints.push(pose);
            self.current = pose;
        }
    }

    /// Changes only the gripper state (one extra waypoint at the same pose).
    fn set_gripper(&mut self, gripper: GripperState) {
        let pose = EePose { gripper, ..self.current };
        self.waypoints.push(pose);
        self.current = pose;
    }

    /// Holds the current pose for `steps` control steps.
    fn hold(&mut self, steps: usize) {
        for _ in 0..steps {
            self.waypoints.push(self.current);
        }
    }

    fn finish(self) -> Vec<EePose> {
        self.waypoints
    }
}

impl ExpertPlanner {
    /// Plans the remaining expert waypoints for `task` from the current
    /// end-effector pose, given the current scene state.
    ///
    /// The returned sequence starts one control step in the future (the
    /// current pose is *not* included) and ends with the robot holding still
    /// at the final pose for a couple of steps.
    pub fn plan(&self, scene: &Scene, task: &TaskInstance, current: &EePose) -> Vec<EePose> {
        let mut b = MotionBuilder::new(*current, self.max_step, self.max_yaw_step);
        let yaw = current.euler.z;
        let above = |p: Vec3, h: f64| Vec3::new(p.x, p.y, p.z + h);

        match task.template {
            TaskTemplate::PushBlock { color, direction } => {
                let block = scene.block(color).position;
                let target = block + Vec3::new(0.0, 0.09 * direction.sign(), 0.0);
                self.pick_and_place(&mut b, block, target, yaw);
            }
            TaskTemplate::MoveSlider { direction } => {
                let handle = scene.slider_handle();
                let mut target = scene.config.slider_handle_left;
                if direction == Direction::Right {
                    target.y += scene.config.slider_travel;
                }
                b.move_to(above(handle, 0.05), yaw, GripperState::Open);
                b.move_to(handle, yaw, GripperState::Open);
                b.set_gripper(GripperState::Closed);
                b.move_to(target, yaw, GripperState::Closed);
                b.set_gripper(GripperState::Open);
                b.move_to(above(target, 0.08), yaw, GripperState::Open);
            }
            TaskTemplate::TurnOnLightbulb | TaskTemplate::TurnOffLightbulb => {
                let lever = scene.config.switch_position;
                let up = task.template == TaskTemplate::TurnOnLightbulb;
                let start = if up {
                    lever - Vec3::new(0.0, 0.0, 0.03)
                } else {
                    lever + Vec3::new(0.0, 0.0, 0.03)
                };
                let end = if up {
                    lever + Vec3::new(0.0, 0.0, 0.03)
                } else {
                    lever - Vec3::new(0.0, 0.0, 0.03)
                };
                b.move_to(start + Vec3::new(-0.06, 0.0, 0.0), yaw, GripperState::Open);
                b.move_to(start, yaw, GripperState::Open);
                b.move_to(end, yaw, GripperState::Open);
                b.move_to(end + Vec3::new(-0.06, 0.0, 0.0), yaw, GripperState::Open);
            }
            TaskTemplate::TurnOnLed | TaskTemplate::TurnOffLed => {
                let button = scene.config.button_position;
                b.move_to(above(button, 0.05), yaw, GripperState::Open);
                b.move_to(button - Vec3::new(0.0, 0.0, 0.008), yaw, GripperState::Open);
                b.move_to(above(button, 0.05), yaw, GripperState::Open);
            }
            TaskTemplate::OpenDrawer | TaskTemplate::CloseDrawer => {
                let handle = scene.drawer_handle();
                let opening = task.template == TaskTemplate::OpenDrawer;
                let travel = scene.config.drawer_travel;
                let target = if opening {
                    Vec3::new(handle.x, scene.config.drawer_handle_closed.y + travel, handle.z)
                } else {
                    scene.config.drawer_handle_closed
                };
                b.move_to(above(handle, 0.05), yaw, GripperState::Open);
                b.move_to(handle, yaw, GripperState::Open);
                b.set_gripper(GripperState::Closed);
                b.move_to(target, yaw, GripperState::Closed);
                b.set_gripper(GripperState::Open);
                b.move_to(above(target, 0.08), yaw, GripperState::Open);
            }
            TaskTemplate::PushBlockIntoDrawer { color } => {
                let block = scene.block(color).position;
                let interior = scene.drawer_handle() + Vec3::new(0.05, -0.04, 0.02);
                self.pick_and_place(&mut b, block, interior, yaw);
            }
            TaskTemplate::RotateBlock { color, clockwise } => {
                let block = scene.block(color).position;
                let delta = if clockwise { -0.6 } else { 0.6 };
                b.move_to(above(block, self.transfer_height), yaw, GripperState::Open);
                b.move_to(block, yaw, GripperState::Open);
                b.set_gripper(GripperState::Closed);
                b.move_to(block, yaw + delta, GripperState::Closed);
                b.set_gripper(GripperState::Open);
                b.move_to(above(block, 0.1), yaw + delta, GripperState::Open);
            }
            TaskTemplate::LiftBlockFromTable { color }
            | TaskTemplate::LiftBlockFromSlider { color } => {
                let block = scene.block(color).position;
                b.move_to(above(block, self.transfer_height), yaw, GripperState::Open);
                b.move_to(block, yaw, GripperState::Open);
                b.set_gripper(GripperState::Closed);
                b.move_to(above(block, 0.12), yaw, GripperState::Closed);
                b.hold(3);
            }
            TaskTemplate::PlaceBlockInSlider { color } => {
                let block = scene.block(color).position;
                let shelf = scene.slider_handle() + Vec3::new(-0.05, 0.0, 0.08);
                self.pick_and_place(&mut b, block, shelf, yaw);
            }
            TaskTemplate::StackBlocks => {
                let red = scene.block(crate::scene::BlockColor::Red).position;
                let blue = scene.block(crate::scene::BlockColor::Blue).position;
                let top = blue + Vec3::new(0.0, 0.0, scene.config.block_size);
                self.pick_and_place(&mut b, red, top, yaw);
            }
            TaskTemplate::UnstackBlocks => {
                let red = scene.block(crate::scene::BlockColor::Red).position;
                let blue = scene.block(crate::scene::BlockColor::Blue).position;
                let table_z = scene.config.table_height + scene.config.block_size / 2.0;
                let target = Vec3::new(blue.x, blue.y - 0.12, table_z);
                self.pick_and_place(&mut b, red, target, yaw);
            }
        }
        b.hold(2);
        b.finish()
    }

    /// The standard grasp-transfer-release primitive.
    fn pick_and_place(&self, b: &mut MotionBuilder, from: Vec3, to: Vec3, yaw: f64) {
        let above_from = Vec3::new(from.x, from.y, from.z + self.transfer_height);
        let above_to = Vec3::new(to.x, to.y, to.z + self.transfer_height);
        b.move_to(above_from, yaw, GripperState::Open);
        b.move_to(from, yaw, GripperState::Open);
        b.set_gripper(GripperState::Closed);
        b.move_to(above_from, yaw, GripperState::Closed);
        b.move_to(above_to, yaw, GripperState::Closed);
        b.move_to(to, yaw, GripperState::Closed);
        b.set_gripper(GripperState::Open);
        b.move_to(above_to, yaw, GripperState::Open);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::task_catalog;

    fn home_pose() -> EePose {
        EePose::new(Vec3::new(0.35, 0.0, 0.3), Vec3::ZERO, GripperState::Open)
    }

    #[test]
    fn expert_plans_respect_the_step_limit() {
        let planner = ExpertPlanner::default();
        for task in task_catalog() {
            let mut scene = Scene::randomized(5, false);
            task.prepare(&mut scene);
            let plan = planner.plan(&scene, &task, &home_pose());
            assert!(!plan.is_empty(), "{} has an empty plan", task.name());
            let mut prev = home_pose();
            for (i, wp) in plan.iter().enumerate() {
                let step = wp.position_distance(&prev);
                assert!(step <= planner.max_step + 1e-9, "{} step {i} moves {step} m", task.name());
                prev = *wp;
            }
        }
    }

    #[test]
    fn executing_the_expert_plan_succeeds_for_every_task() {
        // The scripted expert must actually solve every task when its plan is
        // executed verbatim through the scene's kinematic interaction model.
        let planner = ExpertPlanner::default();
        for task in task_catalog() {
            let mut scene = Scene::randomized(17, false);
            task.prepare(&mut scene);
            let initial = scene.clone();
            let plan = planner.plan(&scene, &task, &home_pose());
            let mut prev = home_pose();
            let mut solved = false;
            for wp in &plan {
                scene.step(wp, &prev);
                prev = *wp;
                if task.is_success(&scene, &initial) {
                    solved = true;
                    break;
                }
            }
            assert!(solved, "expert failed task {}", task.name());
        }
    }

    #[test]
    fn expert_plans_are_deterministic() {
        let planner = ExpertPlanner::default();
        let task = task_catalog()[0];
        let mut scene = Scene::randomized(9, false);
        task.prepare(&mut scene);
        let a = planner.plan(&scene, &task, &home_pose());
        let b = planner.plan(&scene, &task, &home_pose());
        assert_eq!(a, b);
    }

    #[test]
    fn plans_have_reasonable_length() {
        let planner = ExpertPlanner::default();
        for task in task_catalog() {
            let mut scene = Scene::randomized(23, false);
            task.prepare(&mut scene);
            let plan = planner.plan(&scene, &task, &home_pose());
            assert!(
                plan.len() >= 5 && plan.len() <= 200,
                "{}: unexpected plan length {}",
                task.name(),
                plan.len()
            );
        }
    }
}
