//! The tabletop scene: objects, articulated fixtures and their kinematic
//! interaction with the gripper.

use corki_math::Vec3;
use corki_trajectory::{EePose, GripperState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three manipulable blocks of the CALVIN scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockColor {
    /// The red block.
    Red,
    /// The blue block.
    Blue,
    /// The pink block.
    Pink,
}

impl BlockColor {
    /// All three blocks.
    pub const ALL: [BlockColor; 3] = [BlockColor::Red, BlockColor::Blue, BlockColor::Pink];

    /// Index in `[0, 3)` used for array storage.
    pub fn index(self) -> usize {
        match self {
            BlockColor::Red => 0,
            BlockColor::Blue => 1,
            BlockColor::Pink => 2,
        }
    }
}

/// Objects and fixtures a task can refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SceneObject {
    /// One of the coloured blocks.
    Block(BlockColor),
    /// The sliding door on the table.
    Slider,
    /// The drawer under the table surface.
    Drawer,
    /// The lever switch controlling the light bulb.
    Switch,
    /// The push button controlling the LED.
    Button,
}

/// One manipulable block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Centre position in the robot base frame (metres).
    pub position: Vec3,
    /// Yaw orientation (radians).
    pub yaw: f64,
    /// Whether the block is currently held by the gripper.
    pub grasped: bool,
}

/// Geometry constants of the scene, roughly matching the CALVIN table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Height of the table surface (metres, base frame).
    pub table_height: f64,
    /// Half-extent of the reachable table area in x.
    pub table_half_x: f64,
    /// Half-extent of the reachable table area in y.
    pub table_half_y: f64,
    /// Centre of the table area in front of the robot.
    pub table_center: Vec3,
    /// Position of the drawer handle when closed.
    pub drawer_handle_closed: Vec3,
    /// Drawer travel (metres) from closed to fully open (along -y).
    pub drawer_travel: f64,
    /// Position of the slider handle at its leftmost position.
    pub slider_handle_left: Vec3,
    /// Slider travel along +y.
    pub slider_travel: f64,
    /// Position of the switch lever.
    pub switch_position: Vec3,
    /// Position of the LED button.
    pub button_position: Vec3,
    /// Distance below which the gripper can grasp / actuate an object.
    pub interaction_radius: f64,
    /// Edge length of a block.
    pub block_size: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            table_height: 0.0,
            table_half_x: 0.25,
            table_half_y: 0.35,
            table_center: Vec3::new(0.45, 0.0, 0.0),
            drawer_handle_closed: Vec3::new(0.35, 0.28, -0.05),
            drawer_travel: 0.16,
            slider_handle_left: Vec3::new(0.6, -0.12, 0.08),
            slider_travel: 0.24,
            switch_position: Vec3::new(0.62, 0.22, 0.12),
            button_position: Vec3::new(0.62, 0.3, 0.05),
            interaction_radius: 0.025,
            block_size: 0.04,
        }
    }
}

/// The full mutable state of the tabletop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scene {
    /// Geometry configuration.
    pub config: SceneConfig,
    blocks: [Block; 3],
    /// Drawer extension in `[0, 1]` (0 closed, 1 fully open).
    pub drawer_extension: f64,
    /// Slider position in `[0, 1]` (0 left, 1 right).
    pub slider_position: f64,
    /// Whether the lever switch is on (light bulb lit).
    pub switch_on: bool,
    /// Whether the LED is on (toggled by the button).
    pub led_on: bool,
    /// Which block is currently grasped, if any.
    pub grasped_block: Option<BlockColor>,
    /// Yaw offset between the grasped block and the gripper at grasp time, so
    /// that wrist rotations rotate the block (used by the rotate tasks).
    grasp_yaw_offset: f64,
}

impl Scene {
    /// Creates the canonical scene with blocks at fixed nominal positions.
    pub fn new(config: SceneConfig) -> Self {
        let z = config.table_height + config.block_size / 2.0;
        let blocks = [
            Block { position: Vec3::new(0.42, -0.08, z), yaw: 0.0, grasped: false },
            Block { position: Vec3::new(0.5, 0.06, z), yaw: 0.4, grasped: false },
            Block { position: Vec3::new(0.38, 0.14, z), yaw: -0.3, grasped: false },
        ];
        Scene {
            config,
            blocks,
            drawer_extension: 0.0,
            slider_position: 0.0,
            switch_on: false,
            led_on: false,
            grasped_block: None,
            grasp_yaw_offset: 0.0,
        }
    }

    /// Creates a randomised scene: block positions, drawer/slider/switch state
    /// are drawn from the given seed. `unseen` draws from a shifted
    /// distribution (different table region and initial articulation), which
    /// is how the benchmark realises its seen/unseen split.
    pub fn randomized(seed: u64, unseen: bool) -> Self {
        let config = SceneConfig::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scene = Scene::new(config);
        let z = config.table_height + config.block_size / 2.0;
        let (x_range, y_range) = if unseen {
            // Unseen scenes put objects nearer the table edges.
            ((0.36..0.52), (-0.3..0.3))
        } else {
            ((0.38..0.5), (-0.2..0.2))
        };
        for i in 0..3 {
            // Rejection-sample so blocks do not overlap.
            loop {
                let candidate =
                    Vec3::new(rng.gen_range(x_range.clone()), rng.gen_range(y_range.clone()), z);
                let clear = scene.blocks[..i]
                    .iter()
                    .all(|b| (b.position - candidate).norm() > 2.5 * config.block_size);
                if clear {
                    scene.blocks[i].position = candidate;
                    break;
                }
            }
            scene.blocks[i].yaw = rng.gen_range(-1.0..1.0);
        }
        scene.drawer_extension = if rng.gen_bool(0.3) { rng.gen_range(0.5..1.0) } else { 0.0 };
        scene.slider_position = rng.gen_range(0.0..1.0);
        scene.switch_on = rng.gen_bool(0.5);
        scene.led_on = rng.gen_bool(0.5);
        if unseen {
            // Unseen episodes additionally perturb the fixture geometry a
            // little, emulating the different CALVIN environment layout.
            scene.config.switch_position.y += 0.04;
            scene.config.drawer_handle_closed.x -= 0.03;
        }
        scene
    }

    /// The state of a block.
    pub fn block(&self, color: BlockColor) -> &Block {
        &self.blocks[color.index()]
    }

    /// The current handle position of the drawer.
    pub fn drawer_handle(&self) -> Vec3 {
        let mut p = self.config.drawer_handle_closed;
        p.y += self.drawer_extension * self.config.drawer_travel;
        p
    }

    /// The current handle position of the slider.
    pub fn slider_handle(&self) -> Vec3 {
        let mut p = self.config.slider_handle_left;
        p.y += self.slider_position * self.config.slider_travel;
        p
    }

    /// The interaction point of a scene object in its current state.
    pub fn object_position(&self, object: SceneObject) -> Vec3 {
        match object {
            SceneObject::Block(c) => self.block(c).position,
            SceneObject::Drawer => self.drawer_handle(),
            SceneObject::Slider => self.slider_handle(),
            SceneObject::Switch => self.config.switch_position,
            SceneObject::Button => self.config.button_position,
        }
    }

    /// Whether the light bulb is lit (driven by the lever switch).
    pub fn lightbulb_on(&self) -> bool {
        self.switch_on
    }

    /// Advances the scene by one control step given the end-effector pose at
    /// the *end* of the step and the commanded gripper state.
    ///
    /// The interaction model is kinematic and deliberately forgiving, in the
    /// spirit of CALVIN's magnetic gripper: a block is grasped when the closed
    /// gripper is within [`SceneConfig::interaction_radius`] of it; a grasped
    /// block follows the gripper; articulated fixtures follow the gripper
    /// while it stays within the interaction radius of their handle.
    pub fn step(&mut self, end_effector: &EePose, previous_effector: &EePose) {
        let tip = end_effector.position;
        let closing = end_effector.gripper == GripperState::Closed;
        let was_closed = previous_effector.gripper == GripperState::Closed;

        // Grasp / release blocks.
        match self.grasped_block {
            Some(color) => {
                if !closing {
                    // Release: drop the block straight down onto whatever
                    // supports it (another block, the slider shelf, or the
                    // table surface).
                    let idx = color.index();
                    let rest_z = self.drop_height(color);
                    self.blocks[idx].grasped = false;
                    self.blocks[idx].position.z = rest_z;
                    self.grasped_block = None;
                } else {
                    let idx = color.index();
                    self.blocks[idx].position = tip;
                    self.blocks[idx].yaw = end_effector.euler.z + self.grasp_yaw_offset;
                }
            }
            None => {
                if closing && !was_closed {
                    // A fresh close: try to grasp the nearest block.
                    let nearest = BlockColor::ALL
                        .iter()
                        .copied()
                        .map(|c| (c, (self.block(c).position - tip).norm()))
                        .min_by(|a, b| a.1.total_cmp(&b.1));
                    if let Some((color, dist)) = nearest {
                        if dist <= self.config.interaction_radius {
                            self.grasped_block = Some(color);
                            self.blocks[color.index()].grasped = true;
                            self.grasp_yaw_offset =
                                self.blocks[color.index()].yaw - end_effector.euler.z;
                            self.blocks[color.index()].position = tip;
                        }
                    }
                }
            }
        }

        // Articulated fixtures: drawer (moves along y), slider (along y),
        // switch (toggled by proximity sweep), button (pressed from above).
        let drawer_handle = self.drawer_handle();
        if closing && (drawer_handle - tip).norm() <= self.config.interaction_radius {
            let delta_y = end_effector.position.y - previous_effector.position.y;
            let new_ext = self.drawer_extension + delta_y / self.config.drawer_travel;
            self.drawer_extension = new_ext.clamp(0.0, 1.0);
        }
        let slider_handle = self.slider_handle();
        if closing && (slider_handle - tip).norm() <= self.config.interaction_radius {
            let delta_y = end_effector.position.y - previous_effector.position.y;
            let new_pos = self.slider_position + delta_y / self.config.slider_travel;
            self.slider_position = new_pos.clamp(0.0, 1.0);
        }
        if (self.config.switch_position - tip).norm() <= self.config.interaction_radius {
            let delta_z = end_effector.position.z - previous_effector.position.z;
            if delta_z > 0.005 {
                self.switch_on = true;
            } else if delta_z < -0.005 {
                self.switch_on = false;
            }
        }
        if (self.config.button_position - tip).norm() <= self.config.interaction_radius * 0.8 {
            let delta_z = end_effector.position.z - previous_effector.position.z;
            if delta_z < -0.005 {
                self.led_on = !self.led_on;
            }
        }
    }

    /// The height a released block settles at: on top of another block if it
    /// hovers over one, on the slider shelf if it is in the shelf region, or
    /// on the table otherwise.
    fn drop_height(&self, color: BlockColor) -> f64 {
        let p = self.blocks[color.index()].position;
        let half = self.config.block_size / 2.0;
        // Support by another block.
        for other in BlockColor::ALL {
            if other == color {
                continue;
            }
            let o = self.block(other).position;
            let horizontal = ((p.x - o.x).powi(2) + (p.y - o.y).powi(2)).sqrt();
            if horizontal < self.config.block_size * 0.75 && p.z > o.z {
                return o.z + self.config.block_size;
            }
        }
        // Support by the slider shelf.
        let shelf = self.slider_handle() + Vec3::new(-0.05, 0.0, 0.0);
        let horizontal = ((p.x - shelf.x).powi(2) + (p.y - shelf.y).powi(2)).sqrt();
        if horizontal < 0.07 && p.z > self.config.table_height + 0.05 {
            return self.config.table_height + 0.08 + half;
        }
        self.config.table_height + half
    }

    /// Forcibly releases a block at an elevated position (used when a task
    /// reset places a block on the slider shelf, which supports it against
    /// gravity).
    pub(crate) fn force_release_at(&mut self, color: BlockColor, position: Vec3) {
        let idx = color.index();
        self.blocks[idx].grasped = false;
        self.blocks[idx].position = position;
        if self.grasped_block == Some(color) {
            self.grasped_block = None;
        }
    }

    /// Moves a block to an arbitrary position during an episode reset.
    pub(crate) fn place_block(&mut self, color: BlockColor, position: Vec3) {
        let idx = color.index();
        self.blocks[idx].position = position;
        self.blocks[idx].grasped = false;
        if self.grasped_block == Some(color) {
            self.grasped_block = None;
        }
    }

    /// The articulation scalar most relevant to `object`, normalised to
    /// `[0, 1]` (used by the policy observation).
    pub fn articulation_state(&self, object: SceneObject) -> f64 {
        match object {
            SceneObject::Drawer => self.drawer_extension,
            SceneObject::Slider => self.slider_position,
            SceneObject::Switch => {
                if self.switch_on {
                    1.0
                } else {
                    0.0
                }
            }
            SceneObject::Button => {
                if self.led_on {
                    1.0
                } else {
                    0.0
                }
            }
            SceneObject::Block(_) => 0.0,
        }
    }
}

impl Default for Scene {
    fn default() -> Self {
        Scene::new(SceneConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corki_math::Vec3;

    fn pose(p: Vec3, gripper: GripperState) -> EePose {
        EePose::new(p, Vec3::ZERO, gripper)
    }

    #[test]
    fn grasping_requires_proximity_and_fresh_close() {
        let mut scene = Scene::default();
        let block_pos = scene.block(BlockColor::Red).position;
        // Closing far away grasps nothing.
        let far = pose(block_pos + Vec3::new(0.2, 0.0, 0.0), GripperState::Closed);
        scene.step(&far, &pose(far.position, GripperState::Open));
        assert_eq!(scene.grasped_block, None);
        // Closing at the block grasps it.
        let near_open = pose(block_pos, GripperState::Open);
        let near_closed = pose(block_pos, GripperState::Closed);
        scene.step(&near_closed, &near_open);
        assert_eq!(scene.grasped_block, Some(BlockColor::Red));
    }

    #[test]
    fn grasped_block_follows_gripper_and_drops_on_release() {
        let mut scene = Scene::default();
        let block_pos = scene.block(BlockColor::Blue).position;
        let near_open = pose(block_pos, GripperState::Open);
        let near_closed = pose(block_pos, GripperState::Closed);
        scene.step(&near_closed, &near_open);
        assert_eq!(scene.grasped_block, Some(BlockColor::Blue));
        // Carry it up and over.
        let lifted = pose(block_pos + Vec3::new(0.05, 0.05, 0.15), GripperState::Closed);
        scene.step(&lifted, &near_closed);
        assert!((scene.block(BlockColor::Blue).position - lifted.position).norm() < 1e-12);
        // Release: it falls back to table height.
        let released = pose(lifted.position, GripperState::Open);
        scene.step(&released, &lifted);
        assert_eq!(scene.grasped_block, None);
        let z = scene.block(BlockColor::Blue).position.z;
        assert!((z - (scene.config.table_height + scene.config.block_size / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn drawer_opens_when_pulled_and_clamps() {
        let mut scene = Scene::default();
        let handle = scene.drawer_handle();
        let mut prev = pose(handle, GripperState::Closed);
        // Pull along +y in small increments.
        for i in 1..=20 {
            let next = pose(handle + Vec3::new(0.0, 0.01 * i as f64, 0.0), GripperState::Closed);
            scene.step(&next, &prev);
            prev = pose(scene.drawer_handle(), GripperState::Closed);
        }
        assert!(scene.drawer_extension > 0.5, "drawer should open, got {}", scene.drawer_extension);
        assert!(scene.drawer_extension <= 1.0);
    }

    #[test]
    fn switch_toggles_with_vertical_sweeps() {
        let mut scene = Scene { switch_on: false, ..Scene::default() };
        let lever = scene.config.switch_position;
        let below = pose(lever - Vec3::new(0.0, 0.0, 0.02), GripperState::Open);
        let above = pose(lever + Vec3::new(0.0, 0.0, 0.02), GripperState::Open);
        scene.step(&above, &below); // push up → on
        assert!(scene.switch_on);
        assert!(scene.lightbulb_on());
        scene.step(&below, &above); // push down → off
        assert!(!scene.switch_on);
    }

    #[test]
    fn button_press_toggles_led() {
        let mut scene = Scene::default();
        let led_before = scene.led_on;
        let button = scene.config.button_position;
        let above = pose(button + Vec3::new(0.0, 0.0, 0.02), GripperState::Open);
        let pressed = pose(button - Vec3::new(0.0, 0.0, 0.005), GripperState::Open);
        scene.step(&pressed, &above);
        assert_eq!(scene.led_on, !led_before);
    }

    #[test]
    fn randomized_scenes_are_reproducible_and_blocks_do_not_overlap() {
        let a = Scene::randomized(42, false);
        let b = Scene::randomized(42, false);
        assert_eq!(a, b);
        let c = Scene::randomized(43, false);
        assert_ne!(a, c);
        for scene in [&a, &c] {
            for (i, x) in BlockColor::ALL.iter().enumerate() {
                for y in &BlockColor::ALL[i + 1..] {
                    let d = (scene.block(*x).position - scene.block(*y).position).norm();
                    assert!(d > 2.0 * scene.config.block_size, "blocks overlap: {d}");
                }
            }
        }
    }

    #[test]
    fn unseen_scenes_differ_from_seen_with_same_seed() {
        let seen = Scene::randomized(7, false);
        let unseen = Scene::randomized(7, true);
        assert_ne!(seen, unseen);
    }

    #[test]
    fn object_positions_track_articulation() {
        let mut scene = Scene::default();
        let closed_handle = scene.object_position(SceneObject::Drawer);
        scene.drawer_extension = 1.0;
        let open_handle = scene.object_position(SceneObject::Drawer);
        assert!((open_handle.y - closed_handle.y - scene.config.drawer_travel).abs() < 1e-12);
        assert_eq!(scene.articulation_state(SceneObject::Drawer), 1.0);
    }
}
