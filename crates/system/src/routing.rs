//! Request routing across a pool of inference servers.
//!
//! With more than one [`crate::fleet::ServerConfig`] in a fleet, every
//! offloaded request must be placed on exactly one server the moment its
//! upload completes.  The [`Router`] makes that decision from a snapshot of
//! the pool ([`ServerSnapshot`] per server) under one of three policies:
//!
//! * [`RoutingPolicy::RoundRobin`] — cycle through the servers in arrival
//!   order.  Stateless with respect to the pool (the decision depends only
//!   on how many requests were routed before), so it is trivially
//!   independent of seeds, queue contents and device mixes.
//! * [`RoutingPolicy::LeastQueueDepth`] — place the request on the server
//!   with the fewest queued-or-in-flight requests (ties break towards the
//!   lower index).  The classic join-shortest-queue heuristic.
//! * [`RoutingPolicy::DeviceAffinity`] — place the request where its
//!   *estimated completion cost* is lowest: the request's unbatched service
//!   time on that server's device, scaled by how much work is already
//!   stacked there.  Because service times differ per request class
//!   (single-action baseline vs trajectory inference) and per device,
//!   request classes develop an affinity to the devices that serve them
//!   cheapest — a V100 soaks up latency-critical work while a slow Jetson
//!   class server only attracts requests once the fast queues grow deep.
//!
//! Routing is fully deterministic: no randomness, ties broken by server
//! index, so fleet runs stay byte-identical across repeats and worker
//! counts.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// How offloaded inference requests are spread over the server pool.
///
/// Serializes as its canonical table name (`"round-robin"`, …) and
/// deserializes through [`FromStr`], aliases included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingPolicy {
    /// Cycle through servers in arrival order.
    RoundRobin,
    /// Join the server with the fewest queued-or-in-flight requests.
    LeastQueueDepth,
    /// Join the server with the lowest estimated completion cost for this
    /// request (service time on that device × stacked work).
    DeviceAffinity,
}

impl RoutingPolicy {
    /// Every policy, in documentation order.
    pub const ALL: [RoutingPolicy; 3] =
        [RoutingPolicy::RoundRobin, RoutingPolicy::LeastQueueDepth, RoutingPolicy::DeviceAffinity];

    /// A stable short name used in result tables and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::RoundRobin => "round-robin",
            RoutingPolicy::LeastQueueDepth => "least-queue-depth",
            RoutingPolicy::DeviceAffinity => "device-affinity",
        }
    }
}

impl fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when parsing an unknown routing policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRoutingPolicyError(String);

impl fmt::Display for ParseRoutingPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown routing policy `{}` (expected round-robin, least-queue-depth or device-affinity)",
            self.0
        )
    }
}

impl std::error::Error for ParseRoutingPolicyError {}

impl FromStr for RoutingPolicy {
    type Err = ParseRoutingPolicyError;

    /// Parses a policy name case-insensitively; separators (`-`, `_`,
    /// spaces) are ignored and the short aliases `rr`, `lqd` and `affinity`
    /// are accepted.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match crate::devices::normalize(s).as_str() {
            "roundrobin" | "rr" => Ok(RoutingPolicy::RoundRobin),
            "leastqueuedepth" | "lqd" => Ok(RoutingPolicy::LeastQueueDepth),
            "deviceaffinity" | "affinity" => Ok(RoutingPolicy::DeviceAffinity),
            _ => Err(ParseRoutingPolicyError(s.to_owned())),
        }
    }
}

impl Serialize for RoutingPolicy {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.name().to_owned())
    }
}

impl Deserialize for RoutingPolicy {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let name =
            value.as_str().ok_or_else(|| serde::Error::custom("expected routing policy name"))?;
        name.parse().map_err(serde::Error::custom)
    }
}

/// What the router sees of one server when placing a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerSnapshot {
    /// Requests queued at the scheduler plus those in the batch currently
    /// being served.
    pub queue_depth: usize,
    /// Unbatched service time of the request being routed on *this* server's
    /// device (ms).
    pub service_ms: f64,
    /// Whether the server is currently up.  Crashed servers (injected by a
    /// [`crate::fleet::FaultPlan`]) advertise `up: false` and every policy
    /// routes around them as long as at least one healthy server remains.
    pub up: bool,
}

/// The routing decision engine: a policy plus the small amount of state the
/// policy needs (the round-robin cursor).
#[derive(Debug, Clone)]
pub struct Router {
    policy: RoutingPolicy,
    round_robin_next: usize,
}

impl Router {
    /// Creates a router for the given policy.
    pub fn new(policy: RoutingPolicy) -> Self {
        Router { policy, round_robin_next: 0 }
    }

    /// The policy this router applies.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Routes without looking at the pool, when the policy allows it:
    /// round-robin depends only on how many requests were routed before,
    /// and any single-server pool has exactly one answer.  Returns `None`
    /// when the policy needs [`ServerSnapshot`]s — the engine's hot loop
    /// uses this to skip building snapshots for the common cases.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is zero.
    pub fn try_route_blind(&mut self, pool_size: usize) -> Option<usize> {
        assert!(pool_size > 0, "cannot route across an empty server pool");
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let index = self.round_robin_next % pool_size;
                self.round_robin_next = (self.round_robin_next + 1) % pool_size;
                Some(index)
            }
            _ if pool_size == 1 => Some(0),
            _ => None,
        }
    }

    /// Picks the server for one request from a snapshot of the pool.
    ///
    /// Crashed servers (`up: false`) are excluded from the decision as long
    /// as at least one healthy server remains; an all-down pool falls back
    /// to ignoring health (the engine never routes into an all-down pool —
    /// it lets the request time out instead — but the function stays total).
    /// Round-robin advances its cursor over the *healthy* subset, which
    /// degenerates to the classic full-pool cycle when nothing is down.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty — a fleet always has at least one
    /// server.
    pub fn route(&mut self, servers: &[ServerSnapshot]) -> usize {
        assert!(!servers.is_empty(), "cannot route across an empty server pool");
        let healthy: Vec<usize> = (0..servers.len()).filter(|&i| servers[i].up).collect();
        let candidates: Vec<usize> =
            if healthy.is_empty() { (0..servers.len()).collect() } else { healthy };
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let pick = candidates[self.round_robin_next % candidates.len()];
                self.round_robin_next = (self.round_robin_next + 1) % candidates.len();
                pick
            }
            RoutingPolicy::LeastQueueDepth => candidates
                .iter()
                .copied()
                .min_by_key(|&index| (servers[index].queue_depth, index))
                .expect("pool is non-empty"),
            RoutingPolicy::DeviceAffinity => candidates
                .iter()
                .copied()
                .min_by(|&ia, &ib| {
                    affinity_cost(&servers[ia])
                        .total_cmp(&affinity_cost(&servers[ib]))
                        .then(ia.cmp(&ib))
                })
                .expect("pool is non-empty"),
        }
    }
}

/// Estimated completion cost of a request on one server: its service time on
/// that device scaled by the work already stacked there (queue plus the
/// request itself).
fn affinity_cost(snapshot: &ServerSnapshot) -> f64 {
    snapshot.service_ms * (snapshot.queue_depth + 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn snapshot(queue_depth: usize, service_ms: f64) -> ServerSnapshot {
        ServerSnapshot { queue_depth, service_ms, up: true }
    }

    fn down(queue_depth: usize, service_ms: f64) -> ServerSnapshot {
        ServerSnapshot { queue_depth, service_ms, up: false }
    }

    #[test]
    fn blind_routing_matches_snapshot_routing() {
        // Round-robin routes blind and must advance the same cursor either
        // way; stateful policies route blind only for single-server pools.
        let pool: Vec<ServerSnapshot> = (0..3).map(|i| snapshot(i, 100.0)).collect();
        let mut blind = Router::new(RoutingPolicy::RoundRobin);
        let mut full = Router::new(RoutingPolicy::RoundRobin);
        for _ in 0..7 {
            assert_eq!(blind.try_route_blind(pool.len()), Some(full.route(&pool)));
        }
        for policy in [RoutingPolicy::LeastQueueDepth, RoutingPolicy::DeviceAffinity] {
            let mut router = Router::new(policy);
            assert_eq!(router.try_route_blind(1), Some(0));
            assert_eq!(router.try_route_blind(2), None);
        }
    }

    #[test]
    fn round_robin_cycles_in_order() {
        let mut router = Router::new(RoutingPolicy::RoundRobin);
        let pool = vec![snapshot(9, 1.0), snapshot(0, 1.0), snapshot(3, 1.0)];
        let picks: Vec<usize> = (0..7).map(|_| router.route(&pool)).collect();
        assert_eq!(picks, [0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_queue_depth_prefers_the_shallow_queue_and_low_index_ties() {
        let mut router = Router::new(RoutingPolicy::LeastQueueDepth);
        assert_eq!(router.route(&[snapshot(4, 1.0), snapshot(1, 1.0), snapshot(2, 1.0)]), 1);
        assert_eq!(router.route(&[snapshot(2, 1.0), snapshot(2, 1.0), snapshot(5, 1.0)]), 0);
    }

    #[test]
    fn device_affinity_weighs_service_time_against_stacked_work() {
        let mut router = Router::new(RoutingPolicy::DeviceAffinity);
        // An idle slow server loses to a lightly loaded fast one …
        assert_eq!(router.route(&[snapshot(1, 100.0), snapshot(0, 1000.0)]), 0);
        // … until the fast queue grows deep enough.
        assert_eq!(router.route(&[snapshot(12, 100.0), snapshot(0, 1000.0)]), 1);
    }

    #[test]
    fn every_policy_routes_around_down_servers() {
        // LQD: the shallowest queue is on a dead server — skip it.
        let mut lqd = Router::new(RoutingPolicy::LeastQueueDepth);
        assert_eq!(lqd.route(&[down(0, 1.0), snapshot(5, 1.0), snapshot(2, 1.0)]), 2);
        // Affinity: the cheapest device is down — pay for the live one.
        let mut affinity = Router::new(RoutingPolicy::DeviceAffinity);
        assert_eq!(affinity.route(&[down(0, 100.0), snapshot(0, 1000.0)]), 1);
        // Round-robin cycles over the healthy subset only.
        let mut rr = Router::new(RoutingPolicy::RoundRobin);
        let pool = vec![snapshot(0, 1.0), down(0, 1.0), snapshot(0, 1.0)];
        let picks: Vec<usize> = (0..4).map(|_| rr.route(&pool)).collect();
        assert_eq!(picks, [0, 2, 0, 2]);
    }

    #[test]
    fn an_all_down_pool_falls_back_to_health_blind_routing() {
        // The engine never routes into an all-down pool, but the router
        // itself stays total rather than panicking.
        let mut router = Router::new(RoutingPolicy::LeastQueueDepth);
        assert_eq!(router.route(&[down(4, 1.0), down(1, 1.0)]), 1);
    }

    #[test]
    fn policy_names_round_trip_through_parsing() {
        for policy in RoutingPolicy::ALL {
            let parsed: RoutingPolicy = policy.name().parse().expect("name parses");
            assert_eq!(parsed, policy);
            assert_eq!(policy.to_string(), policy.name());
        }
        assert_eq!("RR".parse::<RoutingPolicy>().unwrap(), RoutingPolicy::RoundRobin);
        assert_eq!(
            "Least_Queue Depth".parse::<RoutingPolicy>().unwrap(),
            RoutingPolicy::LeastQueueDepth
        );
        assert_eq!("AFFINITY".parse::<RoutingPolicy>().unwrap(), RoutingPolicy::DeviceAffinity);
        assert!("best-effort".parse::<RoutingPolicy>().is_err());
    }

    /// Builds an arbitrary pool from fixed-size sampled vectors, keeping the
    /// first `1 + (len_pick % 8)` servers so pool sizes vary too.
    fn arbitrary_pool(depths: &[usize], services: &[f64], len_pick: usize) -> Vec<ServerSnapshot> {
        let n = 1 + len_pick % depths.len().min(services.len());
        (0..n).map(|i| snapshot(depths[i], services[i])).collect()
    }

    // Least-queue-depth must never route to a strictly deeper queue than
    // some other server offers; round-robin must depend on nothing but the
    // number of requests routed so far; and every policy must return a
    // valid index for arbitrary pools.
    proptest! {
        #[test]
        fn least_queue_depth_never_picks_a_strictly_deeper_queue(
            depths in proptest::collection::vec(0usize..64, 8),
            services in proptest::collection::vec(1.0f64..5000.0, 8),
            len_pick in 0usize..64
        ) {
            let pool = arbitrary_pool(&depths, &services, len_pick);
            let pick = Router::new(RoutingPolicy::LeastQueueDepth).route(&pool);
            let best = pool.iter().map(|s| s.queue_depth).min().expect("non-empty");
            prop_assert_eq!(pool[pick].queue_depth, best);
        }

        #[test]
        fn round_robin_is_independent_of_pool_state(
            depths in proptest::collection::vec(0usize..64, 8),
            services in proptest::collection::vec(1.0f64..5000.0, 8),
            len_pick in 0usize..64,
            requests in 1usize..40
        ) {
            let pool = arbitrary_pool(&depths, &services, len_pick);
            let mut router = Router::new(RoutingPolicy::RoundRobin);
            for k in 0..requests {
                prop_assert_eq!(router.route(&pool), k % pool.len());
            }
        }

        #[test]
        fn every_policy_returns_a_valid_index(
            depths in proptest::collection::vec(0usize..64, 8),
            services in proptest::collection::vec(1.0f64..5000.0, 8),
            len_pick in 0usize..64
        ) {
            let pool = arbitrary_pool(&depths, &services, len_pick);
            for policy in RoutingPolicy::ALL {
                let pick = Router::new(policy).route(&pool);
                prop_assert!(pick < pool.len());
            }
        }

        #[test]
        fn no_policy_picks_a_down_server_while_any_is_up(
            depths in proptest::collection::vec(0usize..64, 8),
            services in proptest::collection::vec(1.0f64..5000.0, 8),
            up_picks in proptest::collection::vec(0usize..2, 8),
            len_pick in 0usize..64
        ) {
            let mut pool = arbitrary_pool(&depths, &services, len_pick);
            for (index, server) in pool.iter_mut().enumerate() {
                server.up = up_picks[index] == 1;
            }
            if pool.iter().any(|s| s.up) {
                for policy in RoutingPolicy::ALL {
                    let pick = Router::new(policy).route(&pool);
                    prop_assert!(pool[pick].up, "{policy:?} routed to a down server");
                }
            }
        }
    }
}
