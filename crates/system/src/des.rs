//! A minimal discrete-event simulation (DES) core.
//!
//! The fleet-serving runtime (and, through it, the single-robot
//! [`crate::PipelineSimulator`]) advances time by popping events off a queue
//! keyed by `(time, sequence-number)`.  The sequence number is a
//! monotonically increasing tie-breaker, so events scheduled at the same
//! instant fire in scheduling order and every run of the same configuration
//! pops events in exactly the same order — determinism is structural, not
//! accidental.
//!
//! # Cross-shard determinism contract
//!
//! The sharded fleet engine partitions its future-event set across K
//! per-shard queues ([`ShardedEventQueue`]) but keeps **one** global
//! sequence counter: every scheduled event — whichever shard it lands on —
//! draws its `seq` from the same monotone stream, in scheduling order.
//! Because `seq` is shard-canonical (globally unique and globally ordered),
//! the total order on `(time, seq)` is independent of the partitioning:
//! popping the globally earliest head across all shards replays *exactly*
//! the pop order of an unsharded [`EventQueue`] fed the same schedule
//! calls.  A K-shard run is therefore byte-identical to K = 1 by
//! construction, including ties at window barriers: two events at the same
//! instant on different shards still fire in scheduling order, never in
//! shard order (see `window_boundary_ties_break_on_global_seq_not_shard`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a point in simulated time.
///
/// Comparison (equality *and* ordering) is by the queue key `(time_ms,
/// seq)` only — `seq` is unique per queue, so two distinct events of one
/// queue never compare equal, and the `PartialEq`/`PartialOrd` contract
/// (`a == b ⟺ partial_cmp(a, b) == Some(Equal)`) holds by construction.
///
/// Under the sharded engine the same key defines the *cross-shard* total
/// order: `seq` is drawn from one global counter shared by every shard, so
/// `(time_ms, seq)` orders events of different shards exactly as it orders
/// events of one queue (see the module-level determinism contract).
#[derive(Debug, Clone, Copy)]
pub struct Scheduled<E> {
    /// Absolute simulated time of the event, in milliseconds.
    pub time_ms: f64,
    /// Scheduling sequence number — the deterministic tie-breaker for events
    /// at the same instant.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

/// Reverse ordering on `(time, seq)` so the `BinaryHeap` (a max-heap) pops
/// the earliest event first.
impl<E> Scheduled<E> {
    fn key_cmp(&self, other: &Self) -> Ordering {
        other.time_ms.total_cmp(&self.time_ms).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key_cmp(other) == Ordering::Equal
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key_cmp(other)
    }
}

/// A deterministic future-event queue.
///
/// Events are totally ordered by `(time_ms, seq)`; `seq` is assigned at
/// scheduling time.  Popping an event advances the queue's clock, and
/// scheduling into the past is a logic error (checked in debug builds).
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now_ms: f64,
}

impl<E> EventQueue<E> {
    /// An empty queue with its clock at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now_ms: 0.0 }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Schedules `event` at absolute time `time_ms` and returns its sequence
    /// number.
    ///
    /// # Panics
    ///
    /// Panics if `time_ms` is NaN, and (in debug builds) if it lies before
    /// the current clock.
    pub fn schedule(&mut self, time_ms: f64, event: E) -> u64 {
        assert!(!time_ms.is_nan(), "cannot schedule an event at NaN");
        debug_assert!(
            time_ms >= self.now_ms,
            "scheduling into the past: {time_ms} < {}",
            self.now_ms
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time_ms, seq, event });
        seq
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let scheduled = self.heap.pop()?;
        self.now_ms = scheduled.time_ms;
        Some(scheduled)
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time_ms(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time_ms)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A deterministic future-event queue partitioned across K shards.
///
/// Each shard owns a private heap, but all shards share **one** sequence
/// counter and one clock.  `pop` returns the globally earliest event by the
/// `(time_ms, seq)` key, scanning the K shard heads — so the pop order is
/// byte-identical to a single [`EventQueue`] given the same `schedule`
/// calls, for any K (the cross-shard determinism contract in the module
/// docs).  The partitioning exists so a coordinator can drain or hand off
/// per-shard work (e.g. per-robot trace decoration) in parallel between
/// synchronization windows without perturbing the event order.
#[derive(Debug, Clone)]
pub struct ShardedEventQueue<E> {
    shards: Vec<BinaryHeap<Scheduled<E>>>,
    /// Cached `(time_ms, seq)` key of each shard's head (`None` when the
    /// shard is empty), kept in sync by `schedule`/`pop`.  The global-min
    /// scan reads this contiguous array instead of peeking K heap
    /// allocations, which keeps the per-pop cost of sharding below the
    /// sift savings of the K-times-smaller heaps.
    heads: Vec<Option<(f64, u64)>>,
    next_seq: u64,
    now_ms: f64,
}

/// `(time_ms, seq)` ordering identical to [`Scheduled`]'s event order
/// (earliest first): `total_cmp` on time, lower sequence number first.
fn key_before(a: (f64, u64), b: (f64, u64)) -> bool {
    a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)) == Ordering::Less
}

impl<E> ShardedEventQueue<E> {
    /// An empty K-shard queue with its clock at time zero.  `shards` is
    /// clamped to at least 1.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedEventQueue {
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            heads: vec![None; shards],
            next_seq: 0,
            now_ms: 0.0,
        }
    }

    /// Number of shards (always ≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Schedules `event` on `shard` at absolute time `time_ms` and returns
    /// its globally unique sequence number.
    ///
    /// # Panics
    ///
    /// Panics if `time_ms` is NaN or `shard` is out of range, and (in debug
    /// builds) if `time_ms` lies before the current clock.
    pub fn schedule(&mut self, shard: usize, time_ms: f64, event: E) -> u64 {
        assert!(!time_ms.is_nan(), "cannot schedule an event at NaN");
        debug_assert!(
            time_ms >= self.now_ms,
            "scheduling into the past: {time_ms} < {}",
            self.now_ms
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[shard].push(Scheduled { time_ms, seq, event });
        // A fresh event carries the highest seq so far, so it only becomes
        // the shard head when it is strictly earlier in time.
        let key = (time_ms, seq);
        if self.heads[shard].is_none_or(|head| key_before(key, head)) {
            self.heads[shard] = Some(key);
        }
        seq
    }

    /// Index of the shard holding the globally earliest event, if any.
    fn earliest_shard(&self) -> Option<usize> {
        let mut best: Option<(usize, (f64, u64))> = None;
        for (index, head) in self.heads.iter().enumerate() {
            if let Some(key) = *head {
                let earlier = match best {
                    Some((_, incumbent)) => key_before(key, incumbent),
                    None => true,
                };
                if earlier {
                    best = Some((index, key));
                }
            }
        }
        best.map(|(index, _)| index)
    }

    /// Pops the globally earliest event (minimum `(time_ms, seq)` across all
    /// shard heads) and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let shard = self.earliest_shard()?;
        let scheduled = self.shards[shard].pop()?;
        self.heads[shard] = self.shards[shard].peek().map(|next| (next.time_ms, next.seq));
        self.now_ms = scheduled.time_ms;
        Some(scheduled)
    }

    /// The timestamp of the globally next event, if any.
    pub fn peek_time_ms(&self) -> Option<f64> {
        self.earliest_shard().and_then(|s| self.heads[s]).map(|(time_ms, _)| time_ms)
    }

    /// Total number of pending events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(BinaryHeap::len).sum()
    }

    /// Whether no events are pending on any shard.
    pub fn is_empty(&self) -> bool {
        self.heads.iter().all(Option::is_none)
    }
}

/// Tracks the conservative synchronization windows of a sharded run.
///
/// Simulated time is cut into fixed-width windows `[n·w, (n+1)·w)`.  All
/// events strictly inside a window are causally safe to decorate in
/// parallel per shard once the window closes; the coordinator reports when
/// the event about to be processed has crossed into a later window so the
/// engine can run its barrier (flush deferred per-shard work) *before*
/// handling the event.  The window width only sets the flush cadence — it
/// never influences event order or any simulated result.
#[derive(Debug, Clone)]
pub struct WindowCoordinator {
    window_ms: f64,
    window_end_ms: f64,
}

impl WindowCoordinator {
    /// A coordinator whose first window ends at `window_ms`.
    ///
    /// # Panics
    ///
    /// Panics unless `window_ms` is finite and positive.
    pub fn new(window_ms: f64) -> Self {
        assert!(
            window_ms.is_finite() && window_ms > 0.0,
            "window width must be finite and positive, got {window_ms}"
        );
        WindowCoordinator { window_ms, window_end_ms: window_ms }
    }

    /// The fixed window width, in milliseconds.
    pub fn window_ms(&self) -> f64 {
        self.window_ms
    }

    /// The exclusive end of the current window, in milliseconds.
    pub fn window_end_ms(&self) -> f64 {
        self.window_end_ms
    }

    /// Reports whether `time_ms` falls at or beyond the current window's
    /// end — i.e. whether a barrier is due before processing an event at
    /// `time_ms` — and, if so, advances to the window containing `time_ms`.
    ///
    /// An event exactly *at* the boundary belongs to the next window (the
    /// windows are half-open), so it triggers the barrier first.
    pub fn crossed(&mut self, time_ms: f64) -> bool {
        if time_ms < self.window_end_ms {
            return false;
        }
        let windows_past = ((time_ms - self.window_end_ms) / self.window_ms).floor() + 1.0;
        self.window_end_ms += windows_past * self.window_ms;
        // Guard against f64 rounding leaving the boundary at/below `time_ms`.
        while self.window_end_ms <= time_ms {
            self.window_end_ms += self.window_ms;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "c");
        q.schedule(1.0, "a");
        q.schedule(3.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_in_scheduling_order() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.schedule(2.0, label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|s| s.event).collect();
        assert_eq!(order, ["first", "second", "third"]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_advances_the_clock() {
        let mut q = EventQueue::new();
        assert_eq!(q.now_ms(), 0.0);
        q.schedule(4.5, ());
        q.schedule(7.25, ());
        assert_eq!(q.peek_time_ms(), Some(4.5));
        q.pop();
        assert_eq!(q.now_ms(), 4.5);
        q.pop();
        assert_eq!(q.now_ms(), 7.25);
        assert_eq!(q.pop(), None);
        assert_eq!(q.now_ms(), 7.25);
    }

    #[test]
    fn sequence_numbers_are_stable_across_identical_runs() {
        let run = || {
            let mut q = EventQueue::new();
            q.schedule(1.0, 10u32);
            q.schedule(1.0, 11u32);
            q.schedule(0.5, 12u32);
            let mut log = Vec::new();
            while let Some(s) = q.pop() {
                log.push((s.time_ms.to_bits(), s.seq, s.event));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic]
    fn nan_times_are_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    /// Replays the same schedule calls into an unsharded queue and a K-shard
    /// queue (events dealt round-robin across shards) and asserts identical
    /// pop order — the cross-shard determinism contract.
    #[test]
    fn sharded_pop_order_matches_the_unsharded_queue_for_any_shard_count() {
        let schedule: Vec<(f64, u32)> = vec![
            (5.0, 0),
            (1.0, 1),
            (5.0, 2),
            (3.0, 3),
            (1.0, 4),
            (8.0, 5),
            (3.0, 6),
            (3.0, 7),
            (0.0, 8),
        ];
        let mut reference = EventQueue::new();
        for &(t, e) in &schedule {
            reference.schedule(t, e);
        }
        let mut expected = Vec::new();
        while let Some(s) = reference.pop() {
            expected.push((s.time_ms.to_bits(), s.seq, s.event));
        }
        for shards in [1, 2, 3, 8] {
            let mut q = ShardedEventQueue::new(shards);
            for (i, &(t, e)) in schedule.iter().enumerate() {
                q.schedule(i % shards, t, e);
            }
            let mut got = Vec::new();
            while let Some(s) = q.pop() {
                got.push((s.time_ms.to_bits(), s.seq, s.event));
            }
            assert_eq!(got, expected, "{shards} shards must replay the unsharded pop order");
        }
    }

    /// Satellite: ties exactly at a window boundary break on the global
    /// sequence number, never on shard index, and the barrier fires before
    /// the boundary events are processed.
    #[test]
    fn window_boundary_ties_break_on_global_seq_not_shard() {
        let mut q = ShardedEventQueue::new(3);
        let mut windows = WindowCoordinator::new(10.0);
        // Scheduling order deliberately walks the shards backwards so a
        // shard-ordered (wrong) merge would differ from seq order.
        q.schedule(2, 10.0, "seq0-shard2");
        q.schedule(1, 10.0, "seq1-shard1");
        q.schedule(0, 10.0, "seq2-shard0");
        q.schedule(0, 9.5, "seq3-shard0");

        let first = q.pop().expect("pre-boundary event");
        assert_eq!(first.event, "seq3-shard0");
        assert!(!windows.crossed(first.time_ms), "9.5 is inside the first window");

        let mut order = Vec::new();
        let mut barriers = 0;
        while let Some(s) = q.pop() {
            if windows.crossed(s.time_ms) {
                barriers += 1;
            }
            order.push((s.seq, s.event));
        }
        // The boundary instant (10.0 — half-open windows) triggers exactly
        // one barrier, before the first tied event is handled.
        assert_eq!(barriers, 1);
        assert_eq!(windows.window_end_ms(), 20.0);
        assert_eq!(order, [(0, "seq0-shard2"), (1, "seq1-shard1"), (2, "seq2-shard0")]);
    }

    #[test]
    fn window_coordinator_skips_over_empty_windows() {
        let mut windows = WindowCoordinator::new(5.0);
        assert!(!windows.crossed(4.999));
        assert!(windows.crossed(23.0), "23.0 lies four windows past the first");
        assert_eq!(windows.window_end_ms(), 25.0);
        assert!(!windows.crossed(24.0));
    }

    #[test]
    fn sharded_queue_tracks_len_clock_and_peek() {
        let mut q = ShardedEventQueue::new(2);
        assert!(q.is_empty());
        assert_eq!(q.shard_count(), 2);
        q.schedule(0, 4.0, "late");
        q.schedule(1, 2.0, "early");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time_ms(), Some(2.0));
        assert_eq!(q.pop().map(|s| s.event), Some("early"));
        assert_eq!(q.now_ms(), 2.0);
        assert_eq!(q.pop().map(|s| s.event), Some("late"));
        assert_eq!(q.now_ms(), 4.0);
        assert!(q.is_empty());
    }
}
